"""Tests for the kernel layer: automorphisms, kernel ops, instrumentation."""

import numpy as np
import pytest

from repro.kernels import (
    KernelContext,
    KernelCounter,
    KernelName,
    apply_automorphism_coeff,
    apply_automorphism_eval,
    basis_convert,
    conjugate,
    element_add,
    element_subtract,
    evaluation_permutation,
    frobenius_map,
    galois_element_for_rotation,
    hadamard_multiply,
    intt,
    ntt,
)
from repro.ntt import NttPlanner, create_engine
from repro.numtheory import generate_ntt_prime, generate_ntt_primes
from repro.rns import PolyDomain, RnsPolynomial

RING_DEGREE = 32


@pytest.fixture()
def kernel_context() -> KernelContext:
    return KernelContext(NttPlanner("four_step"))


@pytest.fixture(scope="module")
def moduli():
    return tuple(generate_ntt_primes(2, 24, RING_DEGREE))


def _poly(rng, moduli, domain=PolyDomain.COEFFICIENT):
    rows = [rng.integers(0, q, RING_DEGREE, dtype=np.int64) for q in moduli]
    return RnsPolynomial(RING_DEGREE, moduli, np.stack(rows), domain)


class TestAutomorphism:
    def test_galois_element_is_power_of_five(self):
        assert galois_element_for_rotation(1, RING_DEGREE) == 5
        assert galois_element_for_rotation(2, RING_DEGREE) == 25 % (2 * RING_DEGREE)

    def test_coeff_automorphism_is_ring_homomorphism(self, rng):
        """phi(a*b) == phi(a)*phi(b) for the negacyclic product."""
        from repro.ntt import negacyclic_multiply

        q = generate_ntt_prime(24, RING_DEGREE)
        engine = create_engine("four_step", RING_DEGREE, q)
        a = rng.integers(0, q, RING_DEGREE, dtype=np.int64)
        b = rng.integers(0, q, RING_DEGREE, dtype=np.int64)
        g = 5
        lhs = apply_automorphism_coeff(negacyclic_multiply(a, b, engine), g, q)
        rhs = negacyclic_multiply(apply_automorphism_coeff(a, g, q),
                                  apply_automorphism_coeff(b, g, q), engine)
        assert np.array_equal(lhs, rhs)

    def test_identity_element(self, rng):
        q = generate_ntt_prime(20, RING_DEGREE)
        a = rng.integers(0, q, RING_DEGREE, dtype=np.int64)
        assert np.array_equal(apply_automorphism_coeff(a, 1, q), a)

    def test_conjugation_is_involution(self, rng):
        q = generate_ntt_prime(20, RING_DEGREE)
        a = rng.integers(0, q, RING_DEGREE, dtype=np.int64)
        g = 2 * RING_DEGREE - 1
        assert np.array_equal(
            apply_automorphism_coeff(apply_automorphism_coeff(a, g, q), g, q), a)

    def test_even_galois_element_rejected(self, rng):
        q = generate_ntt_prime(20, RING_DEGREE)
        with pytest.raises(ValueError):
            apply_automorphism_coeff(np.zeros(RING_DEGREE, dtype=np.int64), 4, q)

    def test_eval_domain_commutes_with_ntt(self, rng):
        """NTT(phi(a)) == permute(NTT(a)) — the paper's NTT-domain FrobeniusMap."""
        q = generate_ntt_prime(24, RING_DEGREE)
        engine = create_engine("reference", RING_DEGREE, q)
        a = rng.integers(0, q, RING_DEGREE, dtype=np.int64)
        g = 5
        lhs = engine.forward(apply_automorphism_coeff(a, g, q))
        rhs = apply_automorphism_eval(engine.forward(a), g)
        assert np.array_equal(lhs, rhs)

    def test_evaluation_permutation_is_bijection(self):
        perm = evaluation_permutation(RING_DEGREE, 5)
        assert sorted(perm.tolist()) == list(range(RING_DEGREE))


class TestKernelOps:
    def test_ntt_intt_roundtrip_and_counts(self, kernel_context, moduli, rng):
        poly = _poly(rng, moduli)
        transformed = ntt(kernel_context, poly)
        assert transformed.domain == PolyDomain.EVALUATION
        back = intt(kernel_context, transformed)
        assert back == poly
        assert kernel_context.counter.total(KernelName.NTT) == 1
        assert kernel_context.counter.total(KernelName.INTT) == 1
        assert kernel_context.counter.limb_vectors[KernelName.NTT] == len(moduli)

    def test_ntt_of_evaluation_domain_is_noop(self, kernel_context, moduli, rng):
        poly = _poly(rng, moduli, PolyDomain.EVALUATION)
        assert ntt(kernel_context, poly) == poly
        assert kernel_context.counter.total(KernelName.NTT) == 0

    def test_elementwise_kernels(self, kernel_context, moduli, rng):
        a = _poly(rng, moduli)
        b = _poly(rng, moduli)
        assert element_subtract(kernel_context, element_add(kernel_context, a, b), b) == a
        assert kernel_context.counter.total(KernelName.ELE_ADD) == 1
        assert kernel_context.counter.total(KernelName.ELE_SUB) == 1

    def test_hadamard_kernel(self, kernel_context, moduli, rng):
        a = _poly(rng, moduli, PolyDomain.EVALUATION)
        b = _poly(rng, moduli, PolyDomain.EVALUATION)
        product = hadamard_multiply(kernel_context, a, b)
        assert product == a.hadamard(b)
        assert kernel_context.counter.total(KernelName.HADAMARD) == 1

    def test_frobenius_and_conjugate_record(self, kernel_context, moduli, rng):
        poly = _poly(rng, moduli)
        frobenius_map(kernel_context, poly, 5)
        conjugate(kernel_context, poly)
        assert kernel_context.counter.total(KernelName.FROBENIUS) == 1
        assert kernel_context.counter.total(KernelName.CONJUGATE) == 1

    def test_basis_convert_records(self, kernel_context, moduli, rng):
        target = tuple(generate_ntt_primes(3, 26, RING_DEGREE)[-1:])
        poly = RnsPolynomial.from_integers(list(range(RING_DEGREE)), moduli)
        converted = basis_convert(kernel_context, poly, target)
        assert converted.moduli == target
        assert kernel_context.counter.total(KernelName.CONV) == 1


class TestCounters:
    def test_counter_snapshot_and_merge(self):
        counter = KernelCounter()
        counter.record(KernelName.NTT, 4)
        counter.record(KernelName.NTT, 2)
        other = KernelCounter()
        other.record(KernelName.ELE_ADD)
        counter.merge(other)
        snapshot = counter.snapshot()
        assert snapshot[KernelName.NTT] == 2
        assert snapshot[KernelName.ELE_ADD] == 1
        assert counter.limb_vectors[KernelName.NTT] == 6
        counter.reset()
        assert counter.snapshot() == {}

    def test_capture_context(self, kernel_context, moduli, rng):
        poly = _poly(rng, moduli)
        with kernel_context.capture() as captured:
            ntt(kernel_context, poly)
        assert captured.total(KernelName.NTT) == 1
        # The main counter also accumulates the captured work.
        assert kernel_context.counter.total(KernelName.NTT) == 1

    def test_all_kernel_names_listed(self):
        assert len(KernelName.ALL) == 8
