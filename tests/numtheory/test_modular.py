"""Tests for scalar/vector modular arithmetic and software reducers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory import (
    BarrettReducer,
    MontgomeryReducer,
    mat_mod_add,
    mat_mod_mul,
    mat_mod_neg,
    mat_mod_reduce,
    mat_mod_scalar_mul,
    mat_mod_sub,
    mod_add,
    mod_inverse,
    mod_mul,
    mod_neg,
    mod_pow,
    mod_sub,
    moduli_column,
    vec_mod_add,
    vec_mod_mul,
    vec_mod_neg,
    vec_mod_sub,
)

PRIME = 998244353  # a classic NTT prime
SMALL_PRIME = 7681


class TestScalarOps:
    def test_mod_add_wraps(self):
        assert mod_add(PRIME - 1, 5, PRIME) == 4

    def test_mod_add_no_wrap(self):
        assert mod_add(3, 4, PRIME) == 7

    def test_mod_sub_wraps(self):
        assert mod_sub(2, 5, PRIME) == PRIME - 3

    def test_mod_neg_zero(self):
        assert mod_neg(0, PRIME) == 0

    def test_mod_neg_nonzero(self):
        assert mod_neg(10, PRIME) == PRIME - 10

    def test_mod_mul_matches_python(self):
        assert mod_mul(123456789, 987654321, PRIME) == (123456789 * 987654321) % PRIME

    def test_mod_pow_positive(self):
        assert mod_pow(3, 20, PRIME) == pow(3, 20, PRIME)

    def test_mod_pow_negative_exponent(self):
        value = mod_pow(3, -1, PRIME)
        assert (value * 3) % PRIME == 1

    def test_mod_inverse_roundtrip(self):
        inverse = mod_inverse(123456, PRIME)
        assert (inverse * 123456) % PRIME == 1

    def test_mod_inverse_of_zero_raises(self):
        with pytest.raises(ValueError):
            mod_inverse(0, PRIME)

    def test_mod_inverse_non_coprime_raises(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 9)


class TestBarrett:
    def test_reduce_matches_modulo(self):
        reducer = BarrettReducer(SMALL_PRIME)
        for value in (0, 1, SMALL_PRIME - 1, SMALL_PRIME, SMALL_PRIME ** 2 - 1):
            assert reducer.reduce(value) == value % SMALL_PRIME

    def test_mul_matches_modulo(self):
        reducer = BarrettReducer(PRIME)
        assert reducer.mul(PRIME - 1, PRIME - 2) == (PRIME - 1) * (PRIME - 2) % PRIME

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            BarrettReducer(1)

    @given(st.integers(min_value=0, max_value=SMALL_PRIME ** 2 - 1))
    @settings(max_examples=200, deadline=None)
    def test_reduce_property(self, value):
        assert BarrettReducer(SMALL_PRIME).reduce(value) == value % SMALL_PRIME


class TestMontgomery:
    # Domain mapping is inlined: (a * r) % q into the Montgomery domain,
    # reduce() (which divides by R) back out.

    def test_roundtrip(self):
        reducer = MontgomeryReducer(PRIME)
        for value in (0, 1, 12345, PRIME - 1):
            assert reducer.reduce((value * reducer.r) % PRIME) == value

    def test_mul_matches_modulo(self):
        reducer = MontgomeryReducer(SMALL_PRIME)
        a, b = 1234, 5678 % SMALL_PRIME
        a_mont = (a * reducer.r) % SMALL_PRIME
        b_mont = (b * reducer.r) % SMALL_PRIME
        product = reducer.reduce(reducer.mul(a_mont, b_mont))
        assert product == (a * b) % SMALL_PRIME

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            MontgomeryReducer(1 << 10)

    @given(st.integers(min_value=0, max_value=SMALL_PRIME - 1),
           st.integers(min_value=0, max_value=SMALL_PRIME - 1))
    @settings(max_examples=100, deadline=None)
    def test_mul_property(self, a, b):
        reducer = MontgomeryReducer(SMALL_PRIME)
        a_mont = (a * reducer.r) % SMALL_PRIME
        b_mont = (b * reducer.r) % SMALL_PRIME
        got = reducer.reduce(reducer.mul(a_mont, b_mont))
        assert got == (a * b) % SMALL_PRIME


class TestVectorOps:
    def test_vec_add_matches_scalar(self, rng):
        a = rng.integers(0, PRIME, 128)
        b = rng.integers(0, PRIME, 128)
        assert np.array_equal(vec_mod_add(a, b, PRIME), (a + b) % PRIME)

    def test_vec_sub_matches_scalar(self, rng):
        a = rng.integers(0, PRIME, 128)
        b = rng.integers(0, PRIME, 128)
        assert np.array_equal(vec_mod_sub(a, b, PRIME), (a - b) % PRIME)

    def test_vec_neg(self, rng):
        a = rng.integers(0, PRIME, 64)
        assert np.array_equal(vec_mod_neg(a, PRIME), (-a) % PRIME)

    def test_vec_mul_no_overflow(self, rng):
        # Products of two ~30-bit residues must be exact in int64.
        q = (1 << 30) - 35  # a prime-sized modulus near 2^30
        a = rng.integers(0, q, 256)
        b = rng.integers(0, q, 256)
        expected = (a.astype(object) * b.astype(object)) % q
        assert np.array_equal(vec_mod_mul(a, b, q), np.asarray(expected, dtype=np.int64))

    def test_vec_mul_large_modulus_falls_back(self, rng):
        q = (1 << 40) + 15
        a = rng.integers(0, 1 << 35, 16)
        b = rng.integers(0, 1 << 35, 16)
        expected = (a.astype(object) * b.astype(object)) % q
        assert np.array_equal(vec_mod_mul(a, b, q), np.asarray(expected, dtype=np.int64))

    @given(st.lists(st.integers(min_value=0, max_value=SMALL_PRIME - 1),
                    min_size=1, max_size=32),
           st.lists(st.integers(min_value=0, max_value=SMALL_PRIME - 1),
                    min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_vec_ops_properties(self, a_list, b_list):
        size = min(len(a_list), len(b_list))
        a = np.asarray(a_list[:size], dtype=np.int64)
        b = np.asarray(b_list[:size], dtype=np.int64)
        assert np.array_equal(vec_mod_add(a, b, SMALL_PRIME), (a + b) % SMALL_PRIME)
        assert np.array_equal(vec_mod_sub(a, b, SMALL_PRIME), (a - b) % SMALL_PRIME)
        assert np.array_equal(vec_mod_mul(a, b, SMALL_PRIME), (a * b) % SMALL_PRIME)


class TestMatrixOps:
    """Matrix-modular helpers: whole (limbs, N) launches vs per-row vec ops."""

    MODULI = (7681, 12289, 40961)

    def _pair(self, rng):
        column = moduli_column(self.MODULI)
        a = rng.integers(0, column, (len(self.MODULI), 24), dtype=np.int64)
        b = rng.integers(0, column, (len(self.MODULI), 24), dtype=np.int64)
        return a, b

    def test_moduli_column_shape(self):
        column = moduli_column(self.MODULI)
        assert column.shape == (3, 1)
        assert moduli_column(column) is not None  # idempotent on 2-D input

    def test_mat_ops_match_vec_ops(self, rng):
        a, b = self._pair(rng)
        for mat_op, vec_op in [
            (mat_mod_add, vec_mod_add),
            (mat_mod_sub, vec_mod_sub),
            (mat_mod_mul, vec_mod_mul),
        ]:
            batched = mat_op(a, b, self.MODULI)
            for i, q in enumerate(self.MODULI):
                assert np.array_equal(batched[i], vec_op(a[i], b[i], q))

    def test_mat_neg_and_reduce(self, rng):
        a, _ = self._pair(rng)
        negated = mat_mod_neg(a, self.MODULI)
        for i, q in enumerate(self.MODULI):
            assert np.array_equal(negated[i], vec_mod_neg(a[i], q))
        unreduced = a * 3 - 5
        reduced = mat_mod_reduce(unreduced, self.MODULI)
        for i, q in enumerate(self.MODULI):
            assert np.array_equal(reduced[i], unreduced[i] % q)

    def test_mat_scalar_mul_single_and_per_limb(self, rng):
        a, _ = self._pair(rng)
        tripled = mat_mod_scalar_mul(a, 3, self.MODULI)
        for i, q in enumerate(self.MODULI):
            assert np.array_equal(tripled[i], (3 * a[i]) % q)
        per_limb = mat_mod_scalar_mul(a, [1, 2, -1], self.MODULI)
        assert np.array_equal(per_limb[0], a[0])
        assert np.array_equal(per_limb[1], (2 * a[1]) % self.MODULI[1])
        assert np.array_equal(per_limb[2], (-a[2]) % self.MODULI[2])

    def test_mat_scalar_mul_huge_scalar(self):
        a = np.ones((3, 4), dtype=np.int64)
        huge = 1 << 200
        scaled = mat_mod_scalar_mul(a, huge, self.MODULI)
        for i, q in enumerate(self.MODULI):
            assert np.all(scaled[i] == huge % q)
