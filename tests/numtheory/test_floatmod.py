"""Float64 Barrett reduction: bit-parity with ``%`` at the 2**53 edge.

The float-resident kernel chains stand on two claims proved here:

* the round-up reciprocal makes the canonical pass *exactly* ``x % q`` for
  every in-guard input — including the classes where the round-nearest
  reciprocal demonstrably fails (exact multiples of ``q``);
* the ``fits`` guard is the precise boundary: inputs just inside 2**53
  reduce exactly, and chains whose intermediates would cross it are
  rejected so callers fall back to int64.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.numtheory import generate_ntt_primes
from repro.numtheory.floatmod import (
    FLOAT_EXACT_LIMIT,
    BarrettChain,
    barrett_inverse,
    get_barrett_chain,
)

N = 4096  # ring degree constraining the NTT primes (q = 1 mod 2N)


def chain_for(bits: int, limbs: int = 6) -> BarrettChain:
    return get_barrett_chain(generate_ntt_primes(limbs, bits, N))


def reference(values: np.ndarray, chain: BarrettChain) -> np.ndarray:
    column = chain.moduli_array.reshape((-1,) + (1,) * (values.ndim - 1))
    return np.asarray(values, dtype=np.int64) % column


class TestBarrettInverse:
    def test_round_up_property(self):
        # The defining property: the smallest float64 >= 1/q, i.e. the
        # inverse is >= 1/q but one ulp down is < 1/q.
        for q in generate_ntt_primes(16, 27, N):
            inv = barrett_inverse(q)
            assert Fraction(inv) * q >= 1
            below = float(np.nextafter(inv, -np.inf))
            assert Fraction(below) * q < 1

    def test_rejects_degenerate_modulus(self):
        with pytest.raises(ValueError):
            barrett_inverse(1)
        with pytest.raises(ValueError):
            barrett_inverse(0)

    def test_exact_power_of_two_not_bumped(self):
        # 1/2**k is exactly representable; the Fraction check must not
        # bump an already-exact reciprocal (2**k is not prime, but the
        # reducer itself is modulus-agnostic).
        assert barrett_inverse(1 << 20) == 1.0 / (1 << 20)


class TestCanonicalParity:
    @pytest.mark.parametrize("bits", [20, 27, 30])
    def test_randomized_quotients(self, bits, rng):
        chain = chain_for(bits)
        # Largest safe magnitude per the guard, spread across quotients.
        limit = FLOAT_EXACT_LIMIT - chain.qmax - 1
        values = rng.integers(0, limit, size=(chain.limb_count, 512))
        assert chain.fits(int(values.max()))
        got = chain.canonical_reduce(values.astype(np.float64))
        assert np.array_equal(got.astype(np.int64), reference(values, chain))
        assert np.array_equal(got, got.astype(np.int64).astype(np.float64))

    @pytest.mark.parametrize("bits", [20, 27, 30])
    def test_worst_case_operand_classes(self, bits):
        # The inputs where a float reducer historically breaks: exact
        # multiples of q (the round-nearest reciprocal failure class),
        # multiples +- 1, and worst-case (q-1)**2-shaped products.
        chain = chain_for(bits)
        columns = []
        for q in chain.moduli:
            k_max = (FLOAT_EXACT_LIMIT - chain.qmax - 1) // q
            # (q-1)**2 only fits the guard for small primes; larger chains
            # exercise the same product shape at the largest in-guard
            # quotient instead.
            product = (q - 1) * (q - 1)
            if not chain.fits(product):
                product = (k_max - 1) * q + (q - 1)
            picks = [0, 1, q - 1, q, q + 1, product,
                     k_max * q - 1, k_max * q, (k_max - 1) * q + 1]
            columns.append(picks)
        values = np.asarray(columns, dtype=np.int64)
        assert chain.fits(int(values.max()))
        got = chain.canonical_reduce(values.astype(np.float64))
        assert np.array_equal(got.astype(np.int64), reference(values, chain))

    @pytest.mark.parametrize("bits", [20, 27])
    def test_negative_lazy_window(self, bits, rng):
        # Lazy residues from a subtraction-shaped step are negative; the
        # canonical pass must map (-q, 0) onto [0, q) exactly.
        chain = chain_for(bits)
        q_col = chain.moduli_array[:, None]
        residues = rng.integers(0, q_col, size=(chain.limb_count, 256))
        negatives = residues - q_col  # in (-q, 0]
        got = chain.canonical_reduce(negatives.astype(np.float64))
        assert np.array_equal(got.astype(np.int64), reference(negatives, chain))

    def test_lazy_reduce_window_and_congruence(self, rng):
        chain = chain_for(27)
        q_col = chain.moduli_array[:, None]
        values = rng.integers(0, (FLOAT_EXACT_LIMIT - chain.qmax) // 2,
                              size=(chain.limb_count, 256))
        lazy = chain.lazy_reduce(values.astype(np.float64))
        assert np.all(lazy > -q_col)
        assert np.all(lazy < 2 * q_col)
        assert np.array_equal(lazy.astype(np.int64) % q_col,
                              reference(values, chain))

    def test_out_and_scratch_buffers(self, rng):
        chain = chain_for(20)
        values = rng.integers(0, chain.qmax ** 2,
                              size=(chain.limb_count, 64)).astype(np.float64)
        expected = chain.canonical_reduce(values.copy())
        out = np.empty_like(values)
        scratch = np.empty_like(values)
        got = chain.canonical_reduce(values, out=out, scratch=scratch)
        assert got is out
        assert np.array_equal(got, expected)
        # out aliasing values is part of the contract.
        aliased = chain.canonical_reduce(values, out=values, scratch=scratch)
        assert aliased is values
        assert np.array_equal(aliased, expected)

    def test_limb_axis_placement(self, rng):
        # The batched funnels put the limb axis at axis=1 of (B, L, ...)
        # stacks; both placements must agree.
        chain = chain_for(20, limbs=4)
        values = rng.integers(0, chain.qmax ** 2, size=(4, 3, 8))
        by_axis0 = chain.canonical_reduce(values.astype(np.float64))
        moved = np.moveaxis(values, 0, 1).astype(np.float64)
        by_axis1 = chain.canonical_reduce(moved, axis=1)
        assert np.array_equal(np.moveaxis(by_axis1, 1, 0), by_axis0)


class TestSplitProduct:
    """Hi/lo split products: exact ``(a * b) mod q`` past the single-pass cap.

    The split identity ``(a*b) mod q = (a_hi * [(2**s * b) mod q] + a_lo * b)
    mod q`` bounds every intermediate by roughly ``q**1.5``, extending the
    float-exact product range from ~26-bit to ~36-bit moduli — covering the
    30-bit production chains that previously fell back to int64.
    """

    def test_split_shift_is_half_the_residue_width(self):
        chain = chain_for(30)
        width = (chain.qmax - 1).bit_length()
        assert chain.split_shift == (width + 1) // 2

    def test_fits_product_boundaries(self):
        # 20-bit: the single float64 pass already fits.
        twenty = chain_for(20)
        assert twenty.fits((twenty.qmax - 1) ** 2)
        assert twenty.fits_product()
        # 30-bit: single pass overflows 2**53; the split restores exactness.
        thirty = chain_for(30)
        assert not thirty.fits((thirty.qmax - 1) ** 2)
        assert thirty.fits_product()
        # ~q**1.5 crosses the mantissa around 37-bit moduli: split rejected.
        oversized = get_barrett_chain([(1 << 37) + 9])
        assert not oversized.fits_product()

    @pytest.mark.parametrize("bits", [20, 27, 30])
    def test_product_parity_randomized(self, bits, rng):
        # 20-bit exercises the single-pass branch, 27/30 the split branch.
        chain = chain_for(bits)
        q_col = chain.moduli_array[:, None]
        a = rng.integers(0, q_col, size=(chain.limb_count, 512))
        b = rng.integers(0, q_col, size=(chain.limb_count, 512))
        got = chain.product_reduce(a.astype(np.float64), b.astype(np.float64))
        assert np.array_equal(got.astype(np.int64), (a * b) % q_col)

    @pytest.mark.parametrize("bits", [27, 30])
    def test_product_worst_case_operand_classes(self, bits):
        # (q-1)**2 is the largest split-path product; the multiples-of-q
        # shapes stress the round-up reciprocal through both canonical
        # passes of the recombination.
        chain = chain_for(bits)
        a = np.asarray([[0, 1, q - 1, q - 1, q // 2, q - 2, 1]
                        for q in chain.moduli], dtype=np.int64)
        b = np.asarray([[q - 1, q - 1, q - 1, 1, 2, q - 2, 0]
                        for q in chain.moduli], dtype=np.int64)
        got = chain.product_reduce(a.astype(np.float64), b.astype(np.float64))
        assert np.array_equal(got.astype(np.int64),
                              (a * b) % chain.moduli_array[:, None])

    def test_product_parity_at_33_bits(self, rng):
        # Past int64-funnel territory (a single residue product overflows
        # int64) but still inside the split guard: the identity stays
        # exact, pinned against an object-arithmetic reference.
        chain = get_barrett_chain(generate_ntt_primes(2, 33, 64))
        assert not chain.fits((chain.qmax - 1) ** 2)
        assert chain.fits_product()
        q_col = chain.moduli_array[:, None]
        a = rng.integers(0, q_col, size=(2, 128))
        b = rng.integers(0, q_col, size=(2, 128))
        want = np.asarray((a.astype(object) * b.astype(object)) % q_col,
                          dtype=np.int64)
        got = chain.product_reduce(a.astype(np.float64), b.astype(np.float64))
        assert np.array_equal(got.astype(np.int64), want)

    def test_product_limb_axis_one(self, rng):
        # The batched funnels reduce (B, L, N) stacks along axis=1.
        chain = chain_for(30, limbs=4)
        q_col = chain.moduli_array[None, :, None]
        a = rng.integers(0, q_col, size=(3, 4, 32))
        b = rng.integers(0, q_col, size=(3, 4, 32))
        got = chain.product_reduce(a.astype(np.float64),
                                   b.astype(np.float64), axis=1)
        assert np.array_equal(got.astype(np.int64), (a * b) % q_col)


class TestGuard:
    def test_fits_is_the_exact_boundary(self):
        chain = chain_for(27)
        assert chain.fits(FLOAT_EXACT_LIMIT - chain.qmax - 1)
        assert not chain.fits(FLOAT_EXACT_LIMIT - chain.qmax)
        assert not chain.fits(FLOAT_EXACT_LIMIT)

    def test_boundary_inputs_reduce_exactly(self):
        # The largest in-guard magnitudes, right at the 2**53 edge.
        chain = chain_for(27)
        edge = FLOAT_EXACT_LIMIT - chain.qmax - 1
        values = np.asarray([[edge, edge - 1, edge - chain.qmax]
                             for _ in chain.moduli], dtype=np.int64)
        assert chain.fits(int(values.max()))
        got = chain.canonical_reduce(values.astype(np.float64))
        assert np.array_equal(got.astype(np.int64), reference(values, chain))

    def test_33_bit_chain_rejected_for_products(self):
        # (q-1)**2 for a 33-bit prime is ~2**66: no element-wise product
        # chain fits, so every caller must take the int64/object path.
        chain = get_barrett_chain([(1 << 33) + 89 * (1 << 13) + 1])
        assert not chain.fits((chain.qmax - 1) ** 2)


class TestChainCache:
    def test_shared_per_moduli_tuple(self):
        primes = generate_ntt_primes(4, 20, N)
        assert get_barrett_chain(primes) is get_barrett_chain(
            np.asarray(primes, dtype=np.int64))

    def test_distinct_per_chain(self):
        a = get_barrett_chain(generate_ntt_primes(4, 20, N))
        b = get_barrett_chain(generate_ntt_primes(5, 20, N))
        assert a is not b
        assert b.moduli[:4] == a.moduli

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            BarrettChain([])
