"""Tests for prime generation, roots of unity, CRT and bit utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory import (
    CrtContext,
    bit_reverse,
    bit_reverse_permutation,
    bit_reverse_vector,
    factorize,
    find_negacyclic_root,
    find_primitive_root,
    find_root_of_unity,
    fuse_segments,
    generate_ntt_prime,
    generate_ntt_primes,
    ilog2,
    is_power_of_two,
    is_prime,
    mod_pow,
    next_prime,
    previous_prime,
    root_powers,
    segment_u32,
)


class TestPrimes:
    @pytest.mark.parametrize("value,expected", [
        (0, False), (1, False), (2, True), (3, True), (4, False),
        (97, True), (561, False), (7919, True), (998244353, True),
        ((1 << 31) - 1, True),
    ])
    def test_is_prime(self, value, expected):
        assert is_prime(value) is expected

    def test_next_prime(self):
        assert next_prime(13) == 17
        assert next_prime(1) == 2

    def test_previous_prime(self):
        assert previous_prime(20) == 19
        with pytest.raises(ValueError):
            previous_prime(2)

    @pytest.mark.parametrize("ring_degree", [64, 256, 1024])
    def test_generate_ntt_prime_congruence(self, ring_degree):
        prime = generate_ntt_prime(28, ring_degree)
        assert is_prime(prime)
        assert (prime - 1) % (2 * ring_degree) == 0

    def test_generate_ntt_primes_distinct(self):
        primes = generate_ntt_primes(5, 28, 128)
        assert len(set(primes)) == 5
        for prime in primes:
            assert (prime - 1) % 256 == 0

    def test_generate_avoids_given_primes(self):
        first = generate_ntt_prime(20, 64)
        second = generate_ntt_prime(20, 64, avoid={first})
        assert first != second


class TestRoots:
    def test_factorize(self):
        assert factorize(360) == {2: 3, 3: 2, 5: 1}

    def test_primitive_root_order(self):
        q = 7681
        g = find_primitive_root(q)
        assert mod_pow(g, q - 1, q) == 1
        assert mod_pow(g, (q - 1) // 2, q) != 1

    def test_root_of_unity_order(self):
        q = generate_ntt_prime(20, 64)
        root = find_root_of_unity(128, q)
        assert mod_pow(root, 128, q) == 1
        assert mod_pow(root, 64, q) != 1

    def test_negacyclic_root_squares_to_minus_one_at_degree(self):
        q = generate_ntt_prime(20, 64)
        psi = find_negacyclic_root(64, q)
        assert mod_pow(psi, 64, q) == q - 1

    def test_root_powers_length_and_recursion(self):
        q = 97
        powers = root_powers(5, 10, q)
        assert len(powers) == 10
        for i in range(1, 10):
            assert powers[i] == powers[i - 1] * 5 % q

    def test_root_of_unity_missing_order_raises(self):
        with pytest.raises(ValueError):
            find_root_of_unity(64, 97)  # 64 does not divide 96


class TestCrt:
    def test_roundtrip(self):
        crt = CrtContext([97, 193, 257])
        value = 123456
        assert crt.compose(crt.decompose(value)) == value

    def test_centered_roundtrip(self):
        crt = CrtContext([97, 193])
        assert crt.compose_centered(crt.decompose(-1234 % (97 * 193))) == -1234

    def test_array_roundtrip(self):
        crt = CrtContext([97, 193, 257])
        values = [0, 1, -5 % crt.modulus_product, 123456]
        matrix = crt.decompose_array(values)
        assert matrix.shape == (3, 4)
        composed = crt.compose_array(matrix, centered=False)
        assert composed == [v % crt.modulus_product for v in values]

    def test_duplicate_moduli_rejected(self):
        with pytest.raises(ValueError):
            CrtContext([97, 97])

    @given(st.integers(min_value=0, max_value=97 * 193 * 257 - 1))
    @settings(max_examples=100, deadline=None)
    def test_crt_bijection_property(self, value):
        crt = CrtContext([97, 193, 257])
        assert crt.compose(crt.decompose(value)) == value


class TestBitOps:
    def test_is_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(1024)
        assert not is_power_of_two(0) and not is_power_of_two(36)

    def test_ilog2(self):
        assert ilog2(1) == 0 and ilog2(4096) == 12
        with pytest.raises(ValueError):
            ilog2(12)

    def test_bit_reverse_scalar(self):
        assert bit_reverse(0b0011, 4) == 0b1100
        assert bit_reverse(1, 3) == 4

    def test_bit_reverse_permutation_is_involution(self):
        perm = bit_reverse_permutation(64)
        assert np.array_equal(perm[perm], np.arange(64))

    def test_bit_reverse_vector(self, rng):
        data = rng.integers(0, 100, 32)
        assert np.array_equal(bit_reverse_vector(bit_reverse_vector(data)), data)

    def test_segment_fuse_roundtrip(self, rng):
        matrix = rng.integers(0, 1 << 32, (8, 8), dtype=np.uint64)
        segments = segment_u32(matrix)
        assert segments.shape == (4, 8, 8)
        assert np.array_equal(fuse_segments(segments), matrix)

    def test_segment_rejects_oversized(self):
        with pytest.raises(ValueError):
            segment_u32(np.asarray([[1 << 33]], dtype=np.uint64))

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=200, deadline=None)
    def test_segment_fuse_property(self, value):
        matrix = np.asarray([[value]], dtype=np.uint64)
        assert int(fuse_segments(segment_u32(matrix))[0, 0]) == value
