"""Parity suite for the limb-batched execution paths.

The batched paths (``forward_limbs``/``inverse_limbs`` on every engine, the
vectorised :class:`RnsPolynomial` arithmetic and the kernel layer on top)
must be bit-identical to the per-limb reference composition, and must not
change what the kernel counters record.
"""

import numpy as np
import pytest

from repro.kernels import (
    KernelContext,
    KernelName,
    conjugate,
    element_add,
    element_subtract,
    frobenius_map,
    hadamard_multiply,
    intt,
    ntt,
)
from repro.ntt import NttPlanner, available_engines, create_engine
from repro.numtheory import generate_ntt_primes
from repro.rns import PolyDomain, RnsPolynomial

ENGINES = list(available_engines())
#: (ring_degree, limb_count) grid exercised by the parity tests; the
#: multi-limb rows are what certify the batched paths.
SHAPES = [(16, 1), (32, 3), (64, 5)]


def _residue_matrix(rng, primes, ring_degree):
    return np.stack([rng.integers(0, q, ring_degree, dtype=np.int64) for q in primes])


class TestEngineLimbParity:
    @pytest.mark.parametrize("engine_name", ENGINES)
    @pytest.mark.parametrize("ring_degree,limbs", SHAPES)
    def test_forward_limbs_matches_per_limb(self, engine_name, ring_degree, limbs, rng):
        primes = generate_ntt_primes(limbs, 24, ring_degree)
        engine = create_engine(engine_name, ring_degree, primes[0])
        residues = _residue_matrix(rng, primes, ring_degree)
        batched = engine.forward_limbs(residues, primes)
        for i, q in enumerate(primes):
            expected = create_engine(engine_name, ring_degree, q).forward(residues[i])
            assert np.array_equal(batched[i], expected)

    @pytest.mark.parametrize("engine_name", ENGINES)
    @pytest.mark.parametrize("ring_degree,limbs", SHAPES)
    def test_inverse_limbs_matches_per_limb(self, engine_name, ring_degree, limbs, rng):
        primes = generate_ntt_primes(limbs, 24, ring_degree)
        engine = create_engine(engine_name, ring_degree, primes[0])
        values = _residue_matrix(rng, primes, ring_degree)
        batched = engine.inverse_limbs(values, primes)
        for i, q in enumerate(primes):
            expected = create_engine(engine_name, ring_degree, q).inverse(values[i])
            assert np.array_equal(batched[i], expected)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_roundtrip(self, engine_name, rng):
        ring_degree, limbs = 32, 4
        primes = generate_ntt_primes(limbs, 24, ring_degree)
        engine = create_engine(engine_name, ring_degree, primes[0])
        residues = _residue_matrix(rng, primes, ring_degree)
        forward = engine.forward_limbs(residues, primes)
        assert np.array_equal(engine.inverse_limbs(forward, primes), residues)

    def test_unreduced_input_is_reduced(self, rng):
        ring_degree = 16
        primes = generate_ntt_primes(2, 24, ring_degree)
        engine = create_engine("four_step", ring_degree, primes[0])
        residues = np.stack([
            rng.integers(-q, q, ring_degree, dtype=np.int64) for q in primes
        ])
        reduced = residues % np.asarray(primes, dtype=np.int64)[:, None]
        assert np.array_equal(engine.forward_limbs(residues, primes),
                              engine.forward_limbs(reduced, primes))

    def test_shape_mismatch_rejected(self):
        ring_degree = 16
        primes = generate_ntt_primes(2, 24, ring_degree)
        engine = create_engine("four_step", ring_degree, primes[0])
        with pytest.raises(ValueError):
            engine.forward_limbs(np.zeros((2, ring_degree - 1), dtype=np.int64), primes)
        with pytest.raises(ValueError):
            engine.forward_limbs(np.zeros((3, ring_degree), dtype=np.int64), primes)

    def test_oversized_moduli_take_exact_path(self, rng):
        """Moduli >= 2**31 must not silently wrap the int64 accumulator."""
        from repro.ntt.gemm_utils import modular_matmul_limbs

        q = (1 << 33) + 89
        moduli = [q, q - 100]
        a = rng.integers(0, q, (2, 4, 6)).astype(np.int64)
        b = rng.integers(0, q, (2, 6, 3)).astype(np.int64)
        got = modular_matmul_limbs(a, b, moduli)
        expected = np.stack([
            np.asarray((a[i].astype(object) @ b[i].astype(object)) % m,
                       dtype=np.int64)
            for i, m in enumerate(moduli)
        ])
        assert np.array_equal(got, expected)

    def test_zero_polynomial(self):
        """All-zero input stays zero (exercises the TCU zero-segment guard)."""
        ring_degree = 16
        primes = generate_ntt_primes(2, 24, ring_degree)
        for engine_name in ("four_step", "tensorcore"):
            engine = create_engine(engine_name, ring_degree, primes[0])
            zeros = np.zeros((2, ring_degree), dtype=np.int64)
            assert np.array_equal(engine.forward_limbs(zeros, primes), zeros)


class TestPlannerLimbBatching:
    def test_whole_polynomial_is_one_engine_call(self, monkeypatch, rng):
        """to_evaluation resolves to exactly one engine-level batch call."""
        ring_degree, limbs = 32, 4
        primes = generate_ntt_primes(limbs, 24, ring_degree)
        planner = NttPlanner("four_step")
        calls = []
        engine = planner.engine_for(ring_degree, primes[0])
        original = type(engine).forward_limbs

        def counting(self, residues, moduli):
            calls.append(len(tuple(moduli)))
            return original(self, residues, moduli)

        monkeypatch.setattr(type(engine), "forward_limbs", counting)
        poly = RnsPolynomial(ring_degree, primes,
                             _residue_matrix(rng, primes, ring_degree))
        poly.to_evaluation(planner)
        assert calls == [limbs]

    def test_planner_roundtrip(self, rng):
        ring_degree, limbs = 32, 3
        primes = generate_ntt_primes(limbs, 24, ring_degree)
        planner = NttPlanner("matrix")
        residues = _residue_matrix(rng, primes, ring_degree)
        values = planner.forward_limbs(ring_degree, primes, residues)
        assert np.array_equal(planner.inverse_limbs(ring_degree, primes, values),
                              residues)

    def test_rns_polynomial_domain_conversion_parity(self, rng):
        """Poly-level conversion equals per-limb engine composition."""
        ring_degree, limbs = 32, 3
        primes = generate_ntt_primes(limbs, 24, ring_degree)
        planner = NttPlanner("four_step")
        poly = RnsPolynomial(ring_degree, primes,
                             _residue_matrix(rng, primes, ring_degree))
        evaluated = poly.to_evaluation(planner)
        per_limb = np.stack([
            planner.engine_for(ring_degree, q).forward(poly.residues[i])
            for i, q in enumerate(primes)
        ])
        assert np.array_equal(evaluated.residues, per_limb)
        assert evaluated.to_coefficient(planner) == poly


class TestCounterRegression:
    """The batched paths must record exactly what the per-limb paths did."""

    RING_DEGREE = 32
    LIMBS = 4

    @pytest.fixture()
    def kernel_context(self):
        return KernelContext(NttPlanner("four_step"))

    @pytest.fixture()
    def primes(self):
        return tuple(generate_ntt_primes(self.LIMBS, 24, self.RING_DEGREE))

    def _poly(self, rng, primes, domain=PolyDomain.COEFFICIENT):
        residues = _residue_matrix(rng, primes, self.RING_DEGREE)
        return RnsPolynomial(self.RING_DEGREE, primes, residues, domain)

    def test_kernel_sequence_counts(self, kernel_context, primes, rng):
        a = self._poly(rng, primes)
        b = self._poly(rng, primes)
        a_eval = ntt(kernel_context, a)
        b_eval = ntt(kernel_context, b)
        product = hadamard_multiply(kernel_context, a_eval, b_eval)
        total = element_add(kernel_context, product, a_eval)
        element_subtract(kernel_context, total, b_eval)
        intt(kernel_context, product)
        frobenius_map(kernel_context, a, 5)
        conjugate(kernel_context, a)

        counter = kernel_context.counter
        assert counter.snapshot() == {
            KernelName.NTT: 2,
            KernelName.INTT: 1,
            KernelName.HADAMARD: 1,
            KernelName.ELE_ADD: 1,
            KernelName.ELE_SUB: 1,
            KernelName.FROBENIUS: 1,
            KernelName.CONJUGATE: 1,
        }
        for kernel in counter.invocations:
            assert counter.limb_vectors[kernel] == self.LIMBS * counter.invocations[kernel]

    def test_batched_arithmetic_matches_per_limb_reference(self, primes, rng):
        from repro.numtheory import vec_mod_add, vec_mod_mul, vec_mod_neg, vec_mod_sub

        a = self._poly(rng, primes)
        b = self._poly(rng, primes)
        for op, reference in [
            (a.add(b), vec_mod_add),
            (a.subtract(b), vec_mod_sub),
            (a.hadamard(b), vec_mod_mul),
        ]:
            for i, q in enumerate(primes):
                assert np.array_equal(op.residues[i],
                                      reference(a.residues[i], b.residues[i], q))
        negated = a.negate()
        for i, q in enumerate(primes):
            assert np.array_equal(negated.residues[i], vec_mod_neg(a.residues[i], q))
