"""Tests for all NTT engines: correctness, agreement, batching, planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory import generate_ntt_prime
from repro.ntt import (
    DEFAULT_ENGINE,
    ENGINE_REGISTRY,
    NttPlanner,
    available_engines,
    create_engine,
    get_twiddle_cache,
    negacyclic_multiply,
    schoolbook_negacyclic_multiply,
    split_degree,
)

ENGINES = list(available_engines())


def _random_poly(rng, n, q):
    return rng.integers(0, q, n, dtype=np.int64)


class TestTwiddleCache:
    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            get_twiddle_cache.__wrapped__(64, 97)  # 97 != 1 mod 128

    def test_split_degree_product(self):
        for n in (16, 64, 256, 1024, 4096):
            n1, n2 = split_degree(n)
            assert n1 * n2 == n
            assert n1 >= n2

    def test_split_degree_rejects_non_power(self):
        with pytest.raises(ValueError):
            split_degree(100)

    def test_cache_is_shared(self):
        q = generate_ntt_prime(20, 64)
        assert get_twiddle_cache(64, q) is get_twiddle_cache(64, q)

    def test_forward_matrix_shape_and_first_column(self):
        q = generate_ntt_prime(20, 16)
        cache = get_twiddle_cache(16, q)
        matrix = cache.forward_matrix()
        assert matrix.shape == (16, 16)
        # Column n=0 has exponent 2*0*k + 0 = 0 -> all ones.
        assert np.all(matrix[:, 0] == 1)


class TestEngineCorrectness:
    @pytest.mark.parametrize("engine_name", ENGINES)
    @pytest.mark.parametrize("ring_degree", [8, 32, 128])
    def test_roundtrip(self, engine_name, ring_degree, rng):
        q = generate_ntt_prime(24, ring_degree)
        engine = create_engine(engine_name, ring_degree, q)
        poly = _random_poly(rng, ring_degree, q)
        assert np.array_equal(engine.inverse(engine.forward(poly)), poly)

    @pytest.mark.parametrize("engine_name", [e for e in ENGINES if e != "reference"])
    @pytest.mark.parametrize("ring_degree", [16, 64])
    def test_matches_reference(self, engine_name, ring_degree, rng):
        q = generate_ntt_prime(26, ring_degree)
        reference = create_engine("reference", ring_degree, q)
        engine = create_engine(engine_name, ring_degree, q)
        poly = _random_poly(rng, ring_degree, q)
        assert np.array_equal(engine.forward(poly), reference.forward(poly))
        values = _random_poly(rng, ring_degree, q)
        assert np.array_equal(engine.inverse(values), reference.inverse(values))

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_forward_of_delta_is_psi_powers(self, engine_name):
        """NTT of X^0 = 1 is the all-ones vector (Eq. 4 with a = delta_0)."""
        ring_degree = 32
        q = generate_ntt_prime(24, ring_degree)
        engine = create_engine(engine_name, ring_degree, q)
        delta = np.zeros(ring_degree, dtype=np.int64)
        delta[0] = 1
        assert np.all(engine.forward(delta) == 1)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_linearity(self, engine_name, rng):
        ring_degree = 64
        q = generate_ntt_prime(24, ring_degree)
        engine = create_engine(engine_name, ring_degree, q)
        a = _random_poly(rng, ring_degree, q)
        b = _random_poly(rng, ring_degree, q)
        lhs = engine.forward((a + b) % q)
        rhs = (engine.forward(a) + engine.forward(b)) % q
        assert np.array_equal(lhs, rhs)

    def test_input_reduction(self, rng):
        """Engines accept unreduced/negative inputs and reduce them."""
        ring_degree = 16
        q = generate_ntt_prime(20, ring_degree)
        engine = create_engine("four_step", ring_degree, q)
        poly = rng.integers(-q, q, ring_degree, dtype=np.int64)
        assert np.array_equal(engine.forward(poly), engine.forward(poly % q))

    def test_wrong_length_rejected(self):
        q = generate_ntt_prime(20, 16)
        engine = create_engine("butterfly", 16, q)
        with pytest.raises(ValueError):
            engine.forward(np.zeros(15, dtype=np.int64))

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_fourstep_equals_reference_property(self, seed):
        ring_degree = 16
        q = generate_ntt_prime(20, ring_degree)
        rng = np.random.default_rng(seed)
        poly = rng.integers(0, q, ring_degree, dtype=np.int64)
        reference = create_engine("reference", ring_degree, q)
        four_step = create_engine("four_step", ring_degree, q)
        assert np.array_equal(four_step.forward(poly), reference.forward(poly))


class TestPolynomialMultiplication:
    @pytest.mark.parametrize("engine_name", [e for e in ENGINES if e != "reference"])
    def test_negacyclic_multiply_matches_schoolbook(self, engine_name, rng):
        ring_degree = 32
        q = generate_ntt_prime(24, ring_degree)
        engine = create_engine(engine_name, ring_degree, q)
        a = _random_poly(rng, ring_degree, q)
        b = _random_poly(rng, ring_degree, q)
        expected = schoolbook_negacyclic_multiply(a, b, ring_degree, q)
        assert np.array_equal(negacyclic_multiply(a, b, engine), expected)

    def test_x_to_n_wraps_negatively(self):
        """X^(N/2) * X^(N/2) = X^N = -1 in the negacyclic ring."""
        ring_degree = 16
        q = generate_ntt_prime(20, ring_degree)
        engine = create_engine("four_step", ring_degree, q)
        half = np.zeros(ring_degree, dtype=np.int64)
        half[ring_degree // 2] = 1
        product = negacyclic_multiply(half, half, engine)
        expected = np.zeros(ring_degree, dtype=np.int64)
        expected[0] = q - 1
        assert np.array_equal(product, expected)


class TestBatching:
    @pytest.mark.parametrize("engine_name", ["butterfly", "matrix", "four_step", "tensorcore"])
    def test_forward_batch_matches_loop(self, engine_name, rng):
        ring_degree = 32
        q = generate_ntt_prime(24, ring_degree)
        engine = create_engine(engine_name, ring_degree, q)
        rows = rng.integers(0, q, (5, ring_degree), dtype=np.int64)
        batched = engine.forward_batch(rows)
        for i in range(rows.shape[0]):
            assert np.array_equal(batched[i], engine.forward(rows[i]))

    def test_inverse_batch_roundtrip(self, rng):
        ring_degree = 32
        q = generate_ntt_prime(24, ring_degree)
        engine = create_engine("matrix", ring_degree, q)
        rows = rng.integers(0, q, (4, ring_degree), dtype=np.int64)
        assert np.array_equal(engine.inverse_batch(engine.forward_batch(rows)), rows)


class TestPlanner:
    def test_default_engine_registered(self):
        assert DEFAULT_ENGINE in ENGINE_REGISTRY

    def test_engine_cached(self):
        q = generate_ntt_prime(20, 32)
        planner = NttPlanner("four_step")
        assert planner.engine_for(32, q) is planner.engine_for(32, q)
        assert len(planner) == 1

    def test_override_engine_name(self):
        q = generate_ntt_prime(20, 32)
        planner = NttPlanner("four_step")
        engine = planner.engine_for(32, q, name="butterfly")
        assert engine.name == "butterfly"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            NttPlanner("does-not-exist")
        with pytest.raises(ValueError):
            create_engine("does-not-exist", 32, generate_ntt_prime(20, 32))

    def test_clear(self):
        q = generate_ntt_prime(20, 32)
        planner = NttPlanner()
        planner.engine_for(32, q)
        planner.clear()
        assert len(planner) == 0
