"""Twiddle-stack memory: level-prefix stacks are views of the full chain.

The paper precomputes one twiddle table per ``(N, q)``; the limb-batched
engines additionally stack those tables per prime *chain*.  CKKS levels are
prefixes of one chain, so every prefix stack (and its float64 image) must
be a zero-copy row slice of the deepest cached chain rather than a
per-prefix copy.
"""

import numpy as np
import pytest

from repro.ntt import NttPlanner, clear_twiddle_stacks, get_twiddle_stack
from repro.ntt.twiddle import TwiddleStack
from repro.numtheory import generate_ntt_primes

RING_DEGREE = 32
CHAIN = tuple(generate_ntt_primes(5, 24, RING_DEGREE))


@pytest.fixture(autouse=True)
def _fresh_stack_cache():
    clear_twiddle_stacks()
    yield
    clear_twiddle_stacks()


def test_prefix_stacks_are_views_of_the_full_chain():
    full = get_twiddle_stack(RING_DEGREE, CHAIN)
    full_w = full.forward_matrices()
    for depth in (1, 2, 4):
        prefix = get_twiddle_stack(RING_DEGREE, CHAIN[:depth])
        prefix_w = prefix.forward_matrices()
        assert np.array_equal(prefix_w, full_w[:depth])
        assert np.shares_memory(prefix_w, full_w)
        w1, w2, w3 = prefix.four_step_forward()
        f1, f2, f3 = full.four_step_forward()
        for view, owner in ((w1, f1), (w2, f2), (w3, f3)):
            assert np.array_equal(view, owner[:depth])
            assert np.shares_memory(view, owner)


def test_prefix_float_caches_share_parent_images():
    full = get_twiddle_stack(RING_DEGREE, CHAIN)
    prefix = get_twiddle_stack(RING_DEGREE, CHAIN[:3])
    full_cache = full.forward_matrices_cache()
    prefix_cache = prefix.forward_matrices_cache()
    assert np.shares_memory(prefix_cache.full(), full_cache.full())
    assert np.array_equal(prefix_cache.full(), full_cache.full()[:3])
    shift, hi, lo = prefix_cache.split()
    full_shift, full_hi, full_lo = full_cache.split()
    assert shift == full_shift
    assert np.shares_memory(hi, full_hi) and np.shares_memory(lo, full_lo)


def test_prefix_built_before_full_chain_is_standalone():
    prefix = get_twiddle_stack(RING_DEGREE, CHAIN[:2])
    early = prefix.forward_matrices()
    full = get_twiddle_stack(RING_DEGREE, CHAIN)
    assert not np.shares_memory(early, full.forward_matrices())
    assert np.array_equal(early, full.forward_matrices()[:2])


def test_mismatched_parent_rejected():
    full = get_twiddle_stack(RING_DEGREE, CHAIN)
    with pytest.raises(ValueError, match="prefix"):
        TwiddleStack(RING_DEGREE, (CHAIN[1],), parent=full)
    other_degree = generate_ntt_primes(2, 24, 64)
    with pytest.raises(ValueError, match="ring degree"):
        TwiddleStack(64, tuple(other_degree), parent=full)


def test_transform_parity_through_views(rng):
    """Rescale-shaped usage: transforms at every prefix depth stay exact."""
    planner = NttPlanner("four_step")
    for depth in (5, 3, 1):
        primes = CHAIN[:depth]
        residues = np.stack([
            rng.integers(0, q, RING_DEGREE, dtype=np.int64) for q in primes
        ])
        values = planner.forward_limbs(RING_DEGREE, primes, residues)
        per_limb = np.stack([
            planner.engine_for(RING_DEGREE, q).forward(residues[i])
            for i, q in enumerate(primes)
        ])
        assert np.array_equal(values, per_limb)
        assert np.array_equal(
            planner.inverse_limbs(RING_DEGREE, primes, values), residues)
