"""Tests for the GPU performance-model substrate (specs, stalls, occupancy, memory)."""

import pytest

from repro.gpu import (
    A100,
    BUILTIN_PROFILES,
    BUTTERFLY_NTT,
    DWT,
    FFT,
    GEMM_NTT,
    GTX1080TI,
    MemoryTrafficModel,
    OccupancyModel,
    PipelineStallModel,
    StallCategory,
    V100,
    get_gpu,
)


class TestGpuSpecs:
    def test_lookup(self):
        assert get_gpu("a100") is A100
        with pytest.raises(KeyError):
            get_gpu("H100")

    def test_a100_peaks(self):
        # 108 SMs x 64 cores x 1.41 GHz ~ 9.7 TOPS INT32.
        assert 9e12 < A100.peak_int32_ops_per_second < 11e12
        # Tensor-core INT8 peak ~ 624 TOPS.
        assert 5.5e14 < A100.peak_tensor_int8_macs_per_second < 7e14
        assert A100.vram_gb == 40.0

    def test_v100_slower_than_a100(self):
        assert V100.peak_tensor_int8_macs_per_second < A100.peak_tensor_int8_macs_per_second
        assert V100.memory_bandwidth_gbps < A100.memory_bandwidth_gbps

    def test_1080ti_has_no_tensor_cores(self):
        assert GTX1080TI.peak_tensor_int8_macs_per_second == 0.0


class TestPipelineStallModel:
    def test_ntt_stall_breakdown_matches_paper_shape(self):
        """Figure 4: ~43% total stalls for NTT, RAW the largest share."""
        model = PipelineStallModel()
        breakdown = model.stall_breakdown(BUTTERFLY_NTT)
        total = model.total_stall_fraction(BUTTERFLY_NTT)
        assert 30.0 < total < 55.0
        assert breakdown[StallCategory.RAW] == max(breakdown.values())
        assert 15.0 < breakdown[StallCategory.RAW] < 30.0

    def test_all_profiles_have_positive_stalls(self):
        model = PipelineStallModel()
        for profile in BUILTIN_PROFILES.values():
            assert model.total_stall_fraction(profile) > 0

    def test_ntt_stalls_exceed_fft_and_dwt_raw(self):
        """NTT's modulo pressure gives it the worst function-unit stalls."""
        model = PipelineStallModel()
        ntt = model.stall_breakdown(BUTTERFLY_NTT)
        fft = model.stall_breakdown(FFT)
        dwt = model.stall_breakdown(DWT)
        assert ntt[StallCategory.FUNCTION_UNIT] > fft[StallCategory.FUNCTION_UNIT]
        assert ntt[StallCategory.FUNCTION_UNIT] > dwt[StallCategory.FUNCTION_UNIT]

    def test_gemm_ntt_reduces_raw_and_latency(self):
        """Figure 10: the GEMM formulation removes most RAW and latency stalls."""
        model = PipelineStallModel()
        reduction = model.compare(BUTTERFLY_NTT, GEMM_NTT)
        assert reduction[StallCategory.RAW] > 10.0
        assert reduction[StallCategory.LONG_LATENCY] > 0.0

    def test_gemm_ntt_speedup_in_paper_range(self):
        """Paper: 32.3% overall NTT improvement despite +1.2% computation."""
        model = PipelineStallModel()
        speedup = model.speedup_estimate(BUTTERFLY_NTT, GEMM_NTT, compute_overhead=0.012)
        assert 1.15 < speedup < 1.75

    def test_results_cached(self):
        model = PipelineStallModel()
        model.stall_breakdown(BUTTERFLY_NTT)
        assert BUTTERFLY_NTT.name in model.results_cache


class TestOccupancyModel:
    def test_unbatched_occupancy_is_low(self):
        """Figure 5: even the best thread count stays below ~15% occupancy."""
        model = OccupancyModel(A100)
        for threads in (8192, 16384, 32768):
            result = model.occupancy_for_threads(threads, work_elements=1 << 16)
            assert result.occupancy_percent < 20.0

    def test_occupancy_rises_then_time_worsens_at_32k(self):
        """Figure 5 shape: 16K threads beat 8K, 32K hurts memory efficiency."""
        model = OccupancyModel(A100)
        t8 = model.occupancy_for_threads(8192, work_elements=1 << 17)
        t16 = model.occupancy_for_threads(16384, work_elements=1 << 17)
        t32 = model.occupancy_for_threads(32768, work_elements=1 << 17)
        assert t16.occupancy_percent > t8.occupancy_percent
        assert t16.normalized_time < t8.normalized_time
        assert t32.normalized_time > t16.normalized_time

    def test_batched_occupancy_matches_table_ix(self):
        """Table IX: batched operations exceed 85% occupancy, HMULT/HROTATE highest."""
        model = OccupancyModel(A100)
        table = model.table_ix(batch_size=128, limbs=45, ring_degree=1 << 16)
        assert all(value > 80.0 for value in table.values())
        assert table["HMULT"] >= table["HADD"]
        assert table["HROTATE"] >= table["HADD"]

    def test_tiny_batch_has_lower_occupancy(self):
        model = OccupancyModel(A100)
        small = model.occupancy_for_batch(1, 2, 1 << 10)
        large = model.occupancy_for_batch(128, 45, 1 << 16)
        assert small < large


class TestMemoryModel:
    def test_efficiency_monotone_in_run_length(self):
        model = MemoryTrafficModel(A100)
        assert model.efficiency_for_run_length(128) < model.efficiency_for_run_length(1 << 12)
        assert model.efficiency_for_run_length(1 << 12) <= model.efficiency_for_run_length(1 << 22)

    def test_layout_speedup_grows_with_batch(self):
        """Figure 9: the (L,B,N) layout pays off more for larger batches."""
        model = MemoryTrafficModel(A100)
        assert model.layout_speedup(128, 1 << 16) >= model.layout_speedup(8, 1 << 16) >= 1.0

    def test_transfer_time_positive(self):
        model = MemoryTrafficModel(A100)
        assert model.transfer_time(1 << 30, 1 << 20) > 0
        assert model.transfer_time(0, 1 << 20) == 0.0

    def test_layout_run_lengths(self):
        model = MemoryTrafficModel(A100)
        assert model.layout_run_length("(L,B,N)", 128, 1 << 16) == \
            128 * model.layout_run_length("(B,L,N)", 128, 1 << 16)
        with pytest.raises(ValueError):
            model.layout_run_length("bogus", 2, 64)
