"""Tests for the functional Tensor Core Unit simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt import TensorCoreNtt, create_engine
from repro.numtheory import generate_ntt_prime
from repro.tcu import (
    StreamScheduler,
    StreamTask,
    TcuOverflowError,
    TensorCoreGemm,
    active_limb_count,
    fuse_partial_products,
    fuse_partial_products_exact,
    limb_weight,
    segment_matrix,
)


class TestSegmentation:
    def test_reconstruct_roundtrip(self, rng):
        matrix = rng.integers(0, 1 << 32, (6, 5), dtype=np.uint64)
        segmented = segment_matrix(matrix)
        assert np.array_equal(segmented.reconstruct(), matrix)

    def test_limb_values_are_bytes(self, rng):
        matrix = rng.integers(0, 1 << 32, (4, 4), dtype=np.uint64)
        segmented = segment_matrix(matrix)
        assert segmented.limbs.dtype == np.uint8

    def test_nonzero_limbs_for_small_values(self):
        segmented = segment_matrix(np.asarray([[5, 200], [17, 0]]))
        assert segmented.nonzero_limbs() == [0]

    def test_limb_weight(self):
        assert [limb_weight(i) for i in range(4)] == [1, 256, 65536, 16777216]

    @pytest.mark.parametrize("value,expected", [(0, 1), (255, 1), (256, 2),
                                                (1 << 16, 3), ((1 << 32) - 1, 4)])
    def test_active_limb_count(self, value, expected):
        assert active_limb_count(value) == expected

    def test_active_limb_count_rejects_negative(self):
        with pytest.raises(ValueError):
            active_limb_count(-1)


class TestTensorCoreGemm:
    def test_matches_int_matmul(self, rng):
        lhs = rng.integers(0, 256, (8, 16), dtype=np.int64)
        rhs = rng.integers(0, 256, (16, 4), dtype=np.int64)
        gemm = TensorCoreGemm()
        assert np.array_equal(gemm.multiply(lhs, rhs), lhs @ rhs)

    def test_rejects_wide_operands(self):
        gemm = TensorCoreGemm()
        with pytest.raises(ValueError):
            gemm.multiply(np.asarray([[300]]), np.asarray([[1]]))

    def test_overflow_raises(self):
        # 255*255*40000 > 2^31: the s32 accumulator must complain.
        size = 40000
        lhs = np.full((1, size), 255, dtype=np.uint8)
        rhs = np.full((size, 1), 255, dtype=np.uint8)
        with pytest.raises(TcuOverflowError):
            TensorCoreGemm().multiply(lhs, rhs)

    def test_overflow_wraps_when_requested(self):
        size = 40000
        lhs = np.full((1, size), 255, dtype=np.uint8)
        rhs = np.full((size, 1), 255, dtype=np.uint8)
        result = TensorCoreGemm(wrap_on_overflow=True).multiply(lhs, rhs)
        expected = ((255 * 255 * size + (1 << 31)) % (1 << 32)) - (1 << 31)
        assert int(result[0, 0]) == expected

    def test_stats_accumulate(self, rng):
        gemm = TensorCoreGemm()
        lhs = rng.integers(0, 256, (16, 32), dtype=np.int64)
        rhs = rng.integers(0, 256, (32, 8), dtype=np.int64)
        gemm.multiply(lhs, rhs)
        gemm.multiply(lhs, rhs)
        assert gemm.stats.gemm_calls == 2
        assert gemm.stats.mac_operations == 2 * 16 * 32 * 8
        assert gemm.stats.elements_produced == 2 * 16 * 8
        assert gemm.stats.tile_launches > 0
        gemm.stats.reset()
        assert gemm.stats.gemm_calls == 0

    def test_shape_mismatch(self):
        gemm = TensorCoreGemm()
        with pytest.raises(ValueError):
            gemm.multiply(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8))


class TestFusion:
    def test_segmented_gemm_is_exact(self, rng):
        """Limb-pair GEMMs + weighted fusion reproduce the exact wide product."""
        q = generate_ntt_prime(28, 64)
        lhs = rng.integers(0, q, (6, 10), dtype=np.int64)
        rhs = rng.integers(0, q, (10, 7), dtype=np.int64)
        lhs_seg = segment_matrix(lhs)
        rhs_seg = segment_matrix(rhs)
        gemm = TensorCoreGemm()
        partials = {}
        for i in lhs_seg.nonzero_limbs():
            for j in rhs_seg.nonzero_limbs():
                partials[(i, j)] = gemm.multiply(lhs_seg.limb(i), rhs_seg.limb(j))
        exact = fuse_partial_products_exact(partials)
        expected = lhs.astype(object) @ rhs.astype(object)
        assert np.array_equal(exact, expected)
        fused_mod = fuse_partial_products(partials, q)
        assert np.array_equal(fused_mod, np.asarray(expected % q, dtype=np.int64))

    def test_fusion_rejects_empty(self):
        with pytest.raises(ValueError):
            fuse_partial_products({}, 97)
        with pytest.raises(ValueError):
            fuse_partial_products_exact({})

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_fusion_property(self, seed):
        rng = np.random.default_rng(seed)
        q = 7681
        lhs = rng.integers(0, q, (3, 4), dtype=np.int64)
        rhs = rng.integers(0, q, (4, 3), dtype=np.int64)
        lhs_seg, rhs_seg = segment_matrix(lhs), segment_matrix(rhs)
        gemm = TensorCoreGemm()
        partials = {(i, j): gemm.multiply(lhs_seg.limb(i), rhs_seg.limb(j))
                    for i in lhs_seg.nonzero_limbs() for j in rhs_seg.nonzero_limbs()}
        assert np.array_equal(fuse_partial_products(partials, q), (lhs @ rhs) % q)


class TestStreams:
    def test_single_stream_is_serial(self):
        tasks = [StreamTask("a", 3.0), StreamTask("b", 2.0)]
        result = StreamScheduler(1).schedule(tasks)
        assert result.makespan == pytest.approx(5.0)

    def test_many_streams_is_max(self):
        tasks = [StreamTask(str(i), 1.0) for i in range(4)]
        result = StreamScheduler(8).schedule(tasks)
        assert result.makespan == pytest.approx(1.0)

    def test_parallel_efficiency_bounds(self):
        tasks = [StreamTask(str(i), float(i + 1)) for i in range(16)]
        result = StreamScheduler(4).schedule(tasks)
        assert 0.0 < result.parallel_efficiency <= 1.0
        assert result.makespan >= result.total_work / 4

    def test_empty_schedule(self):
        result = StreamScheduler(4).schedule([])
        assert result.makespan == 0.0

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            StreamScheduler(0)


class TestTensorCoreNttIntegration:
    def test_engine_records_stats_and_schedule(self, rng):
        q = generate_ntt_prime(24, 64)
        engine = create_engine("tensorcore", 64, q)
        assert isinstance(engine, TensorCoreNtt)
        poly = rng.integers(0, q, 64, dtype=np.int64)
        engine.forward(poly)
        assert engine.stats.gemm_calls > 0
        assert engine.last_schedule is not None
        assert engine.last_schedule.makespan > 0
        engine.reset_stats()
        assert engine.stats.gemm_calls == 0
