"""Tests for the workload catalogue and operation-count containers."""

import pytest

from repro.workloads import (
    BOOTSTRAP_OPERATIONS,
    OperationCounts,
    WORKLOADS,
    WorkloadSpec,
    get_workload,
)


class TestOperationCounts:
    def test_as_dict_and_total(self):
        counts = OperationCounts(hmult=1, hrotate=2, rescale=3, hadd=4, cmult=5)
        assert counts.as_dict() == {"HMULT": 1, "HROTATE": 2, "RESCALE": 3,
                                    "HADD": 4, "CMULT": 5}
        assert counts.total() == 15

    def test_scaled(self):
        counts = OperationCounts(hmult=2, hadd=3).scaled(4)
        assert counts.hmult == 8 and counts.hadd == 12

    def test_merged(self):
        merged = OperationCounts(hmult=1).merged(OperationCounts(hmult=2, cmult=5))
        assert merged.hmult == 3 and merged.cmult == 5


class TestCatalog:
    def test_all_four_workloads_present(self):
        assert set(WORKLOADS) == {"resnet20", "lr", "lstm", "packed_bootstrapping"}

    def test_parameters_match_table_v(self):
        assert WORKLOADS["resnet20"].ring_degree == 1 << 16
        assert WORKLOADS["resnet20"].level_count == 30
        assert WORKLOADS["lr"].level_count == 39
        assert WORKLOADS["lstm"].ring_degree == 1 << 15
        assert WORKLOADS["packed_bootstrapping"].level_count == 58
        assert WORKLOADS["lr"].iterations == 14
        assert WORKLOADS["lstm"].packed_inputs == 32

    def test_lr_has_three_bootstraps(self):
        assert WORKLOADS["lr"].bootstraps_per_run == 3

    def test_packed_bootstrapping_is_pure_bootstrap(self):
        workload = WORKLOADS["packed_bootstrapping"]
        assert workload.operations_per_iteration.total() == 0
        assert workload.bootstraps_per_run == 32

    def test_bootstrap_operations_rotation_heavy(self):
        counts = BOOTSTRAP_OPERATIONS.as_dict()
        assert counts["HROTATE"] > counts["HMULT"]

    def test_total_operations_scale_with_iterations(self):
        workload = WORKLOADS["lr"]
        totals = workload.total_operations()
        assert totals.hrotate == workload.operations_per_iteration.hrotate * 14

    def test_describe(self):
        info = WORKLOADS["resnet20"].describe()
        assert info["name"] == "resnet20" and info["HMULT"] > 0

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("mnist")

    def test_custom_spec(self):
        spec = WorkloadSpec(name="tiny", ring_degree=1 << 12, level_count=5,
                            batch_size=4, iterations=2,
                            operations_per_iteration=OperationCounts(hadd=7))
        assert spec.total_operations().hadd == 14
