"""B-fused key switching: bit-parity, counter invariance, fewer launches.

The fused HMULT / rotation / conjugation paths must be *bit-identical* to
looping the sequential :class:`~repro.ckks.evaluator.Evaluator` over the
streams, with the kernel counters recording exactly the same invocations
and limb-vectors — while issuing strictly fewer NTT-planner launches.  The
suite sweeps every available compute backend and B ∈ {1, 2, 8}, plus mixed
levels and the degenerate-batch guarantees (no stacked temporaries for
B == 1, no extra keys for zero-step rotations).
"""

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.rns.modup import ModUp

BATCH_SIZES = (1, 2, 8)


@pytest.fixture(scope="module")
def fhe(toy_fhe):
    return toy_fhe


def encrypt_streams(fhe, rng, count):
    return [fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
            for _ in range(count)]


def assert_same_ciphertext(actual, expected):
    assert np.array_equal(actual.c0.residues, expected.c0.residues)
    assert np.array_equal(actual.c1.residues, expected.c1.residues)
    assert actual.scale == expected.scale
    assert actual.level == expected.level
    assert actual.c0.domain == expected.c0.domain
    assert actual.c1.domain == expected.c1.domain


def run_both(fhe, sequential, batched):
    """Run both execution models under fresh counters; compare everything."""
    kernels = fhe.context.kernels
    with kernels.capture() as sequential_counts:
        expected = sequential()
    with kernels.capture() as batched_counts:
        actual = batched()
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert_same_ciphertext(got, want)
    assert batched_counts.snapshot() == sequential_counts.snapshot()
    assert dict(batched_counts.limb_vectors) == dict(sequential_counts.limb_vectors)
    return actual


class PlannerSpy:
    """Counts NTT-planner launches (the engine-call count fusion reduces)."""

    METHODS = ("forward_limbs", "inverse_limbs", "forward_ops", "inverse_ops")

    def __init__(self, monkeypatch, planner):
        self.calls = 0
        for name in self.METHODS:
            original = getattr(planner, name)

            def spying(*args, _original=original, **kwargs):
                self.calls += 1
                return _original(*args, **kwargs)

            monkeypatch.setattr(planner, name, spying)

    def take(self):
        calls, self.calls = self.calls, 0
        return calls


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("batch", BATCH_SIZES)
class TestFusedParity:
    def test_multiply(self, fhe, rng, backend, batch):
        lhs = encrypt_streams(fhe, rng, batch)
        rhs = encrypt_streams(fhe, rng, batch)
        key = fhe.relinearization_key
        with use_backend(backend):
            run_both(
                fhe,
                lambda: [fhe.evaluator.multiply(l, r, key)
                         for l, r in zip(lhs, rhs)],
                lambda: fhe.batched_evaluator.multiply(lhs, rhs, key),
            )

    def test_rotate(self, fhe, rng, backend, batch):
        streams = encrypt_streams(fhe, rng, batch)
        with use_backend(backend):
            run_both(
                fhe,
                lambda: [fhe.evaluator.rotate(c, 3, fhe.rotation_keys)
                         for c in streams],
                lambda: fhe.batched_evaluator.rotate(streams, 3,
                                                     fhe.rotation_keys),
            )

    def test_conjugate(self, fhe, rng, backend, batch):
        streams = encrypt_streams(fhe, rng, batch)
        with use_backend(backend):
            run_both(
                fhe,
                lambda: [fhe.evaluator.conjugate(c, fhe.rotation_keys)
                         for c in streams],
                lambda: fhe.batched_evaluator.conjugate(streams,
                                                        fhe.rotation_keys),
            )


class TestBookkeeping:
    def test_multiply_mixed_levels(self, fhe, rng):
        """Streams at different levels fuse per prime chain, same results."""
        lhs = encrypt_streams(fhe, rng, 4)
        rhs = encrypt_streams(fhe, rng, 4)
        mixed = ([fhe.evaluator.drop_to_level(r, 1) for r in rhs[:2]]
                 + list(rhs[2:]))
        key = fhe.relinearization_key
        run_both(
            fhe,
            lambda: [fhe.evaluator.multiply(l, r, key)
                     for l, r in zip(lhs, mixed)],
            lambda: fhe.batched_evaluator.multiply(lhs, mixed, key),
        )

    def test_rotate_mixed_levels(self, fhe, rng):
        streams = encrypt_streams(fhe, rng, 4)
        mixed = ([fhe.evaluator.drop_to_level(c, 1) for c in streams[:2]]
                 + list(streams[2:]))
        run_both(
            fhe,
            lambda: [fhe.evaluator.rotate(c, 1, fhe.rotation_keys)
                     for c in mixed],
            lambda: fhe.batched_evaluator.rotate(mixed, 1, fhe.rotation_keys),
        )

    def test_multiply_decrypts_correctly(self, fhe, rng):
        lhs = encrypt_streams(fhe, rng, 3)
        rhs = encrypt_streams(fhe, rng, 3)
        products = fhe.multiply_many(lhs, rhs)
        for l, r, p in zip(lhs, rhs, products):
            reference = fhe.decrypt_real(l) * fhe.decrypt_real(r)
            assert np.allclose(fhe.decrypt_real(p), reference, atol=1e-2)

    def test_rotate_many_per_stream_steps(self, fhe, rng):
        streams = encrypt_streams(fhe, rng, 4)
        steps = [1, 3, 0, 3]
        expected = [fhe.evaluator.rotate(c, s, fhe.rotation_keys)
                    for c, s in zip(streams, steps)]
        for got, want in zip(fhe.rotate_many(streams, steps), expected):
            assert_same_ciphertext(got, want)

    def test_rotate_many_shared_step_decrypts(self, fhe, rng):
        values = [rng.uniform(-1, 1, fhe.slot_count) for _ in range(3)]
        streams = [fhe.encrypt(v) for v in values]
        for got, want in zip(fhe.rotate_many(streams, 2), values):
            assert np.allclose(fhe.decrypt_real(got), np.roll(want, -2),
                               atol=2e-3)

    def test_conjugate_many_decrypts(self, fhe, rng):
        values = [rng.uniform(-1, 1, fhe.slot_count)
                  + 1j * rng.uniform(-1, 1, fhe.slot_count) for _ in range(3)]
        streams = [fhe.encrypt(v) for v in values]
        for got, want in zip(fhe.conjugate_many(streams), values):
            assert np.allclose(fhe.decrypt(got), np.conj(want), atol=2e-3)

    def test_rotate_many_length_mismatch_rejected(self, fhe, rng):
        streams = encrypt_streams(fhe, rng, 2)
        with pytest.raises(ValueError, match="one step count"):
            fhe.rotate_many(streams, [1])

    def test_switch_many_rejects_wrong_domain(self, fhe, rng):
        from repro.kernels import ops as kernel_ops

        ciphertext = encrypt_streams(fhe, rng, 2)[0]
        eval_poly = kernel_ops.ntt(fhe.context.kernels, ciphertext.c1)
        switcher = fhe.batched_evaluator.key_switcher
        with pytest.raises(ValueError, match="coefficient-domain"):
            switcher.switch_many([eval_poly, eval_poly],
                                 fhe.relinearization_key,
                                 ciphertext.level)

    def test_switch_many_rejects_wrong_basis(self, fhe, rng):
        ciphertext = encrypt_streams(fhe, rng, 1)[0]
        switcher = fhe.batched_evaluator.key_switcher
        with pytest.raises(ValueError, match="basis"):
            switcher.switch_many([ciphertext.c1, ciphertext.c1],
                                 fhe.relinearization_key,
                                 ciphertext.level - 1)


class TestLaunchCounts:
    def test_fused_multiply_issues_fewer_planner_calls(self, fhe, rng,
                                                       monkeypatch):
        lhs = encrypt_streams(fhe, rng, 4)
        rhs = encrypt_streams(fhe, rng, 4)
        key = fhe.relinearization_key
        spy = PlannerSpy(monkeypatch, fhe.context.planner)
        [fhe.evaluator.multiply(l, r, key) for l, r in zip(lhs, rhs)]
        sequential_calls = spy.take()
        fhe.batched_evaluator.multiply(lhs, rhs, key)
        fused_calls = spy.take()
        # 4 streams: sequential pays 4 transforms + per-stream key-switch
        # launches; fused pays 2 HMULT launches + 2 key-switch launches.
        assert fused_calls < sequential_calls
        assert fused_calls == 4

    def test_fused_rotate_issues_fewer_planner_calls(self, fhe, rng,
                                                     monkeypatch):
        streams = encrypt_streams(fhe, rng, 4)
        spy = PlannerSpy(monkeypatch, fhe.context.planner)
        [fhe.evaluator.rotate(c, 1, fhe.rotation_keys) for c in streams]
        sequential_calls = spy.take()
        fhe.batched_evaluator.rotate(streams, 1, fhe.rotation_keys)
        fused_calls = spy.take()
        assert fused_calls < sequential_calls
        assert fused_calls == 2          # one forward_ops + one inverse_ops


class TestDegenerateBatches:
    def test_empty_batches(self, fhe):
        key = fhe.relinearization_key
        assert fhe.batched_evaluator.multiply([], [], key) == []
        assert fhe.batched_evaluator.rotate([], 1, fhe.rotation_keys) == []
        assert fhe.batched_evaluator.conjugate([], fhe.rotation_keys) == []
        assert fhe.batched_evaluator.key_switcher.switch_many(
            [], key, fhe.context.max_level) == []
        assert fhe.rotate_many([], 1) == []
        assert fhe.conjugate_many([]) == []

    def test_empty_batches_never_resolve_keys(self, fhe):
        """Zero streams return [] even when the needed key is missing,
        matching the sequential loop (which never touches the key set).

        Uses a locally constructed empty key set — not the shared
        session context's — so no other module's key generation can
        disturb the precondition.
        """
        from repro.ckks import RotationKeySet

        empty_keys = RotationKeySet()
        assert fhe.batched_evaluator.rotate([], 7, empty_keys) == []
        assert fhe.batched_evaluator.conjugate([], empty_keys) == []

    def test_single_stream_takes_sequential_switch(self, fhe, rng,
                                                   monkeypatch):
        """B == 1 must not stack (B, dnum, L, N) temporaries."""
        ciphertext = encrypt_streams(fhe, rng, 1)[0]
        switcher = fhe.batched_evaluator.key_switcher
        sequential_calls = []
        original = switcher.key_switcher.switch

        def spying_switch(*args, **kwargs):
            sequential_calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(switcher.key_switcher, "switch", spying_switch)

        def no_batch(self, stacks):   # pragma: no cover - must not run
            raise AssertionError("B==1 must not reach the batched ModUp")

        monkeypatch.setattr(ModUp, "apply_batch", no_batch)
        result = switcher.switch_many([ciphertext.c1],
                                      fhe.relinearization_key,
                                      ciphertext.level)
        assert len(result) == 1
        assert len(sequential_calls) == 1

    def test_zero_step_rotation_copies_without_keys(self, fhe, rng):
        streams = encrypt_streams(fhe, rng, 2)
        known_steps = set(fhe.rotation_keys.keys)
        kernels = fhe.context.kernels
        with kernels.capture() as counts:
            rotated = fhe.rotate_many(streams, 0)
        assert counts.snapshot() == {}
        assert set(fhe.rotation_keys.keys) == known_steps
        for got, want in zip(rotated, streams):
            assert_same_ciphertext(got, want)
            assert got.c0.residues is not want.c0.residues
