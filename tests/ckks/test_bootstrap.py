"""Tests for the bootstrap components: BSGS, sine evaluation, ModRaise, DFT."""

import numpy as np
import pytest

from repro.ckks.bootstrap import (
    BootstrapConfig,
    Bootstrapper,
    BsgsLinearTransform,
    CoeffToSlot,
    ModRaise,
    SineEvaluator,
    SlotToCoeff,
    bsgs_step_counts,
    embedding_matrix,
    evaluate_polynomial,
    matrix_diagonals,
    required_rotations,
    taylor_cosine_coefficients,
    taylor_sine_coefficients,
)


class TestBsgsHelpers:
    def test_matrix_diagonals_reconstruct(self, rng):
        matrix = rng.uniform(-1, 1, (8, 8))
        diagonals = matrix_diagonals(matrix)
        rebuilt = np.zeros((8, 8))
        for offset, diagonal in diagonals.items():
            for i in range(8):
                rebuilt[i, (i + offset) % 8] = diagonal[i]
        assert np.allclose(rebuilt, matrix)

    def test_zero_diagonals_skipped(self):
        diagonals = matrix_diagonals(np.eye(8))
        assert list(diagonals) == [0]

    def test_step_counts_cover_dimension(self):
        for dimension in (8, 16, 32, 100):
            n1, n2 = bsgs_step_counts(dimension)
            assert n1 * n2 >= dimension

    def test_required_rotations_subset_of_dimension(self):
        steps = required_rotations(32)
        assert all(0 < step < 32 for step in steps)

    def test_non_square_matrix_rejected(self):
        with pytest.raises(ValueError):
            matrix_diagonals(np.zeros((4, 6)))


class TestBsgsTransform:
    def test_identity_matrix(self, toy_bundle, rng):
        transform = BsgsLinearTransform(toy_bundle.context,
                                        np.eye(toy_bundle.slot_count))
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        out = transform.apply(ct, toy_bundle.evaluator, toy_bundle.encryptor,
                              toy_bundle.rotation_keys)
        assert np.allclose(toy_bundle.decryptor.decrypt_real(out), x, atol=1e-2)

    def test_random_matrix_matches_reference(self, toy_bundle, rng):
        n = toy_bundle.slot_count
        matrix = (rng.uniform(-1, 1, (n, n)) + 1j * rng.uniform(-1, 1, (n, n))) / n
        transform = BsgsLinearTransform(toy_bundle.context, matrix)
        toy_bundle.keygen  # noqa: B018 - fixture side effect only
        # Generate any missing rotation keys required by this matrix.
        needed = [s for s in transform.rotation_steps()
                  if s not in toy_bundle.rotation_keys.keys]
        for step in needed:
            toy_bundle.rotation_keys.add(
                step, toy_bundle.keygen.generate_rotation_key(toy_bundle.secret_key, step))
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        out = transform.apply(ct, toy_bundle.evaluator, toy_bundle.encryptor,
                              toy_bundle.rotation_keys)
        assert np.allclose(toy_bundle.decryptor.decrypt_to_slots(out),
                           transform.reference(x), atol=1e-2)

    def test_transform_consumes_one_level(self, toy_bundle, rng):
        transform = BsgsLinearTransform(toy_bundle.context,
                                        np.eye(toy_bundle.slot_count))
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        out = transform.apply(ct, toy_bundle.evaluator, toy_bundle.encryptor,
                              toy_bundle.rotation_keys)
        assert out.level == ct.level - 1

    def test_wrong_size_matrix_rejected(self, toy_bundle):
        with pytest.raises(ValueError):
            BsgsLinearTransform(toy_bundle.context, np.eye(5))

    def test_zero_matrix_rejected(self, toy_bundle, rng):
        transform = BsgsLinearTransform(toy_bundle.context,
                                        np.zeros((toy_bundle.slot_count,
                                                  toy_bundle.slot_count)))
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        with pytest.raises(ValueError):
            transform.apply(ct, toy_bundle.evaluator, toy_bundle.encryptor,
                            toy_bundle.rotation_keys)


class TestSineEvaluation:
    def test_taylor_coefficients_match_sin(self):
        coefficients = taylor_sine_coefficients(15, 1.0)
        xs = np.linspace(-1, 1, 11)
        assert np.allclose(evaluate_polynomial(coefficients, xs), np.sin(xs), atol=1e-6)

    def test_only_odd_terms(self):
        coefficients = taylor_sine_coefficients(9, 2.5)
        assert all(coefficients[k] == 0.0 for k in range(0, 10, 2))

    def test_homomorphic_polynomial_matches_plain(self, deep_bundle, rng):
        coefficients = taylor_sine_coefficients(7, 2.0)
        evaluator = SineEvaluator(deep_bundle.context, coefficients)
        x = deep_bundle.random_slots(rng)
        ct = deep_bundle.encryptor.encrypt(x)
        out = evaluator.apply(ct, deep_bundle.evaluator, deep_bundle.encryptor,
                              deep_bundle.relinearization_key)
        expected = evaluate_polynomial(coefficients, x)
        assert np.allclose(deep_bundle.decryptor.decrypt_real(out), expected, atol=5e-3)

    def test_depth_estimate(self):
        evaluator = SineEvaluator.__new__(SineEvaluator)
        evaluator.coefficients = taylor_sine_coefficients(7, 1.0)
        assert evaluator.multiplicative_depth >= 3

    def test_empty_polynomial_rejected(self, deep_bundle):
        with pytest.raises(ValueError):
            SineEvaluator(deep_bundle.context, [])

    def test_cosine_coefficients_match_cos(self):
        coefficients = taylor_cosine_coefficients(14, 1.0)
        xs = np.linspace(-1, 1, 11)
        assert np.allclose(evaluate_polynomial(coefficients, xs), np.cos(xs),
                           atol=1e-6)

    def test_cosine_only_even_terms(self):
        coefficients = taylor_cosine_coefficients(9, 2.5)
        assert coefficients[0] == 1.0
        assert all(coefficients[k] == 0.0 for k in range(1, 10, 2))

    def test_apply_pair_matches_both_series(self, deep_bundle, rng):
        """One shared power ladder must evaluate sine AND cosine correctly."""
        scale_factor = 2.0
        evaluator = SineEvaluator(
            deep_bundle.context, taylor_sine_coefficients(7, scale_factor),
            cosine_coefficients=taylor_cosine_coefficients(7, scale_factor))
        x = deep_bundle.random_slots(rng)
        ct = deep_bundle.encryptor.encrypt(x)
        sin_ct, cos_ct = evaluator.apply_pair(
            ct, deep_bundle.evaluator, deep_bundle.encryptor,
            deep_bundle.relinearization_key)
        assert np.allclose(
            deep_bundle.decryptor.decrypt_real(sin_ct),
            evaluate_polynomial(evaluator.coefficients, x), atol=5e-3)
        assert np.allclose(
            deep_bundle.decryptor.decrypt_real(cos_ct),
            evaluate_polynomial(evaluator.cosine_coefficients, x), atol=5e-3)

    def test_apply_pair_requires_cosine_series(self, deep_bundle, rng):
        evaluator = SineEvaluator(deep_bundle.context,
                                  taylor_sine_coefficients(7, 1.0))
        ct = deep_bundle.encryptor.encrypt(deep_bundle.random_slots(rng))
        with pytest.raises(ValueError):
            evaluator.apply_pair(ct, deep_bundle.evaluator,
                                 deep_bundle.encryptor,
                                 deep_bundle.relinearization_key)


class TestModRaise:
    def test_requires_level_zero(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        with pytest.raises(ValueError):
            ModRaise(toy_bundle.context).apply(ct)

    def test_raised_ciphertext_level(self, toy_bundle, rng):
        ct = toy_bundle.evaluator.drop_to_level(
            toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng)), 0)
        raised = ModRaise(toy_bundle.context).apply(ct)
        assert raised.level == toy_bundle.context.max_level

    def test_difference_is_multiple_of_q0(self, toy_bundle, rng):
        """After ModRaise the plaintext differs from the original by q0 * I."""
        ct = toy_bundle.evaluator.drop_to_level(
            toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng)), 0)
        raised = ModRaise(toy_bundle.context).apply(ct)
        q0 = toy_bundle.context.basis.ciphertext_primes[0]
        original = np.asarray([float(c) for c in
                               toy_bundle.decryptor.decrypt(ct).polynomial.to_integers()])
        lifted = np.asarray([float(c) for c in
                             toy_bundle.decryptor.decrypt(raised).polynomial.to_integers()])
        multiples = (lifted - original) / q0
        assert np.allclose(multiples, np.round(multiples))
        assert np.max(np.abs(multiples)) <= toy_bundle.secret_key.hamming_weight


class TestHomomorphicDft:
    def test_embedding_matrix_matches_encoder(self, toy_bundle):
        """E @ coeffs must equal the encoder's decode (up to the scale)."""
        context = toy_bundle.context
        matrix = embedding_matrix(context)
        rng = np.random.default_rng(5)
        coefficients = rng.integers(-100, 100, context.ring_degree)
        direct = matrix @ coefficients
        decoded = context.encoder.decode(list(coefficients), 1.0)
        assert np.allclose(direct, decoded, atol=1e-6)

    def test_coeff_to_slot_reference_inverts_slot_to_coeff(self, toy_bundle, rng):
        """The plaintext references of CtS and StC are mutually inverse."""
        cts = CoeffToSlot(toy_bundle.context)
        stc = SlotToCoeff(toy_bundle.context)
        slots = rng.uniform(-1, 1, toy_bundle.slot_count) + \
            1j * rng.uniform(-1, 1, toy_bundle.slot_count)
        low, high = cts.reference(slots)
        reconstructed = stc.reference(low, high)
        assert np.allclose(reconstructed, slots, atol=1e-8)

    def test_rotation_steps_listed(self, toy_bundle):
        assert len(CoeffToSlot(toy_bundle.context).rotation_steps()) > 0
        assert len(SlotToCoeff(toy_bundle.context).rotation_steps()) > 0

    def test_rotation_steps_within_required_budget(self, toy_bundle):
        """Every DFT transform's steps ⊆ required_rotations(slot_count).

        ``required_rotations`` is the a-priori key budget callers provision
        from; a transform asking for a step outside it would fail at
        key-switch time with lazily generated key sets.
        """
        cts = CoeffToSlot(toy_bundle.context)
        stc = SlotToCoeff(toy_bundle.context)
        budget = set(required_rotations(toy_bundle.slot_count))
        transforms = (cts.transform0_direct, cts.transform0_conj,
                      cts.transform1_direct, cts.transform1_conj,
                      stc.transform0, stc.transform1)
        for transform in transforms:
            assert set(transform.rotation_steps()) <= budget


class TestBootstrapper:
    def test_config_depth_estimate(self):
        config = BootstrapConfig(taylor_degree=7, double_angle_iterations=2)
        assert config.eval_mod_depth >= 5

    def test_required_rotations_and_reference_mod(self, deep_bundle):
        bootstrapper = Bootstrapper(deep_bundle.context)
        assert len(bootstrapper.required_rotation_steps()) > 0
        q0 = deep_bundle.context.basis.ciphertext_primes[0]
        values = np.asarray([0.0, 1.0, -2.0, 100.0])
        approx = bootstrapper.reference_mod(values)
        # For |t| << q0 the scaled sine is close to the identity.
        assert np.allclose(approx, values, atol=1e-2)

    def test_doubling_parity_with_same_level_drop(self, toy_bundle, rng):
        """Pin: ``add(x, x)`` ≡ ``add(x, drop_to_level(x, x.level))``.

        The EvalMod ladder used to route its doublings through a no-op
        same-level ``drop_to_level``; the plain self-add that replaced it
        must stay bit-identical.
        """
        evaluator = toy_bundle.evaluator
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        direct = evaluator.add(ct, ct)
        via_drop = evaluator.add(ct, evaluator.drop_to_level(ct, ct.level))
        assert np.array_equal(direct.c0.residues, via_drop.c0.residues)
        assert np.array_equal(direct.c1.residues, via_drop.c1.residues)
        assert direct.scale == via_drop.scale
        assert direct.level == via_drop.level
