"""End-to-end tests of the CKKS scheme: encryption, evaluation, key switching."""

import numpy as np
import pytest

from repro.ckks import Ciphertext
from repro.kernels import KernelName

TOLERANCE = 1e-3


def _enc_dec_error(bundle, rng, operation):
    """Helper returning (decrypted, expected) slot vectors for an operation."""
    x = bundle.random_slots(rng)
    y = bundle.random_slots(rng)
    return operation(bundle, x, y)


class TestEncryptDecrypt:
    def test_public_key_encryption(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        assert np.allclose(toy_bundle.decryptor.decrypt_real(ct), x, atol=TOLERANCE)

    def test_symmetric_encryption(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt_symmetric(x)
        assert np.allclose(toy_bundle.decryptor.decrypt_real(ct), x, atol=TOLERANCE)

    def test_complex_values(self, toy_bundle, rng):
        z = toy_bundle.random_slots(rng) + 1j * toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(z)
        assert np.allclose(toy_bundle.decryptor.decrypt_to_slots(ct), z, atol=TOLERANCE)

    def test_fresh_ciphertext_is_at_max_level(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        assert ct.level == toy_bundle.context.max_level

    def test_ciphertexts_are_randomised(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct1 = toy_bundle.encryptor.encrypt(x)
        ct2 = toy_bundle.encryptor.encrypt(x)
        assert not np.array_equal(ct1.c0.residues, ct2.c0.residues)

    def test_noise_budget_positive_and_decreasing(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        fresh_budget = toy_bundle.decryptor.invariant_noise_budget_bits(ct)
        assert fresh_budget > 0
        product = toy_bundle.evaluator.multiply_and_rescale(
            ct, ct, toy_bundle.relinearization_key)
        assert toy_bundle.decryptor.invariant_noise_budget_bits(product) < fresh_budget

    def test_secret_key_hamming_weight(self, toy_bundle):
        assert toy_bundle.secret_key.hamming_weight <= 8


class TestHomomorphicOperations:
    def test_hadd(self, toy_bundle, rng):
        x, y = toy_bundle.random_slots(rng), toy_bundle.random_slots(rng)
        ct = toy_bundle.evaluator.add(toy_bundle.encryptor.encrypt(x),
                                      toy_bundle.encryptor.encrypt(y))
        assert np.allclose(toy_bundle.decryptor.decrypt_real(ct), x + y, atol=TOLERANCE)

    def test_subtract(self, toy_bundle, rng):
        x, y = toy_bundle.random_slots(rng), toy_bundle.random_slots(rng)
        ct = toy_bundle.evaluator.subtract(toy_bundle.encryptor.encrypt(x),
                                           toy_bundle.encryptor.encrypt(y))
        assert np.allclose(toy_bundle.decryptor.decrypt_real(ct), x - y, atol=TOLERANCE)

    def test_negate(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.evaluator.negate(toy_bundle.encryptor.encrypt(x))
        assert np.allclose(toy_bundle.decryptor.decrypt_real(ct), -x, atol=TOLERANCE)

    def test_add_plain(self, toy_bundle, rng):
        x, y = toy_bundle.random_slots(rng), toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        pt = toy_bundle.encryptor.encode(y)
        total = toy_bundle.evaluator.add_plain(ct, pt)
        assert np.allclose(toy_bundle.decryptor.decrypt_real(total), x + y, atol=TOLERANCE)

    def test_hmult(self, toy_bundle, rng):
        x, y = toy_bundle.random_slots(rng), toy_bundle.random_slots(rng)
        ct = toy_bundle.evaluator.multiply_and_rescale(
            toy_bundle.encryptor.encrypt(x), toy_bundle.encryptor.encrypt(y),
            toy_bundle.relinearization_key)
        assert np.allclose(toy_bundle.decryptor.decrypt_real(ct), x * y, atol=TOLERANCE)

    def test_hmult_drops_a_level(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        product = toy_bundle.evaluator.multiply_and_rescale(
            ct, ct, toy_bundle.relinearization_key)
        assert product.level == ct.level - 1

    def test_square(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.evaluator.rescale(toy_bundle.evaluator.square(
            toy_bundle.encryptor.encrypt(x), toy_bundle.relinearization_key))
        assert np.allclose(toy_bundle.decryptor.decrypt_real(ct), x * x, atol=TOLERANCE)

    def test_cmult(self, toy_bundle, rng):
        x, y = toy_bundle.random_slots(rng), toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        pt = toy_bundle.encryptor.encode(y)
        product = toy_bundle.evaluator.rescale(
            toy_bundle.evaluator.multiply_plain(ct, pt))
        assert np.allclose(toy_bundle.decryptor.decrypt_real(product), x * y, atol=TOLERANCE)

    def test_hrotate(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        for steps in (1, 2, 4):
            rotated = toy_bundle.evaluator.rotate(ct, steps, toy_bundle.rotation_keys)
            assert np.allclose(toy_bundle.decryptor.decrypt_real(rotated),
                               np.roll(x, -steps), atol=TOLERANCE)

    def test_rotate_by_zero_is_identity(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        rotated = toy_bundle.evaluator.rotate(ct, 0, toy_bundle.rotation_keys)
        assert np.allclose(toy_bundle.decryptor.decrypt_real(rotated), x, atol=TOLERANCE)

    def test_missing_rotation_key_raises(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        with pytest.raises(KeyError):
            toy_bundle.evaluator.rotate(ct, 11, toy_bundle.rotation_keys)

    def test_conjugate(self, toy_bundle, rng):
        z = toy_bundle.random_slots(rng) + 1j * toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(z)
        conjugated = toy_bundle.evaluator.conjugate(ct, toy_bundle.rotation_keys)
        assert np.allclose(toy_bundle.decryptor.decrypt_to_slots(conjugated),
                           np.conj(z), atol=TOLERANCE)

    def test_rotate_and_sum(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct = toy_bundle.encryptor.encrypt(x)
        summed = toy_bundle.evaluator.rotate_and_sum(ct, toy_bundle.rotation_keys,
                                                     toy_bundle.slot_count)
        assert np.allclose(toy_bundle.decryptor.decrypt_real(summed)[0], np.sum(x),
                           atol=1e-2)

    def test_scale_mismatch_rejected(self, toy_bundle, rng):
        x = toy_bundle.random_slots(rng)
        ct1 = toy_bundle.encryptor.encrypt(x)
        ct2 = toy_bundle.evaluator.multiply_plain(
            toy_bundle.encryptor.encrypt(x), toy_bundle.encryptor.encode(x))
        with pytest.raises(ValueError):
            toy_bundle.evaluator.add(ct1, ct2)

    def test_rescale_at_level_zero_rejected(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        bottom = toy_bundle.evaluator.drop_to_level(ct, 0)
        with pytest.raises(ValueError):
            toy_bundle.evaluator.rescale(bottom)

    def test_level_alignment_in_add(self, toy_bundle, rng):
        x, y = toy_bundle.random_slots(rng), toy_bundle.random_slots(rng)
        high = toy_bundle.encryptor.encrypt(x)
        low = toy_bundle.evaluator.drop_to_level(toy_bundle.encryptor.encrypt(y), 1)
        total = toy_bundle.evaluator.add(high, low)
        assert total.level == 1
        assert np.allclose(toy_bundle.decryptor.decrypt_real(total), x + y, atol=TOLERANCE)

    def test_drop_to_level_cannot_raise(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        low = toy_bundle.evaluator.drop_to_level(ct, 0)
        with pytest.raises(ValueError):
            toy_bundle.evaluator.drop_to_level(low, 2)

    def test_deep_circuit_small_preset(self, small_bundle, rng):
        """(x*y)*x + y at N=256 with dnum=2 multi-prime groups."""
        x, y = small_bundle.random_slots(rng), small_bundle.random_slots(rng)
        ev, enc, dec = small_bundle.evaluator, small_bundle.encryptor, small_bundle.decryptor
        ct_x, ct_y = enc.encrypt(x), enc.encrypt(y)
        ct = ev.multiply_and_rescale(ct_x, ct_y, small_bundle.relinearization_key)
        ct = ev.multiply_and_rescale(ct, ev.drop_to_level(ct_x, ct.level),
                                     small_bundle.relinearization_key)
        expected = x * y * x
        assert np.allclose(dec.decrypt_real(ct), expected, atol=5e-3)


class TestCiphertextContainer:
    def test_mismatched_components_rejected(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        with pytest.raises(ValueError):
            Ciphertext(ct.c0, ct.c1.drop_last_limb(), ct.scale, ct.level)

    def test_copy_is_independent(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        duplicate = ct.copy()
        duplicate.c0.residues[0, 0] = 0
        assert not np.array_equal(duplicate.c0.residues, ct.c0.residues) or \
            ct.c0.residues[0, 0] == 0

    def test_describe(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        assert "level" in ct.describe()


class TestKernelComposition:
    """The evaluator must decompose operations as in Table II of the paper."""

    def test_hadd_uses_only_ele_add(self, toy_bundle, rng):
        ct1 = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        ct2 = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        with toy_bundle.context.kernels.capture() as counter:
            toy_bundle.evaluator.add(ct1, ct2)
        assert counter.total(KernelName.ELE_ADD) == 2
        assert counter.total(KernelName.NTT) == 0
        assert counter.total(KernelName.HADAMARD) == 0

    def test_hmult_uses_ntt_hadamard_conv(self, toy_bundle, rng):
        ct1 = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        ct2 = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        with toy_bundle.context.kernels.capture() as counter:
            toy_bundle.evaluator.multiply(ct1, ct2, toy_bundle.relinearization_key)
        assert counter.total(KernelName.NTT) > 0
        assert counter.total(KernelName.INTT) > 0
        assert counter.total(KernelName.HADAMARD) >= 4
        assert counter.total(KernelName.CONV) > 0
        assert counter.total(KernelName.ELE_ADD) > 0

    def test_hrotate_uses_frobenius(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        with toy_bundle.context.kernels.capture() as counter:
            toy_bundle.evaluator.rotate(ct, 1, toy_bundle.rotation_keys)
        assert counter.total(KernelName.FROBENIUS) == 2
        assert counter.total(KernelName.CONV) > 0

    def test_rescale_uses_ele_sub(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        product = toy_bundle.evaluator.multiply(ct, ct, toy_bundle.relinearization_key)
        with toy_bundle.context.kernels.capture() as counter:
            toy_bundle.evaluator.rescale(product)
        assert counter.total(KernelName.ELE_SUB) == 2

    def test_cmult_uses_hadamard(self, toy_bundle, rng):
        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        pt = toy_bundle.encryptor.encode(toy_bundle.random_slots(rng))
        with toy_bundle.context.kernels.capture() as counter:
            toy_bundle.evaluator.multiply_plain(ct, pt)
        assert counter.total(KernelName.HADAMARD) == 2


class TestKeySwitching:
    def test_relinearization_key_levels(self, toy_bundle):
        assert set(toy_bundle.relinearization_key.levels) == set(
            range(toy_bundle.context.max_level + 1))

    def test_switch_requires_matching_level(self, toy_bundle, rng):
        from repro.ckks.keyswitch import KeySwitcher

        ct = toy_bundle.encryptor.encrypt(toy_bundle.random_slots(rng))
        switcher = KeySwitcher(toy_bundle.context)
        with pytest.raises(ValueError):
            switcher.switch(ct.c1, toy_bundle.relinearization_key, ct.level - 1)

    def test_missing_level_raises(self, toy_bundle, rng):
        from repro.ckks.keys import SwitchKey

        empty = SwitchKey(description="empty")
        with pytest.raises(KeyError):
            empty.at_level(0)

    def test_rotation_key_set_contents(self, toy_bundle):
        assert set(toy_bundle.rotation_keys.available_steps) >= {1, 2, 4, 8}
        assert toy_bundle.rotation_keys.conjugation_key is not None

    def test_multi_prime_groups_keyswitch(self, small_bundle, rng):
        """dnum=2 with 2 primes per group exercises the grouped decomposition."""
        x = small_bundle.random_slots(rng)
        ct = small_bundle.encryptor.encrypt(x)
        rotated = small_bundle.evaluator.rotate(ct, 1, small_bundle.rotation_keys)
        assert np.allclose(small_bundle.decryptor.decrypt_real(rotated),
                           np.roll(x, -1), atol=TOLERANCE)
