"""Tests for CKKS parameters, presets and the canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksParameters, FUNCTIONAL_PARAMETERS, PAPER_PARAMETERS, get_preset
from repro.ckks.encoder import CkksEncoder


@pytest.fixture(scope="module")
def encoder() -> CkksEncoder:
    return CkksEncoder(CkksParameters(ring_degree=1 << 8, level_count=3, name="enc-test"))


class TestParameters:
    def test_paper_presets_match_table_v(self):
        default = PAPER_PARAMETERS["default"]
        assert default.ring_degree == 1 << 16
        assert default.max_level == 44
        assert PAPER_PARAMETERS["lstm"].ring_degree == 1 << 15
        assert PAPER_PARAMETERS["packed_bootstrapping"].max_level == 57
        assert PAPER_PARAMETERS["resnet20"].batch_size == 64

    def test_functional_presets_are_small(self):
        for preset in FUNCTIONAL_PARAMETERS.values():
            assert preset.ring_degree <= 1 << 12

    def test_get_preset_unknown(self):
        with pytest.raises(KeyError):
            get_preset("nope")

    def test_derived_properties(self):
        params = CkksParameters(ring_degree=1 << 8, level_count=6, dnum=3, scale_bits=20)
        assert params.slot_count == 128
        assert params.max_level == 5
        assert params.scale == 2.0 ** 20
        assert params.alpha == 2
        assert params.log_pq == 6 * params.prime_bits + params.special_prime_bits

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CkksParameters(ring_degree=100, level_count=3)
        with pytest.raises(ValueError):
            CkksParameters(ring_degree=64, level_count=0)
        with pytest.raises(ValueError):
            CkksParameters(ring_degree=64, level_count=3, dnum=0)

    def test_describe_contains_key_fields(self):
        info = get_preset("toy").describe()
        assert info["N"] == 64 and "dnum" in info and "logPQ" in info


class TestEncoder:
    def test_roundtrip_real(self, encoder, rng):
        values = rng.uniform(-10, 10, encoder.slot_count)
        decoded = encoder.decode(encoder.encode(values))
        assert np.allclose(decoded.real, values, atol=1e-5)
        assert np.allclose(decoded.imag, 0.0, atol=1e-5)

    def test_roundtrip_complex(self, encoder, rng):
        values = rng.uniform(-1, 1, encoder.slot_count) + 1j * rng.uniform(-1, 1, encoder.slot_count)
        decoded = encoder.decode(encoder.encode(values))
        assert np.allclose(decoded, values, atol=1e-5)

    def test_coefficients_are_integers(self, encoder):
        encoded = encoder.encode([1.5, -2.25, 3.0])
        assert all(float(c).is_integer() for c in encoded)

    def test_short_input_zero_padded(self, encoder):
        decoded = encoder.decode(encoder.encode([1.0, 2.0]))
        assert np.allclose(decoded[:2].real, [1.0, 2.0], atol=1e-5)
        assert np.allclose(decoded[2:], 0.0, atol=1e-5)

    def test_too_many_values_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode(np.ones(encoder.slot_count + 1))

    def test_wrong_coefficient_count_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.decode([1, 2, 3])

    def test_encoding_is_linear(self, encoder, rng):
        a = rng.uniform(-1, 1, encoder.slot_count)
        b = rng.uniform(-1, 1, encoder.slot_count)
        lhs = np.asarray(encoder.encode(a), dtype=float) + np.asarray(encoder.encode(b), dtype=float)
        rhs = np.asarray(encoder.encode(a + b), dtype=float)
        # Rounding happens per encode, so allow +-1 per coefficient.
        assert np.max(np.abs(lhs - rhs)) <= 2.0

    def test_scale_controls_precision(self, encoder, rng):
        values = rng.uniform(-1, 1, encoder.slot_count)
        coarse = encoder.decode(encoder.encode(values, scale=2.0 ** 10), scale=2.0 ** 10)
        fine = encoder.decode(encoder.encode(values, scale=2.0 ** 30), scale=2.0 ** 30)
        assert np.max(np.abs(fine.real - values)) < np.max(np.abs(coarse.real - values))

    def test_slot_rotation_reference(self, encoder):
        values = list(range(encoder.slot_count))
        rotated = encoder.slot_rotation(values, 3)
        assert rotated[:5] == [3, 4, 5, 6, 7]

    def test_max_encodable_magnitude_positive(self, encoder):
        assert encoder.max_encodable_magnitude(1 << 60) > 0

    @given(st.integers(min_value=0, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, seed):
        encoder = CkksEncoder(CkksParameters(ring_degree=1 << 6, level_count=3))
        rng = np.random.default_rng(seed)
        values = rng.uniform(-5, 5, encoder.slot_count)
        decoded = encoder.decode(encoder.encode(values))
        assert np.allclose(decoded.real, values, atol=1e-4)
