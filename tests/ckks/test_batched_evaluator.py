"""Batched-vs-sequential parity for the multi-ciphertext evaluator.

``BatchedEvaluator`` must be *bit-identical* to looping the sequential
``Evaluator`` over the streams — residues, scales, levels, domains — and
the kernel counters must record exactly the same invocations and
limb-vectors (fusion is invisible to the instrumentation).  The suite runs
the fused HADD / CMULT / HMULT / RESCALE paths across every available
compute backend, plus the mixed-level grouping and the facade chunking.
"""

import numpy as np
import pytest

from repro.api import TensorFheContext
from repro.backend import available_backends, use_backend
from repro.ckks import CkksParameters

BATCH = 5


@pytest.fixture(scope="module")
def fhe(toy_fhe) -> TensorFheContext:
    """The session-scoped facade context (hoisted into tests/conftest.py)."""
    return toy_fhe


@pytest.fixture()
def streams(fhe, rng):
    lhs = [fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count)) for _ in range(BATCH)]
    rhs = [fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count)) for _ in range(BATCH)]
    return lhs, rhs


def assert_same_ciphertext(actual, expected):
    assert np.array_equal(actual.c0.residues, expected.c0.residues)
    assert np.array_equal(actual.c1.residues, expected.c1.residues)
    assert actual.scale == expected.scale
    assert actual.level == expected.level
    assert actual.c0.domain == expected.c0.domain
    assert actual.c1.domain == expected.c1.domain


def run_both(fhe, sequential, batched):
    """Run both execution models under fresh counters; compare the counts."""
    kernels = fhe.context.kernels
    with kernels.capture() as sequential_counts:
        expected = sequential()
    with kernels.capture() as batched_counts:
        actual = batched()
    for got, want in zip(actual, expected):
        assert_same_ciphertext(got, want)
    assert batched_counts.snapshot() == sequential_counts.snapshot()
    assert dict(batched_counts.limb_vectors) == dict(sequential_counts.limb_vectors)
    return actual


@pytest.mark.parametrize("backend", available_backends())
class TestFusedParity:
    def test_add(self, fhe, streams, backend):
        lhs, rhs = streams
        with use_backend(backend):
            run_both(
                fhe,
                lambda: [fhe.evaluator.add(l, r) for l, r in zip(lhs, rhs)],
                lambda: fhe.batched_evaluator.add(lhs, rhs),
            )

    def test_multiply_plain(self, fhe, streams, rng, backend):
        lhs, _ = streams
        plaintexts = [
            fhe.encryptor.encode(rng.uniform(-1, 1, fhe.slot_count),
                                 level=ciphertext.level)
            for ciphertext in lhs
        ]
        with use_backend(backend):
            run_both(
                fhe,
                lambda: [fhe.evaluator.multiply_plain(c, p)
                         for c, p in zip(lhs, plaintexts)],
                lambda: fhe.batched_evaluator.multiply_plain(lhs, plaintexts),
            )

    def test_multiply_and_rescale(self, fhe, streams, backend):
        lhs, rhs = streams
        key = fhe.relinearization_key
        with use_backend(backend):
            products = run_both(
                fhe,
                lambda: [fhe.evaluator.multiply_and_rescale(l, r, key)
                         for l, r in zip(lhs, rhs)],
                lambda: fhe.batched_evaluator.multiply_and_rescale(lhs, rhs, key),
            )
        # The batched products decrypt to the expected slot products.
        decrypted = fhe.decrypt_real(products[0])
        reference = fhe.decrypt_real(lhs[0]) * fhe.decrypt_real(rhs[0])
        assert np.allclose(decrypted, reference, atol=1e-2)

    def test_rescale(self, fhe, streams, backend):
        lhs, rhs = streams
        key = fhe.relinearization_key
        unscaled = [fhe.evaluator.multiply(l, r, key) for l, r in zip(lhs, rhs)]
        with use_backend(backend):
            run_both(
                fhe,
                lambda: [fhe.evaluator.rescale(c) for c in unscaled],
                lambda: fhe.batched_evaluator.rescale(unscaled),
            )


class TestBookkeeping:
    def test_mixed_levels_group_correctly(self, fhe, streams):
        """Streams at different levels fuse per level group, same results."""
        lhs, rhs = streams
        mixed_rhs = ([fhe.evaluator.drop_to_level(r, 1) for r in rhs[:2]]
                     + list(rhs[2:]))
        run_both(
            fhe,
            lambda: [fhe.evaluator.add(l, r) for l, r in zip(lhs, mixed_rhs)],
            lambda: fhe.batched_evaluator.add(lhs, mixed_rhs),
        )

    def test_evaluation_domain_stream_falls_back(self, fhe, streams, rng):
        """A stream with evaluation-domain operands still computes correctly."""
        from repro.kernels import ops as kernel_ops

        lhs, _ = streams
        eval_ct = lhs[0].copy()
        eval_ct.c0 = kernel_ops.ntt(fhe.context.kernels, eval_ct.c0)
        eval_ct.c1 = kernel_ops.ntt(fhe.context.kernels, eval_ct.c1)
        ciphertexts = [eval_ct] + list(lhs[1:])
        plaintexts = [
            fhe.encryptor.encode(rng.uniform(-1, 1, fhe.slot_count),
                                 level=ciphertext.level)
            for ciphertext in ciphertexts
        ]
        run_both(
            fhe,
            lambda: [fhe.evaluator.multiply_plain(c, p)
                     for c, p in zip(ciphertexts, plaintexts)],
            lambda: fhe.batched_evaluator.multiply_plain(ciphertexts, plaintexts),
        )

    def test_scale_mismatch_rejected(self, fhe, streams):
        lhs, rhs = streams
        key = fhe.relinearization_key
        skewed = fhe.evaluator.multiply(rhs[0], rhs[0], key)
        with pytest.raises(ValueError, match="scale mismatch"):
            fhe.batched_evaluator.add([lhs[0]], [skewed])

    def test_length_mismatch_rejected(self, fhe, streams):
        lhs, rhs = streams
        with pytest.raises(ValueError, match="lengths"):
            fhe.batched_evaluator.add(lhs, rhs[:-1])

    def test_rescale_level_zero_rejected(self, fhe, streams):
        lhs, _ = streams
        bottom = fhe.evaluator.drop_to_level(lhs[0], 0)
        with pytest.raises(ValueError, match="level-0"):
            fhe.batched_evaluator.rescale([bottom])

    def test_empty_streams(self, fhe):
        assert fhe.batched_evaluator.add([], []) == []
        assert fhe.batched_evaluator.rescale([]) == []
        assert fhe.add_many([], []) == []


class TestFacadeWiring:
    def test_add_many_matches_sequential(self, fhe, streams):
        lhs, rhs = streams
        expected = [fhe.add(l, r) for l, r in zip(lhs, rhs)]
        for got, want in zip(fhe.add_many(lhs, rhs), expected):
            assert_same_ciphertext(got, want)

    def test_multiply_many_matches_sequential(self, fhe, streams):
        lhs, rhs = streams
        expected = [fhe.multiply(l, r) for l, r in zip(lhs, rhs)]
        for got, want in zip(fhe.multiply_many(lhs, rhs), expected):
            assert_same_ciphertext(got, want)

    def test_multiply_plain_many_matches_sequential(self, fhe, streams, rng):
        lhs, _ = streams
        values = [rng.uniform(-1, 1, fhe.slot_count) for _ in range(BATCH)]
        expected = [fhe.multiply_plain(c, v) for c, v in zip(lhs, values)]
        for got, want in zip(fhe.multiply_plain_many(lhs, values), expected):
            assert_same_ciphertext(got, want)

    def test_scheduler_chunks_streams(self, fhe, streams, monkeypatch):
        """The facade slices streams into scheduler-sized batches."""
        lhs, rhs = streams
        seen = []
        original = fhe.batched_evaluator.add

        def spying_add(lhs_chunk, rhs_chunk):
            seen.append(len(list(lhs_chunk)))
            return original(lhs_chunk, rhs_chunk)

        monkeypatch.setattr(fhe.batched_evaluator, "add", spying_add)
        monkeypatch.setattr(
            type(fhe), "plan_batch",
            lambda self, **kwargs: fhe.batch_scheduler.plan(
                fhe.context.ring_degree, 2, requested=2))
        results = fhe.add_many(lhs, rhs)
        assert seen == [2, 2, 1]
        expected = [fhe.evaluator.add(l, r) for l, r in zip(lhs, rhs)]
        for got, want in zip(results, expected):
            assert_same_ciphertext(got, want)

    def test_inner_sum_single_slot_needs_no_rotation_key(self):
        parameters = CkksParameters(ring_degree=1 << 6, level_count=3, dnum=3,
                                    secret_hamming_weight=8, name="toy-innersum")
        context = TensorFheContext(parameters, seed=505)
        ciphertext = context.encrypt(np.ones(context.slot_count))
        assert not context.rotation_keys.keys
        result = context.inner_sum(ciphertext, count=1)
        # count == 1 sums a single slot: no rotations, no keys generated.
        assert not context.rotation_keys.keys
        assert np.array_equal(result.c0.residues, ciphertext.c0.residues)
        # Larger counts still generate exactly the power-of-two steps.
        context.inner_sum(ciphertext, count=4)
        assert sorted(context.rotation_keys.keys) == [1, 2]
