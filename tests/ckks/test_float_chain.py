"""ISSUE 8 acceptance: the fused HMULT→RESCALE chain stays float-resident.

The whole batched multiply-relinearize-rescale chain on the blas backend —
forward NTTs, tensor products, the generalized key switch (Dcomp → ModUp →
NTT → inner-product fold → ModDown), and the rescale corrections — runs on
float64 Barrett kernels end to end.  Proven here at full strength:

* **zero intermediate int64 images** — a counter patched into
  ``FloatResidues.matrix`` records every float→int64 materialisation, and
  the fused chain performs none (the cast happens only at the
  decrypt/decode boundary, after the chain returns);
* **zero recorded transfers** — the residency layer never stages through
  host mid-chain;
* **bit-identical outputs** — against both the sequential evaluator and
  the numpy backend's int64 path, including the guard-rejection fallback
  on 33-bit chains where every funnel takes its exact object-dtype path.
"""

import numpy as np
import pytest

from repro.backend import track_transfers, use_backend
from repro.backend.blas_backend import FloatResidues
from repro.ckks import (
    BatchedEvaluator,
    CkksContext,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.kernels.base import KernelCounter

#: 20-bit primes keep every stage of the chain inside the 2**53 guard at
#: toy ring degree; the chain includes 21/22-bit extended moduli, which
#: the hi/lo split covers.
PRIME_BITS = 20
BATCH = 8


def _context(prime_bits=PRIME_BITS, special_bits=PRIME_BITS + 1,
             scale_bits=PRIME_BITS, name="float-chain"):
    parameters = CkksParameters(ring_degree=64, level_count=3, dnum=3,
                                secret_hamming_weight=8,
                                prime_bits=prime_bits,
                                special_prime_bits=special_bits,
                                scale_bits=scale_bits, name=name)
    return CkksContext(parameters, seed=7)


def _instance(context, batch, seed=31):
    keygen = KeyGenerator(context)
    secret = keygen.generate_secret_key()
    public = keygen.generate_public_key(secret)
    relin = keygen.generate_relinearization_key(secret)
    encryptor = Encryptor(context, public, secret)
    rng = np.random.default_rng(seed)
    lhs = [encryptor.encrypt(rng.uniform(-1, 1, context.slot_count))
           for _ in range(batch)]
    rhs = [encryptor.encrypt(rng.uniform(-1, 1, context.slot_count))
           for _ in range(batch)]
    return secret, relin, lhs, rhs


def _assert_ciphertexts_equal(got, want):
    for g, w in zip(got, want):
        assert np.array_equal(g.c0.residues, w.c0.residues)
        assert np.array_equal(g.c1.residues, w.c1.residues)
        assert g.scale == w.scale and g.level == w.level


@pytest.fixture(scope="module")
def fhe():
    context = _context()
    secret, relin, lhs, rhs = _instance(context, BATCH)
    return context, secret, relin, lhs, rhs


class TestFloatChainAcceptance:
    def test_zero_int64_materialisation_mid_chain(self, fhe, monkeypatch):
        context, _, relin, lhs, rhs = fhe
        builds = []
        original = FloatResidues.matrix.fget

        def counting(self):
            if self._matrix is None:
                builds.append(1)
            return original(self)

        monkeypatch.setattr(FloatResidues, "matrix", property(counting))
        batched = BatchedEvaluator(context)
        counter = KernelCounter()
        with use_backend("blas"), track_transfers(counter):
            out = batched.multiply_and_rescale(lhs, rhs, relin)
        # The fused chain cast nothing to int64 and moved nothing to host.
        assert not builds
        assert counter.transfer_total() == 0
        # Every output polynomial is still float-resident: the int64 image
        # exists only once decrypt/decode asks for it.
        for ciphertext in out:
            for poly in (ciphertext.c0, ciphertext.c1):
                assert poly.buffer.host_image is None
                assert isinstance(poly.float_image, FloatResidues)

    def test_bit_identical_to_sequential_and_numpy(self, fhe):
        context, secret, relin, lhs, rhs = fhe
        batched = BatchedEvaluator(context)
        sequential = Evaluator(context)
        with use_backend("blas"):
            fused = batched.multiply_and_rescale(lhs, rhs, relin)
        with use_backend("numpy"):
            int64_path = batched.multiply_and_rescale(lhs, rhs, relin)
        reference = [sequential.multiply_and_rescale(l, r, relin)
                     for l, r in zip(lhs, rhs)]
        _assert_ciphertexts_equal(fused, int64_path)
        _assert_ciphertexts_equal(fused, reference)

    def test_decrypts_to_the_products(self, fhe):
        context, secret, relin, lhs, rhs = fhe
        batched = BatchedEvaluator(context)
        decryptor = Decryptor(context, secret)
        with use_backend("blas"):
            out = batched.multiply_and_rescale(lhs, rhs, relin)
        # Same stream the fixture drew: lhs values first, then rhs values.
        values = np.random.default_rng(31)
        lhs_plain = [values.uniform(-1, 1, context.slot_count)
                     for _ in range(BATCH)]
        rhs_plain = [values.uniform(-1, 1, context.slot_count)
                     for _ in range(BATCH)]
        for ciphertext, a, b in zip(out, lhs_plain, rhs_plain):
            decoded = decryptor.decrypt_real(ciphertext)
            np.testing.assert_allclose(decoded, a * b, atol=1e-2)

    def test_33bit_chain_guard_rejection_bit_identical(self):
        """>= 2**31 moduli: every funnel falls back to its exact path.

        The float pipeline must decline the whole chain and the batched
        blas result must still match the sequential evaluator bit for bit
        (the acceptance fallback case of ISSUE 8).
        """
        context = _context(prime_bits=33, special_bits=33, scale_bits=33,
                           name="float-chain-33")
        secret, relin, lhs, rhs = _instance(context, 2, seed=13)
        batched = BatchedEvaluator(context)
        sequential = Evaluator(context)
        with use_backend("blas"):
            fused = batched.multiply_and_rescale(lhs, rhs, relin)
        reference = [sequential.multiply_and_rescale(l, r, relin)
                     for l, r in zip(lhs, rhs)]
        _assert_ciphertexts_equal(fused, reference)
        # Nothing in the 33-bit chain may claim float residency.
        for ciphertext in fused:
            assert ciphertext.c0.float_image is None
