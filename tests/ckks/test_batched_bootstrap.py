"""Batched bootstrapping: bit-parity, counter invariance, fewer launches.

:meth:`~repro.ckks.bootstrap.Bootstrapper.bootstrap_many` must be
*bit-identical* to looping the sequential pipeline over the streams, with
the kernel counters recording exactly the same invocations and
limb-vectors — while issuing strictly fewer NTT-planner launches.  The
suite sweeps every available compute backend and B ∈ {1, 2, 8} on the
shallow bootstrap facade, checks the B == 1 delegation and mixed-message
batches, and runs the accurate (degree-7, five double angles)
configuration end-to-end once for functional correctness.
"""

import numpy as np
import pytest

from repro.api import TensorFheContext
from repro.backend import available_backends, use_backend
from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
from repro.ckks.params import CkksParameters

BATCH_SIZES = (1, 2, 8)


@pytest.fixture(scope="module")
def fhe(bootstrap_fhe):
    return bootstrap_fhe


def exhausted_streams(fhe, rng, count, *, complex_messages=True):
    """Random small messages encrypted and dropped to level 0."""
    messages, streams = [], []
    for index in range(count):
        message = rng.uniform(-0.05, 0.05, fhe.slot_count)
        if complex_messages and index % 2 == 0:
            message = message + 1j * rng.uniform(-0.05, 0.05, fhe.slot_count)
        ciphertext = fhe.evaluator.drop_to_level(fhe.encrypt(message), 0)
        messages.append(message)
        streams.append(ciphertext)
    return messages, streams


def assert_same_ciphertext(actual, expected):
    assert np.array_equal(actual.c0.residues, expected.c0.residues)
    assert np.array_equal(actual.c1.residues, expected.c1.residues)
    assert actual.scale == expected.scale
    assert actual.level == expected.level
    assert actual.c0.domain == expected.c0.domain
    assert actual.c1.domain == expected.c1.domain


def run_both(fhe, sequential, batched):
    """Run both execution models under fresh counters; compare everything."""
    kernels = fhe.context.kernels
    with kernels.capture() as sequential_counts:
        expected = sequential()
    with kernels.capture() as batched_counts:
        actual = batched()
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert_same_ciphertext(got, want)
    assert batched_counts.snapshot() == sequential_counts.snapshot()
    assert dict(batched_counts.limb_vectors) == dict(sequential_counts.limb_vectors)
    return actual


class PlannerSpy:
    """Counts NTT-planner launches (the engine-call count fusion reduces)."""

    METHODS = ("forward_limbs", "inverse_limbs", "forward_ops", "inverse_ops")

    def __init__(self, monkeypatch, planner):
        self.calls = 0
        for name in self.METHODS:
            original = getattr(planner, name)

            def spying(*args, _original=original, **kwargs):
                self.calls += 1
                return _original(*args, **kwargs)

            monkeypatch.setattr(planner, name, spying)

    def take(self):
        calls, self.calls = self.calls, 0
        return calls


def sequential_bootstrap(fhe, streams):
    bootstrapper = fhe.bootstrapper
    return [
        bootstrapper.bootstrap(ciphertext, fhe.evaluator, fhe.encryptor,
                               fhe.relinearization_key, fhe.rotation_keys)
        for ciphertext in streams
    ]


def batched_bootstrap(fhe, streams):
    return fhe.bootstrapper.bootstrap_many(
        streams, fhe.batched_evaluator, fhe.encryptor,
        fhe.relinearization_key, fhe.rotation_keys)


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("batch", BATCH_SIZES)
class TestFusedBootstrapParity:
    def test_bit_identical_with_identical_counters(self, fhe, rng, backend,
                                                   batch):
        # Accuracy is NOT asserted here: the shallow degree-3 EvalMod of
        # this fixture cannot track the raised argument (TestBootstrapAccuracy
        # covers functional correctness with the degree-7 configuration);
        # this sweep pins bit-parity and counter invariance only.
        _, streams = exhausted_streams(fhe, rng, batch)
        with use_backend(backend):
            run_both(
                fhe,
                lambda: sequential_bootstrap(fhe, streams),
                lambda: batched_bootstrap(fhe, streams),
            )


class TestBatchedBootstrapBookkeeping:
    def test_empty_batch(self, fhe):
        assert batched_bootstrap(fhe, []) == []
        assert fhe.bootstrap_many([]) == []

    def test_single_stream_delegates_to_sequential(self, fhe, rng,
                                                   monkeypatch):
        """B == 1 must run the sequential pipeline, not stacked launches."""
        _, streams = exhausted_streams(fhe, rng, 1)
        seen = []
        original = Bootstrapper.bootstrap

        def spying(self, ciphertext, evaluator, *args, **kwargs):
            seen.append(evaluator)
            return original(self, ciphertext, evaluator, *args, **kwargs)

        monkeypatch.setattr(Bootstrapper, "bootstrap", spying)
        [refreshed] = batched_bootstrap(fhe, streams)
        assert seen == [fhe.evaluator]
        assert refreshed.c0.residues.shape[0] == refreshed.level + 1

    def test_mixed_real_and_complex_messages(self, fhe, rng):
        """Streams carrying unrelated real/complex payloads still fuse."""
        messages, streams = exhausted_streams(fhe, rng, 4,
                                              complex_messages=True)
        assert any(np.iscomplexobj(message) for message in messages)
        assert any(not np.iscomplexobj(message) for message in messages)
        run_both(
            fhe,
            lambda: sequential_bootstrap(fhe, streams),
            lambda: batched_bootstrap(fhe, streams),
        )

    def test_fused_launches_strictly_fewer(self, fhe, rng, monkeypatch):
        """The whole point: B streams in one planner launch per stage."""
        _, streams = exhausted_streams(fhe, rng, 4)
        spy = PlannerSpy(monkeypatch, fhe.context.planner)
        sequential_bootstrap(fhe, streams)
        sequential_launches = spy.take()
        batched_bootstrap(fhe, streams)
        fused_launches = spy.take()
        assert 0 < fused_launches < sequential_launches

    def test_facade_bootstrap_many_matches_loop(self, fhe, rng):
        """The facade entry point is bit-identical to looping bootstrap()."""
        _, streams = exhausted_streams(fhe, rng, 3)
        expected = [fhe.bootstrap(ciphertext) for ciphertext in streams]
        actual = fhe.bootstrap_many(streams)
        for got, want in zip(actual, expected):
            assert_same_ciphertext(got, want)


class TestBootstrapAccuracy:
    """The accurate configuration refreshes an exhausted ciphertext."""

    @pytest.fixture(scope="class")
    def accurate_fhe(self):
        parameters = CkksParameters(ring_degree=1 << 6, level_count=14,
                                    dnum=3, secret_hamming_weight=8,
                                    name="bootstrap-accurate")
        fhe = TensorFheContext(parameters, seed=606,
                               bootstrap_config=BootstrapConfig(
                                   taylor_degree=7,
                                   double_angle_iterations=5))
        fhe.ensure_rotation_keys(fhe.bootstrapper.required_rotation_steps())
        return fhe

    def test_refreshes_levels_and_message(self, accurate_fhe, rng):
        fhe = accurate_fhe
        message = (rng.uniform(-0.05, 0.05, fhe.slot_count)
                   + 1j * rng.uniform(-0.05, 0.05, fhe.slot_count))
        exhausted = fhe.evaluator.drop_to_level(fhe.encrypt(message), 0)
        refreshed = fhe.bootstrap(exhausted)
        assert refreshed.level >= 1
        assert np.allclose(fhe.decrypt(refreshed), message, atol=1e-2)

    def test_batched_matches_sequential(self, accurate_fhe, rng):
        fhe = accurate_fhe
        streams = [
            fhe.evaluator.drop_to_level(
                fhe.encrypt(rng.uniform(-0.05, 0.05, fhe.slot_count)), 0)
            for _ in range(2)
        ]
        run_both(
            fhe,
            lambda: sequential_bootstrap(fhe, streams),
            lambda: batched_bootstrap(fhe, streams),
        )
