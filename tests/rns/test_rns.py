"""Tests for the RNS layer: bases, polynomials, Conv, ModUp, ModDown."""

import numpy as np
import pytest

from repro.ntt import NttPlanner
from repro.numtheory import CrtContext, generate_ntt_primes
from repro.rns import (
    BasisConverter,
    ModDown,
    ModUp,
    PolyDomain,
    RnsBasis,
    RnsPolynomial,
    build_default_basis,
    convert_basis,
)

RING_DEGREE = 32


@pytest.fixture(scope="module")
def basis() -> RnsBasis:
    return build_default_basis(RING_DEGREE, 4, prime_bits=24, special_count=2,
                               special_bits=26)


@pytest.fixture(scope="module")
def planner() -> NttPlanner:
    return NttPlanner("four_step")


def _random_poly(rng, moduli, domain=PolyDomain.COEFFICIENT):
    rows = [rng.integers(0, q, RING_DEGREE, dtype=np.int64) for q in moduli]
    return RnsPolynomial(RING_DEGREE, moduli, np.stack(rows), domain)


class TestRnsBasis:
    def test_level_accessors(self, basis):
        assert basis.max_level == 3
        assert len(basis.primes_at_level(2)) == 3
        assert basis.modulus_at_level(1) == basis.ciphertext_primes[0] * basis.ciphertext_primes[1]

    def test_extended_primes(self, basis):
        extended = basis.extended_primes_at_level(1)
        assert extended == basis.primes_at_level(1) + basis.special_primes

    def test_special_product(self, basis):
        product = 1
        for p in basis.special_primes:
            product *= p
        assert basis.special_product == product

    def test_decomposition_groups_cover_chain(self, basis):
        groups = basis.decomposition_groups(3, 2)
        flattened = [q for group in groups for q in group]
        assert tuple(flattened) == basis.primes_at_level(3)

    def test_decomposition_groups_at_low_level(self, basis):
        groups = basis.decomposition_groups(0, 2)
        assert len(groups) == 1
        assert groups[0] == (basis.ciphertext_primes[0],)

    def test_invalid_level(self, basis):
        with pytest.raises(ValueError):
            basis.primes_at_level(99)

    def test_non_ntt_friendly_prime_rejected(self):
        with pytest.raises(ValueError):
            RnsBasis(RING_DEGREE, [97])  # 97 != 1 mod 64

    def test_duplicate_primes_rejected(self):
        primes = generate_ntt_primes(1, 24, RING_DEGREE)
        with pytest.raises(ValueError):
            RnsBasis(RING_DEGREE, primes + primes)

    def test_log_total_modulus(self, basis):
        assert basis.log_total_modulus() > basis.log_total_modulus(0)


class TestRnsPolynomial:
    def test_from_integers_roundtrip(self, basis):
        coefficients = list(range(-16, 16))
        poly = RnsPolynomial.from_integers(coefficients, basis.primes_at_level(2))
        assert poly.to_integers() == coefficients

    def test_add_matches_integers(self, basis, rng):
        moduli = basis.primes_at_level(2)
        crt = CrtContext(moduli)
        a = _random_poly(rng, moduli)
        b = _random_poly(rng, moduli)
        total = a.add(b)
        for i in range(RING_DEGREE):
            expected = (crt.compose([int(a.residues[l, i]) for l in range(3)])
                        + crt.compose([int(b.residues[l, i]) for l in range(3)])) % crt.modulus_product
            assert crt.compose([int(total.residues[l, i]) for l in range(3)]) == expected

    def test_subtract_then_add_is_identity(self, basis, rng):
        moduli = basis.primes_at_level(2)
        a = _random_poly(rng, moduli)
        b = _random_poly(rng, moduli)
        assert a.subtract(b).add(b) == a

    def test_negate_twice(self, basis, rng):
        a = _random_poly(rng, basis.primes_at_level(1))
        assert a.negate().negate() == a

    def test_hadamard_is_elementwise(self, basis, rng):
        moduli = basis.primes_at_level(1)
        a = _random_poly(rng, moduli)
        b = _random_poly(rng, moduli)
        product = a.hadamard(b)
        assert np.array_equal(product.residues[0],
                              (a.residues[0] * b.residues[0]) % moduli[0])

    def test_scalar_multiply(self, basis, rng):
        moduli = basis.primes_at_level(1)
        a = _random_poly(rng, moduli)
        tripled = a.scalar_multiply(3)
        assert tripled == a.add(a).add(a)

    def test_scalar_multiply_per_limb(self, basis, rng):
        moduli = basis.primes_at_level(1)
        a = _random_poly(rng, moduli)
        scaled = a.scalar_multiply_per_limb([1, 2])
        assert np.array_equal(scaled.residues[0], a.residues[0])
        assert np.array_equal(scaled.residues[1], (2 * a.residues[1]) % moduli[1])

    def test_domain_mismatch_rejected(self, basis, rng):
        moduli = basis.primes_at_level(1)
        a = _random_poly(rng, moduli)
        b = _random_poly(rng, moduli, PolyDomain.EVALUATION)
        with pytest.raises(ValueError):
            a.add(b)

    def test_basis_mismatch_rejected(self, basis, rng):
        a = _random_poly(rng, basis.primes_at_level(1))
        b = _random_poly(rng, basis.primes_at_level(2))
        with pytest.raises(ValueError):
            a.add(b)

    def test_ntt_roundtrip_preserves_poly(self, basis, planner, rng):
        a = _random_poly(rng, basis.primes_at_level(2))
        assert a.to_evaluation(planner).to_coefficient(planner) == a

    def test_eval_domain_hadamard_is_ring_multiplication(self, basis, planner):
        """Hadamard in the NTT domain == negacyclic polynomial product."""
        moduli = basis.primes_at_level(0)
        x_poly = RnsPolynomial.from_integers([0, 1] + [0] * (RING_DEGREE - 2), moduli)
        y_poly = RnsPolynomial.from_integers([3] + [0] * (RING_DEGREE - 1), moduli)
        product = (x_poly.to_evaluation(planner)
                   .hadamard(y_poly.to_evaluation(planner))
                   .to_coefficient(planner))
        expected = [0, 3] + [0] * (RING_DEGREE - 2)
        assert product.to_integers(centered=False) == expected

    def test_restrict_and_drop(self, basis, rng):
        moduli = basis.primes_at_level(2)
        a = _random_poly(rng, moduli)
        restricted = a.restrict_to(moduli[:2])
        assert restricted.moduli == moduli[:2]
        assert a.drop_last_limb() == restricted

    def test_drop_last_limb_of_single_limb_rejected(self, basis, rng):
        a = _random_poly(rng, basis.primes_at_level(0))
        with pytest.raises(ValueError):
            a.drop_last_limb()

    def test_random_ternary_hamming_weight(self, basis):
        rng = np.random.default_rng(7)
        poly = RnsPolynomial.random_ternary(RING_DEGREE, basis.primes_at_level(0),
                                            rng, hamming_weight=5)
        nonzero = np.count_nonzero(poly.residues[0] % basis.ciphertext_primes[0])
        assert nonzero == 5


class TestBasisConversion:
    def test_exact_for_single_prime_source(self, basis, rng):
        """With a single source prime the fast conversion is exact
        (q_hat = 1, so no approximation error term arises)."""
        source = basis.primes_at_level(0)
        target = basis.special_primes
        coefficients = rng.integers(0, 200, RING_DEGREE)
        poly = RnsPolynomial.from_integers(coefficients, source)
        converted = convert_basis(poly, target)
        expected = RnsPolynomial.from_integers(coefficients, target)
        assert converted == expected

    def test_error_is_multiple_of_source_modulus(self, basis, rng):
        """For arbitrary values Conv(x) = x + e*Q with integer e (small)."""
        source = basis.primes_at_level(1)
        q_product = basis.modulus_at_level(1)
        target = basis.special_primes
        target_crt = CrtContext(target)
        poly = _random_poly(rng, source)
        converted = BasisConverter(source, target).convert(poly)
        source_crt = CrtContext(source)
        for i in range(RING_DEGREE):
            original = source_crt.compose([int(poly.residues[l, i]) for l in range(2)])
            lifted = target_crt.compose([int(converted.residues[l, i])
                                         for l in range(len(target))])
            difference = lifted - original
            assert difference % q_product == 0
            assert abs(difference // q_product) <= len(source)

    def test_overlapping_bases_rejected(self, basis):
        with pytest.raises(ValueError):
            BasisConverter(basis.primes_at_level(1), basis.primes_at_level(2))

    def test_requires_coefficient_domain(self, basis, rng):
        poly = _random_poly(rng, basis.primes_at_level(0), PolyDomain.EVALUATION)
        with pytest.raises(ValueError):
            convert_basis(poly, basis.special_primes)


class TestModUpModDown:
    def test_modup_preserves_value_mod_group(self, basis, rng):
        groups = basis.decomposition_groups(3, 2)
        extended = basis.extended_primes_at_level(3)
        group = groups[0]
        group_product = 1
        for q in group:
            group_product *= q
        coefficients = rng.integers(0, 100, RING_DEGREE)
        poly = RnsPolynomial.from_integers(coefficients, group)
        raised = ModUp(group, extended).apply(poly)
        assert raised.moduli == extended
        # Small non-negative values are represented exactly; in general the
        # raised value may differ by a small multiple of the group modulus.
        for got, want in zip(raised.to_integers(centered=False),
                             [int(c) for c in coefficients]):
            assert (got - want) % group_product == 0
            assert abs(got - want) // group_product <= len(group)

    def test_moddown_divides_by_special_product(self, basis):
        extended = basis.extended_primes_at_level(2)
        active = basis.primes_at_level(2)
        special_product = basis.special_product
        values = [special_product * v for v in range(-8, RING_DEGREE - 8)]
        poly = RnsPolynomial.from_integers(values, extended)
        lowered = ModDown(active, basis.special_primes).apply(poly)
        assert lowered.to_integers() == list(range(-8, RING_DEGREE - 8))

    def test_moddown_rounding_error_is_small(self, basis, rng):
        extended = basis.extended_primes_at_level(1)
        active = basis.primes_at_level(1)
        special_product = basis.special_product
        exact = rng.integers(-1000, 1000, RING_DEGREE)
        noise = rng.integers(-special_product // 4, special_product // 4, RING_DEGREE)
        values = [int(special_product) * int(v) + int(e) for v, e in zip(exact, noise)]
        poly = RnsPolynomial.from_integers(values, extended)
        lowered = ModDown(active, basis.special_primes).apply(poly)
        recovered = lowered.to_integers()
        for got, want in zip(recovered, exact):
            assert abs(got - want) <= len(basis.special_primes) + 1

    def test_moddown_requires_matching_basis(self, basis, rng):
        poly = _random_poly(rng, basis.primes_at_level(1))
        with pytest.raises(ValueError):
            ModDown(basis.primes_at_level(1), basis.special_primes).apply(poly)
