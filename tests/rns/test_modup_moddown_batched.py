"""Batched ModUp / ModDown / Conv parity against the per-stream path.

Every ``(B, …)`` entry point must be bit-identical to looping its
per-stream sibling over the batch.  The suite includes a prime chain at
and above 2**32, where a single residue product overflows int64: the
mat-mod funnel must route those launches through the exact object-dtype
path (the regression class fixed twice already, in PRs 2 and 3).
"""

import numpy as np
import pytest

from repro.numtheory import generate_ntt_primes
from repro.rns import BasisConverter, ModDown, ModUp, RnsPolynomial

RING_DEGREE = 32
BATCH_SIZES = (1, 2, 5)

#: 24-bit chain: every product fits int64, the fast backend paths apply.
SMALL_PRIMES = tuple(generate_ntt_primes(6, 24, RING_DEGREE))
#: 33-bit chain: residue products overflow int64, pinning the exact
#: object-dtype funnel fallback.
WIDE_PRIMES = tuple(generate_ntt_primes(6, 33, RING_DEGREE))

CHAINS = {"small": SMALL_PRIMES, "wide": WIDE_PRIMES}


def random_stack(rng, moduli, batch):
    return np.stack([
        np.stack([rng.integers(0, q, RING_DEGREE, dtype=np.int64)
                  for q in moduli])
        for _ in range(batch)
    ])


def as_poly(moduli, residues):
    return RnsPolynomial(RING_DEGREE, moduli, residues)


@pytest.mark.parametrize("chain", sorted(CHAINS))
@pytest.mark.parametrize("batch", BATCH_SIZES)
class TestBatchedParity:
    def test_convert_residues_batch(self, rng, chain, batch):
        primes = CHAINS[chain]
        source, target = primes[:3], primes[3:]
        converter = BasisConverter(source, target)
        stacks = random_stack(rng, source, batch)
        fused = converter.convert_residues_batch(stacks)
        assert fused.shape == (batch, len(target), RING_DEGREE)
        for b in range(batch):
            assert np.array_equal(fused[b],
                                  converter.convert_residues(stacks[b]))

    def test_modup_batch(self, rng, chain, batch):
        primes = CHAINS[chain]
        group, extended = primes[:2], primes[:4] + primes[4:]
        modup = ModUp(group, extended)
        stacks = random_stack(rng, group, batch)
        fused = modup.apply_batch(stacks)
        assert fused.shape == (batch, len(extended), RING_DEGREE)
        for b in range(batch):
            expected = modup.apply(as_poly(group, stacks[b]))
            assert np.array_equal(fused[b], expected.residues)

    def test_moddown_batch(self, rng, chain, batch):
        primes = CHAINS[chain]
        active, special = primes[:4], primes[4:]
        moddown = ModDown(active, special)
        stacks = random_stack(rng, active + special, batch)
        fused = moddown.apply_batch(stacks)
        assert fused.shape == (batch, len(active), RING_DEGREE)
        for b in range(batch):
            expected = moddown.apply(as_poly(active + special, stacks[b]))
            assert np.array_equal(fused[b], expected.residues)


class TestExactness:
    def test_wide_chain_exceeds_int64_products(self):
        """The wide chain really is the overflow regime being pinned."""
        assert min(WIDE_PRIMES) >= 1 << 32
        assert min(WIDE_PRIMES) ** 2 >= 1 << 63

    def test_wide_conv_matches_bigint_reference(self, rng):
        """Batched Conv equals the arbitrary-precision formula exactly."""
        source, target = WIDE_PRIMES[:3], WIDE_PRIMES[3:5]
        converter = BasisConverter(source, target)
        stacks = random_stack(rng, source, 2)
        fused = converter.convert_residues_batch(stacks)
        for b in range(2):
            for n in range(RING_DEGREE):
                y = [(int(stacks[b, i, n]) * converter.q_hat_inv[i]) % q
                     for i, q in enumerate(source)]
                for j, p in enumerate(target):
                    reference = sum(
                        y_i * (h % p) for y_i, h in zip(y, converter.q_hat)
                    ) % p
                    assert int(fused[b, j, n]) == reference

    def test_wide_moddown_divides_exactly(self):
        """ModDown on a wide chain still computes round(x / P) in batch."""
        active, special = WIDE_PRIMES[:2], WIDE_PRIMES[2:4]
        moddown = ModDown(active, special)
        special_product = moddown.special_product
        values = [special_product * v for v in range(-8, RING_DEGREE - 8)]
        poly = RnsPolynomial.from_integers(values, active + special)
        fused = moddown.apply_batch(
            np.stack([poly.residues, poly.residues]))
        for b in range(2):
            lowered = RnsPolynomial(RING_DEGREE, active, fused[b])
            assert lowered.to_integers() == list(range(-8, RING_DEGREE - 8))


class TestShapes:
    def test_empty_batches(self):
        source, target = SMALL_PRIMES[:2], SMALL_PRIMES[2:4]
        converter = BasisConverter(source, target)
        empty = np.zeros((0, 2, RING_DEGREE), dtype=np.int64)
        assert converter.convert_residues_batch(empty).shape == (
            0, 2, RING_DEGREE)
        modup = ModUp(source, source + target)
        assert modup.apply_batch(empty).shape == (0, 4, RING_DEGREE)
        moddown = ModDown(source, target)
        empty_extended = np.zeros((0, 4, RING_DEGREE), dtype=np.int64)
        assert moddown.apply_batch(empty_extended).shape == (
            0, 2, RING_DEGREE)

    def test_wrong_shapes_rejected(self, rng):
        source, target = SMALL_PRIMES[:2], SMALL_PRIMES[2:4]
        converter = BasisConverter(source, target)
        with pytest.raises(ValueError, match="residue stack"):
            converter.convert_residues_batch(
                np.zeros((2, 3, RING_DEGREE), dtype=np.int64))
        with pytest.raises(ValueError, match="residue stack"):
            ModUp(source, source + target).apply_batch(
                np.zeros((4, RING_DEGREE), dtype=np.int64))
        with pytest.raises(ValueError, match="residue stack"):
            ModDown(source, target).apply_batch(
                np.zeros((2, 3, RING_DEGREE), dtype=np.int64))

    def test_modup_single_stream_matches_apply(self, rng):
        """B == 1 short-circuits through the per-stream Conv yet stays exact."""
        source = SMALL_PRIMES[:2]
        extended = SMALL_PRIMES[:4]
        modup = ModUp(source, extended)
        stack = random_stack(rng, source, 1)
        fused = modup.apply_batch(stack)
        expected = modup.apply(as_poly(source, stack[0]))
        assert np.array_equal(fused[0], expected.residues)
