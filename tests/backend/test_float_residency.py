"""Float-resident kernel chains: parity, residency, guard fallback.

Three layers of coverage for the float64 Barrett pipeline:

* the backend ``f*`` kernels — bit-parity with the int64 ``%`` reference
  on canonical residue images, including the ``out=`` scratch contract of
  ``fmatmul``;
* the blas float-resident natives — a handle carrying a float64 image in
  produces a *float-only* handle out (``host_image`` is None, no int64
  anywhere mid-chain, zero recorded transfers), bit-identical to the host
  funnel path, with the 2**53 guard falling back to int64 exactly where
  it must;
* the four-step engine pipeline — fused ``forward_ops``/``inverse_ops``
  on blas match the numpy engine bit-for-bit, keep handle outputs
  float-resident, and reject out-of-guard chains onto the historical
  int64 path.
"""

import numpy as np
import pytest

from repro.backend import (
    DeviceBuffer,
    FloatOperandCache,
    as_ndarray,
    get_backend,
    track_transfers,
    use_backend,
)
from repro.backend.blas_backend import FloatResidues
from repro.kernels.base import KernelCounter
from repro.ntt import NttPlanner
from repro.ntt.gemm_utils import modular_hadamard_limbs, modular_matmul_limbs
from repro.numtheory import generate_ntt_primes
from repro.numtheory.floatmod import get_barrett_chain
from repro.numtheory.modular import mat_mod_add, mat_mod_mul, mat_mod_sub
from repro.rns.moddown import ModDown
from repro.rns.poly import RnsPolynomial

#: Auto-skip for float-residency coverage: the tests query the structured
#: ``capabilities()`` report instead of probing backend internals, so a
#: build whose blas backend cannot promise float residency skips cleanly.
requires_float_residency = pytest.mark.skipif(
    not get_backend("blas").capabilities().get("float_residency", False),
    reason="blas backend does not report float residency",
)


def _chain(bits, limbs=4, ring_degree=1024):
    return get_barrett_chain(generate_ntt_primes(limbs, bits, ring_degree))


def _residues(rng, chain, count=64):
    """Canonical residues, one row per limb, as (int64, float64) images."""
    q_col = chain.moduli_array[:, None]
    ints = rng.integers(0, q_col, size=(chain.limb_count, count))
    return ints, ints.astype(np.float64)


class TestFloatKernels:
    """Backend ``f*`` kernels agree bit-for-bit with the ``%`` reference."""

    @pytest.fixture()
    def backend(self):
        return get_backend("blas")

    @pytest.mark.parametrize("bits", [20, 26])
    def test_fhadamard_parity(self, backend, rng, bits):
        chain = _chain(bits)
        a_int, a_f = _residues(rng, chain)
        b_int, b_f = _residues(rng, chain)
        assert chain.fits((chain.qmax - 1) ** 2)
        got = backend.fhadamard_limbs(a_f, b_f, chain)
        want = (a_int * b_int) % chain.moduli_array[:, None]
        assert np.array_equal(got.astype(np.int64), want)

    def test_fadd_fsub_parity(self, backend, rng):
        chain = _chain(27)
        q_col = chain.moduli_array[:, None]
        a_int, a_f = _residues(rng, chain)
        b_int, b_f = _residues(rng, chain)
        add = backend.fadd_limbs(a_f, b_f, chain)
        sub = backend.fsub_limbs(a_f, b_f, chain)
        assert np.array_equal(add.astype(np.int64), (a_int + b_int) % q_col)
        assert np.array_equal(sub.astype(np.int64), (a_int - b_int) % q_col)
        # Results are canonical, so they can feed the next launch directly.
        assert np.all(add >= 0) and np.all(add < q_col)
        assert np.all(sub >= 0) and np.all(sub < q_col)

    def test_fscalar_mul_and_freduce_parity(self, backend, rng):
        chain = _chain(20)
        q_col = chain.moduli_array[:, None]
        a_int, a_f = _residues(rng, chain)
        scalars = rng.integers(1, q_col, size=(chain.limb_count, 1))
        got = backend.fscalar_mul_limbs(a_f, scalars.astype(np.float64), chain)
        assert np.array_equal(got.astype(np.int64), (a_int * scalars) % q_col)
        raw = rng.integers(0, chain.qmax ** 2, size=(chain.limb_count, 64))
        reduced = backend.freduce_limbs(raw.astype(np.float64), chain)
        assert np.array_equal(reduced.astype(np.int64), raw % q_col)

    def test_fmatmul_out_contract(self, backend, rng):
        lhs = rng.integers(0, 97, (3, 8, 8)).astype(np.float64)
        rhs = rng.integers(0, 97, (3, 8, 5)).astype(np.float64)
        out = np.empty((3, 8, 5), dtype=np.float64)
        got = backend.fmatmul(lhs, rhs, out=out)
        assert got is out
        assert np.array_equal(got, np.matmul(lhs, rhs))

    def test_limb_axis_one(self, backend, rng):
        """(B, L, N) stacks reduce along axis=1, matching the fused layout."""
        chain = _chain(20)
        q_col = chain.moduli_array[None, :, None]
        ints = rng.integers(0, q_col, size=(2, chain.limb_count, 16))
        got = backend.fhadamard_limbs(ints.astype(np.float64),
                                      ints.astype(np.float64), chain, axis=1)
        assert np.array_equal(got.astype(np.int64), (ints * ints) % q_col)


class TestFloatResidues:
    def test_lazy_int64_materialisation(self):
        values = np.asarray([[3.0, 7.0], [1.0, 0.0]])
        cache = FloatResidues(values, 7)
        assert cache.full() is values          # float image is free
        first = cache.matrix                    # cast happens here, once
        assert first.dtype == np.int64
        assert cache.matrix is first
        assert np.array_equal(first, values.astype(np.int64))


class TestCapabilitiesReport:
    """The structured ``capabilities()`` report and its deprecated alias."""

    def test_blas_reports_float_residency(self):
        report = get_backend("blas").capabilities()
        assert report["name"] == "blas"
        assert report["float_residency"] is True
        assert report["exact_fallback"] is True
        assert report["device_is_host"] is True

    def test_numpy_reports_no_float_residency(self):
        report = get_backend("numpy").capabilities()
        assert report["name"] == "numpy"
        assert report["float_residency"] is False
        assert report["exact_fallback"] is True

    @pytest.mark.parametrize("name", ["numpy", "blas"])
    def test_deprecated_alias_matches_report(self, name):
        # ``supports_float_residency`` stays as a read-only alias until
        # external callers migrate; it must never drift from the report.
        backend = get_backend(name)
        assert backend.capabilities()["float_residency"] == bool(
            backend.supports_float_residency)

    def test_report_is_fresh_per_call(self):
        # Callers may scribble on the returned dict (feature probing);
        # that must not poison later queries.
        backend = get_backend("blas")
        scribbled = backend.capabilities()
        scribbled["float_residency"] = False
        assert backend.capabilities()["float_residency"] is True


@requires_float_residency
class TestBlasFloatNatives:
    """Float image in → float-only handle out, guarded, bit-identical."""

    BITS = 20

    @pytest.fixture()
    def data(self, rng):
        chain = _chain(self.BITS)
        a_int, a_f = _residues(rng, chain)
        b_int, b_f = _residues(rng, chain)
        return chain, a_int, b_int

    def _float_handle(self, ints):
        return DeviceBuffer.wrap(ints).attach_float_cache(FloatOperandCache(ints))

    @pytest.mark.parametrize("fn", [mat_mod_mul, mat_mod_add, mat_mod_sub])
    def test_mat_funnels_stay_float_resident(self, data, fn):
        chain, a_int, b_int = data
        column = chain.moduli_array[:, None]
        want = fn(a_int, b_int, column)
        counter = KernelCounter()
        with use_backend("blas"), track_transfers(counter):
            got = fn(self._float_handle(a_int), self._float_handle(b_int),
                     column)
            assert isinstance(got, DeviceBuffer)
            # Float-only output: no int64 image exists until the boundary.
            assert got.host_image is None
            assert isinstance(got.float_cache(), FloatResidues)
        assert counter.transfer_total() == 0
        assert np.array_equal(got.ensure_host(), want)

    def test_hadamard_funnel_one_float_side(self, data):
        """One float-carrying side is enough; the other converts per call."""
        chain, a_int, b_int = data
        moduli = chain.moduli_array
        want = modular_hadamard_limbs(a_int, b_int, moduli)
        with use_backend("blas"):
            got = modular_hadamard_limbs(self._float_handle(a_int),
                                         DeviceBuffer.wrap(b_int), moduli)
        assert got.host_image is None
        assert np.array_equal(got.ensure_host(), want)

    def test_no_float_image_falls_back_to_int64(self, data):
        """Neither side resident: the historical int64 native runs."""
        chain, a_int, b_int = data
        moduli = chain.moduli_array
        want = modular_hadamard_limbs(a_int, b_int, moduli)
        with use_backend("blas"):
            got = modular_hadamard_limbs(DeviceBuffer.wrap(a_int),
                                         DeviceBuffer.wrap(b_int), moduli)
        assert got.host_image is not None
        assert np.array_equal(as_ndarray(got), want)

    def test_30bit_products_stay_float_via_split(self, rng):
        """30-bit products break 2**53 single-pass — the hi/lo split holds.

        Pre-split, these chains fell back to int64; the split identity
        keeps every intermediate inside the mantissa, so the native stays
        float-resident and bit-identical.
        """
        chain = _chain(30)
        assert not chain.fits((chain.qmax - 1) ** 2)   # single pass unsafe
        assert chain.fits_product()                    # split restores it
        a_int, _ = _residues(rng, chain)
        b_int, _ = _residues(rng, chain)
        want = modular_hadamard_limbs(a_int, b_int, chain.moduli_array)
        with use_backend("blas"):
            got = modular_hadamard_limbs(self._float_handle(a_int),
                                         self._float_handle(b_int),
                                         chain.moduli_array)
        assert got.host_image is None              # float path produced it
        assert isinstance(got.float_cache(), FloatResidues)
        assert np.array_equal(as_ndarray(got), want)

    def test_guard_rejection_falls_back_bit_identical(self, rng):
        """>= 2**31 moduli: the funnel's exact object path must run.

        The float natives never see these chains — the dispatching funnel
        routes them to object-dtype arithmetic before backend dispatch —
        and the result is bit-identical with a host image materialised.
        """
        moduli = np.asarray(generate_ntt_primes(2, 33, 64), dtype=np.int64)
        assert int(moduli.max()) >= (1 << 31)
        q_col = moduli[:, None]
        a_int = rng.integers(0, q_col, size=(2, 64))
        b_int = rng.integers(0, q_col, size=(2, 64))
        want = modular_hadamard_limbs(a_int, b_int, moduli)
        with use_backend("blas"):
            got = modular_hadamard_limbs(self._float_handle(a_int),
                                         self._float_handle(b_int),
                                         moduli)
        assert got.host_image is not None          # exact path produced it
        assert np.array_equal(as_ndarray(got), want)

    def test_chained_launches_materialise_no_int64(self, data):
        """A mul → add → sub chain stays float-resident end to end."""
        chain, a_int, b_int = data
        column = chain.moduli_array[:, None]
        want = ((a_int * b_int) % column + a_int - b_int) % column
        with use_backend("blas"):
            a = self._float_handle(a_int)
            b = self._float_handle(b_int)
            product = mat_mod_mul(a, b, column)
            total = mat_mod_add(product, a, column)
            result = mat_mod_sub(total, b, column)
            for stage in (product, total, result):
                assert stage.host_image is None
        assert np.array_equal(result.ensure_host(), want)

    def test_float_output_feeds_batched_gemm(self, data, rng):
        """FloatResidues output flows into the fully-resident dgemm path."""
        chain, a_int, b_int = data
        moduli = chain.moduli_array
        twiddle = rng.integers(0, chain.moduli_array[:, None, None],
                               size=(chain.limb_count, 64, 64))
        lhs_want = modular_hadamard_limbs(a_int, b_int, moduli)
        want = modular_matmul_limbs(lhs_want.reshape(chain.limb_count, 1, 64),
                                    twiddle, moduli)
        with use_backend("blas"):
            product = modular_hadamard_limbs(self._float_handle(a_int),
                                             self._float_handle(b_int), moduli)
            lhs = product.reshape(chain.limb_count, 1, 64)
            assert lhs.host_image is None          # the view stayed float
            got = modular_matmul_limbs(
                lhs, self._float_handle(twiddle), moduli)
        assert np.array_equal(as_ndarray(got), as_ndarray(want))


class TestFloatHandleViews:
    """Shape ops on float-only handles never materialise int64."""

    def test_view_chain_stays_float_resident(self):
        values = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        buf = DeviceBuffer.from_float(FloatResidues(values, 23))
        view = buf.reshape(6, 4).transpose(1, 0)[:2]
        assert view.host_image is None
        expected = values.reshape(6, 4).transpose(1, 0)[:2]
        assert np.array_equal(view.float_cache().full(), expected)
        assert np.array_equal(view.ensure_host(),
                              expected.astype(np.int64))

    def test_ensure_host_records_no_transfer(self):
        counter = KernelCounter()
        buf = DeviceBuffer.from_float(
            FloatResidues(np.asarray([[5.0, 6.0]]), 6))
        with track_transfers(counter):
            host = buf.ensure_host()
        assert counter.transfer_total() == 0        # host-side cast only
        assert host.dtype == np.int64
        assert np.array_equal(host, [[5, 6]])


@requires_float_residency
class TestFourStepFloatPipeline:
    """The fused engine pipeline: parity, residency, guard fallback."""

    N = 1024
    LIMBS = 4
    BATCH = 4

    def _stacks(self, bits, seed=17):
        primes = generate_ntt_primes(self.LIMBS, bits, self.N)
        rng = np.random.default_rng(seed)
        stacks = np.stack([
            np.stack([rng.integers(0, q, self.N, dtype=np.int64)
                      for q in primes])
            for _ in range(self.BATCH)
        ])
        return primes, stacks

    def test_forward_ops_parity_with_numpy_engine(self):
        primes, stacks = self._stacks(20)
        blas = NttPlanner("four_step", backend="blas")
        reference = NttPlanner("four_step", backend="numpy")
        got = blas.forward_ops(self.N, primes, stacks)
        want = reference.forward_ops(self.N, primes, stacks)
        assert isinstance(got, np.ndarray) and got.dtype == np.int64
        assert np.array_equal(got, np.asarray(want))

    def test_inverse_roundtrip(self):
        primes, stacks = self._stacks(20)
        planner = NttPlanner("four_step", backend="blas")
        forward = planner.forward_ops(self.N, primes, stacks)
        back = planner.inverse_ops(self.N, primes, forward)
        assert np.array_equal(np.asarray(back), stacks)

    def test_handle_in_float_handle_out_zero_transfers(self):
        primes, stacks = self._stacks(20)
        planner = NttPlanner("four_step", backend="blas")
        want = planner.forward_ops(self.N, primes, stacks)
        counter = KernelCounter()
        with use_backend("blas"), track_transfers(counter):
            got = planner.forward_ops(self.N, primes, DeviceBuffer.wrap(stacks))
        assert isinstance(got, DeviceBuffer)
        assert got.host_image is None              # float-resident output
        assert isinstance(got.float_cache(), FloatResidues)
        assert counter.transfer_total() == 0
        assert np.array_equal(got.ensure_host(), np.asarray(want))

    def test_guard_rejection_takes_int64_path(self):
        """27-bit primes break n1 * (q-1)**2 < 2**53 at N=1024: fallback."""
        primes, stacks = self._stacks(27)
        chain = get_barrett_chain(primes)
        n1 = int(np.sqrt(self.N))
        assert not chain.fits(n1 * (chain.qmax - 1) ** 2)
        blas = NttPlanner("four_step", backend="blas")
        reference = NttPlanner("four_step", backend="numpy")
        want = reference.forward_ops(self.N, primes, stacks)
        with use_backend("blas"):
            got = blas.forward_ops(self.N, primes, DeviceBuffer.wrap(stacks))
        assert np.array_equal(as_ndarray(got), np.asarray(want))

    def test_results_do_not_alias_engine_scratch(self):
        """Back-to-back launches reuse scratch but hand out fresh results."""
        primes, stacks = self._stacks(20)
        planner = NttPlanner("four_step", backend="blas")
        first = np.asarray(planner.forward_ops(self.N, primes, stacks))
        snapshot = first.copy()
        second = np.asarray(planner.forward_ops(self.N, primes, stacks))
        assert not np.shares_memory(first, second)
        assert np.array_equal(first, snapshot)     # untouched by relaunch
        assert np.array_equal(first, second)

    def test_kernel_counter_parity_between_paths(self):
        """Engine-internal float residency is invisible to instrumentation."""
        primes, stacks = self._stacks(20)
        blas = NttPlanner("four_step", backend="blas")
        reference = NttPlanner("four_step", backend="numpy")
        blas_counter, ref_counter = KernelCounter(), KernelCounter()
        with track_transfers(blas_counter):
            blas.forward_ops(self.N, primes, stacks)
        with track_transfers(ref_counter):
            reference.forward_ops(self.N, primes, stacks)
        assert blas_counter.transfer_total() == ref_counter.transfer_total() == 0


@requires_float_residency
class TestMatrixNttFloatPipeline:
    """The dense-matrix engine joins the fused float pipeline.

    Same contract as the four-step pipeline: plain arrays keep the
    historical int64 results bit-for-bit, handles come back float-resident
    with zero transfers, and chains whose ``N * (q-1)**2`` bound crosses
    2**53 fall back to the int64 path.
    """

    N = 256
    LIMBS = 4
    BATCH = 4

    def _stacks(self, bits, seed=23):
        primes = generate_ntt_primes(self.LIMBS, bits, self.N)
        rng = np.random.default_rng(seed)
        stacks = np.stack([
            np.stack([rng.integers(0, q, self.N, dtype=np.int64)
                      for q in primes])
            for _ in range(self.BATCH)
        ])
        return primes, stacks

    def test_forward_parity_and_roundtrip(self):
        primes, stacks = self._stacks(20)
        blas = NttPlanner("matrix", backend="blas")
        reference = NttPlanner("matrix", backend="numpy")
        got = blas.forward_ops(self.N, primes, stacks)
        want = reference.forward_ops(self.N, primes, stacks)
        assert isinstance(got, np.ndarray) and got.dtype == np.int64
        assert np.array_equal(got, np.asarray(want))
        back = blas.inverse_ops(self.N, primes, got)
        assert np.array_equal(np.asarray(back), stacks)

    def test_handle_in_float_handle_out_zero_transfers(self):
        primes, stacks = self._stacks(20)
        planner = NttPlanner("matrix", backend="blas")
        want = planner.forward_ops(self.N, primes, stacks)
        counter = KernelCounter()
        with use_backend("blas"), track_transfers(counter):
            got = planner.forward_ops(self.N, primes, DeviceBuffer.wrap(stacks))
        assert isinstance(got, DeviceBuffer)
        assert got.host_image is None
        assert isinstance(got.float_cache(), FloatResidues)
        assert counter.transfer_total() == 0
        assert np.array_equal(got.ensure_host(), np.asarray(want))

    def test_inverse_consumes_float_handle_stays_resident(self):
        # Forward output feeds inverse directly: the degree-inverse fold
        # runs in float64 and the roundtrip never materialises int64.
        primes, stacks = self._stacks(20)
        planner = NttPlanner("matrix", backend="blas")
        counter = KernelCounter()
        with use_backend("blas"), track_transfers(counter):
            forward = planner.forward_ops(self.N, primes,
                                          DeviceBuffer.wrap(stacks))
            back = planner.inverse_ops(self.N, primes, forward)
        assert back.host_image is None
        assert counter.transfer_total() == 0
        assert np.array_equal(back.ensure_host(), stacks)

    def test_guard_rejection_takes_int64_path(self):
        """27-bit primes break N * (q-1)**2 < 2**53 at N=256: fallback."""
        primes, stacks = self._stacks(27)
        chain = get_barrett_chain(primes)
        assert not chain.fits(self.N * (chain.qmax - 1) ** 2)
        blas = NttPlanner("matrix", backend="blas")
        reference = NttPlanner("matrix", backend="numpy")
        want = reference.forward_ops(self.N, primes, stacks)
        with use_backend("blas"):
            got = blas.forward_ops(self.N, primes, DeviceBuffer.wrap(stacks))
        assert np.array_equal(as_ndarray(got), np.asarray(want))

    def test_scratch_reuse_does_not_alias_results(self):
        """Back-to-back launches reuse the cached ``out=`` scratch."""
        primes, stacks = self._stacks(20)
        planner = NttPlanner("matrix", backend="blas")
        first = np.asarray(planner.forward_ops(self.N, primes, stacks))
        snapshot = first.copy()
        second = np.asarray(planner.forward_ops(self.N, primes, stacks))
        assert not np.shares_memory(first, second)
        assert np.array_equal(first, snapshot)
        assert np.array_equal(first, second)


@requires_float_residency
class TestModDownFloatResident:
    """ModDown (Conv + sub + mul-by-P^-1) threads float residency through.

    The basis-conversion GEMM, the subtraction, and the ``P^{-1}``
    multiply all stay on the float64 Barrett kernels, so the whole
    ModDown of a float-carrying stack lands float-resident — including
    30-bit chains, where the conversion GEMM takes the hi/lo split path.
    """

    BATCH = 4
    N = 64

    def _setup(self, bits, limbs=3, specials=1, seed=5):
        """A ModDown instance plus its input as a float-ONLY handle.

        Mid-chain, ModDown consumes the inner-product fold's output — a
        float-only handle with no host image — so the test input mirrors
        that shape exactly.
        """
        primes = generate_ntt_primes(limbs + specials, bits, self.N)
        moddown = ModDown(primes[:limbs], primes[limbs:])
        rng = np.random.default_rng(seed)
        extended = np.asarray(primes, dtype=np.int64)[None, :, None]
        stacks = rng.integers(0, extended,
                              size=(self.BATCH, limbs + specials, self.N))
        handle = DeviceBuffer.from_float(
            FloatResidues(stacks.astype(np.float64), max(primes) - 1))
        return moddown, stacks, handle

    @pytest.mark.parametrize("bits", [20, 30])
    def test_batch_float_resident_parity(self, bits):
        moddown, stacks, handle = self._setup(bits)
        want = moddown.apply_batch(stacks)
        counter = KernelCounter()
        with use_backend("blas"), track_transfers(counter):
            got = moddown.apply_batch(handle)
        assert isinstance(got, DeviceBuffer)
        assert got.host_image is None
        assert isinstance(got.float_cache(), FloatResidues)
        assert counter.transfer_total() == 0
        assert np.array_equal(got.ensure_host(), np.asarray(want))

    def test_guard_boundary_falls_back_bit_identical(self):
        """>= 2**31 moduli keep ModDown on the exact funnel paths."""
        moddown, stacks, handle = self._setup(33)
        want = moddown.apply_batch(stacks)
        with use_backend("blas"):
            got = moddown.apply_batch(handle)
        assert np.array_equal(as_ndarray(got), np.asarray(want))


class TestPolynomialFloatResidency:
    """RnsPolynomial carries float handles; mutation invalidates them."""

    def _primes(self):
        return tuple(generate_ntt_primes(2, 20, 64))

    def _poly(self, seed=3):
        primes = self._primes()
        rng = np.random.default_rng(seed)
        ints = np.stack([rng.integers(0, q, 64, dtype=np.int64)
                         for q in primes])
        residues = FloatResidues(ints.astype(np.float64), max(primes) - 1)
        return RnsPolynomial(64, primes, residues), ints

    def test_constructor_accepts_float_residues(self):
        poly, ints = self._poly()
        assert poly.buffer.host_image is None
        assert isinstance(poly.float_image, FloatResidues)
        # The int64 view materialises lazily at the boundary and matches.
        assert np.array_equal(poly.residues, ints)

    def test_float_arithmetic_stays_resident(self):
        a, ints_a = self._poly(1)
        b, ints_b = self._poly(2)
        column = np.asarray(self._primes(), dtype=np.int64)[:, None]
        with use_backend("blas"):
            total = a.add(b).hadamard(a)
        assert total.buffer.host_image is None
        assert isinstance(total.float_image, FloatResidues)
        want = ((ints_a + ints_b) % column) * ints_a % column
        assert np.array_equal(total.residues, want)

    def test_mutation_invalidates_float_image(self):
        """ISSUE 8 regression: mutating ``.residues`` drops the float image.

        ``.residues`` materialises the host int64 view; an in-place write
        there followed by ``invalidate_resident()`` must discard the stale
        float64 image so the next float-resident launch re-derives it from
        the mutated values instead of computing on dead data.
        """
        a, _ = self._poly(1)
        b, ints_b = self._poly(2)
        q0 = self._primes()[0]
        assert a.float_image is not None
        a.residues[0, 0] = 7
        a.invalidate_resident()
        assert a.float_image is None               # stale image dropped
        assert a.buffer.float_cache() is None
        with use_backend("blas"):
            total = a.add(b)
        assert total.residues[0, 0] == (7 + ints_b[0, 0]) % q0
