"""Float-resident kernel chains: parity, residency, guard fallback.

Three layers of coverage for the float64 Barrett pipeline:

* the backend ``f*`` kernels — bit-parity with the int64 ``%`` reference
  on canonical residue images, including the ``out=`` scratch contract of
  ``fmatmul``;
* the blas float-resident natives — a handle carrying a float64 image in
  produces a *float-only* handle out (``host_image`` is None, no int64
  anywhere mid-chain, zero recorded transfers), bit-identical to the host
  funnel path, with the 2**53 guard falling back to int64 exactly where
  it must;
* the four-step engine pipeline — fused ``forward_ops``/``inverse_ops``
  on blas match the numpy engine bit-for-bit, keep handle outputs
  float-resident, and reject out-of-guard chains onto the historical
  int64 path.
"""

import numpy as np
import pytest

from repro.backend import (
    DeviceBuffer,
    FloatOperandCache,
    as_ndarray,
    get_backend,
    track_transfers,
    use_backend,
)
from repro.backend.blas_backend import FloatResidues
from repro.kernels.base import KernelCounter
from repro.ntt import NttPlanner
from repro.ntt.gemm_utils import modular_hadamard_limbs, modular_matmul_limbs
from repro.numtheory import generate_ntt_primes
from repro.numtheory.floatmod import get_barrett_chain
from repro.numtheory.modular import mat_mod_add, mat_mod_mul, mat_mod_sub


def _chain(bits, limbs=4, ring_degree=1024):
    return get_barrett_chain(generate_ntt_primes(limbs, bits, ring_degree))


def _residues(rng, chain, count=64):
    """Canonical residues, one row per limb, as (int64, float64) images."""
    q_col = chain.moduli_array[:, None]
    ints = rng.integers(0, q_col, size=(chain.limb_count, count))
    return ints, ints.astype(np.float64)


class TestFloatKernels:
    """Backend ``f*`` kernels agree bit-for-bit with the ``%`` reference."""

    @pytest.fixture()
    def backend(self):
        return get_backend("blas")

    @pytest.mark.parametrize("bits", [20, 26])
    def test_fhadamard_parity(self, backend, rng, bits):
        chain = _chain(bits)
        a_int, a_f = _residues(rng, chain)
        b_int, b_f = _residues(rng, chain)
        assert chain.fits((chain.qmax - 1) ** 2)
        got = backend.fhadamard_limbs(a_f, b_f, chain)
        want = (a_int * b_int) % chain.moduli_array[:, None]
        assert np.array_equal(got.astype(np.int64), want)

    def test_fadd_fsub_parity(self, backend, rng):
        chain = _chain(27)
        q_col = chain.moduli_array[:, None]
        a_int, a_f = _residues(rng, chain)
        b_int, b_f = _residues(rng, chain)
        add = backend.fadd_limbs(a_f, b_f, chain)
        sub = backend.fsub_limbs(a_f, b_f, chain)
        assert np.array_equal(add.astype(np.int64), (a_int + b_int) % q_col)
        assert np.array_equal(sub.astype(np.int64), (a_int - b_int) % q_col)
        # Results are canonical, so they can feed the next launch directly.
        assert np.all(add >= 0) and np.all(add < q_col)
        assert np.all(sub >= 0) and np.all(sub < q_col)

    def test_fscalar_mul_and_freduce_parity(self, backend, rng):
        chain = _chain(20)
        q_col = chain.moduli_array[:, None]
        a_int, a_f = _residues(rng, chain)
        scalars = rng.integers(1, q_col, size=(chain.limb_count, 1))
        got = backend.fscalar_mul_limbs(a_f, scalars.astype(np.float64), chain)
        assert np.array_equal(got.astype(np.int64), (a_int * scalars) % q_col)
        raw = rng.integers(0, chain.qmax ** 2, size=(chain.limb_count, 64))
        reduced = backend.freduce_limbs(raw.astype(np.float64), chain)
        assert np.array_equal(reduced.astype(np.int64), raw % q_col)

    def test_fmatmul_out_contract(self, backend, rng):
        lhs = rng.integers(0, 97, (3, 8, 8)).astype(np.float64)
        rhs = rng.integers(0, 97, (3, 8, 5)).astype(np.float64)
        out = np.empty((3, 8, 5), dtype=np.float64)
        got = backend.fmatmul(lhs, rhs, out=out)
        assert got is out
        assert np.array_equal(got, np.matmul(lhs, rhs))

    def test_limb_axis_one(self, backend, rng):
        """(B, L, N) stacks reduce along axis=1, matching the fused layout."""
        chain = _chain(20)
        q_col = chain.moduli_array[None, :, None]
        ints = rng.integers(0, q_col, size=(2, chain.limb_count, 16))
        got = backend.fhadamard_limbs(ints.astype(np.float64),
                                      ints.astype(np.float64), chain, axis=1)
        assert np.array_equal(got.astype(np.int64), (ints * ints) % q_col)


class TestFloatResidues:
    def test_lazy_int64_materialisation(self):
        values = np.asarray([[3.0, 7.0], [1.0, 0.0]])
        cache = FloatResidues(values, 7)
        assert cache.full() is values          # float image is free
        first = cache.matrix                    # cast happens here, once
        assert first.dtype == np.int64
        assert cache.matrix is first
        assert np.array_equal(first, values.astype(np.int64))


class TestBlasFloatNatives:
    """Float image in → float-only handle out, guarded, bit-identical."""

    BITS = 20

    @pytest.fixture()
    def data(self, rng):
        chain = _chain(self.BITS)
        a_int, a_f = _residues(rng, chain)
        b_int, b_f = _residues(rng, chain)
        return chain, a_int, b_int

    def _float_handle(self, ints):
        return DeviceBuffer.wrap(ints).attach_float_cache(FloatOperandCache(ints))

    @pytest.mark.parametrize("fn", [mat_mod_mul, mat_mod_add, mat_mod_sub])
    def test_mat_funnels_stay_float_resident(self, data, fn):
        chain, a_int, b_int = data
        column = chain.moduli_array[:, None]
        want = fn(a_int, b_int, column)
        counter = KernelCounter()
        with use_backend("blas"), track_transfers(counter):
            got = fn(self._float_handle(a_int), self._float_handle(b_int),
                     column)
            assert isinstance(got, DeviceBuffer)
            # Float-only output: no int64 image exists until the boundary.
            assert got.host_image is None
            assert isinstance(got.float_cache(), FloatResidues)
        assert counter.transfer_total() == 0
        assert np.array_equal(got.ensure_host(), want)

    def test_hadamard_funnel_one_float_side(self, data):
        """One float-carrying side is enough; the other converts per call."""
        chain, a_int, b_int = data
        moduli = chain.moduli_array
        want = modular_hadamard_limbs(a_int, b_int, moduli)
        with use_backend("blas"):
            got = modular_hadamard_limbs(self._float_handle(a_int),
                                         DeviceBuffer.wrap(b_int), moduli)
        assert got.host_image is None
        assert np.array_equal(got.ensure_host(), want)

    def test_no_float_image_falls_back_to_int64(self, data):
        """Neither side resident: the historical int64 native runs."""
        chain, a_int, b_int = data
        moduli = chain.moduli_array
        want = modular_hadamard_limbs(a_int, b_int, moduli)
        with use_backend("blas"):
            got = modular_hadamard_limbs(DeviceBuffer.wrap(a_int),
                                         DeviceBuffer.wrap(b_int), moduli)
        assert got.host_image is not None
        assert np.array_equal(as_ndarray(got), want)

    def test_guard_rejection_falls_back_bit_identical(self, rng):
        """30-bit products break 2**53: the native must take the int path."""
        chain = _chain(30)
        assert not chain.fits((chain.qmax - 1) ** 2)
        a_int, _ = _residues(rng, chain)
        b_int, _ = _residues(rng, chain)
        want = modular_hadamard_limbs(a_int, b_int, chain.moduli_array)
        with use_backend("blas"):
            got = modular_hadamard_limbs(self._float_handle(a_int),
                                         self._float_handle(b_int),
                                         chain.moduli_array)
        assert got.host_image is not None          # int64 path produced it
        assert np.array_equal(as_ndarray(got), want)

    def test_chained_launches_materialise_no_int64(self, data):
        """A mul → add → sub chain stays float-resident end to end."""
        chain, a_int, b_int = data
        column = chain.moduli_array[:, None]
        want = ((a_int * b_int) % column + a_int - b_int) % column
        with use_backend("blas"):
            a = self._float_handle(a_int)
            b = self._float_handle(b_int)
            product = mat_mod_mul(a, b, column)
            total = mat_mod_add(product, a, column)
            result = mat_mod_sub(total, b, column)
            for stage in (product, total, result):
                assert stage.host_image is None
        assert np.array_equal(result.ensure_host(), want)

    def test_float_output_feeds_batched_gemm(self, data, rng):
        """FloatResidues output flows into the fully-resident dgemm path."""
        chain, a_int, b_int = data
        moduli = chain.moduli_array
        twiddle = rng.integers(0, chain.moduli_array[:, None, None],
                               size=(chain.limb_count, 64, 64))
        lhs_want = modular_hadamard_limbs(a_int, b_int, moduli)
        want = modular_matmul_limbs(lhs_want.reshape(chain.limb_count, 1, 64),
                                    twiddle, moduli)
        with use_backend("blas"):
            product = modular_hadamard_limbs(self._float_handle(a_int),
                                             self._float_handle(b_int), moduli)
            lhs = product.reshape(chain.limb_count, 1, 64)
            assert lhs.host_image is None          # the view stayed float
            got = modular_matmul_limbs(
                lhs, self._float_handle(twiddle), moduli)
        assert np.array_equal(as_ndarray(got), as_ndarray(want))


class TestFloatHandleViews:
    """Shape ops on float-only handles never materialise int64."""

    def test_view_chain_stays_float_resident(self):
        values = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        buf = DeviceBuffer.from_float(FloatResidues(values, 23))
        view = buf.reshape(6, 4).transpose(1, 0)[:2]
        assert view.host_image is None
        expected = values.reshape(6, 4).transpose(1, 0)[:2]
        assert np.array_equal(view.float_cache().full(), expected)
        assert np.array_equal(view.ensure_host(),
                              expected.astype(np.int64))

    def test_ensure_host_records_no_transfer(self):
        counter = KernelCounter()
        buf = DeviceBuffer.from_float(
            FloatResidues(np.asarray([[5.0, 6.0]]), 6))
        with track_transfers(counter):
            host = buf.ensure_host()
        assert counter.transfer_total() == 0        # host-side cast only
        assert host.dtype == np.int64
        assert np.array_equal(host, [[5, 6]])


class TestFourStepFloatPipeline:
    """The fused engine pipeline: parity, residency, guard fallback."""

    N = 1024
    LIMBS = 4
    BATCH = 4

    def _stacks(self, bits, seed=17):
        primes = generate_ntt_primes(self.LIMBS, bits, self.N)
        rng = np.random.default_rng(seed)
        stacks = np.stack([
            np.stack([rng.integers(0, q, self.N, dtype=np.int64)
                      for q in primes])
            for _ in range(self.BATCH)
        ])
        return primes, stacks

    def test_forward_ops_parity_with_numpy_engine(self):
        primes, stacks = self._stacks(20)
        blas = NttPlanner("four_step", backend="blas")
        reference = NttPlanner("four_step", backend="numpy")
        got = blas.forward_ops(self.N, primes, stacks)
        want = reference.forward_ops(self.N, primes, stacks)
        assert isinstance(got, np.ndarray) and got.dtype == np.int64
        assert np.array_equal(got, np.asarray(want))

    def test_inverse_roundtrip(self):
        primes, stacks = self._stacks(20)
        planner = NttPlanner("four_step", backend="blas")
        forward = planner.forward_ops(self.N, primes, stacks)
        back = planner.inverse_ops(self.N, primes, forward)
        assert np.array_equal(np.asarray(back), stacks)

    def test_handle_in_float_handle_out_zero_transfers(self):
        primes, stacks = self._stacks(20)
        planner = NttPlanner("four_step", backend="blas")
        want = planner.forward_ops(self.N, primes, stacks)
        counter = KernelCounter()
        with use_backend("blas"), track_transfers(counter):
            got = planner.forward_ops(self.N, primes, DeviceBuffer.wrap(stacks))
        assert isinstance(got, DeviceBuffer)
        assert got.host_image is None              # float-resident output
        assert isinstance(got.float_cache(), FloatResidues)
        assert counter.transfer_total() == 0
        assert np.array_equal(got.ensure_host(), np.asarray(want))

    def test_guard_rejection_takes_int64_path(self):
        """27-bit primes break n1 * (q-1)**2 < 2**53 at N=1024: fallback."""
        primes, stacks = self._stacks(27)
        chain = get_barrett_chain(primes)
        n1 = int(np.sqrt(self.N))
        assert not chain.fits(n1 * (chain.qmax - 1) ** 2)
        blas = NttPlanner("four_step", backend="blas")
        reference = NttPlanner("four_step", backend="numpy")
        want = reference.forward_ops(self.N, primes, stacks)
        with use_backend("blas"):
            got = blas.forward_ops(self.N, primes, DeviceBuffer.wrap(stacks))
        assert np.array_equal(as_ndarray(got), np.asarray(want))

    def test_results_do_not_alias_engine_scratch(self):
        """Back-to-back launches reuse scratch but hand out fresh results."""
        primes, stacks = self._stacks(20)
        planner = NttPlanner("four_step", backend="blas")
        first = np.asarray(planner.forward_ops(self.N, primes, stacks))
        snapshot = first.copy()
        second = np.asarray(planner.forward_ops(self.N, primes, stacks))
        assert not np.shares_memory(first, second)
        assert np.array_equal(first, snapshot)     # untouched by relaunch
        assert np.array_equal(first, second)

    def test_kernel_counter_parity_between_paths(self):
        """Engine-internal float residency is invisible to instrumentation."""
        primes, stacks = self._stacks(20)
        blas = NttPlanner("four_step", backend="blas")
        reference = NttPlanner("four_step", backend="numpy")
        blas_counter, ref_counter = KernelCounter(), KernelCounter()
        with track_transfers(blas_counter):
            blas.forward_ops(self.N, primes, stacks)
        with track_transfers(ref_counter):
            reference.forward_ops(self.N, primes, stacks)
        assert blas_counter.transfer_total() == ref_counter.transfer_total() == 0
