"""Parity and selection suite for the pluggable compute backends.

Every registered backend must be *bit-identical* to the numpy default on
the whole funnel — engine-level batched NTTs, RNS polynomial arithmetic,
and full CKKS operations (NTT / rescale / keyswitch) — and switching the
backend must not change what the kernel counters record.  The suite also
pins the selection precedence: explicit ``backend=`` argument, process-wide
override, ``REPRO_BACKEND`` environment variable, numpy default.
"""

import numpy as np
import pytest

from repro.api import TensorFheContext
from repro.backend import (
    DEFAULT_BACKEND,
    MultiprocessBackend,
    NumpyBackend,
    available_backends,
    get_active_backend,
    get_backend,
    registered_backends,
    resolve_backend,
    set_active_backend,
    use_backend,
)
from repro.backend.registry import BACKEND_ENV_VAR
from repro.ckks.params import get_preset
from repro.ntt import NttPlanner, available_engines
from repro.ntt.gemm_utils import modular_matmul_limbs
from repro.numtheory import generate_ntt_primes
from repro.rns import RnsPolynomial

BACKENDS = list(available_backends())
ENGINES = list(available_engines())


def _residue_matrix(rng, primes, ring_degree):
    return np.stack([rng.integers(0, q, ring_degree, dtype=np.int64) for q in primes])


@pytest.fixture(autouse=True)
def _restore_active_backend():
    """Every test leaves the process-wide backend selection untouched."""
    previous = set_active_backend(None)
    yield
    set_active_backend(previous)


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
class TestSelection:
    def test_numpy_is_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert DEFAULT_BACKEND == "numpy"
        assert isinstance(get_active_backend(), NumpyBackend)
        assert not isinstance(get_active_backend(), MultiprocessBackend)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "blas")
        assert get_active_backend().name == "blas"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "blas")
        set_active_backend("multiprocess")
        assert get_active_backend().name == "multiprocess"
        set_active_backend(None)
        assert get_active_backend().name == "blas"

    def test_use_backend_restores(self):
        before = get_active_backend().name
        with use_backend("blas") as backend:
            assert backend.name == "blas"
            assert get_active_backend().name == "blas"
        assert get_active_backend().name == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            get_backend("cuda9000")
        with pytest.raises(ValueError):
            NttPlanner("four_step", backend="cuda9000")

    def test_optional_backends_register_but_gate_on_import(self):
        # torch/cupy always appear in the registry; they are only *available*
        # (and thus swept by this suite) when the library imports.
        assert "torch" in registered_backends()
        assert "cupy" in registered_backends()
        for name in registered_backends():
            if name not in BACKENDS:
                with pytest.raises(ValueError, match="unavailable"):
                    get_backend(name)

    def test_resolve_precedence(self):
        instance = NumpyBackend()
        assert resolve_backend(instance) is instance
        assert resolve_backend("blas").name == "blas"
        assert resolve_backend(None) is get_active_backend()

    def test_shared_instances(self):
        assert get_backend("blas") is get_backend("blas")


# ----------------------------------------------------------------------
# Engine-level parity: every backend, every engine, bit-identical
# ----------------------------------------------------------------------
class TestEngineParity:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_forward_inverse_limbs_match_numpy(self, backend_name, engine_name, rng):
        ring_degree, limbs = 32, 3
        primes = generate_ntt_primes(limbs, 24, ring_degree)
        residues = _residue_matrix(rng, primes, ring_degree)
        reference = NttPlanner(engine_name, backend="numpy")
        candidate = NttPlanner(engine_name, backend=backend_name)
        forward_ref = reference.forward_limbs(ring_degree, primes, residues)
        forward = candidate.forward_limbs(ring_degree, primes, residues)
        assert np.array_equal(forward, forward_ref)
        assert np.array_equal(
            candidate.inverse_limbs(ring_degree, primes, forward), residues)

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_polynomial_arithmetic_parity(self, backend_name, rng):
        ring_degree, limbs = 32, 4
        primes = generate_ntt_primes(limbs, 24, ring_degree)
        a_res = _residue_matrix(rng, primes, ring_degree)
        b_res = _residue_matrix(rng, primes, ring_degree)

        def run():
            a = RnsPolynomial(ring_degree, primes, a_res.copy())
            b = RnsPolynomial(ring_degree, primes, b_res.copy())
            return [a.add(b).residues, a.subtract(b).residues,
                    a.hadamard(b).residues, a.negate().residues,
                    a.scalar_multiply(12345).residues]

        reference = run()
        with use_backend(backend_name):
            candidate = run()
        for got, expected in zip(candidate, reference):
            assert np.array_equal(got, expected)

    def test_multiprocess_sharded_path_is_exact(self, rng):
        """Force the shared-memory pool path (default threshold skips it)."""
        backend = MultiprocessBackend(workers=2, min_shard_elements=1)
        try:
            primes = generate_ntt_primes(4, 30, 64)
            lhs = np.stack([rng.integers(0, q, (16, 48), dtype=np.int64) for q in primes])
            rhs = np.stack([rng.integers(0, q, (48, 12), dtype=np.int64) for q in primes])
            got = modular_matmul_limbs(lhs, rhs, primes, backend=backend)
            expected = modular_matmul_limbs(lhs, rhs, primes, backend="numpy")
            assert np.array_equal(got, expected)
        finally:
            backend.close()

    def test_blas_falls_back_when_guard_fails(self, rng):
        """30-bit primes at a large inner dim break the single-pass 2**53
        bound; the blas backend must stay bit-exact via split/int64."""
        primes = generate_ntt_primes(2, 30, 512)
        lhs = np.stack([rng.integers(0, q, (8, 512), dtype=np.int64) for q in primes])
        rhs = np.stack([rng.integers(0, q, (512, 8), dtype=np.int64) for q in primes])
        got = modular_matmul_limbs(lhs, rhs, primes, backend="blas")
        expected = modular_matmul_limbs(lhs, rhs, primes, backend="numpy")
        assert np.array_equal(got, expected)


# ----------------------------------------------------------------------
# Full-scheme parity: NTT / rescale / keyswitch bit-identical
# ----------------------------------------------------------------------
class TestSchemeParity:
    SEED = 7

    def _workload(self, backend_name):
        """Encrypt, square (relinearize + rescale), rotate, decrypt."""
        context = TensorFheContext(get_preset("toy"), seed=self.SEED,
                                   rotation_steps=(1,), backend=backend_name)
        values = [0.5, -0.25] * (context.slot_count // 2)
        ciphertext = context.encrypt(values)
        squared = context.multiply(ciphertext, ciphertext)   # keyswitch+rescale
        rotated = context.rotate(squared, 1)                 # automorphism+keyswitch
        residue_sets = [rotated.c0.residues, rotated.c1.residues]
        return (residue_sets, context.decrypt(rotated),
                context.kernel_counter.snapshot())

    @pytest.fixture(scope="class")
    def reference(self):
        return self._workload("numpy")

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_ciphertexts_bit_identical(self, backend_name, reference):
        residues, decrypted, counters = self._workload(backend_name)
        ref_residues, ref_decrypted, ref_counters = reference
        assert len(residues) == len(ref_residues)
        for got, expected in zip(residues, ref_residues):
            assert np.array_equal(got, expected)
        assert np.array_equal(decrypted, ref_decrypted)
        # Backend choice is invisible to the kernel instrumentation.
        assert counters == ref_counters

    def test_facade_reports_backend(self):
        context = TensorFheContext(get_preset("toy"), seed=1, backend="blas")
        assert context.compute_backend == "blas"
        assert context.context.describe()["compute_backend"] == "blas"

    def test_default_context_follows_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "blas")
        context = TensorFheContext(get_preset("toy"), seed=1)
        assert context.compute_backend == "blas"
