"""Torch backend: float64-split GEMM fallback and tensor residency.

Consumer GPUs often lack int64 matmul; the torch backend then lowers the
batched modular GEMM to float64 matmuls under the same ``2**53`` exactness
guard as the blas backend — a single pass for small primes, a hi/lo split
of the lhs for >27-bit primes, and the exact chunked-int64 path when even
the split would round.  ``use_float64=True`` forces that path on CPU torch
so CI can pin bit-parity against the numpy backend without a GPU.

Skipped entirely when torch is not installed (the backend registers as
unavailable).
"""

import numpy as np
import pytest

torch = pytest.importorskip("torch")

from repro.backend import DeviceBuffer, track_transfers  # noqa: E402
from repro.backend.numpy_backend import NumpyBackend  # noqa: E402
from repro.backend.torch_backend import TorchBackend  # noqa: E402
from repro.kernels.base import KernelCounter  # noqa: E402
from repro.ntt import NttPlanner  # noqa: E402
from repro.numtheory import generate_ntt_primes  # noqa: E402


@pytest.fixture(scope="module")
def forced():
    return TorchBackend(use_float64=True)


@pytest.fixture(scope="module")
def reference():
    return NumpyBackend()


def _random_gemm(rng, limbs, m, k, p, moduli):
    column = np.asarray(moduli, dtype=np.int64).reshape(-1, 1, 1)
    lhs = rng.integers(0, 1 << 62, (limbs, m, k), dtype=np.int64) % column
    rhs = rng.integers(0, 1 << 62, (limbs, k, p), dtype=np.int64) % column
    return lhs, rhs


class TestFloat64Split:
    def test_single_pass_small_primes(self, forced, reference):
        """17-bit primes at inner=16: one exact float64 matmul."""
        rng = np.random.default_rng(0)
        moduli = np.asarray([(1 << 17) - 131, (1 << 17) - 365], dtype=np.int64)
        lhs, rhs = _random_gemm(rng, 2, 8, 16, 4, moduli)
        inner = lhs.shape[2]
        bound = int(moduli.max()) - 1
        assert inner * bound * bound < (1 << 53)   # the single-pass regime
        got = forced.matmul_limbs(lhs, rhs, moduli)
        want = reference.matmul_limbs(lhs, rhs, moduli)
        assert np.array_equal(got, want)

    def test_split_path_28_bit_primes(self, forced, reference):
        """>27-bit primes force the hi/lo split; still bit-exact."""
        rng = np.random.default_rng(1)
        moduli = np.asarray([(1 << 28) - 57, (1 << 28) - 89], dtype=np.int64)
        lhs, rhs = _random_gemm(rng, 2, 8, 16, 4, moduli)
        inner = lhs.shape[2]
        bound = int(moduli.max()) - 1
        shift = max(1, (bound.bit_length() + 1) // 2)
        assert inner * bound * bound >= (1 << 53)          # not single-pass
        assert inner * max(1, bound >> shift) * bound < (1 << 53)  # split fits
        got = forced.matmul_limbs(lhs, rhs, moduli)
        want = reference.matmul_limbs(lhs, rhs, moduli)
        assert np.array_equal(got, want)

    def test_guard_rejects_and_falls_back_exact(self, forced, reference):
        """When even the split would round, the chunked int64 path runs."""
        rng = np.random.default_rng(2)
        moduli = np.asarray([(1 << 30) - 35], dtype=np.int64)
        lhs, rhs = _random_gemm(rng, 1, 4, 512, 3, moduli)
        inner = lhs.shape[2]
        bound = int(moduli.max()) - 1
        shift = max(1, (bound.bit_length() + 1) // 2)
        assert inner * max(1, bound >> shift) * bound >= (1 << 53)
        got = forced.matmul_limbs(lhs, rhs, moduli)
        want = reference.matmul_limbs(lhs, rhs, moduli)
        assert np.array_equal(got, want)

    def test_single_modulus_matmul_split(self, forced, reference):
        """The 2-D kernel shares the float64-split path."""
        rng = np.random.default_rng(5)
        modulus = (1 << 28) - 57
        lhs = rng.integers(0, modulus, (8, 16), dtype=np.int64)
        rhs = rng.integers(0, modulus, (16, 4), dtype=np.int64)
        got = forced.matmul(lhs, rhs, modulus)
        want = reference.matmul(lhs, rhs, modulus)
        assert np.array_equal(got, want)

    def test_no_int64_matmul_falls_back_to_host(self, reference):
        """Devices without int64 matmul stage the exact path through numpy.

        Simulated by clearing the probe result: the guard-rejected launch
        must route to the host fallback instead of issuing an int64
        torch.matmul.
        """
        backend = TorchBackend(use_float64=True)
        backend._int64_matmul = False
        rng = np.random.default_rng(6)
        moduli = np.asarray([(1 << 30) - 35], dtype=np.int64)
        lhs = rng.integers(0, moduli[0], (1, 4, 512), dtype=np.int64)
        rhs = rng.integers(0, moduli[0], (1, 512, 3), dtype=np.int64)
        got = backend.matmul_limbs(lhs, rhs, moduli)
        want = reference.matmul_limbs(lhs, rhs, moduli)
        assert np.array_equal(got, want)
        got_2d = backend.matmul(lhs[0], rhs[0], int(moduli[0]))
        assert np.array_equal(got_2d, reference.matmul(lhs[0], rhs[0],
                                                       int(moduli[0])))

    def test_ntt_parity_through_forced_backend(self, forced):
        """Whole limb-batched NTT on the forced float64 path, bit-exact."""
        ring_degree = 64
        primes = generate_ntt_primes(3, 28, ring_degree)
        rng = np.random.default_rng(3)
        residues = np.stack([
            rng.integers(0, q, ring_degree, dtype=np.int64) for q in primes
        ])
        want = NttPlanner("matrix", backend="numpy").forward_limbs(
            ring_degree, primes, residues)
        got = NttPlanner("matrix", backend=forced).forward_limbs(
            ring_degree, primes, residues)
        assert np.array_equal(got, want)


class TestTorchResidency:
    def test_chain_stays_on_tensor(self, forced):
        """A funnel chain through handles never converts back to numpy."""
        rng = np.random.default_rng(4)
        moduli = np.asarray([(1 << 17) - 131, (1 << 17) - 365], dtype=np.int64)
        lhs, rhs = _random_gemm(rng, 2, 8, 8, 8, moduli)
        counter = KernelCounter()
        a, b = DeviceBuffer.wrap(lhs), DeviceBuffer.wrap(rhs)
        with track_transfers(counter):
            first = forced.matmul_limbs_native(a, b, moduli)
            second = forced.matmul_limbs_native(first, b, moduli)
        assert counter.transfers["host_to_device"] == 2    # a and b only
        assert counter.transfers["device_to_host"] == 0
        assert second.resident_backend is forced
        want = forced.matmul_limbs(forced.matmul_limbs(lhs, rhs, moduli),
                                   rhs, moduli)
        with track_transfers(counter):
            assert np.array_equal(second.ensure_host(), want)
        assert counter.transfers["device_to_host"] == 1
