"""Sharded scale-out backend: specs, arena, parity, lifecycle, scheduling.

The suite forces the worker-pool path with tiny thresholds (``workers=2,
min_shard_elements=1``) so every kernel actually crosses the pipe, then
checks the three properties the backend promises:

* **bit-parity** with its single-process delegate on everything from a
  single GEMM through the full HMULT→RESCALE chain and batched
  bootstrapping, with *identical* kernel counters;
* **steady-state memory**: after warmup a repeated fused launch creates
  zero new arena slabs and republishes zero operands;
* **configuration hygiene**: registry specs, the ``REPRO_BACKEND_WORKERS``
  env var and the committed calibration all parse with attributable
  errors, and teardown/relaunch cycles neither leak workers nor stack
  atexit handlers.
"""

import atexit
import json
import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro.api import TensorFheContext
from repro.backend import (
    MultiprocessBackend,
    ShardedBackend,
    ShmArena,
    WORKERS_ENV_VAR,
    available_backends,
    get_backend,
    parse_worker_count,
    use_backend,
)
from repro.backend.sharded import _KERNELS, _worker_main
from repro.batching.scheduler import BatchScheduler
from repro.ckks.params import get_preset
from repro.gpu import A100
from repro.ntt.gemm_utils import modular_matmul_limbs
from repro.numtheory import generate_ntt_primes
from repro.perf.calibration import ShardingCalibration, sharding_calibration

PRIME_BITS = (20, 30, 33)


@pytest.fixture(autouse=True)
def _no_ambient_worker_config(monkeypatch):
    """Default-resolution tests must not see the host's env/calibration."""
    monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
    monkeypatch.setattr(ShardedBackend, "_load_calibration",
                        staticmethod(lambda: None))


@pytest.fixture(scope="module")
def forced():
    """A pool that shards everything: 2 workers, thresholds of 1."""
    backend = ShardedBackend("numpy", workers=2, min_shard_elements=1,
                             min_elementwise_elements=1)
    yield backend
    backend.close()


def _limb_operands(rng, primes, rows=16, inner=24, columns=12):
    lhs = np.stack([rng.integers(0, q, (rows, inner), dtype=np.int64)
                    for q in primes])
    rhs = np.stack([rng.integers(0, q, (inner, columns), dtype=np.int64)
                    for q in primes])
    return lhs, rhs


# ----------------------------------------------------------------------
# Registry spec parsing and construction
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_sharded_is_registered_and_available(self):
        assert "sharded" in available_backends()
        assert isinstance(get_backend("sharded"), ShardedBackend)

    def test_full_spec_parses_delegate_and_workers(self):
        backend = get_backend("sharded:blas:3")
        assert backend.workers == 3
        assert backend.delegate.name == "blas"
        assert backend.capabilities()["delegate"] == "blas"
        # One cached instance per full spec string.
        assert get_backend("sharded:blas:3") is backend
        assert get_backend("sharded:blas:3") is not get_backend("sharded")

    def test_delegate_only_spec_uses_default_workers(self):
        backend = get_backend("sharded:blas")
        assert backend.delegate.name == "blas"
        assert backend.workers == max(2, os.cpu_count() or 2)

    def test_unknown_delegate_rejected(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            get_backend("sharded:nope")

    @pytest.mark.parametrize("spec", ["sharded:numpy:0", "sharded:numpy:-2",
                                      "sharded:numpy:x"])
    def test_bad_worker_counts_name_the_spec(self, spec):
        with pytest.raises(ValueError, match="positive integer worker count"):
            get_backend(spec)

    def test_empty_worker_segment_rejected(self):
        with pytest.raises(ValueError, match="empty worker count"):
            get_backend("sharded:numpy:")

    def test_too_many_segments_rejected(self):
        with pytest.raises(ValueError, match="too many segments"):
            get_backend("sharded:numpy:2:zz")

    def test_unparameterised_backends_reject_specs(self):
        with pytest.raises(ValueError, match="does not take a parameterised"):
            get_backend("blas:4")

    def test_multiprocess_spec_is_a_worker_count(self):
        assert get_backend("multiprocess:3").workers == 3
        with pytest.raises(ValueError, match="positive integer worker count"):
            get_backend("multiprocess:0")

    def test_sharded_delegate_must_be_single_process(self):
        with pytest.raises(ValueError, match="single-process"):
            ShardedBackend(get_backend("sharded"))

    def test_multiprocess_keeps_limb_only_contract(self):
        backend = MultiprocessBackend(workers=2)
        assert not backend.shard_columns and not backend.shard_elementwise
        assert backend.delegate.name == "numpy"
        assert backend.capabilities()["batch_fanout"] == 1


# ----------------------------------------------------------------------
# REPRO_BACKEND_WORKERS parsing and precedence
# ----------------------------------------------------------------------
class TestWorkerEnvVar:
    def test_parse_worker_count_contract(self):
        assert parse_worker_count(None) is None
        assert parse_worker_count("") is None
        assert parse_worker_count("  ") is None
        assert parse_worker_count(" 3 ") == 3
        assert parse_worker_count(4) == 4
        for bad in ("banana", "1.5", 0, -1, True):
            with pytest.raises(ValueError,
                               match="positive integer worker count"):
                parse_worker_count(bad)

    def test_error_names_the_env_var(self):
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            parse_worker_count("banana")

    @pytest.mark.parametrize("backend_cls", [ShardedBackend,
                                             MultiprocessBackend])
    def test_garbage_env_var_is_attributed(self, monkeypatch, backend_cls):
        """The original backend died with a bare ``int()`` ValueError."""
        monkeypatch.setenv(WORKERS_ENV_VAR, "banana")
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            backend_cls()

    def test_env_var_sets_default_worker_count(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert ShardedBackend().workers == 3
        assert MultiprocessBackend().workers == 3
        # An explicit count still wins over the environment.
        assert ShardedBackend(workers=5).workers == 5


# ----------------------------------------------------------------------
# Calibration loading and wiring
# ----------------------------------------------------------------------
class TestCalibration:
    def test_loader_reads_the_calibration_block(self, tmp_path):
        (tmp_path / "sharded.json").write_text(json.dumps({
            "calibration": {"min_shard_elements": 1 << 20,
                            "min_elementwise_elements": 1 << 23,
                            "workers": 4, "cpu_count": 8},
        }))
        calibration = sharding_calibration(str(tmp_path))
        assert calibration == ShardingCalibration(
            min_shard_elements=1 << 20, min_elementwise_elements=1 << 23,
            workers=4, cpu_count=8)

    def test_loader_tolerates_missing_and_malformed(self, tmp_path):
        assert sharding_calibration(str(tmp_path / "absent")) is None
        (tmp_path / "sharded.json").write_text("{not json")
        assert sharding_calibration(str(tmp_path)) is None
        (tmp_path / "sharded.json").write_text(json.dumps({"results": {}}))
        assert sharding_calibration(str(tmp_path)) is None
        # Garbage field values degrade to None, not to a crash.
        (tmp_path / "sharded.json").write_text(json.dumps({
            "calibration": {"min_shard_elements": -5, "workers": True,
                            "cpu_count": "eight"}}))
        assert sharding_calibration(str(tmp_path)) == ShardingCalibration()

    def test_worker_count_transfers_only_to_matching_hosts(self):
        assert ShardingCalibration().applies_to_host()
        local = os.cpu_count() or 0
        assert ShardingCalibration(cpu_count=local).applies_to_host()
        assert not ShardingCalibration(cpu_count=local + 1).applies_to_host()

    def test_backend_consumes_matching_calibration(self):
        calibration = ShardingCalibration(
            min_shard_elements=123, min_elementwise_elements=456,
            workers=5, cpu_count=os.cpu_count() or 0)
        backend = ShardedBackend(calibration=calibration)
        assert backend.workers == 5
        assert backend.min_shard_elements == 123
        assert backend.min_elementwise_elements == 456

    def test_foreign_host_keeps_knees_but_not_workers(self):
        """Knees are work-per-round-trip ratios; worker counts are not."""
        calibration = ShardingCalibration(
            min_shard_elements=123, workers=7,
            cpu_count=(os.cpu_count() or 0) + 1)
        backend = ShardedBackend(calibration=calibration)
        assert backend.min_shard_elements == 123
        assert backend.workers == max(2, os.cpu_count() or 2)


# ----------------------------------------------------------------------
# ShmArena slab allocator
# ----------------------------------------------------------------------
class TestShmArena:
    def test_release_then_borrow_reuses_the_slab(self):
        arena = ShmArena()
        try:
            first = arena.borrow(100)
            arena.release(first)
            second = arena.borrow(50)          # fits in the same page
            assert second is first
            stats = arena.stats()
            assert stats["slabs_created"] == 1 and stats["reuses"] == 1
        finally:
            arena.close()

    def test_smallest_fit_and_grow_on_demand(self):
        arena = ShmArena()
        try:
            small = arena.borrow(100)
            large = arena.borrow(100_000)
            assert large.capacity > small.capacity
            arena.release(small)
            arena.release(large)
            # A small request picks the small slab, not the big one.
            assert arena.borrow(100) is small
            # A request nothing fits grows the arena.
            huge = arena.borrow(1_000_000)
            assert huge not in (small, large)
            assert arena.stats()["slabs_created"] == 3
        finally:
            arena.close()

    def test_ndarray_views_share_the_slab(self):
        arena = ShmArena()
        try:
            slot = arena.borrow(8 * 6)
            view = arena.ndarray(slot, (2, 3))
            view[...] = np.arange(6).reshape(2, 3)
            again = arena.ndarray(slot, (2, 3))
            assert np.array_equal(again, np.arange(6).reshape(2, 3))
        finally:
            arena.close()

    def test_close_is_idempotent_and_terminal(self):
        arena = ShmArena()
        slot = arena.borrow(10)
        arena.close()
        assert arena.closed
        arena.close()                           # idempotent
        arena.release(slot)                     # tolerated no-op
        with pytest.raises(RuntimeError, match="closed"):
            arena.borrow(10)


# ----------------------------------------------------------------------
# Forced-shard parity: every kernel, every axis, bit-identical
# ----------------------------------------------------------------------
class TestForcedShardParity:
    @pytest.mark.parametrize("bits", PRIME_BITS)
    def test_limb_axis_gemm_matches_numpy(self, forced, rng, bits):
        primes = generate_ntt_primes(4, bits, 64)
        lhs, rhs = _limb_operands(rng, primes)
        got = modular_matmul_limbs(lhs, rhs, primes, backend=forced)
        expected = modular_matmul_limbs(lhs, rhs, primes, backend="numpy")
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("bits", PRIME_BITS)
    @pytest.mark.parametrize("batch", (1, 2, 8))
    def test_column_axis_gemm_matches_numpy(self, forced, rng, bits, batch):
        """A single-limb launch with a folded-B rhs shards the columns."""
        primes = generate_ntt_primes(1, bits, 64)
        lhs, rhs = _limb_operands(rng, primes, rows=16, inner=24,
                                  columns=4 * batch)
        got = modular_matmul_limbs(lhs, rhs, primes, backend=forced)
        expected = modular_matmul_limbs(lhs, rhs, primes, backend="numpy")
        assert np.array_equal(got, expected)

    def test_blas_delegate_shards_exactly(self, rng):
        """The guarded float64 dgemm runs inside the workers unchanged."""
        backend = ShardedBackend("blas", workers=2, min_shard_elements=1,
                                 min_elementwise_elements=1)
        try:
            for limbs, bits in ((4, 20), (1, 33)):
                primes = generate_ntt_primes(limbs, bits, 64)
                lhs, rhs = _limb_operands(rng, primes)
                got = modular_matmul_limbs(lhs, rhs, primes, backend=backend)
                expected = modular_matmul_limbs(lhs, rhs, primes,
                                                backend="numpy")
                assert np.array_equal(got, expected)
        finally:
            backend.close()

    def test_remaining_kernels_match_numpy(self, forced, rng):
        numpy = get_backend("numpy")
        primes = np.asarray(generate_ntt_primes(4, 30, 64), dtype=np.int64)
        a = np.stack([rng.integers(0, q, 64, dtype=np.int64) for q in primes])
        b = np.stack([rng.integers(0, q, 64, dtype=np.int64) for q in primes])
        square = rng.integers(0, primes[0], (8, 8), dtype=np.int64)
        for name, launch in [
            ("matmul", lambda backend: backend.matmul(square, square,
                                                      int(primes[0]))),
            ("matmul_rows", lambda backend: backend.matmul_rows(
                a[:, :16], b[:16].T[:16], primes)),
            ("hadamard", lambda backend: backend.hadamard(a[0], b[0],
                                                          int(primes[0]))),
            ("hadamard_limbs", lambda backend: backend.hadamard_limbs(a, b,
                                                                      primes)),
            ("mat_add", lambda backend: backend.mat_add(a, b, primes)),
            ("mat_sub", lambda backend: backend.mat_sub(a, b, primes)),
            ("mat_mul", lambda backend: backend.mat_mul(a, b, primes)),
            ("mat_neg", lambda backend: backend.mat_neg(a, primes)),
            ("mat_reduce", lambda backend: backend.mat_reduce(a + primes[:, None],
                                                              primes)),
        ]:
            assert np.array_equal(launch(forced), launch(numpy)), name

    def test_full_scheme_chain_bit_identical_with_counters(self, forced):
        """HMULT→relinearize→rescale→rotate: residues, decrypt, counters."""

        def workload(backend):
            context = TensorFheContext(get_preset("toy"), seed=11,
                                       rotation_steps=(1,), backend=backend)
            values = [0.5, -0.25] * (context.slot_count // 2)
            ciphertext = context.encrypt(values)
            rotated = context.rotate(context.multiply(ciphertext, ciphertext), 1)
            return ([rotated.c0.residues, rotated.c1.residues],
                    context.decrypt(rotated),
                    context.kernel_counter.snapshot())

        residues, decrypted, counters = workload(forced)
        ref_residues, ref_decrypted, ref_counters = workload("numpy")
        for got, expected in zip(residues, ref_residues):
            assert np.array_equal(got, expected)
        assert np.array_equal(decrypted, ref_decrypted)
        # Sharding is invisible to the kernel instrumentation.
        assert counters == ref_counters


@pytest.mark.parametrize("batch", (1, 2, 8))
def test_batched_bootstrap_parity_under_sharding(bootstrap_fhe, rng, batch,
                                                 forced):
    """bootstrap_many under the forced pool == the sequential loop, with
    identical kernel counters and limb-vectors (the sharded mirror of
    tests/ckks/test_batched_bootstrap.py's backend sweep)."""
    fhe = bootstrap_fhe
    streams = [
        fhe.evaluator.drop_to_level(
            fhe.encrypt(rng.uniform(-0.05, 0.05, fhe.slot_count)), 0)
        for _ in range(batch)
    ]
    kernels = fhe.context.kernels
    with use_backend(forced):
        with kernels.capture() as sequential_counts:
            expected = [
                fhe.bootstrapper.bootstrap(ciphertext, fhe.evaluator,
                                           fhe.encryptor,
                                           fhe.relinearization_key,
                                           fhe.rotation_keys)
                for ciphertext in streams
            ]
        with kernels.capture() as batched_counts:
            actual = fhe.bootstrapper.bootstrap_many(
                streams, fhe.batched_evaluator, fhe.encryptor,
                fhe.relinearization_key, fhe.rotation_keys)
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert np.array_equal(got.c0.residues, want.c0.residues)
        assert np.array_equal(got.c1.residues, want.c1.residues)
        assert got.scale == want.scale and got.level == want.level
    assert batched_counts.snapshot() == sequential_counts.snapshot()
    assert dict(batched_counts.limb_vectors) == \
        dict(sequential_counts.limb_vectors)


# ----------------------------------------------------------------------
# Steady-state memory behaviour
# ----------------------------------------------------------------------
class TestArenaSteadyState:
    def test_repeated_launches_create_zero_new_slabs(self, rng):
        backend = ShardedBackend("numpy", workers=2, min_shard_elements=1)
        try:
            primes = generate_ntt_primes(4, 30, 64)
            lhs, rhs = _limb_operands(rng, primes)
            expected = modular_matmul_limbs(lhs, rhs, primes, backend="numpy")
            # Warmup: the first launch creates the slabs.  Dropping each
            # result view returns its zero-copy out slot to the free list
            # (a *retained* result pins its slab — that is the contract).
            assert np.array_equal(
                modular_matmul_limbs(lhs, rhs, primes, backend=backend),
                expected)
            warm = backend.arena_stats()
            for _ in range(5):
                assert np.array_equal(
                    modular_matmul_limbs(lhs, rhs, primes, backend=backend),
                    expected)
            steady = backend.arena_stats()
            # The whole point of the arena: warmup allocates, repeats reuse.
            assert steady["slabs_created"] == warm["slabs_created"]
            assert steady["reuses"] > warm["reuses"]
            # Identical operand objects are republished by identity, not
            # copied again.
            assert steady["operand_hits"] >= warm["operand_hits"] + 10
        finally:
            backend.close()

    def test_results_are_zero_copy_arena_views(self, forced, rng):
        primes = generate_ntt_primes(4, 20, 64)
        lhs, rhs = _limb_operands(rng, primes)
        out = forced.matmul_limbs(lhs, rhs, np.asarray(primes, dtype=np.int64))
        # A view over the shared slab, not an owning copy.
        assert not out.flags["OWNDATA"]


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_is_idempotent_and_pool_relaunches(self, rng):
        backend = ShardedBackend("numpy", workers=2, min_shard_elements=1)
        primes = generate_ntt_primes(2, 20, 64)
        lhs, rhs = _limb_operands(rng, primes)
        expected = modular_matmul_limbs(lhs, rhs, primes, backend="numpy")
        try:
            assert np.array_equal(
                modular_matmul_limbs(lhs, rhs, primes, backend=backend),
                expected)
            first_pool = [process.pid for process, _ in backend._procs]
            backend.close()
            backend.close()                     # idempotent
            assert backend.arena_stats() == {}
            # The backend stays usable: a fresh pool forks on demand.
            assert np.array_equal(
                modular_matmul_limbs(lhs, rhs, primes, backend=backend),
                expected)
            assert [process.pid for process, _ in backend._procs] != first_pool
        finally:
            backend.close()

    def test_atexit_handler_registered_once(self, monkeypatch):
        """close()/relaunch cycles must not stack exit handlers."""
        registrations = []
        original = atexit.register

        def counting(func, *args, **kwargs):
            registrations.append(func)
            return original(func, *args, **kwargs)

        monkeypatch.setattr(atexit, "register", counting)
        backend = ShardedBackend("numpy", workers=2, min_shard_elements=1)
        try:
            backend._ensure_workers()
            backend.close()
            backend._ensure_workers()
        finally:
            backend.close()
        assert registrations.count(backend.close) == 1

    def test_worker_death_raises_and_tears_down(self, rng):
        backend = ShardedBackend("numpy", workers=2, min_shard_elements=1)
        primes = generate_ntt_primes(2, 20, 64)
        lhs, rhs = _limb_operands(rng, primes)
        try:
            modular_matmul_limbs(lhs, rhs, primes, backend=backend)
            for process, _ in backend._procs:
                process.terminate()
                process.join(timeout=5)
            with pytest.raises(RuntimeError, match="sharded worker"):
                modular_matmul_limbs(lhs, rhs, primes, backend=backend)
            # The failed pool was torn down; the next launch recovers.
            assert not backend._procs
            assert np.array_equal(
                modular_matmul_limbs(lhs, rhs, primes, backend=backend),
                modular_matmul_limbs(lhs, rhs, primes, backend="numpy"))
        finally:
            backend.close()

    def test_worker_kernel_failure_is_reported(self, forced):
        # Shapes the parent-side planner accepts but whose inner
        # dimensions cannot contract — the delegate fails in the worker.
        lhs = np.zeros((4, 8, 8), dtype=np.int64)
        rhs = np.zeros((4, 9, 8), dtype=np.int64)
        with pytest.raises(RuntimeError, match="failed in a worker"):
            forced.matmul_limbs(lhs, rhs, np.asarray([17] * 4))


# ----------------------------------------------------------------------
# Worker protocol (run in a thread for coverage of the worker loop)
# ----------------------------------------------------------------------
class TestWorkerProtocol:
    def test_worker_serves_ping_run_and_close(self):
        arena = ShmArena()
        parent, child = multiprocessing.Pipe()
        worker = threading.Thread(target=_worker_main, args=(child, "numpy"),
                                  daemon=True)
        worker.start()
        try:
            parent.send(("ping",))
            status, pid = parent.recv()
            assert status == "ok" and pid == os.getpid()

            moduli = np.asarray([97, 193], dtype=np.int64)
            a = np.arange(2 * 8, dtype=np.int64).reshape(2, 8)
            b = (a * 3) % moduli[:, None]
            specs = []
            for operand in (a % moduli[:, None], b, np.zeros_like(a)):
                slot = arena.borrow(operand.nbytes)
                arena.ndarray(slot, operand.shape)[...] = operand
                specs.append((slot.name, operand.shape, operand.dtype.str))
            parent.send(("run", "mat_add", tuple(specs),
                         {"start": 0, "stop": 2, "moduli": moduli}))
            assert parent.recv() == ("ok", None)
            out_name, out_shape, out_dtype = specs[-1]
            from multiprocessing import shared_memory
            segment = shared_memory.SharedMemory(name=out_name)
            try:
                got = np.ndarray(out_shape, dtype=np.dtype(out_dtype),
                                 buffer=segment.buf).copy()
            finally:
                segment.close()
            expected = (a % moduli[:, None] + b) % moduli[:, None]
            assert np.array_equal(got, expected)

            # A failing kernel reports a traceback instead of dying.
            parent.send(("run", "mat_add", tuple(specs), {"start": 0}))
            status, detail = parent.recv()
            assert status == "err" and "KeyError" in detail
        finally:
            parent.send(("close",))
            worker.join(timeout=5)
            parent.close()
            arena.close()
        assert not worker.is_alive()

    def test_kernel_table_covers_every_sharded_op(self):
        assert set(_KERNELS) == {
            "matmul_limbs", "matmul_limbs_cols", "matmul", "matmul_rows",
            "hadamard", "hadamard_limbs", "mat_add", "mat_sub", "mat_mul",
            "mat_neg", "mat_reduce"}

    def test_every_handler_writes_its_shard_in_place(self, rng):
        """Each handler == the delegate kernel on the sharded slice.

        Driven in-process (workers fork, so handler bodies only show up
        in coverage when called here) against the numpy delegate.
        """
        numpy = get_backend("numpy")
        primes = np.asarray(generate_ntt_primes(4, 30, 64), dtype=np.int64)
        lhs = np.stack([rng.integers(0, q, (6, 10), dtype=np.int64)
                        for q in primes])
        rhs = np.stack([rng.integers(0, q, (10, 8), dtype=np.int64)
                        for q in primes])
        a = np.stack([rng.integers(0, q, 64, dtype=np.int64) for q in primes])
        b = np.stack([rng.integers(0, q, 64, dtype=np.int64) for q in primes])
        flat = rng.integers(0, primes[0], (6, 6), dtype=np.int64)
        row_moduli = np.concatenate([primes, primes[:2]])   # one per lhs row
        bound = {"start": 1, "stop": 3}
        cases = {
            "matmul_limbs": ((lhs, rhs), dict(bound, moduli=primes[1:3]),
                             lambda: numpy.matmul_limbs(lhs, rhs, primes)),
            "matmul_limbs_cols": ((lhs, rhs), dict(bound, moduli=primes),
                                  lambda: numpy.matmul_limbs(lhs, rhs, primes)),
            "matmul": ((flat, flat), dict(bound, modulus=int(primes[0])),
                       lambda: numpy.matmul(flat, flat, int(primes[0]))),
            "matmul_rows": ((lhs[0], rhs[0]),
                            dict(bound, moduli=row_moduli[1:3],
                                 operand_bound=None),
                            lambda: numpy.matmul_rows(lhs[0], rhs[0],
                                                      row_moduli)),
            "hadamard": ((a[0], b[0]), dict(bound, modulus=int(primes[0])),
                         lambda: numpy.hadamard(a[0], b[0], int(primes[0]))),
            "hadamard_limbs": ((a, b), dict(bound, moduli=primes[1:3]),
                               lambda: numpy.hadamard_limbs(a, b, primes)),
            "mat_add": ((a, b), dict(bound, moduli=primes[1:3]),
                        lambda: numpy.mat_add(a, b, primes)),
            "mat_sub": ((a, b), dict(bound, moduli=primes[1:3]),
                        lambda: numpy.mat_sub(a, b, primes)),
            "mat_mul": ((a, b), dict(bound, moduli=primes[1:3]),
                        lambda: numpy.mat_mul(a, b, primes)),
            "mat_neg": ((a,), dict(bound, moduli=primes[1:3]),
                        lambda: numpy.mat_neg(a, primes)),
            "mat_reduce": ((a + primes[:, None],),
                           dict(bound, moduli=primes[1:3]),
                           lambda: numpy.mat_reduce(a + primes[:, None],
                                                    primes)),
        }
        assert set(cases) == set(_KERNELS)
        for op, (operands, params, reference) in cases.items():
            expected = reference()
            out = np.zeros_like(expected)
            _KERNELS[op](numpy, tuple(operands) + (out,), params)
            if op == "matmul_limbs_cols":
                shard = out[:, :, params["start"]:params["stop"]]
                want = expected[:, :, params["start"]:params["stop"]]
            else:
                shard = out[params["start"]:params["stop"]]
                want = expected[params["start"]:params["stop"]]
            assert np.array_equal(shard, want), op


# ----------------------------------------------------------------------
# Capabilities and scheduler fan-out
# ----------------------------------------------------------------------
class TestSchedulerFanout:
    def test_capabilities_report_the_pool(self, forced):
        report = forced.capabilities()
        assert report["sharded"] is True
        assert report["delegate"] == "numpy"
        assert report["shard_workers"] == 2
        assert report["batch_fanout"] == 2
        assert report["min_shard_elements"] == 1
        # Engines must route residues through the int64 funnel (which
        # shards) and never count device transfers.
        assert report["float_residency"] is False
        assert report["device_is_host"] is True

    def test_sharded_backend_multiplies_the_plan(self, forced):
        pinned = BatchScheduler(A100, backend="numpy")
        fanned = BatchScheduler(A100, backend=forced)
        assert pinned.batch_fanout() == 1
        assert fanned.batch_fanout() == forced.workers
        base = pinned.plan(4096, 9)
        plan = fanned.plan(4096, 9)
        assert plan.batch_fanout == forced.workers
        assert plan.batch_size == base.batch_size * forced.workers
        # ``requested`` still caps the fanned-out target.
        assert fanned.plan(4096, 9, requested=4).batch_size == 4

    def test_limb_only_multiprocess_does_not_fan_out(self):
        backend = MultiprocessBackend(workers=4)
        scheduler = BatchScheduler(A100, backend=backend)
        assert scheduler.batch_fanout() == 1

    def test_unresolvable_backend_degrades_to_one(self):
        scheduler = BatchScheduler(A100, backend="definitely-not-a-backend")
        assert scheduler.batch_fanout() == 1
        assert scheduler.plan(4096, 9).batch_fanout == 1
