"""Residency-layer semantics: handles, transfer counters, invalidation.

Three layers of coverage:

* ``DeviceBuffer`` unit semantics — identity residency on CPU backends,
  counted crossings on device backends, the invalidation contract;
* funnel/engine threading — handle in → handle out through every funnel
  and the GEMM engines, bit-identical to the host path on every available
  backend, with a *fake device backend* proving a fused chain performs
  only boundary transfers (zero device→host until the result is read);
* the acceptance scenario — a fused batched HMULT (B=8, N=4096) on the
  blas backend performs zero host↔device conversions and stays
  bit-identical to the sequential evaluator with identical kernel
  counters.
"""

import numpy as np
import pytest

from repro.api import TensorFheContext
from repro.backend import (
    DeviceBuffer,
    FloatOperandCache,
    available_backends,
    as_ndarray,
    get_backend,
    track_transfers,
    use_backend,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.residency import concatenate_arrays, stack_arrays
from repro.ckks import CkksParameters
from repro.kernels.base import KernelCounter
from repro.ntt import NttPlanner
from repro.numtheory import generate_ntt_primes
from repro.numtheory.modular import (
    mat_mod_add,
    mat_mod_mul,
    mat_mod_neg,
    mat_mod_reduce,
    mat_mod_sub,
)
from repro.ntt.gemm_utils import modular_hadamard_limbs, modular_matmul_limbs
from repro.rns.poly import RnsPolynomial


class _StubArray:
    """Opaque 'device' array: a numpy array the host code must not touch."""

    def __init__(self, array: np.ndarray) -> None:
        self.array = np.asarray(array, dtype=np.int64)

    @property
    def shape(self):
        return self.array.shape


class FakeDeviceBackend(NumpyBackend):
    """Numpy-backed backend that *simulates* device residency.

    ``device_is_host = False`` makes every handle crossing observable: the
    tests assert that fused chains upload operands once and never copy
    intermediates back to host.
    """

    name = "fakedev"
    device_is_host = False

    def to_device(self, array):
        return _StubArray(np.asarray(array, dtype=np.int64).copy())

    def from_device(self, array):
        if isinstance(array, _StubArray):
            return array.array.copy()
        return np.asarray(array, dtype=np.int64)

    # -- native view algebra on the stub ------------------------------
    def nat_reshape(self, a, shape):
        return _StubArray(a.array.reshape(shape))

    def nat_transpose(self, a, axes):
        return _StubArray(a.array.transpose(axes))

    def nat_getitem(self, a, key):
        return _StubArray(a.array[key])

    def nat_contiguous(self, a):
        return _StubArray(np.ascontiguousarray(a.array))

    def nat_copy(self, a):
        return _StubArray(a.array.copy())

    def nat_stack(self, arrays, axis=0):
        return _StubArray(np.stack([a.array for a in arrays], axis=axis))

    def nat_concat(self, arrays, axis=0):
        return _StubArray(np.concatenate([a.array for a in arrays], axis=axis))

    # -- native kernels: unwrap stubs, compute, rewrap (no crossings) --
    def _run(self, host_kernel, buffers, *args, **kwargs):
        arrays = [b.ensure_device(self).array for b in buffers]
        out = host_kernel(*arrays, *args, **kwargs)
        return DeviceBuffer.from_native(_StubArray(out), self)

    def matmul_limbs_native(self, lhs, rhs, moduli, *, lhs_cache=None,
                            rhs_cache=None):
        return self._run(super().matmul_limbs, [lhs, rhs], moduli)

    def matmul_native(self, lhs, rhs, modulus):
        return self._run(super().matmul, [lhs, rhs], modulus)

    def matmul_rows_native(self, lhs, rhs, row_moduli, *, operand_bound=None):
        return self._run(super().matmul_rows, [lhs, rhs], row_moduli,
                         operand_bound=operand_bound)

    def hadamard_limbs_native(self, lhs, rhs, moduli):
        return self._run(super().hadamard_limbs, [lhs, rhs], moduli)

    def hadamard_native(self, lhs, rhs, modulus):
        return self._run(super().hadamard, [lhs, rhs], modulus)

    def mat_reduce_native(self, matrix, moduli):
        return self._run(super().mat_reduce, [matrix], moduli)

    def mat_add_native(self, a, b, moduli):
        return self._run(super().mat_add, [a, b], moduli)

    def mat_sub_native(self, a, b, moduli):
        return self._run(super().mat_sub, [a, b], moduli)

    def mat_neg_native(self, a, moduli):
        return self._run(super().mat_neg, [a], moduli)

    def mat_mul_native(self, a, b, moduli):
        return self._run(super().mat_mul, [a, b], moduli)


@pytest.fixture()
def fake():
    return FakeDeviceBackend()


@pytest.fixture()
def counter():
    return KernelCounter()


class TestDeviceBuffer:
    def test_wrap_is_idempotent(self):
        buf = DeviceBuffer.wrap(np.arange(6, dtype=np.int64).reshape(2, 3))
        assert DeviceBuffer.wrap(buf) is buf
        assert buf.shape == (2, 3)
        assert buf.ndim == 2

    def test_identity_residency_on_cpu_backends(self, counter):
        """CPU backends: device image IS the host array, zero transfers."""
        host = np.arange(8, dtype=np.int64)
        buf = DeviceBuffer.wrap(host)
        with track_transfers(counter):
            for name in available_backends():
                backend = get_backend(name)
                if backend.device_is_host:
                    assert buf.ensure_device(backend) is host
        assert counter.transfer_total() == 0

    def test_transfers_are_counted_once(self, fake, counter):
        buf = DeviceBuffer.wrap(np.arange(8, dtype=np.int64))
        with track_transfers(counter):
            first = buf.ensure_device(fake)
            again = buf.ensure_device(fake)
        assert again is first
        assert counter.transfers["host_to_device"] == 1
        assert counter.transfers["device_to_host"] == 0
        # The host image never went away, so reading back is free.
        with track_transfers(counter):
            buf.ensure_host()
        assert counter.transfers["device_to_host"] == 0

    def test_device_to_host_is_counted(self, fake, counter):
        native = fake.to_device(np.arange(4, dtype=np.int64))
        buf = DeviceBuffer.from_native(native, fake)
        with track_transfers(counter):
            host = buf.ensure_host()
            buf.ensure_host()
        assert counter.transfers["device_to_host"] == 1
        assert np.array_equal(host, np.arange(4))

    def test_shape_ops_stay_on_device(self, fake, counter):
        data = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
        buf = DeviceBuffer.wrap(data)
        buf.ensure_device(fake)
        with track_transfers(counter):
            view = buf.reshape(6, 4).transpose(1, 0)[:2].ascontiguous()
        assert counter.transfer_total() == 0
        assert view.resident_backend is fake
        expected = np.ascontiguousarray(data.reshape(6, 4).transpose(1, 0)[:2])
        assert np.array_equal(as_ndarray(view), expected)

    def test_stack_and_concat_stay_on_device(self, fake, counter):
        parts = [DeviceBuffer.wrap(np.full((2, 3), i, dtype=np.int64))
                 for i in range(3)]
        for part in parts:
            part.ensure_device(fake)
        with track_transfers(counter):
            stacked = stack_arrays(parts)
            joined = concatenate_arrays(parts)
        assert counter.transfer_total() == 0
        assert stacked.resident_backend is fake
        assert joined.resident_backend is fake
        assert stacked.shape == (3, 2, 3)
        assert joined.shape == (6, 3)

    def test_invalidate_after_host_mutation(self, fake):
        """The invalidation contract: mutate host → invalidate → fresh image."""
        host = np.arange(8, dtype=np.int64)
        buf = DeviceBuffer.wrap(host)
        stale = buf.ensure_device(fake)
        host[0] = 999
        # Without invalidation the device image is stale — that IS the
        # documented contract, pinned here so a silent re-sync never hides
        # a missing invalidation at a call site.
        assert buf.ensure_device(fake) is stale
        assert stale.array[0] == 0
        buf.invalidate_device()
        assert buf.resident_backend is None
        refreshed = buf.ensure_device(fake)
        assert refreshed.array[0] == 999

    def test_numpy_interop_materialises_host(self, fake, counter):
        buf = DeviceBuffer.from_native(fake.to_device(np.arange(4)), fake)
        with track_transfers(counter):
            total = int(np.asarray(buf).sum())
        assert total == 6
        assert counter.transfers["device_to_host"] == 1

    def test_np_array_copy_is_a_real_copy(self):
        """np.array(handle) must not alias the authoritative host image."""
        buf = DeviceBuffer.wrap(np.arange(6, dtype=np.int64).reshape(2, 3))
        snapshot = np.array(buf)                   # copy=True default
        snapshot[0, 0] = 99
        assert buf.ensure_host()[0, 0] == 0
        alias = np.asarray(buf)                    # copy-if-needed: aliases
        assert alias is buf.ensure_host()

    def test_float_cache_attach_and_peek(self):
        matrix = np.arange(12, dtype=np.int64).reshape(3, 4)
        buf = DeviceBuffer.wrap(matrix)
        assert buf.float_cache() is None           # peek never builds
        cache = FloatOperandCache(matrix)
        buf.attach_float_cache(cache)
        assert buf.float_cache() is cache
        buf.invalidate_device()                    # invalidation drops it
        assert buf.float_cache() is None
        built = buf.float_cache(FloatOperandCache)  # factory builds once
        assert built is not None and buf.float_cache() is built

    def test_constructor_contracts(self, fake):
        with pytest.raises(ValueError):
            DeviceBuffer()                          # no image at all
        with pytest.raises(ValueError):
            DeviceBuffer(native=object())           # native without backend
        # from_native on a host backend normalises to a host handle.
        host_backend = get_backend("numpy")
        buf = DeviceBuffer.from_native(np.arange(3), host_backend)
        assert buf.resident_backend is None
        assert buf.is_resident(host_backend)
        device_buf = DeviceBuffer.from_native(fake.to_device(np.arange(3)), fake)
        assert device_buf.is_resident(fake)
        assert not device_buf.is_resident(host_backend)  # no host image yet

    def test_invalidate_device_only_handle_keeps_a_host_image(self, fake):
        buf = DeviceBuffer.from_native(fake.to_device(np.arange(5)), fake)
        buf.invalidate_device()
        assert buf.resident_backend is None
        assert np.array_equal(buf.ensure_host(), np.arange(5))


class TestFunnelThreading:
    """Handle in → handle out, bit-identical to the host path."""

    MODULI = np.asarray([97, 193], dtype=np.int64)

    @pytest.fixture()
    def operands(self, rng):
        a = rng.integers(0, 97, (2, 16), dtype=np.int64) % self.MODULI[:, None]
        b = rng.integers(0, 97, (2, 16), dtype=np.int64) % self.MODULI[:, None]
        return a, b

    @pytest.mark.parametrize("backend", available_backends())
    def test_mat_mod_funnels(self, operands, backend):
        a, b = operands
        column = self.MODULI[:, None]
        with use_backend(backend):
            cases = [
                (mat_mod_add, (a, b)),
                (mat_mod_sub, (a, b)),
                (mat_mod_mul, (a, b)),
                (mat_mod_neg, (a,)),
                (mat_mod_reduce, (a * 3,)),
            ]
            for fn, args in cases:
                host_out = fn(*args, column)
                buf_out = fn(*[DeviceBuffer.wrap(x) for x in args], column)
                assert isinstance(buf_out, DeviceBuffer), fn.__name__
                assert np.array_equal(as_ndarray(buf_out), host_out), fn.__name__

    @pytest.mark.parametrize("backend", available_backends())
    def test_gemm_funnels(self, rng, backend):
        moduli = np.asarray([97, 193], dtype=np.int64)
        lhs = rng.integers(0, 97, (2, 8, 8), dtype=np.int64)
        rhs = rng.integers(0, 97, (2, 8, 3), dtype=np.int64)
        with use_backend(backend):
            host_out = modular_matmul_limbs(lhs, rhs, moduli)
            buf_out = modular_matmul_limbs(DeviceBuffer.wrap(lhs),
                                           DeviceBuffer.wrap(rhs), moduli)
            assert isinstance(buf_out, DeviceBuffer)
            assert np.array_equal(as_ndarray(buf_out), host_out)
            had_host = modular_hadamard_limbs(rhs, rhs, moduli)
            had_buf = modular_hadamard_limbs(DeviceBuffer.wrap(rhs),
                                             DeviceBuffer.wrap(rhs), moduli)
            assert np.array_equal(as_ndarray(had_buf), had_host)

    @pytest.mark.parametrize("backend", available_backends())
    def test_two_d_funnels(self, rng, backend):
        from repro.ntt.gemm_utils import modular_hadamard, modular_matmul

        modulus = 97
        lhs = rng.integers(0, modulus, (8, 8), dtype=np.int64)
        rhs = rng.integers(0, modulus, (8, 3), dtype=np.int64)
        with use_backend(backend):
            want = modular_matmul(lhs, rhs, modulus)
            got = modular_matmul(DeviceBuffer.wrap(lhs),
                                 DeviceBuffer.wrap(rhs), modulus)
            assert isinstance(got, DeviceBuffer)
            assert np.array_equal(as_ndarray(got), want)
            want_h = modular_hadamard(lhs, lhs, modulus)
            got_h = modular_hadamard(DeviceBuffer.wrap(lhs),
                                     DeviceBuffer.wrap(lhs), modulus)
            assert np.array_equal(as_ndarray(got_h), want_h)

    def test_oversized_moduli_object_paths_accept_handles(self, rng):
        """>= 2**31 moduli stage through the exact object path, handle out."""
        from repro.ntt.gemm_utils import modular_hadamard

        big = (1 << 33) - 9
        moduli = np.asarray([big], dtype=np.int64)
        lhs = rng.integers(0, big, (1, 4, 4), dtype=np.int64)
        rhs = rng.integers(0, big, (1, 4, 2), dtype=np.int64)
        want = modular_matmul_limbs(lhs, rhs, moduli)
        got = modular_matmul_limbs(DeviceBuffer.wrap(lhs),
                                   DeviceBuffer.wrap(rhs), moduli)
        assert isinstance(got, DeviceBuffer)
        assert np.array_equal(as_ndarray(got), want)
        vec_a, vec_b = lhs[0, :, 0], rhs[0, 0, :]
        want_h = modular_hadamard(vec_a[:2], vec_b, big)
        got_h = modular_hadamard(DeviceBuffer.wrap(vec_a[:2]),
                                 DeviceBuffer.wrap(vec_b), big)
        assert isinstance(got_h, DeviceBuffer)
        assert np.array_equal(as_ndarray(got_h), want_h)

    def test_fused_chain_has_boundary_transfers_only(self, fake, counter):
        """H2D per fresh operand, zero D2H until the result is read."""
        moduli = np.asarray([97, 193], dtype=np.int64)
        column = moduli[:, None]
        rng = np.random.default_rng(5)
        a = DeviceBuffer.wrap(rng.integers(0, 97, (2, 16), dtype=np.int64) % column)
        b = DeviceBuffer.wrap(rng.integers(0, 97, (2, 16), dtype=np.int64) % column)
        with use_backend(fake), track_transfers(counter):
            product = mat_mod_mul(a, b, column)
            total = mat_mod_add(product, a, column)
            reduced = mat_mod_sub(total, b, column)
        assert counter.transfers["host_to_device"] == 2      # a and b, once
        assert counter.transfers["device_to_host"] == 0      # fully resident
        with track_transfers(counter):
            result = as_ndarray(reduced)
        assert counter.transfers["device_to_host"] == 1      # the boundary
        expected = ((as_ndarray(a) * as_ndarray(b)) % column + as_ndarray(a)
                    - as_ndarray(b)) % column
        assert np.array_equal(result, expected)


@pytest.mark.parametrize("engine", ["matrix", "four_step", "tensorcore",
                                    "butterfly"])
class TestEngineThreading:
    """Engines follow the funnel convention across all transform entries."""

    def _data(self, ring_degree=32, limbs=3):
        primes = generate_ntt_primes(limbs, 17, ring_degree)
        rng = np.random.default_rng(11)
        residues = np.stack([
            rng.integers(0, q, ring_degree, dtype=np.int64) for q in primes
        ])
        return primes, residues

    def test_limbs_roundtrip_matches_host(self, engine):
        primes, residues = self._data()
        planner = NttPlanner(engine)
        host_fwd = planner.forward_limbs(32, primes, residues)
        buf_fwd = planner.forward_limbs(32, primes, DeviceBuffer.wrap(residues))
        assert np.array_equal(as_ndarray(buf_fwd), host_fwd)
        back = planner.inverse_limbs(32, primes, DeviceBuffer.wrap(host_fwd))
        assert np.array_equal(as_ndarray(back), residues)

    def test_unreduced_handle_input_is_normalised(self, engine):
        """Out-of-range residues behind a handle reduce exactly like arrays.

        Regression: handle validation must not skip the historical range
        scan for host-resident inputs — a user-constructed polynomial with
        unreduced (here: signed and oversized) values has to transform
        identically through both entry types.
        """
        primes, residues = self._data()
        column = np.asarray(primes, dtype=np.int64)[:, None]
        unreduced = residues + 3 * column          # same residues mod q
        unreduced[0, 0] -= 7 * column[0, 0]        # and a negative entry
        planner = NttPlanner(engine)
        want = planner.forward_limbs(32, primes, unreduced)
        got = planner.forward_limbs(32, primes, DeviceBuffer.wrap(unreduced))
        assert np.array_equal(as_ndarray(got), want)
        assert np.array_equal(want, planner.forward_limbs(32, primes, residues))

    def test_ops_stack_matches_host(self, engine):
        primes, residues = self._data()
        stacks = np.stack([residues, (residues * 2) % np.asarray(primes)[:, None]])
        planner = NttPlanner(engine)
        host_out = planner.forward_ops(32, primes, stacks)
        buf_out = planner.forward_ops(32, primes, DeviceBuffer.wrap(stacks))
        assert np.array_equal(as_ndarray(buf_out), as_ndarray(host_out))

    def test_second_transform_is_transfer_free(self, engine, fake, counter):
        """Twiddles and inputs upload once; steady state moves nothing."""
        if engine in ("tensorcore", "butterfly"):
            pytest.skip("host-simulation engines stage on host by design")
        primes, residues = self._data()
        planner = NttPlanner(engine, backend=fake)
        buf = DeviceBuffer.wrap(residues)
        with use_backend(fake):
            planner.forward_limbs(32, primes, buf)     # uploads twiddles+input
            with track_transfers(counter):
                out = planner.forward_limbs(32, primes, buf)
        assert counter.transfer_total() == 0
        assert out.resident_backend is fake


class TestPolynomialResidency:
    MODULI = (97, 193)

    def _poly(self, seed=3):
        rng = np.random.default_rng(seed)
        residues = np.stack([
            rng.integers(0, q, 16, dtype=np.int64) for q in self.MODULI
        ])
        return RnsPolynomial(16, self.MODULI, residues)

    def test_buffer_accessors(self):
        poly = self._poly()
        assert isinstance(poly.buffer, DeviceBuffer)
        assert poly.residues is poly.buffer.ensure_host()

    def test_constructor_accepts_handles(self):
        poly = self._poly()
        rebuilt = RnsPolynomial(16, self.MODULI, poly.buffer, poly.domain)
        assert np.array_equal(rebuilt.residues, poly.residues)

    def test_arithmetic_stays_resident(self, fake, counter):
        a, b = self._poly(1), self._poly(2)
        with use_backend(fake):
            warm = a.add(b)                      # uploads a and b
            with track_transfers(counter):
                total = a.add(b).hadamard(warm).negate()
        assert counter.transfer_total() == 0
        assert total.buffer.resident_backend is fake
        expected = a.add(b).hadamard(a.add(b)).negate()
        assert np.array_equal(total.residues, as_ndarray(expected.buffer))

    def test_invalidation_after_mutation_regression(self, fake):
        """Mutate residues in place → invalidate_resident → correct result."""
        a, b = self._poly(1), self._poly(2)
        with use_backend(fake):
            a.add(b)                             # builds a's device image
            a.residues[0, 0] = 7                 # in-place host mutation
            a.invalidate_resident()
            total = a.add(b)
        assert total.residues[0, 0] == (7 + b.residues[0, 0]) % self.MODULI[0]
        assert a.buffer.resident_backend is fake  # re-uploaded after drop


@pytest.fixture(scope="module")
def accept_fhe():
    """The acceptance-shape instance: N=4096 at a shallow chain."""
    parameters = CkksParameters(ring_degree=4096, level_count=2, dnum=2,
                                secret_hamming_weight=64, name="residency")
    return TensorFheContext(parameters, seed=11, rotation_steps=())


class TestAcceptance:
    """ISSUE 5 acceptance: fused batched HMULT, blas, B=8, N=4096."""

    BATCH = 8

    def test_fused_hmult_zero_transfers_bit_identical(self, accept_fhe):
        fhe = accept_fhe
        rng = np.random.default_rng(29)
        lhs = [fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
               for _ in range(self.BATCH)]
        rhs = [fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
               for _ in range(self.BATCH)]
        key = fhe.relinearization_key
        kernels = fhe.context.kernels
        with use_backend("blas"):
            with kernels.capture() as sequential_counts:
                expected = [fhe.evaluator.multiply_and_rescale(l, r, key)
                            for l, r in zip(lhs, rhs)]
            with kernels.capture() as fused_counts:
                actual = fhe.batched_evaluator.multiply_and_rescale(lhs, rhs, key)
        # Bit-identical to the sequential evaluator.
        for got, want in zip(actual, expected):
            assert np.array_equal(got.c0.residues, want.c0.residues)
            assert np.array_equal(got.c1.residues, want.c1.residues)
            assert got.scale == want.scale and got.level == want.level
        # Identical kernel counters (fusion invisible to instrumentation).
        assert fused_counts.snapshot() == sequential_counts.snapshot()
        assert (dict(fused_counts.limb_vectors)
                == dict(sequential_counts.limb_vectors))
        # Zero intermediate host<->device conversions on the blas backend:
        # identity residency means the whole chain is conversion-free.
        assert fused_counts.transfer_total() == 0
        assert sequential_counts.transfer_total() == 0

    def test_fake_device_hmult_chain_no_intermediate_host_copies(self, fake):
        """On a true device backend the chain never copies back to host.

        Steady state (operands, twiddles and keys resident): an HMULT →
        RESCALE chain performs zero device→host crossings; only reading
        the result residues materialises a host image.
        """
        parameters = CkksParameters(ring_degree=64, level_count=2, dnum=2,
                                    secret_hamming_weight=8, name="res-fake")
        fhe = TensorFheContext(parameters, seed=13, rotation_steps=())
        rng = np.random.default_rng(3)
        lhs = fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
        rhs = fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
        key = fhe.relinearization_key
        planner_backend = NttPlanner(fhe.context.planner.engine_name,
                                     backend=fake)
        fhe.context.planner = planner_backend
        fhe.context.kernels.planner = planner_backend
        counter = KernelCounter()
        with use_backend(fake):
            warm = fhe.evaluator.multiply_and_rescale(lhs, rhs, key)
            with track_transfers(counter):
                product = fhe.evaluator.multiply_and_rescale(lhs, rhs, key)
        assert counter.transfers["device_to_host"] == 0
        assert product.c0.buffer.resident_backend is fake
        with track_transfers(counter):
            host_image = product.c0.residues
        assert counter.transfers["device_to_host"] == 1
        assert np.array_equal(host_image, warm.c0.residues)
