"""Task-safety of the backend override (ContextVar semantics).

The ``set_active_backend``/``use_backend`` override used to live in a
module global, so two concurrent asyncio tasks selecting different
backends could observe each other's choice mid-operation.  The override
slot is now a :class:`contextvars.ContextVar`; these tests pin the
isolation and inheritance rules the serving layer relies on.
"""

from __future__ import annotations

import asyncio

from repro.backend.registry import (
    get_active_backend,
    get_backend,
    set_active_backend,
    use_backend,
)


def test_concurrent_tasks_do_not_observe_each_others_override():
    """Two tasks holding different ``use_backend`` scopes stay isolated."""

    async def hold(name: str, cycles: int) -> list:
        seen = []
        with use_backend(name):
            for _ in range(cycles):
                # Yield to the loop so the sibling task interleaves while
                # this scope is open — the historical global would flip.
                await asyncio.sleep(0)
                seen.append(get_active_backend().name)
        return seen

    async def main():
        return await asyncio.gather(hold("numpy", 5), hold("blas", 5))

    numpy_seen, blas_seen = asyncio.run(main())
    assert numpy_seen == ["numpy"] * 5
    assert blas_seen == ["blas"] * 5


def test_task_inherits_override_active_at_spawn():
    """``create_task`` snapshots the context: the override travels in."""

    async def report() -> str:
        await asyncio.sleep(0)
        return get_active_backend().name

    async def main():
        with use_backend("blas"):
            inherited = asyncio.create_task(report())
            inner = await inherited
        # A task spawned after the scope closed resolves the default.
        outer = await asyncio.create_task(report())
        return inner, outer

    inner, outer = asyncio.run(main())
    assert inner == "blas"
    assert outer == get_active_backend().name


def test_override_inside_task_does_not_leak_out():
    """``set_active_backend`` inside a task is invisible to the caller."""

    async def switch() -> str:
        set_active_backend("blas")
        return get_active_backend().name

    async def main():
        inside = await asyncio.create_task(switch())
        return inside, get_active_backend().name

    before = get_active_backend().name
    inside, after = asyncio.run(main())
    assert inside == "blas"
    assert after == before


def test_synchronous_semantics_preserved():
    """Plain sequential code sees the historical set/restore behaviour."""
    baseline = get_active_backend().name
    previous = set_active_backend("blas")
    try:
        assert get_active_backend() is get_backend("blas")
        with use_backend("numpy"):
            assert get_active_backend().name == "numpy"
        assert get_active_backend().name == "blas"
    finally:
        set_active_backend(previous)
    assert get_active_backend().name == baseline
