"""Tests for the cost/operation/workload/energy models and the report helpers."""

import pytest

from repro.gpu import A100, GTX1080TI, V100
from repro.perf import (
    CostModelConfig,
    EnergyModel,
    GpuCostModel,
    KernelWorkload,
    ModelParameters,
    NttVariant,
    OperationModel,
    OPERATIONS,
    WorkloadModel,
    conv_workload,
    elementwise_workload,
    format_breakdown,
    format_comparison,
    format_table,
    hadamard_workload,
    literature,
    ntt_workload,
    ratio,
)
from repro.workloads import WORKLOADS

DEFAULT = ModelParameters(ring_degree=1 << 16, level_count=45, dnum=5, batch_size=128)


class TestKernelWorkloads:
    def test_ntt_workload_scales_with_batch(self):
        single = ntt_workload(1 << 14, 10, 1, NttVariant.GEMM_TCU)
        batched = ntt_workload(1 << 14, 10, 16, NttVariant.GEMM_TCU)
        assert batched.tcu_macs == pytest.approx(16 * single.tcu_macs)

    def test_variants_use_different_resources(self):
        butterfly = ntt_workload(1 << 14, 1, 1, NttVariant.BUTTERFLY)
        tcu = ntt_workload(1 << 14, 1, 1, NttVariant.GEMM_TCU)
        assert butterfly.tcu_macs == 0 and butterfly.stall_bound
        assert tcu.tcu_macs > 0 and not tcu.stall_bound

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            ntt_workload(1 << 10, 1, 1, "systolic")

    def test_scaled_and_merged(self):
        workload = hadamard_workload(1 << 10, 4, 2)
        doubled = workload.scaled(2)
        assert doubled.cuda_int_ops == 2 * workload.cuda_int_ops
        merged = workload.merged_with(doubled)
        assert merged.cuda_int_ops == 3 * workload.cuda_int_ops

    def test_conv_workload_scales_with_both_bases(self):
        small = conv_workload(1 << 10, 2, 4, 1)
        large = conv_workload(1 << 10, 4, 8, 1)
        assert large.cuda_int_ops == 4 * small.cuda_int_ops

    def test_elementwise_kernel_name(self):
        assert elementwise_workload("Ele-Sub", 1 << 10, 2, 1).kernel == "Ele-Sub"


class TestCostModel:
    def test_batched_faster_than_unbatched(self):
        model = GpuCostModel(A100)
        workload = ntt_workload(1 << 16, 45, 1, NttVariant.GEMM_CUDA)
        assert model.kernel_time(workload, batch_size=128) < \
            model.kernel_time(workload, batch_size=1)

    def test_tcu_kernel_on_gpu_without_tensor_cores_rejected(self):
        model = GpuCostModel(GTX1080TI)
        with pytest.raises(ValueError):
            model.kernel_time(ntt_workload(1 << 14, 1, 1, NttVariant.GEMM_TCU))

    def test_stall_bound_kernels_are_derated(self):
        config = CostModelConfig()
        model = GpuCostModel(A100, config)
        free = KernelWorkload("NTT", cuda_int_ops=1e9)
        bound = KernelWorkload("NTT", cuda_int_ops=1e9, stall_bound=True)
        assert model.kernel_time(bound, batch_size=128) > \
            model.kernel_time(free, batch_size=128)

    def test_memory_bound_kernel_uses_bandwidth(self):
        model = GpuCostModel(A100)
        workload = KernelWorkload("Ele-Add", cuda_int_ops=1.0, bytes_moved=1e9)
        elapsed = model.kernel_time(workload, batch_size=128)
        assert elapsed >= 1e9 / A100.memory_bandwidth_bytes_per_second

    def test_vram_fits(self):
        model = GpuCostModel(A100)
        assert model.vram_fits(1 << 30)
        assert not model.vram_fits(1 << 50)


class TestOperationModel:
    def test_all_operations_priced(self):
        model = OperationModel(DEFAULT, gpu=A100, variant=NttVariant.GEMM_TCU)
        times = model.all_operation_times_us()
        assert set(times) == set(OPERATIONS)
        assert all(value > 0 for value in times.values())

    def test_variant_ordering_matches_table_vi(self):
        """Table VI: TensorFHE < TensorFHE-CO < TensorFHE-NT for HMULT."""
        times = {}
        for variant in NttVariant.ALL:
            times[variant] = OperationModel(DEFAULT, gpu=A100,
                                            variant=variant).operation_time_us("HMULT")
        assert times[NttVariant.GEMM_TCU] < times[NttVariant.GEMM_CUDA] \
            < times[NttVariant.BUTTERFLY]

    def test_hmult_and_hrotate_dominate(self):
        model = OperationModel(DEFAULT, gpu=A100)
        times = model.all_operation_times_us()
        assert times["HMULT"] > 10 * times["HADD"]
        assert times["HROTATE"] > 10 * times["HADD"]
        assert abs(times["HMULT"] - times["HROTATE"]) / times["HMULT"] < 0.25

    def test_a100_faster_than_v100(self):
        a100 = OperationModel(DEFAULT, gpu=A100).operation_time_us("HMULT")
        v100 = OperationModel(DEFAULT, gpu=V100).operation_time_us("HMULT")
        assert a100 < v100

    def test_batching_improves_amortised_latency(self):
        unbatched = OperationModel(DEFAULT, gpu=A100, batched=False)
        batched = OperationModel(DEFAULT, gpu=A100, batched=True)
        assert batched.operation_time_us("HMULT") < unbatched.operation_time_us("HMULT")

    def test_ntt_dominates_hmult_breakdown(self):
        """Figure 11: the NTT kernel takes the largest share of HMULT."""
        model = OperationModel(DEFAULT, gpu=A100)
        breakdown = model.kernel_breakdown("HMULT")
        assert breakdown["NTT"] == max(breakdown.values())
        assert abs(sum(breakdown.values()) - 1.0) < 1e-9

    def test_shorter_polynomials_are_faster(self):
        """Figure 15: execution time falls as N shrinks."""
        times = []
        for log_n in (16, 14, 12):
            params = ModelParameters(ring_degree=1 << log_n, level_count=20,
                                     dnum=5, batch_size=128)
            times.append(OperationModel(params, gpu=A100).operation_time_us("NTT"))
        assert times[0] > times[1] > times[2]

    def test_larger_batch_not_slower(self):
        """Figure 14: larger batches amortise launch overhead."""
        small = ModelParameters(ring_degree=1 << 16, level_count=45, dnum=5, batch_size=32)
        large = ModelParameters(ring_degree=1 << 16, level_count=45, dnum=5, batch_size=512)
        assert OperationModel(large, gpu=A100).operation_time_us("HADD") <= \
            OperationModel(small, gpu=A100).operation_time_us("HADD")

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            OperationModel(DEFAULT).operation_time("HBOGUS")

    def test_alpha_and_extended_limbs(self):
        assert DEFAULT.alpha == 9
        assert DEFAULT.extended_limbs == 45 + 9


class TestWorkloadModel:
    def test_all_workloads_priced(self):
        model = WorkloadModel()
        for name, workload in WORKLOADS.items():
            timings = model.evaluate(workload)
            assert timings.total_seconds > 0
            assert abs(sum(timings.operation_breakdown().values()) - 1.0) < 1e-9
            assert abs(sum(timings.kernel_breakdown().values()) - 1.0) < 1e-9

    def test_workload_ordering_matches_table_x(self):
        """Table X shape: ResNet-20 slowest, LR fastest of the DNN workloads."""
        model = WorkloadModel()
        times = {name: model.evaluate(w).total_seconds for name, w in WORKLOADS.items()}
        assert times["resnet20"] > times["lstm"] > times["lr"]

    def test_tensorfhe_beats_f1plus_on_lr(self):
        """The paper's headline: 2.9x faster than F1+ on logistic regression."""
        model = WorkloadModel()
        modelled = model.evaluate(WORKLOADS["lr"]).total_seconds
        assert modelled < literature.TABLE_X_WORKLOAD_SECONDS["F1+"]["lr"]

    def test_tensorfhe_slower_than_craterlake(self):
        model = WorkloadModel()
        for name in ("resnet20", "lr", "lstm"):
            modelled = model.evaluate(WORKLOADS[name]).total_seconds
            assert modelled > literature.TABLE_X_WORKLOAD_SECONDS["CraterLake"][name]

    def test_tcu_variant_fastest_for_bootstrap(self):
        """Table VII shape: full TensorFHE beats the -NT and -CO variants."""
        times = {}
        for variant in NttVariant.ALL:
            model = WorkloadModel(variant=variant)
            times[variant] = model.bootstrap_time(WORKLOADS["packed_bootstrapping"], 128)
        assert times[NttVariant.GEMM_TCU] < times[NttVariant.BUTTERFLY]
        assert times[NttVariant.GEMM_TCU] < times[NttVariant.GEMM_CUDA]

    def test_hrotate_dominates_operation_breakdown(self):
        """Figure 13: HROTATE is the most time-consuming operation."""
        model = WorkloadModel()
        breakdown = model.evaluate(WORKLOADS["resnet20"]).operation_breakdown()
        assert breakdown["HROTATE"] == max(breakdown.values())

    def test_ntt_dominates_kernel_breakdown(self):
        """Figure 12: the NTT kernel dominates every workload."""
        model = WorkloadModel()
        for workload in WORKLOADS.values():
            breakdown = model.evaluate(workload).kernel_breakdown()
            assert breakdown["NTT"] == max(breakdown.values())
            assert breakdown["NTT"] > 0.5


class TestEnergyAndLiterature:
    def test_energy_model(self):
        energy = EnergyModel(264.0)
        assert energy.joules_per_iteration(2.0) == pytest.approx(528.0)
        assert energy.operations_per_watt(1e-3) == pytest.approx(1000 / 264.0)
        with pytest.raises(ValueError):
            energy.operations_per_watt(0.0)

    def test_energy_table(self):
        energy = EnergyModel()
        table = energy.table_xi_operations({"HADD": 1e-6, "HMULT": 1e-3})
        assert table["HADD"] > table["HMULT"]

    def test_literature_tables_well_formed(self):
        assert set(literature.TABLE_IX_OCCUPANCY) == set(OPERATIONS)
        assert literature.TABLE_VI_OPERATION_DELAY_US["TensorFHE(A100)"]["HMULT"] == 851.0
        assert literature.TABLE_X_WORKLOAD_SECONDS["TensorFHE"]["lr"] == 14.1
        assert literature.HEADLINE_CLAIMS["speedup_over_100x"] == 2.61
        for kernel in ("NTT", "INTT", "HMULT"):
            assert set(literature.TABLE_VIII_HEAX_THROUGHPUT[kernel]) == {"A", "B", "C"}


class TestReportHelpers:
    def test_ratio(self):
        assert ratio(2.0, 1.0) == 0.5
        assert ratio(None, 1.0) is None
        assert ratio(2.0, None) is None

    def test_format_table_contains_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", None]], title="demo")
        assert "demo" in text and "2.50" in text and "-" in text

    def test_format_comparison(self):
        text = format_comparison({"HMULT": 851.0}, {"HMULT": 900.0}, unit="us")
        assert "HMULT" in text and "1.06" in text

    def test_format_breakdown_sorted(self):
        text = format_breakdown({"NTT": 0.7, "Conv": 0.3})
        assert text.index("NTT") < text.index("Conv")
