"""Measured-throughput calibration: loading, queries, model/scheduler wiring."""

from __future__ import annotations

import json
import os

import pytest

from repro.batching.scheduler import BatchScheduler
from repro.gpu import A100
from repro.perf import (
    CostModelConfig,
    MeasuredThroughput,
    ModelParameters,
    OperationModel,
    default_results_dir,
)

REPO_RESULTS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir, "benchmarks", "results")

SYNTHETIC = {
    "op_batching": {
        "matrix_N4096_L8_B8": {"fused_us": 100.0, "per_ciphertext_us": 300.0,
                               "speedup": 3.0},
        "matrix_N4096_L8_B16": {"fused_us": 160.0, "per_ciphertext_us": 800.0,
                                "speedup": 5.0},
        "matrix_N1024_L8_B8": {"fused_us": 50.0, "per_ciphertext_us": 100.0,
                               "speedup": 2.0},
        "unparseable-key": {"fused_us": 1.0, "per_ciphertext_us": 2.0},
    },
    "keyswitch_batching": {
        "matrix_N4096_B8": {"fused_us": 400.0, "per_stream_us": 1600.0,
                            "speedup": 4.0},
    },
    "float_reduction": {
        "stage_N4096_L8_B16": {"float64_barrett_us": 10.0,
                               "int64_detour_us": 15.0, "speedup": 1.5},
    },
    "backends": {
        "blas": {"batched_us": 10.0, "speedup_vs_numpy": 2.5},
        "numpy": {"batched_us": 25.0, "speedup_vs_numpy": 1.0},
    },
    "unknown_benchmark": {"whatever_N4096_B8": {"fused_us": 1.0}},
}


@pytest.fixture()
def synthetic() -> MeasuredThroughput:
    return MeasuredThroughput.from_payloads(SYNTHETIC)


def test_payload_parsing_and_filters(synthetic):
    assert synthetic
    # Unknown files and unparseable keys are skipped, recognised ones kept.
    assert {p.source for p in synthetic.points} == {
        "op_batching", "keyswitch_batching", "float_reduction"}
    assert len(synthetic.select(source="op_batching")) == 3
    point = synthetic.select(source="op_batching", ring_degree=4096,
                             label="matrix")[0]
    assert point.limbs == 8
    assert point.batch in (8, 16)
    assert synthetic.backend_speedups["blas"] == 2.5


def test_preferred_batch_is_the_measured_knee(synthetic):
    # At N=4096 the best observed op-batching speedup sits at B=16.
    assert synthetic.preferred_batch(4096, source="op_batching") == 16
    # An unswept ring degree falls back to the nearest measured one.
    assert synthetic.preferred_batch(2048, source="op_batching") in (8, 16)
    # No matching data -> None, never a guess.
    assert synthetic.preferred_batch(4096, source="missing") is None


def test_ops_per_second_amortises_the_fused_launch(synthetic):
    # keyswitch fused launch: 400us for B=8 -> 50us/op -> 20k ops/s.
    assert synthetic.fused_op_us(4096, source="keyswitch_batching") == 50.0
    assert synthetic.ops_per_second(4096, source="keyswitch_batching") == \
        pytest.approx(20000.0)


def test_mean_batched_speedup_is_geometric(synthetic):
    # op_batching speedups: 3.0, 5.0, 2.0 -> (30)^(1/3).
    assert synthetic.mean_batched_speedup(source="op_batching") == \
        pytest.approx(30.0 ** (1.0 / 3.0))
    assert MeasuredThroughput.from_payloads({}).mean_batched_speedup() == 1.0


def test_cost_model_recalibration(synthetic):
    config = CostModelConfig.from_measurements(synthetic)
    base = CostModelConfig()
    expected = base.cuda_efficiency_batched / synthetic.mean_batched_speedup(
        source="op_batching")
    assert config.cuda_efficiency_unbatched == pytest.approx(expected)
    assert 0 < config.cuda_efficiency_unbatched < config.cuda_efficiency_batched
    # The measured knee replaces the batching threshold.
    assert config.batching_threshold == 16
    # Explicit overrides win.
    pinned = CostModelConfig.from_measurements(synthetic, batching_threshold=4)
    assert pinned.batching_threshold == 4
    # Empty calibration -> defaults unchanged.
    empty = CostModelConfig.from_measurements(MeasuredThroughput.from_payloads({}))
    assert empty == base


def test_operation_model_accepts_measured(synthetic):
    parameters = ModelParameters(ring_degree=1 << 14, level_count=9, dnum=3,
                                 batch_size=32)
    calibrated = OperationModel(parameters, measured=synthetic)
    stock = OperationModel(parameters)
    assert calibrated.measured is synthetic
    # Recalibration changed the unbatched efficiency, so the unbatched
    # latency prediction moves while the batched one is untouched.
    unbatched_cal = OperationModel(parameters, measured=synthetic, batched=False)
    unbatched_stock = OperationModel(parameters, batched=False)
    assert calibrated.operation_time("HADD") == pytest.approx(
        stock.operation_time("HADD"))
    assert unbatched_cal.operation_time("HADD") != pytest.approx(
        unbatched_stock.operation_time("HADD"))
    # An explicit cost config still wins over the calibration.
    pinned = OperationModel(parameters, measured=synthetic,
                            cost_config=CostModelConfig())
    assert pinned.operation_time("HADD") == pytest.approx(
        stock.operation_time("HADD"))


def test_scheduler_uses_measured_knee(synthetic):
    # Pinned to the single-process numpy backend so the knee logic is
    # observed in isolation: under REPRO_BACKEND=sharded (the CI backend
    # matrix) an unpinned scheduler would fold the pool fan-out into the
    # plan, which has its own tests in tests/backend/test_sharded.py.
    static = BatchScheduler(A100, backend="numpy")
    measured = BatchScheduler(A100, measured=synthetic, backend="numpy")
    static_plan = static.plan(4096, 9)
    measured_plan = measured.plan(4096, 9)
    assert static_plan.measured_batch is None and not static_plan.measured
    assert measured_plan.measured_batch == 16
    assert static_plan.batch_fanout == 1 and measured_plan.batch_fanout == 1
    # VRAM is not the binding limit at this size, so the knee decides.
    assert measured_plan.batch_size == 16
    # ``requested`` still caps the measured recommendation.
    assert measured.plan(4096, 9, requested=4).batch_size == 4
    # An empty calibration behaves exactly like the static scheduler.
    empty = BatchScheduler(A100, measured=MeasuredThroughput.from_payloads({}),
                           backend="numpy")
    assert empty.measured is None
    assert empty.plan(4096, 9).batch_size == static_plan.batch_size


def test_loads_committed_results_dir():
    measured = MeasuredThroughput.from_results_dir(REPO_RESULTS)
    assert measured.points, "committed benchmarks/results JSONs should parse"
    assert measured.backend_speedups.get("blas", 0) > 1.0
    assert measured.mean_batched_speedup() > 1.0
    assert measured.preferred_batch(4096, source="op_batching") in (8, 16)
    description = measured.describe()
    assert description["points"] == len(measured.points)
    # The walk-up default resolver finds the same directory in a checkout.
    assert default_results_dir() is not None


def test_missing_and_corrupt_results_are_tolerated(tmp_path):
    assert not MeasuredThroughput.from_results_dir(str(tmp_path / "absent"))
    (tmp_path / "op_batching.json").write_text("{not json")
    (tmp_path / "keyswitch_batching.json").write_text(json.dumps(
        {"matrix_N1024_B8": {"fused_us": 10.0, "per_stream_us": 20.0}}))
    measured = MeasuredThroughput.from_results_dir(str(tmp_path))
    assert [p.source for p in measured.points] == ["keyswitch_batching"]
