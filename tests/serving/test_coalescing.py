"""Coalescing correctness: served results are bit-identical to sequential.

Property-style suite: for random interleavings of mixed-operation,
mixed-level requests, every ciphertext the serving engine resolves must
be *bit-identical* — residues, scale, level, domains — to running the
same operation through the sequential :class:`~repro.ckks.evaluator.
Evaluator`, no matter how the requests coalesced.  The ``owner`` tenant
adopts the facade's key material so both paths consume identical keys.
"""

import asyncio

import numpy as np
import pytest

from repro.serving import OpName, ServingEngine, UnknownTenant


def assert_same_ciphertext(actual, expected):
    assert np.array_equal(actual.c0.residues, expected.c0.residues)
    assert np.array_equal(actual.c1.residues, expected.c1.residues)
    assert actual.scale == expected.scale
    assert actual.level == expected.level
    assert actual.c0.domain == expected.c0.domain
    assert actual.c1.domain == expected.c1.domain


def _sequential(fhe, request):
    """The sequential-evaluator reference for one request tuple."""
    evaluator = fhe.evaluator
    op, ciphertext, operand, values, steps = request
    if op == OpName.ADD:
        return evaluator.add(ciphertext, operand)
    if op == OpName.MULTIPLY:
        return evaluator.multiply_and_rescale(ciphertext, operand,
                                              fhe.relinearization_key)
    if op == OpName.MULTIPLY_PLAIN:
        plaintext = fhe.encryptor.encode(values, level=ciphertext.level)
        return evaluator.multiply_plain(ciphertext, plaintext)
    if op == OpName.RESCALE:
        return evaluator.rescale(ciphertext)
    if op == OpName.ROTATE:
        return evaluator.rotate(ciphertext, steps, fhe.rotation_keys)
    return evaluator.conjugate(ciphertext, fhe.rotation_keys)


def _submit(engine, request):
    """The served counterpart of :func:`_sequential`."""
    op, ciphertext, operand, values, steps = request
    if op == OpName.ADD:
        return engine.add("owner", ciphertext, operand)
    if op == OpName.MULTIPLY:
        return engine.multiply("owner", ciphertext, operand)
    if op == OpName.MULTIPLY_PLAIN:
        return engine.multiply_plain("owner", ciphertext, values,
                                     rescale=False)
    if op == OpName.RESCALE:
        return engine.rescale("owner", ciphertext)
    if op == OpName.ROTATE:
        return engine.rotate("owner", ciphertext, steps)
    return engine.conjugate("owner", ciphertext)


def _random_requests(fhe, rng, count):
    """Mixed ops over ciphertexts at mixed levels (different prime chains)."""
    slots = fhe.slot_count
    max_level = fhe.context.max_level
    requests = []
    for _ in range(count):
        op = OpName.ALL[rng.integers(len(OpName.ALL))]
        level = int(rng.integers(1, max_level + 1))   # keep RESCALE legal
        ciphertext = fhe.evaluator.drop_to_level(
            fhe.encrypt(rng.uniform(-1, 1, slots)), level)
        operand = None
        values = None
        steps = 0
        if op in OpName.BINARY:
            operand = fhe.evaluator.drop_to_level(
                fhe.encrypt(rng.uniform(-1, 1, slots)), level)
        if op == OpName.MULTIPLY_PLAIN:
            values = rng.uniform(-1, 1, slots)
        if op == OpName.ROTATE:
            steps = int(rng.integers(1, 4))           # keys 1..3 pre-registered
        requests.append((op, ciphertext, operand, values, steps))
    return requests


@pytest.mark.parametrize("seed", [1, 2, 3])
async def test_random_interleavings_match_sequential(fhe, adopted_registry, seed):
    rng = np.random.default_rng(seed)
    requests = _random_requests(fhe, rng, count=24)
    expected = [_sequential(fhe, request) for request in requests]
    engine = ServingEngine(fhe, registry=adopted_registry)
    order = rng.permutation(len(requests))
    async with engine:
        shuffled = await asyncio.gather(
            *[_submit(engine, requests[index]) for index in order])
    for position, index in enumerate(order):
        assert_same_ciphertext(shuffled[position], expected[index])
    # The interleaving actually exercised fusion, not 24 singleton batches.
    assert engine.diagnostics()["batches"]["executed"] < len(requests)


async def test_mixed_levels_fuse_within_level_only(fhe, adopted_registry, rng):
    slots = fhe.slot_count
    high = [fhe.encrypt(rng.uniform(-1, 1, slots)) for _ in range(3)]
    low = [fhe.evaluator.drop_to_level(fhe.encrypt(rng.uniform(-1, 1, slots)), 1)
           for _ in range(3)]
    expected = ([fhe.evaluator.conjugate(c, fhe.rotation_keys) for c in high]
                + [fhe.evaluator.conjugate(c, fhe.rotation_keys) for c in low])
    engine = ServingEngine(fhe, registry=adopted_registry)
    async with engine:
        results = await asyncio.gather(
            *[engine.conjugate("owner", c) for c in high + low])
    for got, want in zip(results, expected):
        assert_same_ciphertext(got, want)
    # Two prime chains → two fused launches, each of three streams.
    histogram = engine.diagnostics()["batches"]["histogram"]
    assert histogram.get(3) == 2


async def test_degenerate_single_request_flush(fhe, adopted_registry, rng):
    ciphertext = fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
    operand = fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
    expected = fhe.evaluator.add(ciphertext, operand)
    engine = ServingEngine(fhe, registry=adopted_registry)
    async with engine:
        result = await engine.add("owner", ciphertext, operand)
    assert_same_ciphertext(result, expected)
    diag = engine.diagnostics()
    assert diag["batches"]["histogram"] == {1: 1}     # a B==1 flush is legal


async def test_empty_queue_flush_is_a_no_op(fhe, adopted_registry):
    engine = ServingEngine(fhe, registry=adopted_registry)
    engine._flush()                                   # nothing queued: no effect
    async with engine:
        await asyncio.sleep(0.01)                     # worker idles harmlessly
    assert engine.diagnostics()["batches"]["executed"] == 0


async def test_missing_tenant_amid_live_traffic(fhe, adopted_registry, rng):
    ciphertext = fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
    operand = fhe.encrypt(rng.uniform(-1, 1, fhe.slot_count))
    expected = fhe.evaluator.add(ciphertext, operand)
    engine = ServingEngine(fhe, registry=adopted_registry)
    async with engine:
        with pytest.raises(UnknownTenant):
            engine.submit_nowait("ghost", OpName.ADD, ciphertext, operand)
        result = await engine.add("owner", ciphertext, operand)
    assert_same_ciphertext(result, expected)          # engine was unaffected
    assert engine.health.available
