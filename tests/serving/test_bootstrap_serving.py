"""Serving-layer bootstrap: concurrent refreshes coalesce into one launch.

The ``bootstrap`` op is keyed (the pipeline consumes the relinearization
key, rotation keys and the conjugation key), so requests fuse only within
one key-bundle identity — aliased sessions of one data owner coalesce,
distinct tenants do not.  The fused result must equal the facade's own
``bootstrap_many`` bit for bit.
"""

import asyncio

import numpy as np
import pytest

from repro.serving import KeyRegistry, OpName, ServingConfig, ServingEngine


@pytest.fixture()
def bfhe(bootstrap_fhe):
    """The session-scoped shallow bootstrap facade."""
    return bootstrap_fhe


@pytest.fixture()
def bootstrap_registry(bfhe):
    """Owner tenant adopting the facade keys, plus two aliased sessions."""
    registry = KeyRegistry(bfhe.context, keygen=bfhe._keygen)
    owner = registry.adopt(
        "owner",
        secret_key=bfhe.secret_key,
        public_key=bfhe.public_key,
        relinearization_key=bfhe.relinearization_key,
        rotation_keys=bfhe.rotation_keys,
    )
    registry.alias("session-a", owner)
    registry.alias("session-b", owner)
    return registry


def exhausted_streams(bfhe, rng, count):
    return [
        bfhe.evaluator.drop_to_level(
            bfhe.encrypt(rng.uniform(-0.05, 0.05, bfhe.slot_count)), 0)
        for _ in range(count)
    ]


def assert_same_ciphertext(actual, expected):
    assert np.array_equal(actual.c0.residues, expected.c0.residues)
    assert np.array_equal(actual.c1.residues, expected.c1.residues)
    assert actual.scale == expected.scale
    assert actual.level == expected.level


async def test_concurrent_refreshes_fuse_into_one_launch(bfhe,
                                                         bootstrap_registry,
                                                         rng):
    """B concurrent bootstrap submissions execute as ONE fused batch."""
    streams = exhausted_streams(bfhe, rng, 4)
    expected = bfhe.bootstrap_many(streams)
    tenants = ("owner", "session-a", "owner", "session-b")
    engine = ServingEngine(bfhe, config=ServingConfig(max_linger=0.05),
                           registry=bootstrap_registry)
    async with engine:
        results = await asyncio.gather(*[
            engine.bootstrap(tenant, ciphertext)
            for tenant, ciphertext in zip(tenants, streams)
        ])
    for got, want in zip(results, expected):
        assert_same_ciphertext(got, want)
    diagnostics = engine.diagnostics()
    assert diagnostics["batches"]["executed"] == 1
    assert diagnostics["batches"]["histogram"] == {4: 1}
    assert diagnostics["batches"]["per_op"] == {OpName.BOOTSTRAP: 4}


async def test_distinct_key_bundles_do_not_fuse(bfhe, bootstrap_registry,
                                                rng):
    """A tenant with its own keys cannot share the fused refresh."""
    bootstrap_registry.register("stranger")
    streams = exhausted_streams(bfhe, rng, 2)
    stranger_ct = bootstrap_registry.get("stranger").encryptor.encrypt(
        rng.uniform(-0.05, 0.05, bfhe.slot_count))
    stranger_ct = bfhe.evaluator.drop_to_level(stranger_ct, 0)
    engine = ServingEngine(bfhe, config=ServingConfig(max_linger=0.05),
                           registry=bootstrap_registry)
    async with engine:
        await asyncio.gather(
            engine.bootstrap("owner", streams[0]),
            engine.bootstrap("session-a", streams[1]),
            engine.bootstrap("stranger", stranger_ct),
        )
    diagnostics = engine.diagnostics()
    assert diagnostics["batches"]["executed"] == 2
    assert diagnostics["batches"]["histogram"] == {2: 1, 1: 1}


async def test_bootstrap_rejects_second_operand(bfhe, bootstrap_registry,
                                                rng):
    streams = exhausted_streams(bfhe, rng, 2)
    engine = ServingEngine(bfhe, registry=bootstrap_registry)
    async with engine:
        with pytest.raises(TypeError):
            await engine.submit("owner", OpName.BOOTSTRAP, streams[0],
                                streams[1])
