"""Serving-engine behavior: coalescing, backpressure, lifecycle, diagnostics.

The acceptance scenario of the serving layer lives here: at least 32
concurrent clients submitting mixed operations must coalesce into fused
launches with a mean executed batch of at least 4 at saturation, with
every result decrypting correctly.
"""

import asyncio

import numpy as np
import pytest

from repro.serving import (
    EngineStopped,
    OpName,
    QueueFull,
    TenantBusy,
    UnknownOperation,
    UnknownTenant,
)

CLIENTS = 32


def _encrypt(registry, tenant, values):
    return registry.get(tenant).encryptor.encrypt(values)


class TestConcurrentCoalescing:
    async def test_32_clients_mixed_ops_saturate_the_batch_axis(self, fhe, serve, rng):
        engine = serve()
        registry = engine.registry
        owner = registry.register("client-0")
        for index in range(1, CLIENTS):
            registry.alias("client-%d" % index, owner)

        slots = fhe.slot_count
        values = [rng.uniform(-1, 1, slots) for _ in range(CLIENTS)]
        operand_values = [rng.uniform(-1, 1, slots) for _ in range(CLIENTS)]
        ciphertexts = [_encrypt(registry, "client-%d" % i, values[i])
                       for i in range(CLIENTS)]
        operands = [_encrypt(registry, "client-%d" % i, operand_values[i])
                    for i in range(CLIENTS)]

        # Four operation kinds, eight clients each — every kind forms one
        # coalescible group, so saturation means a mean batch of eight.
        def submit(index):
            tenant = "client-%d" % index
            kind = index % 4
            if kind == 0:
                return engine.add(tenant, ciphertexts[index], operands[index])
            if kind == 1:
                return engine.multiply(tenant, ciphertexts[index],
                                       operands[index])
            if kind == 2:
                return engine.multiply_plain(tenant, ciphertexts[index],
                                             operand_values[index],
                                             rescale=False)
            return engine.rotate(tenant, ciphertexts[index], 1)

        async with engine:
            results = await asyncio.gather(*[submit(i) for i in range(CLIENTS)])

        for index, result in enumerate(results):
            decryptor = registry.get("client-%d" % index).decryptor
            got = decryptor.decrypt_real(result)
            kind = index % 4
            if kind == 0:
                want = values[index] + operand_values[index]
            elif kind in (1, 2):
                want = values[index] * operand_values[index]
            else:
                want = np.roll(values[index], -1)
            np.testing.assert_allclose(got, want, atol=0.3)

        diag = engine.diagnostics()
        assert diag["requests"]["completed"] == CLIENTS
        assert diag["batches"]["mean_size"] >= 4.0
        assert diag["batches"]["executed"] <= CLIENTS // 4

    async def test_distinct_key_bundles_split_keyed_ops_only(self, fhe, serve, rng):
        engine = serve()
        registry = engine.registry
        registry.register("alice")
        registry.register("bob")
        slots = fhe.slot_count
        pairs = {tenant: (_encrypt(registry, tenant, rng.uniform(-1, 1, slots)),
                          _encrypt(registry, tenant, rng.uniform(-1, 1, slots)))
                 for tenant in ("alice", "bob")}
        async with engine:
            await asyncio.gather(*[engine.add(t, *pairs[t]) for t in pairs])
            adds = engine.diagnostics()["batches"]["executed"]
            assert adds == 1                      # HADD fuses across key bundles
            await asyncio.gather(*[engine.multiply(t, *pairs[t]) for t in pairs])
        diag = engine.diagnostics()
        assert diag["batches"]["executed"] == 3   # HMULT split per key_id
        assert diag["batches"]["per_op"][OpName.MULTIPLY] == 2


class TestBackpressure:
    async def test_queue_full_is_an_explicit_rejection(self, fhe, serve, rng):
        engine = serve(max_queue_depth=2, max_linger=0.0)
        registry = engine.registry
        registry.register("alice")
        lhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        rhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        async with engine:
            first = engine.submit_nowait("alice", OpName.ADD, lhs, rhs)
            second = engine.submit_nowait("alice", OpName.ADD, lhs, rhs)
            with pytest.raises(QueueFull):
                engine.submit_nowait("alice", OpName.ADD, lhs, rhs)
            await asyncio.gather(first, second)
            # Once the queue drained, admission reopens.
            await engine.add("alice", lhs, rhs)
        assert engine.diagnostics()["requests"]["rejected"] == 1

    async def test_tenant_inflight_cap(self, fhe, serve, rng):
        engine = serve(tenant_inflight_limit=1, max_linger=0.0)
        registry = engine.registry
        registry.register("alice")
        registry.register("bob")
        lhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        rhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        bl = _encrypt(registry, "bob", rng.uniform(-1, 1, fhe.slot_count))
        br = _encrypt(registry, "bob", rng.uniform(-1, 1, fhe.slot_count))
        async with engine:
            pending = engine.submit_nowait("alice", OpName.ADD, lhs, rhs)
            with pytest.raises(TenantBusy):
                engine.submit_nowait("alice", OpName.ADD, lhs, rhs)
            # The cap is per tenant: bob is unaffected.
            other = engine.submit_nowait("bob", OpName.ADD, bl, br)
            await asyncio.gather(pending, other)
            await engine.add("alice", lhs, rhs)   # cap released on completion


class TestRequestValidation:
    async def test_unknown_tenant_is_request_scoped(self, fhe, serve, rng):
        engine = serve()
        registry = engine.registry
        registry.register("alice")
        lhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        rhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        async with engine:
            with pytest.raises(UnknownTenant):
                engine.submit_nowait("mallory", OpName.ADD, lhs, rhs)
            # The engine keeps serving registered tenants.
            await engine.add("alice", lhs, rhs)
        assert engine.health.available

    async def test_unknown_operation_and_bad_operands(self, fhe, serve, rng):
        engine = serve()
        registry = engine.registry
        registry.register("alice")
        ciphertext = _encrypt(registry, "alice",
                              rng.uniform(-1, 1, fhe.slot_count))
        async with engine:
            with pytest.raises(UnknownOperation):
                engine.submit_nowait("alice", "transmogrify", ciphertext)
            with pytest.raises(TypeError):
                engine.submit_nowait("alice", OpName.ADD, ciphertext)   # no rhs
            with pytest.raises(TypeError):
                engine.submit_nowait("alice", OpName.MULTIPLY_PLAIN,
                                     ciphertext)                        # no values
            with pytest.raises(TypeError):
                engine.submit_nowait("alice", OpName.RESCALE, ciphertext,
                                     ciphertext)                        # stray rhs
            with pytest.raises(TypeError):
                engine.submit_nowait("alice", OpName.ADD, "not-a-ct",
                                     ciphertext)

    async def test_lazy_rotation_key_generation(self, fhe, serve, rng):
        engine = serve()
        registry = engine.registry
        bundle = registry.register("alice")       # no rotation steps upfront
        values = rng.uniform(-1, 1, fhe.slot_count)
        ciphertext = _encrypt(registry, "alice", values)
        step = 5
        assert step not in bundle.rotation_keys.keys
        async with engine:
            rotated = await engine.rotate("alice", ciphertext, step)
        assert step in bundle.rotation_keys.keys  # generated on first use
        got = bundle.decryptor.decrypt_real(rotated)
        np.testing.assert_allclose(got, np.roll(values, -step), atol=0.3)


class TestLifecycle:
    async def test_stop_drains_queued_work(self, fhe, serve, rng):
        engine = serve(max_linger=60.0)           # worker would linger forever
        registry = engine.registry
        registry.register("alice")
        lhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        rhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        await engine.start()
        futures = [engine.submit_nowait("alice", OpName.ADD, lhs, rhs)
                   for _ in range(3)]
        await engine.stop(drain=True)
        for future in futures:
            assert future.done() and future.exception() is None
        with pytest.raises(EngineStopped):
            engine.submit_nowait("alice", OpName.ADD, lhs, rhs)

    async def test_stop_without_drain_fails_pending_futures(self, fhe, serve, rng):
        engine = serve(max_linger=60.0)
        registry = engine.registry
        registry.register("alice")
        lhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        rhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        await engine.start()
        future = engine.submit_nowait("alice", OpName.ADD, lhs, rhs)
        await engine.stop(drain=False)
        with pytest.raises(EngineStopped):
            future.result()

    async def test_facade_builds_engines(self, fhe, rng):
        engine = fhe.create_serving_engine()
        registry = engine.registry
        registry.register("alice")
        lhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        rhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        async with engine:
            assert engine.running
            await engine.add("alice", lhs, rhs)
        assert not engine.running


class TestDiagnostics:
    async def test_snapshot_covers_every_operational_signal(self, fhe, serve, rng):
        engine = serve()
        registry = engine.registry
        registry.register("alice")
        lhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        rhs = _encrypt(registry, "alice", rng.uniform(-1, 1, fhe.slot_count))
        async with engine:
            await asyncio.gather(*[engine.add("alice", lhs, rhs)
                                   for _ in range(4)])
            diag = engine.diagnostics()
        assert diag["running"] is True
        assert diag["backend"] == fhe.compute_backend
        assert diag["queue_depth"] == 0
        assert diag["flush_target"] >= 1
        assert diag["tenants"] == 1
        assert diag["requests"]["submitted"] == 4
        assert diag["requests"]["completed"] == 4
        assert sum(size * count for size, count
                   in diag["batches"]["histogram"].items()) == 4
        assert diag["batches"]["coalesce_ratio"] >= 1.0
        assert diag["throughput"]["ops_per_second"] > 0
        assert isinstance(diag["kernels"], dict)
        assert isinstance(diag["transfers"], dict)
        assert "engine" in diag["health"]
