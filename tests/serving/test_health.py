"""Health gating: consecutive-failure circuit breaking in the serving engine.

The gate must open only after N *consecutive* executor failures, keep a
single probe admissible while open, close on the first success, and stay
untouched by request-scoped errors (bad operands fail their own future,
not the service).
"""

import pytest

from repro.serving import (
    HealthGate,
    ServiceUnavailable,
    ServingConfig,
    ServingEngine,
)
from repro.serving.request import OpName


class TestHealthGateUnit:
    def test_opens_only_after_threshold_consecutive_failures(self):
        gate = HealthGate(3)
        for _ in range(2):
            gate.record_failure()
        assert gate.available
        gate.record_failure()
        assert not gate.available

    def test_success_resets_the_consecutive_count(self):
        gate = HealthGate(3)
        gate.record_failure()
        gate.record_failure()
        gate.record_success()
        gate.record_failure()
        gate.record_failure()
        assert gate.available            # never three in a row
        assert gate.total_failures == 4

    def test_single_probe_while_open(self):
        gate = HealthGate(1)
        gate.record_failure()
        assert not gate.available
        assert gate.peek()               # the probe slot is free
        gate.admit()
        assert not gate.peek()           # and now booked
        gate.record_failure()            # probe failed: slot frees again
        assert gate.peek()

    def test_probe_success_closes_the_gate(self):
        gate = HealthGate(2)
        gate.record_failure()
        gate.record_failure()
        gate.admit()
        gate.record_success()
        assert gate.available
        assert gate.peek()

    def test_release_probe_is_neutral(self):
        gate = HealthGate(1)
        gate.record_failure()
        gate.admit()
        gate.release_probe()
        assert not gate.available        # count untouched
        assert gate.peek()               # but the slot came back

    def test_admit_while_available_does_not_book(self):
        gate = HealthGate(2)
        gate.admit()
        gate.record_failure()
        gate.record_failure()
        assert gate.peek()               # no stale probe from the open state

    def test_snapshot_fields(self):
        gate = HealthGate(2, name="tenant-a")
        gate.record_failure()
        snap = gate.snapshot()
        assert snap["available"] is True
        assert snap["consecutive_failures"] == 1
        assert snap["failure_threshold"] == 2
        assert snap["probe_pending"] is False
        assert snap["total_failures"] == 1

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthGate(0)


class _FlakyExecutor:
    """Fails the first ``failures`` batches, then delegates to the engine."""

    def __init__(self, failures):
        self.remaining = failures
        self.engine = None

    def __call__(self, op, chunk):
        if self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("injected executor failure")
        return self.engine._run_op(op, chunk)


def _fresh_pair(fhe, registry, tenant, rng):
    encryptor = registry.get(tenant).encryptor
    return (encryptor.encrypt(rng.uniform(-1, 1, fhe.slot_count)),
            encryptor.encrypt(rng.uniform(-1, 1, fhe.slot_count)))


class TestEngineGating:
    async def test_gates_after_consecutive_failures_and_recovers(self, fhe, rng):
        flaky = _FlakyExecutor(failures=3)
        engine = ServingEngine(fhe, executor=flaky,
                               config=ServingConfig(failure_threshold=3,
                                                    max_linger=0.0))
        flaky.engine = engine
        registry = engine.registry
        registry.register("alice")
        lhs, rhs = _fresh_pair(fhe, registry, "alice", rng)
        async with engine:
            for _ in range(3):           # each flush fails the executor
                with pytest.raises(RuntimeError):
                    await engine.add("alice", lhs, rhs)
            assert not engine.health.available

            # While gated: one probe admissible, a second concurrent
            # submission is refused.
            probe = engine.submit_nowait("alice", OpName.ADD, lhs, rhs)
            with pytest.raises(ServiceUnavailable):
                engine.submit_nowait("alice", OpName.ADD, lhs, rhs)

            # The executor recovered, so the probe closes the gate.
            await probe
            assert engine.health.available
            assert engine.tenant_health("alice").available
            await engine.add("alice", lhs, rhs)

        diag = engine.diagnostics()
        assert diag["requests"]["executor_failures"] == 3
        assert diag["health"]["engine"]["available"] is True

    async def test_interleaved_success_prevents_gating(self, fhe, rng):
        calls = {"n": 0}

        def alternating(op, chunk):
            calls["n"] += 1
            if calls["n"] % 2:
                raise RuntimeError("odd calls fail")
            return engine._run_op(op, chunk)

        engine = ServingEngine(fhe, executor=alternating,
                               config=ServingConfig(failure_threshold=2,
                                                    max_linger=0.0))
        engine.registry.register("alice")
        lhs, rhs = _fresh_pair(fhe, engine.registry, "alice", rng)
        async with engine:
            for attempt in range(6):
                if attempt % 2:
                    await engine.add("alice", lhs, rhs)
                else:
                    with pytest.raises(RuntimeError):
                        await engine.add("alice", lhs, rhs)
                assert engine.health.available

    async def test_request_scoped_errors_never_trip_the_gate(self, fhe, rng):
        engine = ServingEngine(fhe, config=ServingConfig(failure_threshold=1,
                                                         max_linger=0.0))
        registry = engine.registry
        registry.register("alice")
        encryptor = registry.get("alice").encryptor
        ciphertext = encryptor.encrypt(rng.uniform(-1, 1, fhe.slot_count))
        async with engine:
            # Drive the ciphertext to level 0, then rescale once more:
            # a ValueError surfaced through the future, not a failure.
            floor = ciphertext
            for _ in range(fhe.context.max_level):
                floor = await engine.rescale("alice", floor)
            with pytest.raises(ValueError):
                await engine.rescale("alice", floor)
            assert engine.health.available
            assert engine.tenant_health("alice").available
            # And the engine still serves.
            await engine.conjugate("alice", ciphertext)
        diag = engine.diagnostics()
        assert diag["requests"]["request_errors"] == 1
        assert diag["requests"]["executor_failures"] == 0

    async def test_failures_attribute_to_the_involved_tenants_only(self, fhe, rng):
        flaky = _FlakyExecutor(failures=1)
        engine = ServingEngine(fhe, executor=flaky,
                               config=ServingConfig(failure_threshold=1,
                                                    max_linger=0.0))
        flaky.engine = engine
        registry = engine.registry
        registry.register("alice")
        registry.register("bob")
        lhs, rhs = _fresh_pair(fhe, registry, "alice", rng)
        async with engine:
            with pytest.raises(RuntimeError):
                await engine.add("alice", lhs, rhs)
            assert not engine.tenant_health("alice").available
            assert engine.tenant_health("bob").available
