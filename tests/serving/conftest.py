"""Serving-suite fixtures and the coroutine test runner.

The environment ships no asyncio pytest plugin, so this conftest carries
a minimal one: any ``async def`` test in this directory runs to
completion on a fresh event loop via :func:`asyncio.run`.  Each test
therefore gets its own loop — serving engines must be built *inside* the
test coroutine (the ``serve`` fixture returns a factory, not an engine).
"""

import asyncio
import inspect

import pytest

from repro.serving import KeyRegistry, ServingConfig, ServingEngine


def pytest_pyfunc_call(pyfuncitem):
    """Run ``async def`` tests with ``asyncio.run`` on a fresh loop."""
    function = pyfuncitem.obj
    if not inspect.iscoroutinefunction(function):
        return None
    kwargs = {name: pyfuncitem.funcargs[name]
              for name in pyfuncitem._fixtureinfo.argnames}
    asyncio.run(function(**kwargs))
    return True


@pytest.fixture()
def fhe(toy_fhe):
    """The session-scoped toy facade (ring 64, 3 levels, full keys)."""
    return toy_fhe


@pytest.fixture()
def serve(fhe):
    """Factory building serving engines over the toy facade.

    Keyword arguments become :class:`ServingConfig` fields; ``registry``
    and ``executor`` pass through to the engine.
    """

    def build(*, registry=None, executor=None, **config_kwargs) -> ServingEngine:
        config = ServingConfig(**config_kwargs) if config_kwargs else None
        return ServingEngine(fhe, config=config, registry=registry,
                             executor=executor)

    return build


@pytest.fixture()
def adopted_registry(fhe):
    """A registry whose ``owner`` tenant reuses the facade's key material.

    Results produced through this tenant are bit-comparable with the
    facade's own sequential :class:`~repro.ckks.evaluator.Evaluator`.
    """
    registry = KeyRegistry(fhe.context, keygen=fhe._keygen)
    registry.adopt(
        "owner",
        secret_key=fhe.secret_key,
        public_key=fhe.public_key,
        relinearization_key=fhe.relinearization_key,
        rotation_keys=fhe.rotation_keys,
    )
    return registry
