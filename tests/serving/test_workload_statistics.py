"""The encrypted-statistics workload as concurrent serving traffic.

Proves the B axis fills from real request streams: many clients each run
their own mean/variance pipeline, awaiting every intermediate, and the
engine still coalesces each round into fused launches.
"""

import numpy as np

from repro.workloads import run_serving_statistics


async def test_concurrent_clients_fill_the_batch_axis(fhe):
    clients = 6
    report = await run_serving_statistics(fhe, clients=clients, seed=7)

    assert len(report.clients) == clients
    for stats in report.clients:
        assert stats.mean_error < 5e-2
        assert stats.variance_error < 5e-2

    # Every client issued the same pipeline; lockstep rounds must have
    # coalesced, not executed as one-request batches.
    assert report.requests_completed > clients
    assert report.mean_batch_size >= 2.0
    assert report.batches_executed < report.requests_completed


async def test_explicit_datasets_and_report_fields(fhe, rng):
    datasets = [rng.uniform(-0.5, 0.5, fhe.slot_count) for _ in range(2)]
    report = await run_serving_statistics(fhe, clients=2, datasets=datasets)
    for stats, values in zip(report.clients, datasets):
        assert np.isclose(stats.expected_mean, float(np.mean(values)))
        assert np.isclose(stats.expected_variance, float(np.var(values)))
        assert stats.mean_error < 5e-2
    assert report.max_error < 5e-2
    assert report.diagnostics["requests"]["rejected"] == 0
