"""Shared fixtures: small CKKS instances with full key material.

Key generation (especially the per-level switch keys) dominates test time,
so the contexts are session-scoped and shared across test modules.  All
functional CKKS tests run at reduced ring degree — the algorithms are
degree-agnostic, which is exactly what lets a pure-Python reproduction
validate them.

``toy_fhe`` is the facade-level sibling of the bundles: one session-scoped
:class:`~repro.api.TensorFheContext` (full key material including rotation
and conjugation keys) shared by the api and batched-evaluation suites,
which previously each built their own module-scoped instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import TensorFheContext
from repro.ckks.bootstrap import BootstrapConfig
from repro.ckks import (
    CkksContext,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)


class CkksBundle:
    """A CKKS context with all key material and helper objects."""

    def __init__(self, parameters: CkksParameters, seed: int,
                 rotation_steps) -> None:
        self.context = CkksContext(parameters, seed=seed)
        self.keygen = KeyGenerator(self.context)
        self.secret_key = self.keygen.generate_secret_key()
        self.public_key = self.keygen.generate_public_key(self.secret_key)
        self.relinearization_key = self.keygen.generate_relinearization_key(self.secret_key)
        self.rotation_keys = self.keygen.generate_rotation_keys(self.secret_key,
                                                                rotation_steps)
        self.encryptor = Encryptor(self.context, self.public_key, self.secret_key)
        self.decryptor = Decryptor(self.context, self.secret_key)
        self.evaluator = Evaluator(self.context)

    @property
    def slot_count(self) -> int:
        return self.context.slot_count

    def random_slots(self, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
        return rng.uniform(-scale, scale, self.slot_count)


@pytest.fixture(scope="session")
def toy_bundle() -> CkksBundle:
    """N=64, 3 levels — the fastest functional instance.

    The rotation steps cover every power of two below the slot count so
    ``rotate_and_sum`` over all 32 slots works regardless of which test
    runs first (step 16 used to exist only because an earlier module
    happened to generate it on the shared bundle).
    """
    parameters = CkksParameters(ring_degree=1 << 6, level_count=3, dnum=3,
                                secret_hamming_weight=8, name="toy")
    return CkksBundle(parameters, seed=101, rotation_steps=(1, 2, 4, 8, 16))


@pytest.fixture(scope="session")
def small_bundle() -> CkksBundle:
    """N=256, 4 levels, dnum=2 — exercises multi-prime decomposition groups."""
    parameters = CkksParameters(ring_degree=1 << 8, level_count=4, dnum=2,
                                secret_hamming_weight=16, name="small")
    return CkksBundle(parameters, seed=202, rotation_steps=(1, 2, 4, 16))


@pytest.fixture(scope="session")
def deep_bundle() -> CkksBundle:
    """N=64, 8 levels — used by the bootstrap-component tests."""
    parameters = CkksParameters(ring_degree=1 << 6, level_count=8, dnum=4,
                                secret_hamming_weight=8, name="deep")
    return CkksBundle(parameters, seed=303, rotation_steps=(1, 2, 4, 8))


@pytest.fixture(scope="session")
def toy_fhe() -> TensorFheContext:
    """N=64, 3 levels, full facade — shared across the api/ckks suites."""
    parameters = CkksParameters(ring_degree=1 << 6, level_count=3, dnum=3,
                                secret_hamming_weight=8, name="toy-facade")
    return TensorFheContext(parameters, seed=404, rotation_steps=(1, 2, 3))


@pytest.fixture(scope="session")
def bootstrap_fhe() -> TensorFheContext:
    """N=64, 8 levels, full facade with a shallow bootstrap pipeline.

    The cheap EvalMod configuration (degree-3 Taylor, one double-angle
    iteration) keeps the whole pipeline within 8 levels, so the batched
    parity sweeps and the serving coalesce tests stay fast.  Rotation
    keys for both DFT stages are generated up front so no key material
    is created inside a kernel-counter capture.
    """
    parameters = CkksParameters(ring_degree=1 << 6, level_count=8, dnum=4,
                                secret_hamming_weight=8,
                                name="bootstrap-facade")
    fhe = TensorFheContext(parameters, seed=505,
                           bootstrap_config=BootstrapConfig(
                               taylor_degree=3, double_angle_iterations=1))
    fhe.ensure_rotation_keys(fhe.bootstrapper.required_rotation_steps())
    return fhe


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
