"""Tests for the operation-level batching layer."""

import numpy as np
import pytest

from repro.batching import BatchedData, BatchScheduler, Layout, OperationBatcher
from repro.gpu import A100, V100
from repro.ntt import create_engine
from repro.numtheory import generate_ntt_prime

RING_DEGREE = 32
BATCH = 6
LIMBS = 3


@pytest.fixture(scope="module")
def modulus():
    return generate_ntt_prime(24, RING_DEGREE)


@pytest.fixture()
def batch_data(rng, modulus):
    operations = [rng.integers(0, modulus, (LIMBS, RING_DEGREE), dtype=np.int64)
                  for _ in range(BATCH)]
    return BatchedData.from_operations(operations, Layout.B_L_N), operations


class TestLayouts:
    def test_shapes(self, batch_data):
        batched, _ = batch_data
        assert (batched.batch_size, batched.limb_count, batched.ring_degree) == \
            (BATCH, LIMBS, RING_DEGREE)

    def test_layout_conversion_roundtrip(self, batch_data):
        batched, operations = batch_data
        converted = batched.convert(Layout.L_B_N).convert(Layout.B_L_N)
        for i, original in enumerate(operations):
            assert np.array_equal(converted.operation(i), original)

    def test_level_pack_equivalence(self, batch_data):
        batched, operations = batch_data
        other = batched.convert(Layout.L_B_N)
        for level in range(LIMBS):
            assert np.array_equal(batched.level_pack(level), other.level_pack(level))
            expected = np.stack([op[level] for op in operations])
            assert np.array_equal(batched.level_pack(level), expected)

    def test_contiguity_favors_lbn(self, batch_data):
        batched, _ = batch_data
        lbn = batched.convert(Layout.L_B_N)
        assert lbn.contiguous_run_bytes() == batched.contiguous_run_bytes() * BATCH
        assert batched.gather_count() == BATCH
        assert lbn.gather_count() == 1

    def test_unknown_layout_rejected(self, batch_data):
        batched, _ = batch_data
        with pytest.raises(ValueError):
            batched.convert("(N,B,L)")
        with pytest.raises(ValueError):
            BatchedData(batched.data, "(X)")

    def test_to_operations_roundtrip(self, batch_data):
        batched, operations = batch_data
        unpacked = batched.convert(Layout.L_B_N).to_operations()
        for original, restored in zip(operations, unpacked):
            assert np.array_equal(original, restored)


class TestOperationBatcher:
    def test_batched_ntt_matches_individual(self, batch_data, modulus):
        batched, operations = batch_data
        engine = create_engine("four_step", RING_DEGREE, modulus)
        batcher = OperationBatcher(engine)
        transformed = batcher.forward_ntt(batched)
        for i, operation in enumerate(operations):
            expected = np.stack([engine.forward(operation[l]) for l in range(LIMBS)])
            assert np.array_equal(transformed.operation(i), expected)

    def test_forward_inverse_roundtrip(self, batch_data, modulus):
        batched, operations = batch_data
        batcher = OperationBatcher(create_engine("matrix", RING_DEGREE, modulus))
        restored = batcher.inverse_ntt(batcher.forward_ntt(batched))
        for i, operation in enumerate(operations):
            assert np.array_equal(restored.operation(i), operation)

    def test_batched_hadamard_and_add(self, batch_data, modulus, rng):
        batched, operations = batch_data
        batcher = OperationBatcher(create_engine("four_step", RING_DEGREE, modulus))
        product = batcher.hadamard(batched, batched)
        total = batcher.add(batched, batched)
        for i, operation in enumerate(operations):
            assert np.array_equal(product.operation(i), (operation * operation) % modulus)
            assert np.array_equal(total.operation(i), (2 * operation) % modulus)

    def test_shape_mismatch_rejected(self, batch_data, modulus, rng):
        batched, _ = batch_data
        other = BatchedData.from_operations(
            [rng.integers(0, modulus, (LIMBS, RING_DEGREE)) for _ in range(BATCH - 1)])
        batcher = OperationBatcher(create_engine("four_step", RING_DEGREE, modulus))
        with pytest.raises(ValueError):
            batcher.add(batched, other)


class TestBatchScheduler:
    def test_plan_respects_requested_cap(self):
        plan = BatchScheduler(A100).plan(1 << 16, 45, requested=128)
        assert plan.batch_size <= 128
        assert plan.batch_size >= 1
        assert plan.working_set_bytes_per_op > 0

    def test_plan_is_power_of_two(self):
        plan = BatchScheduler(A100).plan(1 << 16, 45)
        assert plan.batch_size & (plan.batch_size - 1) == 0

    def test_smaller_vram_means_smaller_batch(self):
        big = BatchScheduler(A100).plan(1 << 16, 57)
        small = BatchScheduler(V100).plan(1 << 16, 57)
        assert small.vram_limited_batch <= big.vram_limited_batch

    def test_smaller_parameters_allow_bigger_batches(self):
        scheduler = BatchScheduler(A100)
        small_params = scheduler.plan(1 << 13, 10)
        large_params = scheduler.plan(1 << 16, 57)
        assert small_params.vram_limited_batch >= large_params.vram_limited_batch
