"""Tests for the operation-level batching layer."""

import inspect
import typing

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.batching import BatchedData, BatchScheduler, Layout, OperationBatcher
from repro.gpu import A100, V100
from repro.kernels.base import KernelContext, KernelName
from repro.ntt import NttPlanner, available_engines, create_engine
from repro.numtheory import generate_ntt_prime, generate_ntt_primes

RING_DEGREE = 32
BATCH = 6
LIMBS = 3


@pytest.fixture(scope="module")
def modulus():
    return generate_ntt_prime(24, RING_DEGREE)


@pytest.fixture()
def batch_data(rng, modulus):
    operations = [rng.integers(0, modulus, (LIMBS, RING_DEGREE), dtype=np.int64)
                  for _ in range(BATCH)]
    return BatchedData.from_operations(operations, Layout.B_L_N), operations


class TestLayouts:
    def test_shapes(self, batch_data):
        batched, _ = batch_data
        assert (batched.batch_size, batched.limb_count, batched.ring_degree) == \
            (BATCH, LIMBS, RING_DEGREE)

    def test_layout_conversion_roundtrip(self, batch_data):
        batched, operations = batch_data
        converted = batched.convert(Layout.L_B_N).convert(Layout.B_L_N)
        for i, original in enumerate(operations):
            assert np.array_equal(converted.operation(i), original)

    def test_level_pack_equivalence(self, batch_data):
        batched, operations = batch_data
        other = batched.convert(Layout.L_B_N)
        for level in range(LIMBS):
            assert np.array_equal(batched.level_pack(level), other.level_pack(level))
            expected = np.stack([op[level] for op in operations])
            assert np.array_equal(batched.level_pack(level), expected)

    def test_contiguity_favors_lbn(self, batch_data):
        batched, _ = batch_data
        lbn = batched.convert(Layout.L_B_N)
        assert lbn.contiguous_run_bytes() == batched.contiguous_run_bytes() * BATCH
        assert batched.gather_count() == BATCH
        assert lbn.gather_count() == 1

    def test_unknown_layout_rejected(self, batch_data):
        batched, _ = batch_data
        with pytest.raises(ValueError):
            batched.convert("(N,B,L)")
        with pytest.raises(ValueError):
            BatchedData(batched.data, "(X)")

    def test_to_operations_roundtrip(self, batch_data):
        batched, operations = batch_data
        unpacked = batched.convert(Layout.L_B_N).to_operations()
        for original, restored in zip(operations, unpacked):
            assert np.array_equal(original, restored)

    def test_same_layout_convert_is_zero_copy(self, batch_data):
        batched, _ = batch_data
        alias = batched.convert(batched.layout)
        assert alias.data is batched.data
        cross = batched.convert(Layout.L_B_N)
        assert not np.shares_memory(cross.data, batched.data)

    def test_level_pack_and_operation_alias_lbn(self, batch_data):
        batched, _ = batch_data
        lbn = batched.convert(Layout.L_B_N)
        # Level packs are contiguous row slices in (L, B, N); per-operation
        # views stride across levels.  Both must alias, never copy.
        assert np.shares_memory(lbn.level_pack(1), lbn.data)
        assert np.shares_memory(lbn.operation(2), lbn.data)
        assert np.shares_memory(batched.level_pack(1), batched.data)
        assert np.shares_memory(batched.operation(2), batched.data)

    def test_fused_matrix_is_view(self, batch_data):
        batched, operations = batch_data
        lbn = batched.convert(Layout.L_B_N)
        fused = lbn.fused_matrix()
        assert fused.shape == (LIMBS, BATCH * RING_DEGREE)
        assert np.shares_memory(fused, lbn.data)
        for level in range(LIMBS):
            expected = np.concatenate([op[level] for op in operations])
            assert np.array_equal(fused[level], expected)
        with pytest.raises(ValueError):
            batched.fused_matrix()


class TestOperationBatcher:
    def test_batched_ntt_matches_individual(self, batch_data, modulus):
        batched, operations = batch_data
        engine = create_engine("four_step", RING_DEGREE, modulus)
        batcher = OperationBatcher(engine)
        transformed = batcher.forward_ntt(batched)
        for i, operation in enumerate(operations):
            expected = np.stack([engine.forward(operation[l]) for l in range(LIMBS)])
            assert np.array_equal(transformed.operation(i), expected)

    def test_forward_inverse_roundtrip(self, batch_data, modulus):
        batched, operations = batch_data
        batcher = OperationBatcher(create_engine("matrix", RING_DEGREE, modulus))
        restored = batcher.inverse_ntt(batcher.forward_ntt(batched))
        for i, operation in enumerate(operations):
            assert np.array_equal(restored.operation(i), operation)

    def test_batched_hadamard_and_add(self, batch_data, modulus, rng):
        batched, operations = batch_data
        batcher = OperationBatcher(create_engine("four_step", RING_DEGREE, modulus))
        product = batcher.hadamard(batched, batched)
        total = batcher.add(batched, batched)
        for i, operation in enumerate(operations):
            assert np.array_equal(product.operation(i), (operation * operation) % modulus)
            assert np.array_equal(total.operation(i), (2 * operation) % modulus)

    def test_shape_mismatch_rejected(self, batch_data, modulus, rng):
        batched, _ = batch_data
        other = BatchedData.from_operations(
            [rng.integers(0, modulus, (LIMBS, RING_DEGREE)) for _ in range(BATCH - 1)])
        batcher = OperationBatcher(create_engine("four_step", RING_DEGREE, modulus))
        with pytest.raises(ValueError):
            batcher.add(batched, other)

    def test_forward_ntt_is_one_engine_call(self, batch_data, modulus):
        """The batched NTT must be a single fused engine launch, not a loop."""
        engine = create_engine("four_step", RING_DEGREE, modulus)
        calls = {"ops": 0, "limbs": 0, "single": 0}
        original_ops = engine.forward_ops
        original_limbs = engine.forward_limbs
        original_single = engine.forward

        def counting_ops(stacks, moduli):
            calls["ops"] += 1
            return original_ops(stacks, moduli)

        engine.forward_ops = counting_ops
        engine.forward_limbs = lambda *a, **k: calls.__setitem__("limbs", calls["limbs"] + 1) or original_limbs(*a, **k)
        engine.forward = lambda *a, **k: calls.__setitem__("single", calls["single"] + 1) or original_single(*a, **k)
        batched, _ = batch_data
        OperationBatcher(engine).forward_ntt(batched)
        assert calls == {"ops": 1, "limbs": 0, "single": 0}

    def test_per_limb_moduli_chain(self, rng):
        """An RNS batch (one prime per limb) matches per-operation forward_limbs."""
        primes = generate_ntt_primes(LIMBS, 20, RING_DEGREE)
        planner = NttPlanner("four_step")
        engine = planner.engine_for(RING_DEGREE, primes[0])
        operations = [
            np.stack([rng.integers(0, q, RING_DEGREE, dtype=np.int64) for q in primes])
            for _ in range(BATCH)
        ]
        batched = BatchedData.from_operations(operations, Layout.L_B_N)
        batcher = OperationBatcher(engine, moduli=primes)
        transformed = batcher.forward_ntt(batched)
        for i, operation in enumerate(operations):
            expected = engine.forward_limbs(operation, primes)
            assert np.array_equal(transformed.operation(i), expected)
        restored = batcher.inverse_ntt(transformed)
        for i, operation in enumerate(operations):
            assert np.array_equal(restored.operation(i), operation)

    def test_moduli_length_mismatch_rejected(self, batch_data, modulus):
        batched, _ = batch_data
        batcher = OperationBatcher(create_engine("four_step", RING_DEGREE, modulus),
                                   moduli=(modulus,) * (LIMBS + 1))
        with pytest.raises(ValueError):
            batcher.forward_ntt(batched)

    def test_hadamard_exact_for_large_moduli(self, rng):
        """Products of residues >= 2**32 must not wrap int64 (the old bug)."""
        big_prime = generate_ntt_prime(33, RING_DEGREE)
        assert big_prime >= (1 << 32)
        engine = create_engine("four_step", RING_DEGREE, big_prime)
        operations = [
            np.full((LIMBS, RING_DEGREE), big_prime - 1 - i, dtype=np.int64)
            for i in range(BATCH)
        ]
        batched = BatchedData.from_operations(operations, Layout.L_B_N)
        product = OperationBatcher(engine).hadamard(batched, batched)
        for i in range(BATCH):
            expected = pow(big_prime - 1 - i, 2, big_prime)
            assert np.all(product.operation(i) == expected)

    @pytest.mark.parametrize("engine_name", ["matrix", "four_step"])
    def test_inverse_roundtrip_for_large_moduli(self, engine_name, rng):
        """The degree-inverse multiply must not wrap int64 for big primes."""
        big_prime = generate_ntt_prime(33, RING_DEGREE)
        engine = create_engine(engine_name, RING_DEGREE, big_prime)
        stacks = rng.integers(0, big_prime, (BATCH, 1, RING_DEGREE),
                              dtype=np.int64)
        roundtrip = engine.inverse_ops(engine.forward_ops(stacks, (big_prime,)),
                                       (big_prime,))
        assert np.array_equal(roundtrip, stacks)
        limbs_roundtrip = engine.inverse_limbs(
            engine.forward_limbs(stacks[0], (big_prime,)), (big_prime,))
        assert np.array_equal(limbs_roundtrip, stacks[0])

    def test_elementwise_reduces_out_of_range_operands(self, modulus, rng):
        """Raw (unreduced) coefficients are reduced before the fused kernels."""
        engine = create_engine("four_step", RING_DEGREE, modulus)
        batcher = OperationBatcher(engine)
        operations = [
            rng.integers(-modulus, 3 * modulus, (LIMBS, RING_DEGREE),
                         dtype=np.int64)
            for _ in range(BATCH)
        ]
        batched = BatchedData.from_operations(operations, Layout.L_B_N)
        total = batcher.add(batched, batched)
        product = batcher.hadamard(batched, batched)
        for i, operation in enumerate(operations):
            reduced = operation % modulus
            assert np.array_equal(total.operation(i), (2 * reduced) % modulus)
            assert np.array_equal(product.operation(i),
                                  (reduced * reduced) % modulus)

    def test_batched_kernels_record_counters(self, batch_data, modulus):
        """Fused execution counts exactly like a per-operation loop."""
        kernels = KernelContext(planner=None)
        engine = create_engine("four_step", RING_DEGREE, modulus)
        batcher = OperationBatcher(engine, kernels=kernels)
        batched, _ = batch_data
        transformed = batcher.forward_ntt(batched)
        batcher.hadamard(transformed, transformed)
        batcher.add(transformed, transformed)
        batcher.inverse_ntt(transformed)
        assert kernels.counter.snapshot() == {
            KernelName.NTT: BATCH,
            KernelName.INTT: BATCH,
            KernelName.HADAMARD: BATCH,
            KernelName.ELE_ADD: BATCH,
        }
        assert kernels.counter.limb_vectors[KernelName.NTT] == BATCH * LIMBS


class TestOperationBatchingBackends:
    """(B, L, N) fused transforms are bit-identical on every backend/engine."""

    @pytest.mark.parametrize("engine_name", available_engines())
    def test_empty_batch(self, engine_name):
        """Every engine accepts an empty (0, L, N) stack and returns it."""
        primes = generate_ntt_primes(LIMBS, 20, RING_DEGREE)
        planner = NttPlanner(engine_name)
        empty = np.empty((0, LIMBS, RING_DEGREE), dtype=np.int64)
        assert planner.forward_ops(RING_DEGREE, primes, empty).shape == empty.shape
        assert planner.inverse_ops(RING_DEGREE, primes, empty).shape == empty.shape

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("engine_name", available_engines())
    def test_forward_ops_parity(self, engine_name, backend, rng):
        primes = generate_ntt_primes(LIMBS, 20, RING_DEGREE)
        stacks = np.stack([
            np.stack([rng.integers(0, q, RING_DEGREE, dtype=np.int64)
                      for q in primes])
            for _ in range(BATCH)
        ])
        reference = NttPlanner(engine_name)
        expected = np.stack([
            reference.forward_limbs(RING_DEGREE, primes, stacks[b])
            for b in range(BATCH)
        ])
        with use_backend(backend):
            planner = NttPlanner(engine_name)
            fused = planner.forward_ops(RING_DEGREE, primes, stacks)
            assert np.array_equal(fused, expected)
            restored = planner.inverse_ops(RING_DEGREE, primes, fused)
        assert np.array_equal(restored, stacks)


class TestBatchScheduler:
    def test_plan_respects_requested_cap(self):
        plan = BatchScheduler(A100).plan(1 << 16, 45, requested=128)
        assert plan.batch_size <= 128
        assert plan.batch_size >= 1
        assert plan.working_set_bytes_per_op > 0

    def test_plan_is_power_of_two(self):
        plan = BatchScheduler(A100).plan(1 << 16, 45)
        assert plan.batch_size & (plan.batch_size - 1) == 0

    def test_smaller_vram_means_smaller_batch(self):
        big = BatchScheduler(A100).plan(1 << 16, 57)
        small = BatchScheduler(V100).plan(1 << 16, 57)
        assert small.vram_limited_batch <= big.vram_limited_batch

    def test_smaller_parameters_allow_bigger_batches(self):
        scheduler = BatchScheduler(A100)
        small_params = scheduler.plan(1 << 13, 10)
        large_params = scheduler.plan(1 << 16, 57)
        assert small_params.vram_limited_batch >= large_params.vram_limited_batch

    def test_non_power_of_two_request_rounds_down(self):
        plan = BatchScheduler(A100).plan(1 << 13, 10, requested=100)
        assert plan.batch_size <= 100
        assert plan.batch_size & (plan.batch_size - 1) == 0
        # A power-of-two request below every other limit is honoured as-is.
        exact = BatchScheduler(A100).plan(1 << 13, 10, requested=4)
        assert exact.batch_size == 4

    def test_requested_one_is_minimum(self):
        plan = BatchScheduler(A100).plan(1 << 16, 45, requested=1)
        assert plan.batch_size == 1


class TestAnnotationsResolve:
    """Regression for the missing ``Optional`` import in the scheduler.

    Under ``from __future__ import annotations`` an undefined name in an
    annotation is latent until something calls ``typing.get_type_hints``
    (runtime annotation evaluation); resolve the hints of every public
    class and method of the batching layer so the NameError cannot return.
    """

    def _public_classes(self):
        import repro.batching.batcher
        import repro.batching.layout
        import repro.batching.scheduler
        import repro.ckks.batched_evaluator

        for module in (repro.batching.batcher, repro.batching.layout,
                       repro.batching.scheduler, repro.ckks.batched_evaluator):
            for name in getattr(module, "__all__", []):
                member = getattr(module, name)
                if inspect.isclass(member):
                    yield member

    def test_public_class_hints_resolve(self):
        classes = list(self._public_classes())
        assert classes, "no public batching classes found"
        for cls in classes:
            typing.get_type_hints(cls)
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") and name != "__init__":
                    continue
                if inspect.isfunction(member):
                    typing.get_type_hints(member)
