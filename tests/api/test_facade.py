"""Tests for the high-level TensorFheContext facade."""

import numpy as np
import pytest

from repro.api import TensorFheContext

TOLERANCE = 2e-3


@pytest.fixture(scope="module")
def fhe(toy_fhe) -> TensorFheContext:
    """The session-scoped facade context (hoisted into tests/conftest.py)."""
    return toy_fhe


class TestFacade:
    def test_from_preset(self):
        context = TensorFheContext.from_preset("toy", seed=3)
        assert context.slot_count == 32

    def test_encrypt_decrypt(self, fhe, rng):
        x = rng.uniform(-1, 1, fhe.slot_count)
        assert np.allclose(fhe.decrypt_real(fhe.encrypt(x)), x, atol=TOLERANCE)

    def test_add_and_subtract(self, fhe, rng):
        x = rng.uniform(-1, 1, fhe.slot_count)
        y = rng.uniform(-1, 1, fhe.slot_count)
        ct = fhe.subtract(fhe.add(fhe.encrypt(x), fhe.encrypt(y)), fhe.encrypt(y))
        assert np.allclose(fhe.decrypt_real(ct), x, atol=TOLERANCE)

    def test_multiply(self, fhe, rng):
        x = rng.uniform(-1, 1, fhe.slot_count)
        y = rng.uniform(-1, 1, fhe.slot_count)
        ct = fhe.multiply(fhe.encrypt(x), fhe.encrypt(y))
        assert np.allclose(fhe.decrypt_real(ct), x * y, atol=TOLERANCE)

    def test_multiply_plain_and_add_plain(self, fhe, rng):
        x = rng.uniform(-1, 1, fhe.slot_count)
        weights = rng.uniform(-1, 1, fhe.slot_count)
        bias = rng.uniform(-1, 1, fhe.slot_count)
        ct = fhe.add_plain(fhe.multiply_plain(fhe.encrypt(x), weights), bias)
        assert np.allclose(fhe.decrypt_real(ct), x * weights + bias, atol=TOLERANCE)

    def test_rotate_generates_missing_keys(self, fhe, rng):
        x = rng.uniform(-1, 1, fhe.slot_count)
        rotated = fhe.rotate(fhe.encrypt(x), 5)   # 5 was not pre-generated
        assert np.allclose(fhe.decrypt_real(rotated), np.roll(x, -5), atol=TOLERANCE)
        assert 5 in fhe.rotation_keys.keys

    def test_conjugate(self, fhe, rng):
        z = rng.uniform(-1, 1, fhe.slot_count) + 1j * rng.uniform(-1, 1, fhe.slot_count)
        assert np.allclose(fhe.decrypt(fhe.conjugate(fhe.encrypt(z))), np.conj(z),
                           atol=TOLERANCE)

    def test_inner_sum(self, fhe, rng):
        x = rng.uniform(-1, 1, fhe.slot_count)
        summed = fhe.inner_sum(fhe.encrypt(x))
        assert np.allclose(fhe.decrypt_real(summed)[0], np.sum(x), atol=5e-2)

    def test_kernel_counter_accumulates(self, fhe, rng):
        before = sum(fhe.kernel_counter.invocations.values())
        x = rng.uniform(-1, 1, fhe.slot_count)
        fhe.multiply(fhe.encrypt(x), fhe.encrypt(x))
        assert sum(fhe.kernel_counter.invocations.values()) > before

    def test_plan_batch(self, fhe):
        plan = fhe.plan_batch()
        assert plan.batch_size >= 1
        assert plan.batch_size <= fhe.parameters.batch_size

    def test_encode_level_control(self, fhe):
        plaintext = fhe.encode(np.ones(fhe.slot_count), level=1)
        assert plaintext.level == 1
