"""Table IX: GPGPU occupancy of the batched TensorFHE operations."""

from repro.gpu import A100, OccupancyModel
from repro.perf import format_comparison
from repro.perf.literature import TABLE_IX_OCCUPANCY


def _occupancy():
    return OccupancyModel(A100).table_ix(batch_size=128, limbs=45, ring_degree=1 << 16)


def test_table09_occupancy(benchmark):
    modelled = benchmark(_occupancy)
    print()
    print(format_comparison(TABLE_IX_OCCUPANCY, modelled, unit="%",
                            title="Table IX — GPU occupancy with operation batching"))

    # Shape: all operations above 80%, NTT-heavy ones the highest — within a
    # few points of the paper's measured 85-90%.
    for operation, paper_value in TABLE_IX_OCCUPANCY.items():
        assert modelled[operation] > 80.0
        assert abs(modelled[operation] - paper_value) < 12.0
    assert modelled["HMULT"] >= modelled["HADD"]
