"""Figure 5: GPU occupancy and execution time vs total thread count (no batching)."""

from repro.gpu import A100, OccupancyModel
from repro.perf import format_table

THREAD_COUNTS = (8192, 16384, 32768)
WORK_ELEMENTS = 1 << 17


def _sweep():
    model = OccupancyModel(A100)
    return {threads: model.occupancy_for_threads(threads, work_elements=WORK_ELEMENTS)
            for threads in THREAD_COUNTS}


def test_fig05_threading(benchmark):
    results = benchmark(_sweep)
    rows = [[threads, result.occupancy_percent, result.normalized_time]
            for threads, result in results.items()]
    print()
    print(format_table(["threads", "occupancy %", "norm. time"], rows,
                       title="Figure 5 — threading sweep (unbatched CKKS kernel)"))
    print("paper: best occupancy < 15%, 16K beats 8K, 32K degrades")

    # Shape: occupancy stays low without batching; 16K is the sweet spot.
    assert all(result.occupancy_percent < 20.0 for result in results.values())
    assert results[16384].normalized_time < results[8192].normalized_time
    assert results[32768].normalized_time > results[16384].normalized_time
