"""Figure 4: pipeline-stall breakdown of butterfly NTT vs FFT vs DWT."""

from repro.gpu import BUILTIN_PROFILES, DWT, FFT, PipelineStallModel, StallCategory
from repro.perf import format_table
from repro.perf.literature import FIGURE_4_STALLS


def _breakdowns():
    model = PipelineStallModel()
    return {name: model.stall_breakdown(profile)
            for name, profile in BUILTIN_PROFILES.items()
            if name in ("NTT", "FFT", "DWT")}


def test_fig04_stall_breakdown(benchmark):
    breakdowns = benchmark(_breakdowns)
    model = PipelineStallModel()
    rows = []
    for name, breakdown in breakdowns.items():
        rows.append([name] + [breakdown[c] for c in StallCategory.ALL] +
                    [sum(breakdown.values())])
    print()
    print(format_table(["kernel"] + list(StallCategory.ALL) + ["total"],
                       rows, title="Figure 4 — stall breakdown (% of cycles)"))
    print("paper: NTT total stalls %.1f%%, RAW %.1f%%" % (
        FIGURE_4_STALLS["NTT_total_stall_percent"],
        FIGURE_4_STALLS["NTT_raw_stall_percent"]))

    ntt = breakdowns["NTT"]
    # Shape checks: every kernel stalls, NTT's RAW share is the largest single
    # cause and in the ballpark of the paper's 20.9% / 43.2% figures.
    assert 30.0 < sum(ntt.values()) < 55.0
    assert ntt[StallCategory.RAW] == max(ntt.values())
    assert ntt[StallCategory.FUNCTION_UNIT] > breakdowns["FFT"][StallCategory.FUNCTION_UNIT]
    total_model = PipelineStallModel()
    assert total_model.total_stall_fraction(FFT) > 0
    assert total_model.total_stall_fraction(DWT) > 0
