"""Compute-backend comparison on the batched-NTT hot path.

Times the limb-batched forward NTT (one ``NttPlanner.forward_limbs`` call
for a whole ``(limbs, N)`` residue matrix, four-step engine) on every
backend available in this process, at the production-like gate shape
N=4096 with 8 limbs.  All backends must be bit-identical to the numpy
default; at least one must beat it — on CPU that is the ``blas`` backend,
whose guarded float64 dgemm replaces numpy's non-BLAS int64 matmul kernel
(the software analogue of the paper dropping from CUDA-core modular
arithmetic to tensor-core GEMMs).

The ``multiprocess`` backend is swept for completeness: at this shape the
per-launch work sits below its sharding threshold, so it reports the
inline (numpy-equal) time unless ``REPRO_BACKEND_WORKERS``/a beefier shape
makes sharding worthwhile.

Results print as a table and are written as JSON through
``bench_common.write_results`` so the backend trajectory is tracked.
"""

import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.backend import available_backends
from repro.ntt import NttPlanner
from repro.numtheory import generate_ntt_primes
from repro.perf import format_table

#: The acceptance shape: N=4096, 8 limbs, four-step (TensorFHE-CO) engine.
GATE_SHAPE = (4096, 8)
ENGINE = "four_step"
#: 20-bit primes keep the blas backend on its single-pass float64 path.
PRIME_BITS = 20
#: ``BENCH_GATE_SCALE`` relaxes the wall-clock gate on noisy shared runners.
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
#: At least one backend must beat numpy by this factor at the gate shape.
GATE_SPEEDUP = 1.5 * GATE_SCALE


#: Shared best-of-N timing harness (see ``bench_common.best_of``).
_measure = best_of


@pytest.fixture(scope="module")
def sweep():
    ring_degree, limbs = GATE_SHAPE
    primes = generate_ntt_primes(limbs, PRIME_BITS, ring_degree)
    rng = np.random.default_rng(0)
    residues = np.stack([
        rng.integers(0, q, ring_degree, dtype=np.int64) for q in primes
    ])
    reference = NttPlanner(ENGINE, backend="numpy").forward_limbs(
        ring_degree, primes, residues)

    results = {}
    for backend_name in available_backends():
        planner = NttPlanner(ENGINE, backend=backend_name)

        def batched():
            return planner.forward_limbs(ring_degree, primes, residues)

        # Warm-up builds twiddle stacks / float images / worker pools and
        # certifies bit-exactness against the numpy baseline.
        assert np.array_equal(batched(), reference)
        results[backend_name] = _measure(batched)
    return results


def test_backend_sweep(sweep):
    ring_degree, limbs = GATE_SHAPE
    baseline = sweep["numpy"]
    rows = [
        [name, ring_degree, limbs, round(seconds * 1e6, 1),
         round(baseline / seconds, 2)]
        for name, seconds in sorted(sweep.items(), key=lambda item: item[1])
    ]
    print()
    print(format_table(
        ["backend", "N", "limbs", "batched NTT (us)", "speedup vs numpy"],
        rows, title="Compute backends, limb-batched forward NTT (%s engine)" % ENGINE))

    payload = {
        name: {"batched_us": seconds * 1e6,
               "speedup_vs_numpy": baseline / seconds}
        for name, seconds in sweep.items()
    }
    path = write_results("backends", payload)
    print("results written to %s" % path)

    assert len(sweep) >= 2, "only the numpy backend is available"
    best_speedup = max(baseline / seconds
                       for name, seconds in sweep.items() if name != "numpy")
    assert best_speedup >= GATE_SPEEDUP, (
        "no backend beats numpy at N=%d, %d limbs (best %.2fx, need %.2fx)"
        % (ring_degree, limbs, best_speedup, GATE_SPEEDUP)
    )
