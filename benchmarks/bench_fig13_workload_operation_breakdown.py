"""Figure 13: operation-level execution-time breakdown of the real workloads."""

from repro.perf import WorkloadModel, format_table
from repro.workloads import WORKLOADS


def _breakdowns():
    model = WorkloadModel()
    return {name: model.evaluate(spec).operation_breakdown()
            for name, spec in WORKLOADS.items()}


def test_fig13_workload_operation_breakdown(benchmark):
    breakdowns = benchmark(_breakdowns)
    operations = ("HMULT", "HROTATE", "RESCALE", "HADD", "CMULT")
    rows = [[name] + [100.0 * breakdowns[name].get(op, 0.0) for op in operations]
            for name in breakdowns]
    print()
    print(format_table(["workload"] + list(operations), rows,
                       title="Figure 13 — operation share per workload (%)"))
    print("paper: HROTATE is the most time-consuming operation in every workload")

    for name, breakdown in breakdowns.items():
        assert breakdown["HROTATE"] == max(breakdown.values())
        # HMULT+HROTATE together dominate.
        assert breakdown["HROTATE"] + breakdown.get("HMULT", 0.0) > 0.6
