"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper:
it runs the corresponding model (or functional code), prints the paper's
numbers next to the reproduced ones and asserts the qualitative shape
(orderings, dominant components, crossovers).  Absolute microseconds are
not expected to match — the substrate is an analytical model, not the
authors' A100 — but the comparisons quoted in EXPERIMENTS.md come straight
from this output.
"""

from __future__ import annotations

import json
import os
import time

from repro.gpu import A100, V100
from repro.perf import ModelParameters, NttVariant, OperationModel

#: Where ``write_results`` drops its JSON payloads (tracked perf trajectory).
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Table V "Default" configuration (N=2^16, L=44, batch 128).
DEFAULT_PARAMETERS = ModelParameters(ring_degree=1 << 16, level_count=45,
                                     dnum=5, batch_size=128)

VARIANT_LABELS = {
    NttVariant.BUTTERFLY: "TensorFHE-NT",
    NttVariant.GEMM_CUDA: "TensorFHE-CO",
    NttVariant.GEMM_TCU: "TensorFHE(A100)",
}


def default_model(variant: str = NttVariant.GEMM_TCU, gpu=A100,
                  parameters: ModelParameters = DEFAULT_PARAMETERS) -> OperationModel:
    """Operation model at the paper's default parameters."""
    return OperationModel(parameters, gpu=gpu, variant=variant)


def v100_model(variant: str = NttVariant.GEMM_TCU) -> OperationModel:
    """Same configuration on the V100 (the 100x / PrivFT platform)."""
    return default_model(variant=variant, gpu=V100)


def best_of(function, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``function()``.

    The shared timing harness of every wall-clock benchmark: best-of is
    robust against scheduler noise on shared runners, and a change here
    (warm-up policy, statistic) applies to the whole tracked trajectory.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def write_results(name: str, payload) -> str:
    """Serialise a benchmark payload to ``benchmarks/results/<name>.json``.

    Benchmarks that track a wall-clock trajectory (rather than reproducing a
    paper table) emit their measurements here so successive runs can be
    diffed.  Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.json" % name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
