"""Float64 Barrett reduction vs the int64 detour (the float-residency tentpole).

Times the *between-GEMMs* reduction workload of the four-step engine: a
raw float64 dgemm output (integer-valued, inside the 2**53 guard) must be
reduced and multiplied by the twiddle Hadamard factors before the next
dgemm consumes it.  Two ways:

* **int64 detour** — the historical path: cast the dgemm output to
  int64, reduce with hardware-divide ``%``, multiply by the int64
  twiddles, ``%`` again, cast back to float64 for the next dgemm — two
  integer divides and two dtype conversions per stage;
* **float64 Barrett** — the float-resident path
  (:mod:`repro.numtheory.floatmod`): a lazy Barrett pass, the float64
  twiddle multiply, and a canonical pass — FMA-shaped float64 arithmetic
  end to end, no dtype ever changes.  The software analogue of the paper
  keeping modular arithmetic on the tensor-core floating-point units.

Both paths are verified bit-identical before timing (the 2**53 guard
makes the float path exact, not approximate), and both get preallocated
output buffers — the production pipeline reuses scratch, so neither side
pays page faults.  The gate applies at the production shape (N=4096, 8
limbs, B=16): the Barrett stage must beat the detour.

A standalone element-wise ``(a * b) % q`` is *not* what the pipeline
replaced — against already-int64 operands the divide-free path has more
memory passes and loses; the win is precisely the casts and divides the
detour pays at each GEMM boundary.

The second measurement is the ISSUE 8 acceptance: the **fused batched
HMULT→RESCALE chain** through the real evaluators — forward NTTs, tensor
products, the full generalized key switch, and the rescale corrections —
float-resident on blas versus the int64-resident numpy path.  The float
chain is certified bit-identical and float-resident (no host image on any
output polynomial) before timing.

Results are written as JSON through ``bench_common.write_results`` so the
speedups land in the tracked perf trajectory.
"""

import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.backend import use_backend
from repro.ckks import (
    BatchedEvaluator,
    CkksContext,
    CkksParameters,
    Encryptor,
    KeyGenerator,
)
from repro.numtheory import generate_ntt_primes
from repro.numtheory.floatmod import get_barrett_chain
from repro.perf import format_table

#: (ring_degree, limb_count, batch) shapes swept.
SHAPES = ((4096, 8, 8), (4096, 8, 16))
#: Shape at which the acceptance gate applies.
GATE_SHAPE = (4096, 8, 16)
#: ``BENCH_GATE_SCALE`` relaxes the wall-clock gates on noisy shared
#: runners (CI sets 0.5); locally the full gate applies.
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
#: The Barrett stage must beat the int64 detour at the gate shape (it
#: measures ~1.5x locally: no divides, no dtype conversions).
STAGE_GATE = 1.1 * GATE_SCALE
#: The fused chain shape: N=4096, 2 levels, dnum=2, 8 streams.
CHAIN_RING_DEGREE = 4096
CHAIN_BATCH = 8
#: The float-resident chain must beat the int64-resident path (measures
#: ~3.3x locally: every NTT, key-switch GEMM, and rescale correction stays
#: on the FMA units with no casts or divides).
CHAIN_GATE = 1.5 * GATE_SCALE
#: 20-bit primes keep the dgemm-output bound n1 * (q-1)**2 inside 2**53
#: at N=4096 (n1 = 64).
PRIME_BITS = 20
#: Shared best-of-N timing harness (see ``bench_common.best_of``).
_measure = best_of


def _time_shape(ring_degree: int, limbs: int, batch: int):
    primes = generate_ntt_primes(limbs, PRIME_BITS, ring_degree)
    chain = get_barrett_chain(primes)
    n1 = int(np.sqrt(ring_degree))
    bound = n1 * (chain.qmax - 1) ** 2
    assert chain.fits(bound)
    q_col = chain.moduli_array[None, :, None]
    rng = np.random.default_rng(0)
    # A raw dgemm output: integer-valued float64, bounded by n1 * (q-1)^2.
    gemm_out = rng.integers(0, bound // chain.qmax,
                            size=(batch, limbs, ring_degree)).astype(np.float64)
    twiddles = rng.integers(0, q_col, size=(1, limbs, ring_degree))
    twiddles_f = twiddles.astype(np.float64)
    shape = gemm_out.shape
    int_scratch = np.empty(shape, dtype=np.int64)
    work_a = np.empty(shape, dtype=np.float64)
    work_b = np.empty(shape, dtype=np.float64)

    def int64_detour():
        np.copyto(int_scratch, gemm_out, casting="unsafe")
        reduced = (int_scratch % q_col) * twiddles % q_col
        return reduced.astype(np.float64)

    def float_barrett():
        lazy = chain.lazy_reduce(gemm_out, axis=1, out=work_a)
        np.multiply(lazy, twiddles_f, out=work_a)
        return chain.canonical_reduce(work_a, axis=1, out=work_a,
                                      scratch=work_b)

    # Bit-exact parity before any timing.
    assert np.array_equal(float_barrett(), int64_detour())
    int_s, float_s = _measure(int64_detour), _measure(float_barrett)
    return {
        "int64_detour_us": int_s * 1e6,
        "float64_barrett_us": float_s * 1e6,
        "speedup": int_s / float_s if float_s > 0 else float("inf"),
    }


def _time_chain():
    parameters = CkksParameters(ring_degree=CHAIN_RING_DEGREE, level_count=2,
                                dnum=2, secret_hamming_weight=64,
                                prime_bits=PRIME_BITS,
                                special_prime_bits=PRIME_BITS + 1,
                                scale_bits=PRIME_BITS, name="chain-bench")
    context = CkksContext(parameters, seed=3)
    keygen = KeyGenerator(context)
    secret = keygen.generate_secret_key()
    relin = keygen.generate_relinearization_key(secret)
    encryptor = Encryptor(context, keygen.generate_public_key(secret), secret)
    rng = np.random.default_rng(0)
    lhs = [encryptor.encrypt(rng.uniform(-1, 1, context.slot_count))
           for _ in range(CHAIN_BATCH)]
    rhs = [encryptor.encrypt(rng.uniform(-1, 1, context.slot_count))
           for _ in range(CHAIN_BATCH)]
    batched = BatchedEvaluator(context)

    def run(backend):
        with use_backend(backend):
            return batched.multiply_and_rescale(lhs, rhs, relin)

    # Warm-up certifies the acceptance invariants before any timing: the
    # float chain's outputs are still float-resident (no host image — the
    # int64 cast happens only at decrypt/decode), and both paths agree bit
    # for bit once materialised.
    float_out, int64_out = run("blas"), run("numpy")
    for ciphertext in float_out:
        assert ciphertext.c0.buffer.host_image is None
        assert ciphertext.c1.buffer.host_image is None
    for got, want in zip(float_out, int64_out):
        assert np.array_equal(got.c0.residues, want.c0.residues)
        assert np.array_equal(got.c1.residues, want.c1.residues)

    float_s = _measure(lambda: run("blas"))
    int64_s = _measure(lambda: run("numpy"))
    return {
        "int64_resident_ms": int64_s * 1e3,
        "float_resident_ms": float_s * 1e3,
        "speedup": int64_s / float_s if float_s > 0 else float("inf"),
    }


@pytest.fixture(scope="module")
def sweep():
    return {shape: _time_shape(*shape) for shape in SHAPES}


@pytest.fixture(scope="module")
def chain():
    return _time_chain()


def _write_payload(sweep, chain):
    """One merged JSON write: ``write_results`` replaces the whole file."""
    payload = {
        "stage_N%d_L%d_B%d" % (n, limbs, batch): entry
        for (n, limbs, batch), entry in sweep.items()
    }
    payload["chain_N%d_L2_B%d" % (CHAIN_RING_DEGREE, CHAIN_BATCH)] = chain
    return write_results("float_reduction", payload)


def test_float_reduction_speedup(sweep, chain):
    rows = [
        [n, limbs, batch,
         round(entry["int64_detour_us"], 1),
         round(entry["float64_barrett_us"], 1),
         round(entry["speedup"], 2)]
        for (n, limbs, batch), entry in sorted(sweep.items())
    ]
    print()
    print(format_table(
        ["N", "limbs", "B", "int64 detour (us)", "float64 Barrett (us)",
         "speedup"],
        rows,
        title="between-GEMMs reduce-and-twiddle stage on (B, L, N) stacks"))

    path = _write_payload(sweep, chain)
    print("results written to %s" % path)

    gate = sweep[GATE_SHAPE]
    assert gate["speedup"] >= STAGE_GATE, (
        "float64 Barrett stage only %.2fx vs the int64 detour at N=%d, B=%d"
        % (gate["speedup"], GATE_SHAPE[0], GATE_SHAPE[2])
    )


def test_fused_chain_speedup(sweep, chain):
    rows = [
        ["float-resident (blas)", round(chain["float_resident_ms"], 2),
         round(chain["speedup"], 2)],
        ["int64-resident (numpy)", round(chain["int64_resident_ms"], 2), 1.0],
    ]
    print()
    print(format_table(
        ["residency", "batched HMULT+RESCALE (ms)", "speedup"],
        rows,
        title="fused HMULT->RESCALE chain (N=%d, L=2, B=%d, %d-bit primes)"
              % (CHAIN_RING_DEGREE, CHAIN_BATCH, PRIME_BITS)))

    path = _write_payload(sweep, chain)
    print("results written to %s" % path)

    assert chain["speedup"] >= CHAIN_GATE, (
        "float-resident chain only %.2fx vs the int64-resident path "
        "(need %.2fx)" % (chain["speedup"], CHAIN_GATE)
    )
