"""B-fused vs per-stream key switching (the batched key-switch tentpole).

Times the generalized key switch (paper Algorithm 1) — the most expensive
CKKS primitive — two ways:

* **per-stream loop** — one :meth:`KeySwitcher.switch` call per
  ciphertext, the launch pattern the B-axis fusion PR replaced (each call
  is already limb-batched, so this is the strongest sequential baseline);
* **B-fused** — one :meth:`BatchedKeySwitcher.switch_many` call: the dnum
  decomposition of every stream stacks into a ``(B, dnum, L, N)`` tensor,
  ModUp/ModDown run batched Conv GEMMs, all ``B * dnum`` NTTs are a single
  ``forward_ops`` engine call, and the switch-key inner product is one
  fused funnel launch per key component.

The sweep runs on the bandwidth-bound matrix (Eq. 8) engine, where the
win has the same shape as the op-batching benchmark: the per-stream loop
re-reads the ``L' x N x N`` twiddle stack ``B * dnum`` times per batch
while the fused launch streams it once — the paper's data-reuse argument
applied to the key-switch inner loop.  The evaluator-level row times the
full batched HMULT (transforms + fused key switch) through the facade.

Results print as a table and are written as JSON through
``bench_common.write_results`` so the speedups land in the tracked perf
trajectory.
"""

import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.ckks import CkksContext, CkksParameters, KeyGenerator
from repro.ckks.batched_keyswitch import BatchedKeySwitcher
from repro.ckks.keyswitch import KeySwitcher
from repro.perf import format_table
from repro.rns import RnsPolynomial

#: (ring_degree, batch) shapes swept; N=4096 B=8 carries the CI gate.
SHAPES = ((1024, 8), (4096, 8))
#: Gate: the B-fused key switch must beat the per-stream loop 1.5x at
#: N=4096, B=8 on the blas backend (relaxed on noisy shared runners).
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
GATE_SPEEDUP = 1.5 * GATE_SCALE
GATE_SHAPE = (4096, 8)


def _context(ring_degree: int) -> CkksContext:
    # A short two-prime chain keeps the matrix-engine twiddle stacks (and
    # the CI smoke wall-clock) small; the launch structure being compared
    # — B * dnum per-stream transforms vs one fused launch — is the same
    # at any depth, so the speedup is representative.  20-bit primes keep
    # every GEMM on the single-pass float64 BLAS path (inner * q^2 < 2**53).
    parameters = CkksParameters(
        ring_degree=ring_degree, level_count=2, dnum=2,
        scale_bits=20, prime_bits=20, special_prime_bits=20,
        secret_hamming_weight=64, ntt_engine="matrix",
        name="bench-keyswitch")
    return CkksContext(parameters, seed=13, backend="blas")


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for ring_degree, batch in SHAPES:
        context = _context(ring_degree)
        keygen = KeyGenerator(context)
        secret = keygen.generate_secret_key()
        relin_key = keygen.generate_relinearization_key(secret)
        level = context.max_level
        moduli = context.moduli_at_level(level)
        rng = np.random.default_rng(3)
        polys = [RnsPolynomial.random_uniform(ring_degree, moduli, rng)
                 for _ in range(batch)]
        sequential_switcher = KeySwitcher(context)
        fused_switcher = BatchedKeySwitcher(
            context, key_switcher=sequential_switcher)

        def per_stream():
            return [sequential_switcher.switch(poly, relin_key, level)
                    for poly in polys]

        def fused():
            return fused_switcher.switch_many(polys, relin_key, level)

        # Warm-up: build twiddle stacks and verify bit-exact parity.
        reference = per_stream()
        for got, want in zip(fused(), reference):
            assert np.array_equal(got[0].residues, want[0].residues)
            assert np.array_equal(got[1].residues, want[1].residues)

        loop_s, fused_s = best_of(per_stream), best_of(fused)
        results[(ring_degree, batch)] = {
            "per_stream_us": loop_s * 1e6,
            "fused_us": fused_s * 1e6,
            "speedup": loop_s / fused_s if fused_s > 0 else float("inf"),
        }
        context.planner.clear()
    return results


def test_keyswitch_batching_speedup(sweep):
    rows = [
        [n, batch,
         round(entry["per_stream_us"], 1),
         round(entry["fused_us"], 1),
         round(entry["speedup"], 2)]
        for (n, batch), entry in sorted(sweep.items())
    ]
    print()
    print(format_table(
        ["N", "B", "per-stream loop (us)", "B-fused (us)", "speedup"],
        rows,
        title="B-fused vs per-stream key switch (matrix engine, blas, dnum=2)"))

    payload = {
        "matrix_N%d_B%d" % (n, batch): entry
        for (n, batch), entry in sweep.items()
    }
    path = write_results("keyswitch_batching", payload)
    print("results written to %s" % path)

    gate = sweep[GATE_SHAPE]
    assert gate["speedup"] >= GATE_SPEEDUP, (
        "B-fused key switch only %.2fx faster at N=%d, B=%d"
        % (gate["speedup"], GATE_SHAPE[0], GATE_SHAPE[1])
    )
