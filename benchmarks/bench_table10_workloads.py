"""Table X: full-workload execution time vs the ASIC accelerators."""

from repro.perf import WorkloadModel, format_table
from repro.perf.literature import TABLE_X_WORKLOAD_SECONDS
from repro.workloads import WORKLOADS


def _workload_times():
    model = WorkloadModel()
    return {name: model.evaluate(spec).total_seconds for name, spec in WORKLOADS.items()}


def test_table10_workloads(benchmark):
    modelled = benchmark(_workload_times)
    names = list(WORKLOADS)
    print()
    rows = []
    for scheme, values in TABLE_X_WORKLOAD_SECONDS.items():
        rows.append(["paper/" + scheme] + [values.get(name) for name in names])
    rows.append(["model/TensorFHE"] + [modelled[name] for name in names])
    print(format_table(["scheme"] + names, rows,
                       title="Table X — full workload execution time (seconds)"))

    paper = TABLE_X_WORKLOAD_SECONDS
    # Shape checks from the paper's discussion:
    # 1. TensorFHE beats F1+ on logistic regression (the 2.9x headline)...
    assert modelled["lr"] < paper["F1+"]["lr"]
    # 2. ...but remains slower than CraterLake/ARK on the DNN workloads.
    assert modelled["resnet20"] > paper["CraterLake"]["resnet20"]
    assert modelled["lr"] > paper["ARK"]["lr"]
    # 3. It comfortably beats the CPU and the 100x GPU baseline everywhere.
    for name in names:
        assert modelled[name] < paper["CPU"][name]
    assert modelled["resnet20"] < paper["100x"]["resnet20"]
    # 4. Relative ordering of the workloads matches the paper's TensorFHE row.
    assert modelled["resnet20"] > modelled["lstm"] > modelled["lr"]
