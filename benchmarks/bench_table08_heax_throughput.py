"""Table VIII: NTT/INTT/HMULT throughput against HEAX (parameter sets A/B/C)."""

from repro.gpu import A100
from repro.perf import ModelParameters, OperationModel, format_table
from repro.perf.literature import HEAX_PARAMETER_SETS, TABLE_VIII_HEAX_THROUGHPUT


def _throughputs():
    results = {}
    for set_name, config in HEAX_PARAMETER_SETS.items():
        parameters = ModelParameters(ring_degree=config["ring_degree"],
                                     level_count=config["level_count"],
                                     dnum=max(1, config["level_count"] // config["special_count"]),
                                     batch_size=128)
        model = OperationModel(parameters, gpu=A100)
        results[set_name] = {
            "NTT": model.throughput_ops_per_second("NTT"),
            "INTT": model.throughput_ops_per_second("NTT"),
            "HMULT": model.throughput_ops_per_second("HMULT"),
        }
    return results


def test_table08_heax_throughput(benchmark):
    modelled = benchmark(_throughputs)
    print()
    rows = []
    for kernel in ("NTT", "INTT", "HMULT"):
        for set_name in ("A", "B", "C"):
            paper = TABLE_VIII_HEAX_THROUGHPUT[kernel][set_name]
            rows.append([kernel, set_name, paper["CPU"], paper["HEAX"],
                         paper["TensorFHE"], modelled[set_name][kernel]])
    print(format_table(["kernel", "set", "CPU (paper)", "HEAX (paper)",
                        "TensorFHE (paper)", "TensorFHE (model)"], rows,
                       title="Table VIII — throughput per second vs HEAX"))

    for set_name in ("A", "B", "C"):
        paper_row = TABLE_VIII_HEAX_THROUGHPUT["NTT"][set_name]
        # Shape: TensorFHE's NTT throughput clearly beats HEAX on every set,
        # and throughput falls monotonically from set A to set C.
        assert modelled[set_name]["NTT"] > paper_row["HEAX"]
    assert modelled["A"]["NTT"] > modelled["B"]["NTT"] > modelled["C"]["NTT"]
    assert modelled["A"]["HMULT"] > modelled["C"]["HMULT"]
