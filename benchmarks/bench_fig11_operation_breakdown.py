"""Figure 11: kernel-level execution-time breakdown of each CKKS operation."""

from bench_common import default_model
from repro.perf import OPERATIONS, format_table


def _breakdowns():
    model = default_model()
    return {operation: model.kernel_breakdown(operation) for operation in OPERATIONS}


def test_fig11_operation_breakdown(benchmark):
    breakdowns = benchmark(_breakdowns)
    kernels = sorted({kernel for b in breakdowns.values() for kernel in b})
    rows = [[op] + [100.0 * breakdowns[op].get(kernel, 0.0) for kernel in kernels]
            for op in OPERATIONS]
    print()
    print(format_table(["operation"] + kernels, rows,
                       title="Figure 11 — kernel share of each operation (%)"))
    print("paper: NTT is 92.1%% of HMULT and 95.4%% of HROTATE")

    # Shape: the NTT kernel dominates HMULT and HROTATE; HADD has no NTT at all.
    assert breakdowns["HMULT"]["NTT"] > 0.5
    assert breakdowns["HROTATE"]["NTT"] > 0.5
    assert breakdowns["HMULT"]["NTT"] == max(breakdowns["HMULT"].values())
    assert "NTT" not in breakdowns["HADD"]
