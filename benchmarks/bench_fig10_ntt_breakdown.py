"""Figure 10: stall breakdown of the butterfly NTT vs the GEMM NTT (TensorFHE-CO)."""

from repro.gpu import BUTTERFLY_NTT, GEMM_NTT, PipelineStallModel, StallCategory
from repro.perf import format_table
from repro.perf.literature import FIGURE_10_IMPROVEMENTS


def _compare():
    model = PipelineStallModel()
    return (model.stall_breakdown(BUTTERFLY_NTT), model.stall_breakdown(GEMM_NTT),
            model.compare(BUTTERFLY_NTT, GEMM_NTT),
            model.speedup_estimate(BUTTERFLY_NTT, GEMM_NTT, compute_overhead=0.012))


def test_fig10_ntt_stall_reduction(benchmark):
    butterfly, gemm, reduction, speedup = benchmark(_compare)
    rows = [[c, butterfly[c], gemm[c], reduction[c]] for c in StallCategory.ALL]
    print()
    print(format_table(["stall category", "butterfly NTT", "TensorFHE-CO", "reduction"],
                       rows, title="Figure 10 — NTT stall breakdown (% of cycles)"))
    print("modelled NTT speedup from stall removal: %.2fx" % speedup)
    print("paper: RAW -%.1f pts, long-latency -%.1f pts, overall +%.1f%% performance" % (
        FIGURE_10_IMPROVEMENTS["raw_stall_reduction_points"],
        FIGURE_10_IMPROVEMENTS["long_latency_reduction_points"],
        FIGURE_10_IMPROVEMENTS["overall_ntt_improvement_percent"]))

    assert reduction[StallCategory.RAW] > 10.0
    assert reduction[StallCategory.LONG_LATENCY] > 0.0
    assert 1.15 < speedup < 1.8
