"""Serving-layer throughput: coalesced concurrent clients vs a sequential loop.

Times the encrypted-op request stream two ways at N=4096 on the blas
backend:

* **sequential loop** — every request executed one at a time through the
  sequential :class:`~repro.ckks.evaluator.Evaluator`, the strongest
  per-request baseline (each call is already limb-batched);
* **serving engine** — the same requests submitted by concurrent asyncio
  clients; the :class:`~repro.serving.engine.ServingEngine` coalesces
  each round into B-fused :class:`~repro.ckks.batched_evaluator.
  BatchedEvaluator` launches.

The win is the op-batching data-reuse argument carried through the
serving path: the per-request loop re-reads the matrix-engine twiddle
stack once per request, the coalesced launch streams it once per fused
batch — minus the event-loop and queueing overhead the serving layer
adds, which is what this benchmark holds to account.

Results are written through ``bench_common.write_results`` into
``benchmarks/results/serving.json``.
"""

import asyncio
import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.api import TensorFheContext
from repro.ckks import CkksParameters
from repro.perf import format_table
from repro.serving import ServingConfig, ServingEngine

#: Concurrent client count (the acceptance scenario's floor is 32) and
#: multiply_plain rounds each client submits.
CLIENTS = 32
ROUNDS = 2
RING_DEGREE = 4096
#: Gate: coalesced concurrent throughput must beat the sequential loop
#: 1.5x at N=4096 on the blas backend (relaxed on noisy shared runners).
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
GATE_SPEEDUP = 1.5 * GATE_SCALE
#: And saturation must actually fill the B axis.
GATE_MEAN_BATCH = 4.0


def _facade() -> TensorFheContext:
    # Same shape policy as the other wall-clock benches: a short chain
    # keeps the matrix-engine twiddle stacks small, 20-bit primes keep
    # every GEMM on the single-pass float64 BLAS path.
    parameters = CkksParameters(
        ring_degree=RING_DEGREE, level_count=2, dnum=2,
        scale_bits=20, prime_bits=20, special_prime_bits=20,
        secret_hamming_weight=64, ntt_engine="matrix",
        name="bench-serving")
    return TensorFheContext(parameters, seed=17, backend="blas")


@pytest.fixture(scope="module")
def sweep():
    fhe = _facade()
    rng = np.random.default_rng(5)
    slots = fhe.slot_count
    engine_probe = ServingEngine(fhe)
    registry = engine_probe.registry
    owner = registry.register("client-00")
    for index in range(1, CLIENTS):
        registry.alias("client-%02d" % index, owner)
    encryptor = owner.encryptor

    ciphertexts = [encryptor.encrypt(rng.uniform(-1, 1, slots))
                   for _ in range(CLIENTS)]
    plain_values = [rng.uniform(-1, 1, slots) for _ in range(ROUNDS)]
    plaintexts = [encryptor.encode(values) for values in plain_values]
    total_ops = CLIENTS * ROUNDS

    def sequential():
        evaluator = fhe.evaluator
        return [evaluator.multiply_plain(ciphertexts[client], plaintexts[r])
                for r in range(ROUNDS) for client in range(CLIENTS)]

    last_diag = {}

    def serving():
        async def run():
            engine = ServingEngine(
                fhe, registry=registry,
                config=ServingConfig(max_queue_depth=4 * total_ops))

            async def client(index):
                ciphertext = ciphertexts[index]
                results = []
                for values in plain_values:
                    results.append(await engine.multiply_plain(
                        "client-%02d" % index, ciphertext, values,
                        rescale=False))
                return results

            async with engine:
                results = await asyncio.gather(
                    *[client(index) for index in range(CLIENTS)])
                last_diag.update(engine.diagnostics())
            return results

        return asyncio.run(run())

    # Warm-up (builds twiddle stacks) and parity: every served result
    # must be bit-identical to its sequential counterpart.
    reference = sequential()
    served = serving()
    for client in range(CLIENTS):
        for r in range(ROUNDS):
            got = served[client][r]
            want = reference[r * CLIENTS + client]
            assert np.array_equal(got.c0.residues, want.c0.residues)
            assert np.array_equal(got.c1.residues, want.c1.residues)

    sequential_s, serving_s = best_of(sequential), best_of(serving)
    return {
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "total_ops": total_ops,
        "sequential_us": sequential_s * 1e6,
        "serving_us": serving_s * 1e6,
        "sequential_ops_per_s": total_ops / sequential_s,
        "serving_ops_per_s": total_ops / serving_s,
        "speedup": sequential_s / serving_s if serving_s > 0 else float("inf"),
        "mean_batch": last_diag["batches"]["mean_size"],
        "batches_executed": last_diag["batches"]["executed"],
    }


def test_serving_throughput(sweep):
    print()
    print(format_table(
        ["N", "clients", "seq ops/s", "serving ops/s", "speedup", "mean B"],
        [[RING_DEGREE, sweep["clients"],
          round(sweep["sequential_ops_per_s"], 1),
          round(sweep["serving_ops_per_s"], 1),
          round(sweep["speedup"], 2),
          round(sweep["mean_batch"], 1)]],
        title="Serving-layer CMULT throughput (matrix engine, blas)"))

    path = write_results(
        "serving", {"matrix_N%d_B%d" % (RING_DEGREE, CLIENTS): sweep})
    print("results written to %s" % path)

    assert sweep["mean_batch"] >= GATE_MEAN_BATCH, (
        "serving engine only filled a mean batch of %.1f" % sweep["mean_batch"])
    assert sweep["speedup"] >= GATE_SPEEDUP, (
        "coalesced serving throughput only %.2fx the sequential loop"
        % sweep["speedup"])
