"""Figure 14: sensitivity to the operation-level batch size (plus a layout ablation)."""

from repro.gpu import A100, MemoryTrafficModel
from repro.perf import ModelParameters, OperationModel, format_table

BATCH_SIZES = (32, 64, 128, 256, 512, 1024)
KERNEL_OPERATIONS = ("HADD", "CMULT", "HROTATE", "HMULT")


def _sweep():
    times = {}
    for batch in BATCH_SIZES:
        parameters = ModelParameters(ring_degree=1 << 16, level_count=45,
                                     dnum=5, batch_size=batch)
        model = OperationModel(parameters, gpu=A100)
        times[batch] = {op: model.operation_time_us(op) for op in KERNEL_OPERATIONS}
    return times


def test_fig14_batch_size(benchmark):
    times = benchmark(_sweep)
    baseline = times[128]
    rows = [[batch] + [times[batch][op] / baseline[op] for op in KERNEL_OPERATIONS]
            for batch in BATCH_SIZES]
    print()
    print(format_table(["batch size"] + list(KERNEL_OPERATIONS), rows,
                       title="Figure 14 — normalised execution time vs batch size (1.0 = BS 128)"))

    # Shape: larger batches never hurt the amortised time, and going from 32
    # to 1024 gives a visible improvement for the cheap kernels.
    for op in KERNEL_OPERATIONS:
        assert times[1024][op] <= times[32][op]
    assert times[1024]["HADD"] < times[32]["HADD"]


def test_fig14_layout_ablation(benchmark):
    """Data-layout ablation (Figure 9): (L,B,N) vs (B,L,N) packing bandwidth."""
    model = MemoryTrafficModel(A100)
    speedups = benchmark(lambda: {batch: model.layout_speedup(batch, 1 << 16)
                                  for batch in BATCH_SIZES})
    print()
    print(format_table(["batch size", "(L,B,N) over (B,L,N) bandwidth speedup"],
                       [[batch, value] for batch, value in speedups.items()],
                       title="Ablation — batching data layout"))
    assert all(value >= 1.0 for value in speedups.values())
    assert speedups[1024] >= speedups[32]
