"""Make bench_common importable when pytest is invoked from the repo root."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
