"""B-fused vs loop-per-ciphertext execution (the op-batching tentpole).

Times multi-ciphertext work two ways on the functional engines:

* **per-ciphertext loop** — one ``forward_limbs`` call per operation, the
  launch pattern PR 1 left in place (each call is already limb-batched,
  so this is the strongest sequential baseline);
* **B-fused** — one ``forward_ops`` call over the whole ``(B, L, N)``
  stack: a single batched backend GEMM per transform step covering every
  operation and every limb, the paper's full multi-ciphertext layout.

Where the win comes from matters.  The full-matrix Eq. 8 engine streams
its ``L x N x N`` twiddle stack once per *transform*: the per-ciphertext
loop re-reads the whole stack ``B`` times, while the fused launch reads it
once and amortises it over ``B`` GEMM columns — the paper's data-reuse
argument, and the fix for the "matrix engine is bandwidth-bound" ROADMAP
item (~1.8x limb-batched gain capped by twiddle streaming becomes >3x once
the B axis is fused).  The four-step engine has only ``O(N)`` twiddles, so
there is nothing to amortise and the fused win must come from arithmetic
instead: the float64-resident pipeline (lazy Barrett between the two
dgemms, no int64 ``%`` passes — see ``FourStepNtt._float_ops_pipeline``)
is what pushes the fused launch past the cache-resident per-op loop at
large B.  The row is gated at parity-or-better for B >= 16 and tracked
with a no-cliff floor at smaller batches, where the loop's cache
residency still competes.

The evaluator-level comparison runs batched CMULT streams through
``BatchedEvaluator`` against a sequential ``Evaluator`` loop on the
matrix engine, where transform cost dominates.

Results print as a table and are written as JSON through
``bench_common.write_results`` so the speedups land in the tracked perf
trajectory.
"""

import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.api import TensorFheContext
from repro.ckks import CkksParameters
from repro.ntt import NttPlanner
from repro.numtheory import generate_ntt_primes
from repro.perf import format_table

#: (ring_degree, limb_count, batch) shapes swept by the NTT comparison.
SHAPES = ((1024, 8, 8), (4096, 8, 8), (4096, 8, 16))
#: Engines compared: the bandwidth-bound Eq. 8 GEMM and the O(N)-twiddle
#: four-step decomposition (tensorcore shares the four-step structure).
ENGINES = ("matrix", "four_step")
#: Shapes at which the acceptance gates apply (N=4096, B >= 8).
GATE_SHAPES = ((4096, 8, 8), (4096, 8, 16))
#: ``BENCH_GATE_SCALE`` relaxes the wall-clock gates on noisy shared
#: runners (CI sets 0.5); locally the full gates apply.
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
#: B-fused must beat the per-ciphertext loop 2x on the matrix engine...
GATE_SPEEDUP = 2.0 * GATE_SCALE
#: ...and must not fall off a cliff for the cache-friendly four-step loop.
FOUR_STEP_FLOOR = 0.5 * GATE_SCALE
#: At B >= 16 the four-step float-resident fused pipeline must at least
#: match the per-ciphertext loop (it measures ~1.2x locally).
FOUR_STEP_GATE = 1.0 * GATE_SCALE
#: Batched CMULT streams must beat the sequential evaluator loop.
CMULT_GATE = 1.5 * GATE_SCALE
#: 20-bit primes keep every fused GEMM on the single-pass float64 BLAS
#: path at these shapes (inner * q^2 < 2**53).
PRIME_BITS = 20
#: Shared best-of-N timing harness (see ``bench_common.best_of``).
_measure = best_of


def _time_engine(engine_name: str, ring_degree: int, limbs: int, batch: int):
    primes = generate_ntt_primes(limbs, PRIME_BITS, ring_degree)
    planner = NttPlanner(engine_name, backend="blas")
    rng = np.random.default_rng(0)
    stacks = np.stack([
        np.stack([rng.integers(0, q, ring_degree, dtype=np.int64)
                  for q in primes])
        for _ in range(batch)
    ])

    def per_ciphertext():
        return np.stack([
            planner.forward_limbs(ring_degree, primes, stacks[b])
            for b in range(batch)
        ])

    def fused():
        return planner.forward_ops(ring_degree, primes, stacks)

    # Warm-up: build twiddle stacks and verify bit-exact parity.
    reference = per_ciphertext()
    assert np.array_equal(fused(), reference)

    return _measure(per_ciphertext), _measure(fused)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for engine_name in ENGINES:
        for ring_degree, limbs, batch in SHAPES:
            loop_s, fused_s = _time_engine(engine_name, ring_degree, limbs, batch)
            results[(engine_name, ring_degree, limbs, batch)] = {
                "per_ciphertext_us": loop_s * 1e6,
                "fused_us": fused_s * 1e6,
                "speedup": loop_s / fused_s if fused_s > 0 else float("inf"),
            }
    return results


def test_op_batching_speedup(sweep):
    rows = [
        [engine, n, limbs, batch,
         round(entry["per_ciphertext_us"], 1),
         round(entry["fused_us"], 1),
         round(entry["speedup"], 2)]
        for (engine, n, limbs, batch), entry in sorted(sweep.items())
    ]
    print()
    print(format_table(
        ["engine", "N", "limbs", "B", "per-ct loop (us)", "B-fused (us)",
         "speedup"],
        rows, title="B-fused vs per-ciphertext forward NTT ((B, L, N) stacks)"))

    payload = {
        "%s_N%d_L%d_B%d" % (engine, n, limbs, batch): entry
        for (engine, n, limbs, batch), entry in sweep.items()
    }
    path = write_results("op_batching", payload)
    print("results written to %s" % path)

    for gate_n, gate_limbs, gate_batch in GATE_SHAPES:
        matrix = sweep[("matrix", gate_n, gate_limbs, gate_batch)]
        assert matrix["speedup"] >= GATE_SPEEDUP, (
            "matrix: B-fused only %.2fx faster at N=%d, B=%d"
            % (matrix["speedup"], gate_n, gate_batch)
        )
        four_step = sweep[("four_step", gate_n, gate_limbs, gate_batch)]
        four_step_gate = FOUR_STEP_GATE if gate_batch >= 16 else FOUR_STEP_FLOOR
        assert four_step["speedup"] >= four_step_gate, (
            "four_step: fused path fell to %.2fx at N=%d, B=%d"
            % (four_step["speedup"], gate_n, gate_batch)
        )


def test_batched_cmult_streams():
    """Batched CMULT beats the sequential evaluator loop on the matrix engine."""
    parameters = CkksParameters(ring_degree=1 << 10, level_count=4, dnum=2,
                                secret_hamming_weight=64, ntt_engine="matrix",
                                name="bench-op-batching")
    context = TensorFheContext(parameters, seed=7, backend="blas")
    rng = np.random.default_rng(1)
    batch = 8
    ciphertexts = [context.encrypt(rng.uniform(-1, 1, context.slot_count))
                   for _ in range(batch)]
    plaintexts = [
        context.encryptor.encode(rng.uniform(-1, 1, context.slot_count),
                                 level=ciphertext.level)
        for ciphertext in ciphertexts
    ]

    def sequential():
        return [context.evaluator.multiply_plain(c, p)
                for c, p in zip(ciphertexts, plaintexts)]

    def fused():
        return context.batched_evaluator.multiply_plain(ciphertexts, plaintexts)

    expected = sequential()
    for got, want in zip(fused(), expected):
        assert np.array_equal(got.c0.residues, want.c0.residues)
        assert np.array_equal(got.c1.residues, want.c1.residues)

    loop_s, fused_s = _measure(sequential), _measure(fused)
    speedup = loop_s / fused_s if fused_s > 0 else float("inf")
    print()
    print("batched CMULT (matrix engine, N=1024, B=%d): "
          "loop %.1fms, fused %.1fms, %.2fx"
          % (batch, loop_s * 1e3, fused_s * 1e3, speedup))
    path = write_results("op_batching_cmult", {
        "matrix_N1024_B8": {
            "sequential_us": loop_s * 1e6,
            "fused_us": fused_s * 1e6,
            "speedup": speedup,
        }
    })
    print("results written to %s" % path)
    assert speedup >= CMULT_GATE, (
        "batched CMULT only %.2fx faster than the sequential loop" % speedup
    )
