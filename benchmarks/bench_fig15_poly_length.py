"""Figure 15: sensitivity to the polynomial length N."""

from repro.gpu import A100
from repro.perf import ModelParameters, OperationModel, format_table

POLY_LENGTHS = (2048, 4096, 8192, 16384, 32768, 65536)
KERNELS = ("NTT", "HADD", "CMULT", "HROTATE")


def _sweep():
    times = {}
    for n in POLY_LENGTHS:
        parameters = ModelParameters(ring_degree=n, level_count=20, dnum=5,
                                     batch_size=128)
        model = OperationModel(parameters, gpu=A100)
        times[n] = {kernel: model.operation_time_us(kernel) for kernel in KERNELS}
    return times


def test_fig15_poly_length(benchmark):
    times = benchmark(_sweep)
    baseline = times[65536]
    rows = [[n] + [times[n][k] / baseline[k] for k in KERNELS] for n in POLY_LENGTHS]
    print()
    print(format_table(["N"] + list(KERNELS), rows,
                       title="Figure 15 — normalised execution time vs polynomial length"))
    print("paper: NTT gains ~20.6x going from N=65536 to N=2048")

    # Shape: monotone decrease with N, and a large NTT speedup at N=2048.
    for kernel in KERNELS:
        values = [times[n][kernel] for n in POLY_LENGTHS]
        assert values == sorted(values)
    ntt_speedup = times[65536]["NTT"] / times[2048]["NTT"]
    assert ntt_speedup > 8.0
