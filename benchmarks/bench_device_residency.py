"""Device-residency benchmark: resident operands vs per-call conversion.

The residency layer's CPU payoff is the blas backend: a reusable GEMM
operand wrapped in a :class:`~repro.backend.DeviceBuffer` carries its
float64 image across launches, while the pre-residency funnel rebuilt the
image (an int64 → float64 pass over the full twiddle stack) on *every*
call.  This benchmark times the N=4096 batched NTT launch (the matrix
formulation's ``(L, N, N) @ (L, N, B)`` GEMM) both ways on the blas
backend and gates the resident path at >= 1.2x (measured ~3.6x locally —
the per-call path converts 2 x 16M twiddle entries per launch).

Results are written as JSON through ``bench_common.write_results`` so the
trajectory is tracked; ``BENCH_GATE_SCALE`` relaxes the gate on noisy
shared runners.
"""

import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.backend import DeviceBuffer
from repro.kernels.base import KernelCounter
from repro.backend.residency import track_transfers
from repro.ntt.gemm_utils import modular_matmul_limbs
from repro.ntt.twiddle import get_twiddle_stack
from repro.numtheory import generate_ntt_primes
from repro.perf import format_table

#: The acceptance shape: N=4096, 2 limbs, 8 fused operations.
RING_DEGREE = 4096
LIMBS = 2
BATCH = 8
#: 20-bit primes keep the blas backend on its single-pass float64 path.
PRIME_BITS = 20
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
#: Resident operands must beat per-call conversion by this factor.
GATE_SPEEDUP = 1.2 * GATE_SCALE


@pytest.fixture(scope="module")
def measurements():
    primes = tuple(generate_ntt_primes(LIMBS, PRIME_BITS, RING_DEGREE))
    stack = get_twiddle_stack(RING_DEGREE, primes)
    weights_raw = stack.forward_matrices()
    weights_buf = stack.forward_matrices_buffer()   # float image attached
    rng = np.random.default_rng(0)
    rhs = np.stack([
        rng.integers(0, q, (RING_DEGREE, BATCH), dtype=np.int64)
        for q in primes
    ])
    rhs_buf = DeviceBuffer.wrap(rhs)

    def resident():
        return modular_matmul_limbs(weights_buf, rhs_buf, primes,
                                    backend="blas")

    def per_call():
        # The pre-residency regime: raw arrays, no cached float images —
        # the blas backend re-converts the full twiddle stack per launch.
        return modular_matmul_limbs(weights_raw, rhs, primes, backend="blas")

    # Warm-up builds the resident float image and certifies bit-parity and
    # the zero-conversion invariant of the resident launch.
    counter = KernelCounter()
    with track_transfers(counter):
        resident_out = resident()
    assert counter.transfer_total() == 0, "resident launch moved data"
    assert np.array_equal(np.asarray(resident_out), per_call())

    return {
        "resident": best_of(resident),
        "per_call": best_of(per_call),
    }


def test_resident_beats_per_call_conversion(measurements):
    resident = measurements["resident"]
    per_call = measurements["per_call"]
    speedup = per_call / resident
    rows = [
        ["resident handles", round(resident * 1e3, 2), round(speedup, 2)],
        ["per-call conversion", round(per_call * 1e3, 2), 1.0],
    ]
    print()
    print(format_table(
        ["operand mode", "batched NTT GEMM (ms)", "speedup"],
        rows,
        title="Device residency, blas backend (N=%d, L=%d, B=%d)"
              % (RING_DEGREE, LIMBS, BATCH)))

    payload = {
        "shape": {"ring_degree": RING_DEGREE, "limbs": LIMBS, "batch": BATCH},
        "resident_ms": resident * 1e3,
        "per_call_ms": per_call * 1e3,
        "speedup": speedup,
    }
    path = write_results("device_residency", payload)
    print("results written to %s" % path)

    assert speedup >= GATE_SPEEDUP, (
        "resident path only %.2fx over per-call conversion (need %.2fx)"
        % (speedup, GATE_SPEEDUP)
    )
