"""Table VI: amortised operation delay across implementations."""

from bench_common import VARIANT_LABELS, default_model, v100_model
from repro.perf import OPERATIONS, format_table
from repro.perf.literature import TABLE_VI_OPERATION_DELAY_US


def _model_rows():
    rows = {}
    for variant, label in VARIANT_LABELS.items():
        rows[label] = default_model(variant).all_operation_times_us()
    rows["TensorFHE(V100)"] = v100_model().all_operation_times_us()
    return rows


def test_table06_operation_delay(benchmark):
    modelled = benchmark(_model_rows)
    print()
    rows = []
    for scheme, values in TABLE_VI_OPERATION_DELAY_US.items():
        rows.append(["paper/" + scheme] + [values.get(op) for op in OPERATIONS])
    for scheme, values in modelled.items():
        rows.append(["model/" + scheme] + [values[op] for op in OPERATIONS])
    print(format_table(["scheme"] + list(OPERATIONS), rows,
                       title="Table VI — operation delay (microseconds, amortised)"))

    paper = TABLE_VI_OPERATION_DELAY_US
    tensor = modelled["TensorFHE(A100)"]
    # Shape checks reproduced from the paper:
    # 1. variant ordering NT > CO > full TensorFHE for the NTT-heavy operations;
    for op in ("HMULT", "HROTATE"):
        assert modelled["TensorFHE-NT"][op] > modelled["TensorFHE-CO"][op] > tensor[op]
    # 2. A100 beats V100;
    assert tensor["HMULT"] < modelled["TensorFHE(V100)"]["HMULT"]
    # 3. TensorFHE beats the published 100x and CPU numbers by a large margin;
    assert tensor["HMULT"] < paper["100x"]["HMULT"]
    assert paper["CPU"]["HMULT"] / tensor["HMULT"] > 100.0
    # 4. HMULT/HROTATE are orders of magnitude more expensive than HADD.
    assert tensor["HMULT"] > 10 * tensor["HADD"]
