"""Table VII: Bootstrap execution time (N=2^16, L=34, dnum=5, batch 128)."""

from repro.perf import NttVariant, WorkloadModel, format_table
from repro.perf.literature import TABLE_VII_BOOTSTRAP_SECONDS
from repro.workloads import WorkloadSpec, OperationCounts

BOOTSTRAP_WORKLOAD = WorkloadSpec(
    name="bootstrap_table7",
    ring_degree=1 << 16,
    level_count=35,
    batch_size=128,
    iterations=1,
    operations_per_iteration=OperationCounts(),
    bootstraps_per_run=1,
    dnum=5,
)


def _bootstrap_times():
    times = {}
    for variant, label in ((NttVariant.BUTTERFLY, "TensorFHE-NT"),
                           (NttVariant.GEMM_CUDA, "TensorFHE-CO"),
                           (NttVariant.GEMM_TCU, "TensorFHE")):
        times[label] = WorkloadModel(variant=variant).bootstrap_time(
            BOOTSTRAP_WORKLOAD, batch_size=128)
    return times


def test_table07_bootstrap(benchmark):
    modelled = benchmark(_bootstrap_times)
    print()
    rows = [[name, seconds, None] for name, seconds in TABLE_VII_BOOTSTRAP_SECONDS.items()]
    rows += [["model/" + name, None, seconds] for name, seconds in modelled.items()]
    print(format_table(["scheme", "paper (s)", "model (s)"], rows,
                       title="Table VII — Bootstrap execution time"))

    # Shape: the full TensorFHE configuration is the fastest of the three
    # variants and beats the paper's 100x number; also a dnum ablation below.
    assert modelled["TensorFHE"] < modelled["TensorFHE-CO"]
    assert modelled["TensorFHE"] < modelled["TensorFHE-NT"]
    assert modelled["TensorFHE"] < TABLE_VII_BOOTSTRAP_SECONDS["100x"]


def test_table07_dnum_ablation(benchmark):
    """Ablation: the dnum decomposition number trades key size for work."""
    def sweep():
        results = {}
        for dnum in (1, 3, 5, 9):
            spec = WorkloadSpec(
                name="bootstrap_dnum%d" % dnum, ring_degree=1 << 16, level_count=35,
                batch_size=128, iterations=1,
                operations_per_iteration=OperationCounts(), bootstraps_per_run=1,
                dnum=dnum)
            results[dnum] = WorkloadModel().bootstrap_time(spec, batch_size=128)
        return results

    results = benchmark(sweep)
    print()
    print(format_table(["dnum", "bootstrap time (s)"],
                       [[k, v] for k, v in results.items()],
                       title="Ablation — key-switch decomposition number"))
    assert all(value > 0 for value in results.values())
