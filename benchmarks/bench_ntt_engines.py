"""Functional ablation: wall-clock of the pure-Python NTT engine implementations.

Not a paper table — this benchmarks the *functional* engines of this
library against each other (reference vs butterfly vs GEMM vs tensor-core
simulation) and doubles as the correctness gate the paper describes in
Section VI-A (NTT followed by INTT returns the input bit-exactly).
"""

import numpy as np
import pytest

from repro.ntt import available_engines, create_engine
from repro.numtheory import generate_ntt_prime

RING_DEGREE = 256


@pytest.mark.parametrize("engine_name", [e for e in available_engines() if e != "reference"])
def test_ntt_engine_roundtrip_speed(benchmark, engine_name):
    modulus = generate_ntt_prime(28, RING_DEGREE)
    engine = create_engine(engine_name, RING_DEGREE, modulus)
    rng = np.random.default_rng(0)
    poly = rng.integers(0, modulus, RING_DEGREE, dtype=np.int64)

    def roundtrip():
        return engine.inverse(engine.forward(poly))

    result = benchmark(roundtrip)
    assert np.array_equal(result, poly)
