"""Figure 12: kernel-level execution-time breakdown of the real workloads."""

from repro.perf import WorkloadModel, format_table
from repro.workloads import WORKLOADS


def _breakdowns():
    model = WorkloadModel()
    return {name: model.evaluate(spec).kernel_breakdown()
            for name, spec in WORKLOADS.items()}


def test_fig12_workload_kernel_breakdown(benchmark):
    breakdowns = benchmark(_breakdowns)
    kernels = sorted({kernel for b in breakdowns.values() for kernel in b})
    rows = [[name] + [100.0 * breakdowns[name].get(kernel, 0.0) for kernel in kernels]
            for name in breakdowns]
    print()
    print(format_table(["workload"] + kernels, rows,
                       title="Figure 12 — kernel share per workload (%)"))
    print("paper: the NTT kernel takes the largest share, up to 92.8%% in LR")

    for name, breakdown in breakdowns.items():
        assert breakdown["NTT"] == max(breakdown.values())
        assert breakdown["NTT"] > 0.5
