"""Limb-batched vs per-limb NTT execution (the tentpole of the batching refactor).

Times a whole-polynomial transform two ways on the functional engines:

* **per-limb** — ``limb_count`` separate ``engine.forward`` calls, the
  launch pattern the seed reproduction used (and the paper's Figure 1
  criticises: many small kernels that cannot saturate the hardware);
* **limb-batched** — one ``engine.forward_limbs`` call over the stacked
  ``(limbs, N)`` residue matrix, the fused-launch model of Section IV-C,
  pinned to the ``blas`` compute backend (the exact float64 fast path the
  batching refactor shipped with, now a named backend; see
  ``bench_backends.py`` for the cross-backend comparison).

Results print as a table and are written as JSON through
``bench_common.write_results`` so the speedup is tracked in the perf
trajectory.  At the production-like gate shape (N=4096, 8 limbs) the
paper's two production GEMM kernels — ``four_step`` (TensorFHE-CO) and
``tensorcore`` (TensorFHE) — must be at least 2x faster batched.  The
didactic full-matrix Eq. 8 engine streams its entire ``N x N`` twiddle
matrix per transform, so at N=4096 it is memory-bandwidth-bound in *both*
execution models and batching can only recover the launch overhead plus
the BLAS-vs-int64 gap; it is tracked with a no-regression gate instead.
"""

import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.ntt import NttPlanner
from repro.numtheory import generate_ntt_primes
from repro.perf import format_table

#: (ring_degree, limb_count) shapes swept by the comparison.
SHAPES = ((1024, 8), (4096, 8))
#: Engines with a native batched path (the paper's GEMM formulations).
GEMM_ENGINES = ("matrix", "four_step", "tensorcore")
#: Shape at which the acceptance gates apply.
GATE_SHAPE = (4096, 8)
#: ``BENCH_GATE_SCALE`` relaxes the wall-clock gates on noisy shared runners
#: (CI sets 0.5); locally the full 2x gate applies.
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
#: Batched must beat per-limb 2x for the production GEMM kernels...
GATE_SPEEDUP = 2.0 * GATE_SCALE
GATED_ENGINES = ("four_step", "tensorcore")
#: ...and must at least hold serve (modulo timer jitter) for the
#: bandwidth-bound matrix engine.
MATRIX_FLOOR = 0.9 * GATE_SCALE
#: 20-bit primes keep every batched GEMM on the single-pass float64 BLAS
#: path at N=4096 (inner * q^2 < 2**53) while leaving the per-limb seed
#: path its best case too (single unchunked int64 matmul per limb).
PRIME_BITS = 20


#: Shared best-of-N timing harness (see ``bench_common.best_of``).
_measure = best_of


def _time_engine(engine_name: str, ring_degree: int, limbs: int):
    primes = generate_ntt_primes(limbs, PRIME_BITS, ring_degree)
    # The batched execution model ships with its BLAS float64 fast path,
    # which now lives in the backend subsystem under the name ``blas``
    # (the per-limb seed path is unaffected: 2-D GEMMs stay on int64).
    planner = NttPlanner(engine_name, backend="blas")
    rng = np.random.default_rng(0)
    residues = np.stack([
        rng.integers(0, q, ring_degree, dtype=np.int64) for q in primes
    ])

    def per_limb():
        return np.stack([
            planner.engine_for(ring_degree, q).forward(residues[i])
            for i, q in enumerate(primes)
        ])

    def batched():
        return planner.forward_limbs(ring_degree, primes, residues)

    # Warm-up: build twiddle tables/stacks and verify bit-exact parity.
    reference = per_limb()
    assert np.array_equal(batched(), reference)

    per_limb_seconds = _measure(per_limb)
    batched_seconds = _measure(batched)
    return per_limb_seconds, batched_seconds


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for engine_name in GEMM_ENGINES:
        for ring_degree, limbs in SHAPES:
            per_limb_s, batched_s = _time_engine(engine_name, ring_degree, limbs)
            results[(engine_name, ring_degree, limbs)] = {
                "per_limb_us": per_limb_s * 1e6,
                "batched_us": batched_s * 1e6,
                "speedup": per_limb_s / batched_s if batched_s > 0 else float("inf"),
            }
    return results


def test_limb_batching_speedup(sweep):
    rows = [
        [engine, n, limbs,
         round(entry["per_limb_us"], 1),
         round(entry["batched_us"], 1),
         round(entry["speedup"], 2)]
        for (engine, n, limbs), entry in sorted(sweep.items())
    ]
    print()
    print(format_table(
        ["engine", "N", "limbs", "per-limb (us)", "batched (us)", "speedup"],
        rows, title="Limb-batched vs per-limb forward NTT (whole polynomial)"))

    payload = {
        "%s_N%d_L%d" % (engine, n, limbs): entry
        for (engine, n, limbs), entry in sweep.items()
    }
    path = write_results("limb_batching", payload)
    print("results written to %s" % path)

    # At the production-like shape the production GEMM kernels must hit 2x;
    # the full-matrix engine must at least never lose (it is bound by
    # streaming its N^2 twiddles in either execution model).
    gate_n, gate_limbs = GATE_SHAPE
    for engine in GATED_ENGINES:
        entry = sweep[(engine, gate_n, gate_limbs)]
        assert entry["speedup"] >= GATE_SPEEDUP, (
            "%s: batched path only %.2fx faster at N=%d, %d limbs"
            % (engine, entry["speedup"], gate_n, gate_limbs)
        )
    assert sweep[("matrix", gate_n, gate_limbs)]["speedup"] >= MATRIX_FLOOR


def test_butterfly_fallback_parity_only():
    """The butterfly engine keeps the generic fallback: parity, no speed gate."""
    ring_degree, limbs = 256, 4
    primes = generate_ntt_primes(limbs, PRIME_BITS, ring_degree)
    planner = NttPlanner("butterfly")
    rng = np.random.default_rng(1)
    residues = np.stack([
        rng.integers(0, q, ring_degree, dtype=np.int64) for q in primes
    ])
    batched = planner.forward_limbs(ring_degree, primes, residues)
    for i, q in enumerate(primes):
        assert np.array_equal(
            batched[i], planner.engine_for(ring_degree, q).forward(residues[i]))
