"""Sharded scale-out backend on the fused batched-GEMM hot path.

Times the four-step fused NTT GEMM — ``(L, n1, n1) @ (L, n1, n1·B)``, the
launch shape :meth:`NttPlanner.forward_ops` issues for B operation-batched
ciphertexts at N=4096, L=8 — on the persistent worker pool
(:class:`~repro.backend.sharded.ShardedBackend`) versus the inline
single-process numpy delegate, sweeping the fused batch B.

Three artefacts come out of the sweep:

* the **timing pairs** (``sharded_us`` / ``inline_us``), written to
  ``benchmarks/results/sharded.json`` in the tracked-key convention so
  :class:`~repro.perf.calibration.MeasuredThroughput` ingests them (the
  ratios measure process fan-out, not kernel batching — consumers deriving
  batching constants exclude the ``sharded`` source);
* the **calibration block** the backend reads back through
  :func:`~repro.perf.calibration.sharding_calibration`: the measured
  ``min_shard_elements`` knee (smallest swept MAC count where the pool
  beat inline) when one was observed, plus the worker/core counts —
  the worker count only transfers to hosts with the same core count;
* the **gate**: on a multi-core host the pool must beat inline by
  ``1.5x * BENCH_GATE_SCALE`` at the B=8 gate shape.  On a single-core
  host there is no parallelism to win — the sweep still runs and records
  honest numbers, but the gate is skipped.

The sweep also certifies bit-exactness against numpy at every B and that
the arena reaches steady state (zero new slabs across repeated launches).
"""

import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.backend import ShardedBackend
from repro.ntt.gemm_utils import modular_matmul_limbs
from repro.numtheory import generate_ntt_primes
from repro.perf import format_table

#: The acceptance shape: N=4096 four-step => 64x64 stages, 8 limbs.
RING_DEGREE = 4096
STAGE = 64
LIMBS = 8
PRIME_BITS = 20
BATCHES = (1, 2, 4, 8)
GATE_BATCH = 8
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
GATE_SPEEDUP = 1.5 * GATE_SCALE


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


#: Worker-pool size for the sweep: two at minimum so the pool path runs
#: even on small hosts, capped so the sweep stays a smoke test.
WORKERS = min(4, max(2, usable_cores()))


@pytest.fixture(scope="module")
def sweep():
    primes = generate_ntt_primes(LIMBS, PRIME_BITS, RING_DEGREE)
    rng = np.random.default_rng(0)
    # The four-step stage matrix (per-limb twiddle-scaled DFT) and the
    # fused operand with B ciphertexts folded into the columns.
    lhs = np.stack([rng.integers(0, q, (STAGE, STAGE), dtype=np.int64)
                    for q in primes])
    backend = ShardedBackend("numpy", workers=WORKERS, min_shard_elements=1)
    results = {}
    try:
        for batch in BATCHES:
            rhs = np.stack([
                rng.integers(0, q, (STAGE, STAGE * batch), dtype=np.int64)
                for q in primes
            ])

            def sharded():
                return modular_matmul_limbs(lhs, rhs, primes, backend=backend)

            def inline():
                return modular_matmul_limbs(lhs, rhs, primes, backend="numpy")

            # Warm-up forks the pool / builds the arena and certifies
            # bit-exactness of the sharded launch.
            assert np.array_equal(sharded(), inline())
            warm = backend.arena_stats()
            sharded_s = best_of(sharded)
            inline_s = best_of(inline)
            # Steady state: the repeated launches above created no slabs.
            steady = backend.arena_stats()
            assert steady["slabs_created"] == warm["slabs_created"], (
                "arena grew after warmup at B=%d" % batch)
            results[batch] = {
                "sharded_us": sharded_s * 1e6,
                "inline_us": inline_s * 1e6,
                "speedup": inline_s / sharded_s,
                "macs": LIMBS * STAGE * STAGE * STAGE * batch,
            }
    finally:
        backend.close()
    return results


def test_sweep_writes_results(sweep):
    rows = [
        [batch, entry["macs"], round(entry["inline_us"], 1),
         round(entry["sharded_us"], 1), round(entry["speedup"], 2)]
        for batch, entry in sorted(sweep.items())
    ]
    print()
    print(format_table(
        ["B", "MACs", "inline numpy (us)", "sharded x%d (us)" % WORKERS,
         "speedup"],
        rows,
        title="Fused four-step GEMM (L, %d, %d)@(L, %d, %d*B), N=%d, L=%d"
              % (STAGE, STAGE, STAGE, STAGE, RING_DEGREE, LIMBS)))

    payload = {
        "fused_gemm_N%d_L%d_B%d" % (RING_DEGREE, LIMBS, batch): {
            "sharded_us": entry["sharded_us"],
            "inline_us": entry["inline_us"],
            "speedup": entry["speedup"],
        }
        for batch, entry in sweep.items()
    }
    # The calibration block ShardedBackend reads back at construction.
    # The knee is only recorded when the pool actually won somewhere —
    # a single-core host records the host facts and keeps the defaults.
    calibration = {"workers": WORKERS, "cpu_count": os.cpu_count() or 1}
    winning = [entry["macs"] for entry in sweep.values()
               if entry["speedup"] > 1.0]
    if winning:
        calibration["min_shard_elements"] = min(winning)
    payload["calibration"] = calibration
    path = write_results("sharded", payload)
    print("results written to %s" % path)

    assert len(sweep) == len(BATCHES)
    # Fan-out, when it pays at all, pays more at larger fused batches.
    assert sweep[GATE_BATCH]["speedup"] >= sweep[1]["speedup"] * 0.8


def test_sharded_speedup_gate(sweep):
    if usable_cores() < 2:
        pytest.skip("single-core host: no parallel speedup to gate on")
    speedup = sweep[GATE_BATCH]["speedup"]
    assert speedup >= GATE_SPEEDUP, (
        "sharded pool does not beat inline numpy at N=%d, L=%d, B=%d "
        "(got %.2fx, need %.2fx)"
        % (RING_DEGREE, LIMBS, GATE_BATCH, speedup, GATE_SPEEDUP)
    )
