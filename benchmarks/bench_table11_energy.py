"""Table XI: energy efficiency of operations and workloads."""

from bench_common import default_model
from repro.perf import EnergyModel, OPERATIONS, WorkloadModel, format_table
from repro.perf.literature import TABLE_XI_ENERGY
from repro.workloads import WORKLOADS


def _energy():
    energy = EnergyModel(TABLE_XI_ENERGY["gpu_power_watts"])
    model = default_model()
    operation_efficiency = energy.table_xi_operations(
        {op: model.operation_time(op) for op in OPERATIONS})
    workload_model = WorkloadModel(power_watts=TABLE_XI_ENERGY["gpu_power_watts"])
    workload_energy = {name: workload_model.evaluate(spec).energy_joules
                       for name, spec in WORKLOADS.items()}
    return operation_efficiency, workload_energy


def test_table11_energy(benchmark):
    operation_efficiency, workload_energy = benchmark(_energy)
    print()
    rows = [[op, TABLE_XI_ENERGY["ops_per_watt"].get(op), operation_efficiency[op]]
            for op in OPERATIONS]
    print(format_table(["operation", "paper OPs/W", "model OPs/W"], rows,
                       title="Table XI — operation energy efficiency"))
    rows = []
    for name in WORKLOADS:
        paper_tf = TABLE_XI_ENERGY["joules_per_iteration"]["TensorFHE"].get(name)
        paper_cl = TABLE_XI_ENERGY["joules_per_iteration"]["CraterLake"].get(name)
        rows.append([name, paper_cl, paper_tf, workload_energy[name]])
    print(format_table(["workload", "CraterLake (paper J/iter)",
                        "TensorFHE (paper J/iter)", "TensorFHE (model J/iter)"], rows,
                       title="Table XI — workload energy per iteration"))

    # Shape: the cheap elementwise operations are far more energy-efficient
    # than the NTT-heavy ones, and the GPU burns much more energy per
    # iteration than the ASIC accelerators (the paper's conclusion).
    assert operation_efficiency["HADD"] > 10 * operation_efficiency["HMULT"]
    for name in ("resnet20", "lr"):
        paper_ark = TABLE_XI_ENERGY["joules_per_iteration"]["ARK"][name]
        assert workload_energy[name] > paper_ark
