"""Batched vs per-ciphertext bootstrapping (the batched-bootstrap tentpole).

Two stages:

* **BSGS refresh transform, N=4096 (the CI gate)** — the bootstrap DFT
  stages are BSGS linear transforms, and at real ring degrees they
  dominate the pipeline.  A sparse band transform (diagonals 0, 1, 64,
  65 — one baby and one giant group, the structure of a radix-split DFT
  factor) runs two ways on the bandwidth-bound matrix engine: a
  per-ciphertext :meth:`BsgsLinearTransform.apply` loop vs one
  :meth:`BsgsLinearTransform.apply_many` call, where every rotation is a
  B-fused key switch and every diagonal multiply one fused CMULT launch.
  The per-stream loop re-reads the ``L x N x N`` twiddle stack for every
  ciphertext; the fused launch streams it once — the paper's data-reuse
  argument applied to the bootstrap inner loop.

* **full pipeline, N=64** — ModRaise → CoeffToSlot → EvalMod →
  SlotToCoeff end-to-end through :meth:`Bootstrapper.bootstrap_many`
  vs looping :meth:`Bootstrapper.bootstrap`, at the functional test
  parameters (8 levels, shallow EvalMod).  Small-N wall-clock is
  Python-overhead-bound, so this row documents the end-to-end shape and
  the bit-parity of the full pipeline rather than carrying the gate.

Results print as a table and are written as JSON through
``bench_common.write_results`` so the speedups land in the tracked perf
trajectory.
"""

import os

import numpy as np
import pytest

from bench_common import best_of, write_results
from repro.api import TensorFheContext
from repro.ckks import CkksContext, CkksParameters, Encryptor, Evaluator, KeyGenerator
from repro.ckks.batched_evaluator import BatchedEvaluator
from repro.ckks.bootstrap import BootstrapConfig, BsgsLinearTransform
from repro.perf import format_table

#: (ring_degree, batch) shapes swept for the BSGS stage; N=4096 B=8 gates.
SHAPES = ((1024, 8), (4096, 8))
#: The sparse band evaluated homomorphically: one baby-step pair in the
#: giant-0 group and the same pair at giant 64 (n1 = 64 at 2048 slots).
DIAGONAL_OFFSETS = (0, 1, 64, 65)
#: Gate: the fused transform must beat the per-ciphertext loop 1.5x at
#: N=4096, B=8 on the blas backend (relaxed on noisy shared runners).
GATE_SCALE = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
GATE_SPEEDUP = 1.5 * GATE_SCALE
GATE_SHAPE = (4096, 8)


def _context(ring_degree: int) -> CkksContext:
    # Same substrate as the key-switch benchmark: a short two-prime chain
    # keeps the matrix-engine twiddle stacks small, and 20-bit primes keep
    # every GEMM on the single-pass float64 BLAS path.  The launch
    # structure being compared — B per-stream transforms vs one fused
    # apply_many — is the same at any depth.
    parameters = CkksParameters(
        ring_degree=ring_degree, level_count=2, dnum=2,
        scale_bits=20, prime_bits=20, special_prime_bits=20,
        secret_hamming_weight=64, ntt_engine="matrix",
        name="bench-bootstrap")
    return CkksContext(parameters, seed=13, backend="blas")


def _band_matrix(slot_count: int, rng: np.random.Generator) -> np.ndarray:
    matrix = np.zeros((slot_count, slot_count), dtype=np.complex128)
    for offset in DIAGONAL_OFFSETS:
        values = (rng.uniform(-1, 1, slot_count)
                  + 1j * rng.uniform(-1, 1, slot_count)) / len(DIAGONAL_OFFSETS)
        for i in range(slot_count):
            matrix[i, (i + offset) % slot_count] = values[i]
    return matrix


@pytest.fixture(scope="module")
def bsgs_sweep():
    results = {}
    for ring_degree, batch in SHAPES:
        context = _context(ring_degree)
        keygen = KeyGenerator(context)
        secret = keygen.generate_secret_key()
        encryptor = Encryptor(context, secret_key=secret)
        evaluator = Evaluator(context)
        batched = BatchedEvaluator(context, evaluator=evaluator)
        rng = np.random.default_rng(3)
        transform = BsgsLinearTransform(
            context, _band_matrix(context.slot_count, rng))
        rotation_keys = keygen.generate_rotation_keys(
            secret, transform.rotation_steps())
        streams = [
            encryptor.encrypt_symmetric(
                rng.uniform(-1, 1, context.slot_count))
            for _ in range(batch)
        ]

        def per_stream():
            return [transform.apply(ct, evaluator, encryptor, rotation_keys)
                    for ct in streams]

        def fused():
            return transform.apply_many(streams, batched, encryptor,
                                        rotation_keys)

        # Warm-up: build twiddle stacks and verify bit-exact parity.
        reference = per_stream()
        for got, want in zip(fused(), reference):
            assert np.array_equal(got.c0.residues, want.c0.residues)
            assert np.array_equal(got.c1.residues, want.c1.residues)

        loop_s, fused_s = best_of(per_stream), best_of(fused)
        results[(ring_degree, batch)] = {
            "per_stream_us": loop_s * 1e6,
            "fused_us": fused_s * 1e6,
            "speedup": loop_s / fused_s if fused_s > 0 else float("inf"),
        }
        context.planner.clear()
    return results


@pytest.fixture(scope="module")
def pipeline_result():
    parameters = CkksParameters(ring_degree=64, level_count=8, dnum=4,
                                secret_hamming_weight=8,
                                name="bench-bootstrap-pipeline")
    fhe = TensorFheContext(parameters, seed=21, backend="blas",
                           bootstrap_config=BootstrapConfig(
                               taylor_degree=3, double_angle_iterations=1))
    fhe.ensure_rotation_keys(fhe.bootstrapper.required_rotation_steps())
    rng = np.random.default_rng(3)
    batch = 8
    streams = [
        fhe.evaluator.drop_to_level(
            fhe.encrypt(rng.uniform(-0.05, 0.05, fhe.slot_count)), 0)
        for _ in range(batch)
    ]
    bootstrapper = fhe.bootstrapper

    def per_stream():
        return [
            bootstrapper.bootstrap(ct, fhe.evaluator, fhe.encryptor,
                                   fhe.relinearization_key, fhe.rotation_keys)
            for ct in streams
        ]

    def fused():
        return fhe.bootstrap_many(streams)

    reference = per_stream()
    for got, want in zip(fused(), reference):
        assert np.array_equal(got.c0.residues, want.c0.residues)
        assert np.array_equal(got.c1.residues, want.c1.residues)

    loop_s, fused_s = best_of(per_stream), best_of(fused)
    return {
        "batch": batch,
        "per_stream_us": loop_s * 1e6,
        "fused_us": fused_s * 1e6,
        "speedup": loop_s / fused_s if fused_s > 0 else float("inf"),
    }


def test_bootstrap_batching_speedup(bsgs_sweep, pipeline_result):
    rows = [
        ["bsgs-band N=%d" % n, batch,
         round(entry["per_stream_us"], 1),
         round(entry["fused_us"], 1),
         round(entry["speedup"], 2)]
        for (n, batch), entry in sorted(bsgs_sweep.items())
    ]
    rows.append([
        "full pipeline N=64", pipeline_result["batch"],
        round(pipeline_result["per_stream_us"], 1),
        round(pipeline_result["fused_us"], 1),
        round(pipeline_result["speedup"], 2),
    ])
    print()
    print(format_table(
        ["stage", "B", "per-ct loop (us)", "B-fused (us)", "speedup"],
        rows,
        title="Batched vs per-ciphertext bootstrap (matrix engine, blas)"))

    payload = {
        "bsgs_band_N%d_B%d" % (n, batch): entry
        for (n, batch), entry in bsgs_sweep.items()
    }
    payload["pipeline_N64_B%d" % pipeline_result["batch"]] = {
        key: value for key, value in pipeline_result.items() if key != "batch"
    }
    path = write_results("bootstrap_batching", payload)
    print("results written to %s" % path)

    gate = bsgs_sweep[GATE_SHAPE]
    assert gate["speedup"] >= GATE_SPEEDUP, (
        "fused bootstrap transform only %.2fx faster at N=%d, B=%d"
        % (gate["speedup"], GATE_SHAPE[0], GATE_SHAPE[1])
    )
