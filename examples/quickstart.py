"""Quickstart: encrypt two vectors, compute on them, decrypt the result.

Demonstrates the high-level :class:`repro.TensorFheContext` facade — the
library equivalent of the paper's API layer — on a reduced-size CKKS
instance that runs in a few seconds of pure Python.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import TensorFheContext


def main() -> None:
    fhe = TensorFheContext.from_preset("small", seed=2024, rotation_steps=(1, 2, 4))
    print("CKKS instance:", fhe.context.describe())

    rng = np.random.default_rng(7)
    x = rng.uniform(-1.0, 1.0, fhe.slot_count)
    y = rng.uniform(-1.0, 1.0, fhe.slot_count)

    ct_x = fhe.encrypt(x)
    ct_y = fhe.encrypt(y)

    # (x + y) * x, then rotated by one slot — all on encrypted data.
    ct_sum = fhe.add(ct_x, ct_y)
    ct_product = fhe.multiply(ct_sum, ct_x)
    ct_rotated = fhe.rotate(ct_product, 1)

    decrypted = fhe.decrypt_real(ct_rotated)
    expected = np.roll((x + y) * x, -1)
    error = float(np.max(np.abs(decrypted - expected)))

    print("first five decrypted slots :", np.round(decrypted[:5], 5))
    print("first five expected values :", np.round(expected[:5], 5))
    print("max absolute error         : %.2e" % error)
    print("kernel invocations         :", dict(fhe.kernel_counter.invocations))
    batch_plan = fhe.plan_batch()
    print("API-layer batch plan       : batch=%d (VRAM-limited=%s)" % (
        batch_plan.batch_size, batch_plan.limited_by_vram))
    if error > 1e-2:
        raise SystemExit("unexpectedly large error — something is wrong")
    print("OK")


if __name__ == "__main__":
    main()
