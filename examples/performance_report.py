"""Regenerate the paper's headline performance comparison from the model.

Prints the Table VI operation latencies, the Table X workload runtimes and
the headline speedups (vs 100x, vs F1+ on LR) as modelled by this library's
GPU performance model at the paper's exact parameters.

Run with:  python examples/performance_report.py
"""

from __future__ import annotations

from repro.gpu import A100
from repro.perf import (
    ModelParameters,
    NttVariant,
    OperationModel,
    OPERATIONS,
    WorkloadModel,
    format_table,
    literature,
)
from repro.workloads import WORKLOADS


def main() -> None:
    parameters = ModelParameters(ring_degree=1 << 16, level_count=45, dnum=5,
                                 batch_size=128)
    rows = []
    for variant, label in ((NttVariant.BUTTERFLY, "TensorFHE-NT"),
                           (NttVariant.GEMM_CUDA, "TensorFHE-CO"),
                           (NttVariant.GEMM_TCU, "TensorFHE")):
        model = OperationModel(parameters, gpu=A100, variant=variant)
        rows.append([label] + [model.operation_time_us(op) for op in OPERATIONS])
    print(format_table(["configuration"] + list(OPERATIONS), rows,
                       title="Modelled operation delay on the A100 (microseconds)"))
    print()

    tensorfhe = OperationModel(parameters, gpu=A100)
    paper_100x = literature.TABLE_VI_OPERATION_DELAY_US["100x"]["HMULT"]
    print("HMULT speedup over the published 100x number : %.2fx"
          % (paper_100x / tensorfhe.operation_time_us("HMULT")))
    print("paper's claim                                  : %.2fx"
          % literature.HEADLINE_CLAIMS["speedup_over_100x"])
    print()

    workload_model = WorkloadModel()
    rows = []
    for name, spec in WORKLOADS.items():
        modelled = workload_model.evaluate(spec).total_seconds
        paper = literature.TABLE_X_WORKLOAD_SECONDS["TensorFHE"][name]
        f1plus = literature.TABLE_X_WORKLOAD_SECONDS["F1+"][name]
        rows.append([name, paper, modelled, f1plus])
    print(format_table(["workload", "paper TensorFHE (s)", "model TensorFHE (s)",
                        "paper F1+ (s)"], rows,
                       title="Full-workload runtimes (Table X)"))
    lr_speedup = (literature.TABLE_X_WORKLOAD_SECONDS["F1+"]["lr"]
                  / workload_model.evaluate(WORKLOADS["lr"]).total_seconds)
    print()
    print("LR speedup over F1+ : %.2fx (paper claims %.1fx)"
          % (lr_speedup, literature.HEADLINE_CLAIMS["speedup_over_f1plus_lr"]))


if __name__ == "__main__":
    main()
