"""Encrypted logistic-regression inference (the paper's LR workload, scaled down).

A logistic-regression model is trained in the clear on a synthetic dataset,
then *inference runs entirely on encrypted inputs*: the dot product uses
slot-wise multiplication plus rotate-and-sum, and the sigmoid is replaced by
the same low-degree polynomial approximation the HELR workload [30] uses.

Run with:  python examples/encrypted_logistic_regression.py
"""

from __future__ import annotations

import numpy as np

from repro import TensorFheContext


def sigmoid_poly(t: np.ndarray) -> np.ndarray:
    """Degree-3 least-squares approximation of the sigmoid on [-4, 4]."""
    return 0.5 + 0.197 * t - 0.004 * t ** 3


def train_plaintext_model(rng, samples: int, features: int):
    """Tiny gradient-descent training in the clear (the client-side step)."""
    true_weights = rng.uniform(-1, 1, features)
    inputs = rng.uniform(-1, 1, (samples, features))
    labels = (inputs @ true_weights + 0.1 * rng.normal(size=samples) > 0).astype(float)
    weights = np.zeros(features)
    for _ in range(300):
        predictions = 1.0 / (1.0 + np.exp(-(inputs @ weights)))
        gradient = inputs.T @ (predictions - labels) / samples
        weights -= 0.5 * gradient
    return inputs, labels, weights


def main() -> None:
    rng = np.random.default_rng(11)
    fhe = TensorFheContext.from_preset("medium", seed=5)
    features = 16            # one feature per slot block
    samples = 12

    inputs, labels, weights = train_plaintext_model(rng, samples, features)

    correct = 0
    for index in range(samples):
        # Client: encrypt one sample (features packed into the first slots).
        ct_sample = fhe.encrypt(inputs[index])
        # Server: weighted sum via CMULT + rotate-and-sum, sigmoid via a
        # degree-3 polynomial (one HMULT + CMULTs), all on encrypted data.
        ct_weighted = fhe.multiply_plain(ct_sample, weights)
        ct_logit = fhe.inner_sum(ct_weighted, features)
        # Mask away the rotate-and-sum partial sums in the other slots so the
        # small level-0 modulus only has to hold the slot-0 score.
        mask = np.zeros(fhe.slot_count)
        mask[0] = 1.0
        ct_logit = fhe.multiply_plain(ct_logit, mask)
        ct_logit_sq = fhe.multiply(ct_logit, ct_logit)
        ct_cubic = fhe.multiply(ct_logit_sq,
                                fhe.multiply_plain(ct_logit, np.full(fhe.slot_count, -0.004)))
        ct_linear = fhe.multiply_plain(ct_logit, np.full(fhe.slot_count, 0.197))
        # Successive rescales by slightly different primes leave the two terms
        # at marginally different scales; absorb the <0.1% difference before
        # adding, as approximate CKKS arithmetic normally does.
        from repro.ckks import Ciphertext

        ct_linear, ct_cubic = fhe.evaluator.align(ct_linear, ct_cubic)
        ct_cubic = Ciphertext(ct_cubic.c0, ct_cubic.c1, ct_linear.scale, ct_cubic.level)
        ct_score = fhe.add_plain(fhe.add(ct_linear, ct_cubic),
                                 np.full(fhe.slot_count, 0.5))
        # Client: decrypt the score of slot 0 and threshold it.
        score = float(fhe.decrypt_real(ct_score)[0])
        plain_score = float(sigmoid_poly(inputs[index] @ weights))
        assert abs(score - plain_score) < 5e-2, "encrypted score diverged"
        correct += int((score > 0.5) == bool(labels[index]))

    accuracy = correct / samples
    plain_predictions = sigmoid_poly(inputs @ weights) > 0.5
    plain_accuracy = float(np.mean(plain_predictions == labels.astype(bool)))
    print("encrypted-inference accuracy : %.2f" % accuracy)
    print("plaintext accuracy           : %.2f" % plain_accuracy)
    print("kernel invocations           :", dict(fhe.kernel_counter.invocations))
    if abs(accuracy - plain_accuracy) > 0.1:
        raise SystemExit("encrypted inference disagrees with the plaintext model")
    print("OK")


if __name__ == "__main__":
    main()
