"""Serving-layer walkthrough: concurrent tenants of one engine.

Three client sessions — two sharing one data owner's key material, one
with its own — submit encrypted operations concurrently.  The engine
coalesces compatible requests into fused (B, L, N) launches and the
diagnostics snapshot shows what fused with what.  The encrypted-
statistics workload then runs the same engine pattern at higher
concurrency.

Run with:  PYTHONPATH=src python examples/serving_client.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import TensorFheContext
from repro.workloads import run_serving_statistics


async def main() -> None:
    fhe = TensorFheContext.from_preset("small", seed=9)
    engine = fhe.create_serving_engine()
    registry = engine.registry

    # "alice" and "alice-mobile" are two sessions of one data owner: they
    # share key material (and therefore fuse HMULTs); "bob" holds his own
    # keys, so only key-less ops (HADD, CMULT, RESCALE) fuse with his.
    alice = registry.register("alice")
    registry.alias("alice-mobile", alice)
    bob = registry.register("bob")

    rng = np.random.default_rng(33)
    slots = fhe.slot_count

    def encrypt(bundle, values):
        return bundle.encryptor.encrypt(values), values

    ct_a, x_a = encrypt(alice, rng.uniform(-1, 1, slots))
    ct_m, x_m = encrypt(alice, rng.uniform(-1, 1, slots))
    ct_b, x_b = encrypt(bob, rng.uniform(-1, 1, slots))
    weights = rng.uniform(-1, 1, slots)

    async with engine:
        # Submitted concurrently: the adds coalesce across all three
        # tenants, the multiplies across the two alice sessions.
        sum_a, sum_m, sum_b, prod_a, prod_m, prod_b = await asyncio.gather(
            engine.add("alice", ct_a, ct_m),
            engine.add("alice-mobile", ct_m, ct_a),
            engine.add("bob", ct_b, ct_b),
            engine.multiply("alice", ct_a, ct_m),
            engine.multiply("alice-mobile", ct_m, ct_a),
            engine.multiply_plain("bob", ct_b, weights),
        )
        diagnostics = engine.diagnostics()

    checks = (
        ("alice   add ", alice.decryptor.decrypt_real(sum_a), x_a + x_m),
        ("mobile  add ", alice.decryptor.decrypt_real(sum_m), x_a + x_m),
        ("bob     add ", bob.decryptor.decrypt_real(sum_b), x_b + x_b),
        ("alice   mult", alice.decryptor.decrypt_real(prod_a), x_a * x_m),
        ("mobile  mult", alice.decryptor.decrypt_real(prod_m), x_a * x_m),
        ("bob     cmult", bob.decryptor.decrypt_real(prod_b), x_b * weights),
    )
    for label, got, want in checks:
        error = float(np.max(np.abs(got - want)))
        print("%s  max error %.2e" % (label, error))
        if error > 1e-2:
            raise SystemExit("served result diverged from plaintext math")

    batches = diagnostics["batches"]
    print("\nfused launches      : %d (for %d requests)"
          % (batches["executed"], diagnostics["requests"]["completed"]))
    print("batch histogram     : %s" % batches["histogram"])
    print("mean batch size     : %.2f" % batches["mean_size"])

    # The same engine pattern under a real workload: 8 concurrent clients
    # each computing encrypted mean/variance, rounds fusing as they land.
    report = await run_serving_statistics(fhe, clients=8, seed=21)
    print("\nencrypted statistics across %d concurrent clients:"
          % len(report.clients))
    print("requests completed  : %d" % report.requests_completed)
    print("mean batch size     : %.2f" % report.mean_batch_size)
    print("max error           : %.2e" % report.max_error)
    if report.max_error > 5e-2:
        raise SystemExit("workload statistics diverged from plaintext values")
    print("OK")


if __name__ == "__main__":
    asyncio.run(main())
