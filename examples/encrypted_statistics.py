"""Privacy-preserving statistics: mean, variance and covariance of encrypted data.

Models the cloud-analytics scenario of the paper's introduction: a client
uploads encrypted measurement vectors and the server computes aggregate
statistics without ever seeing the data.  Uses HADD, CMULT, HMULT and the
rotate-and-sum idiom.

Run with:  python examples/encrypted_statistics.py
"""

from __future__ import annotations

import numpy as np

from repro import TensorFheContext


def main() -> None:
    fhe = TensorFheContext.from_preset("small", seed=9)
    rng = np.random.default_rng(21)
    count = fhe.slot_count

    temperatures = rng.normal(22.0, 3.0, count) / 32.0     # scaled into [-1, 1]-ish
    humidity = rng.normal(0.5, 0.1, count)

    ct_temperature = fhe.encrypt(temperatures)
    ct_humidity = fhe.encrypt(humidity)

    inverse_count = np.full(fhe.slot_count, 1.0 / count)

    # mean(x) = sum(x) / n  — rotate-and-sum then a plaintext scaling.
    ct_temp_mean = fhe.multiply_plain(fhe.inner_sum(ct_temperature), inverse_count)
    ct_hum_mean = fhe.multiply_plain(fhe.inner_sum(ct_humidity), inverse_count)

    # E[x^2] and E[x*y] for variance / covariance.
    ct_temp_sq_mean = fhe.multiply_plain(
        fhe.inner_sum(fhe.multiply(ct_temperature, ct_temperature)), inverse_count)
    ct_cross_mean = fhe.multiply_plain(
        fhe.inner_sum(fhe.multiply(ct_temperature, ct_humidity)), inverse_count)

    temp_mean = float(fhe.decrypt_real(ct_temp_mean)[0])
    hum_mean = float(fhe.decrypt_real(ct_hum_mean)[0])
    temp_var = float(fhe.decrypt_real(ct_temp_sq_mean)[0]) - temp_mean ** 2
    covariance = float(fhe.decrypt_real(ct_cross_mean)[0]) - temp_mean * hum_mean

    expected_mean = float(np.mean(temperatures))
    expected_var = float(np.var(temperatures))
    expected_cov = float(np.mean(temperatures * humidity)
                         - np.mean(temperatures) * np.mean(humidity))

    print("encrypted mean       : %+.5f   (plaintext %+.5f)" % (temp_mean, expected_mean))
    print("encrypted variance   : %+.5f   (plaintext %+.5f)" % (temp_var, expected_var))
    print("encrypted covariance : %+.5f   (plaintext %+.5f)" % (covariance, expected_cov))

    for got, want in ((temp_mean, expected_mean), (temp_var, expected_var),
                      (covariance, expected_cov), (hum_mean, float(np.mean(humidity)))):
        if abs(got - want) > 1e-2:
            raise SystemExit("encrypted statistic diverged from the plaintext value")
    print("OK")


if __name__ == "__main__":
    main()
