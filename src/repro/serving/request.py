"""Request objects and the coalescing key.

An :class:`OpRequest` is one tenant's encrypted-operation request as it
sits in the serving queue: the operands, the per-op parameters, the
tenant's resolved key bundle and the ``asyncio`` future the result lands
on.  Requests fuse into one batched launch when they share a
:meth:`~OpRequest.coalesce_key`: the operation (plus its parameters), the
key-bundle identity for key-consuming ops, and the
:func:`~repro.ckks.batched_evaluator.stream_signature` of every
ciphertext operand — the same prime-chain/level/scale/domain grouping the
:class:`~repro.ckks.batched_evaluator.BatchedEvaluator` fuses on, applied
up front so every chunk the engine hands over executes as a single
``(B, L, N)`` launch sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple

import asyncio

from ..ckks.batched_evaluator import stream_signature
from ..ckks.ciphertext import Ciphertext

__all__ = ["OpName", "OpRequest"]


class OpName:
    """The encrypted operations the serving layer accepts."""

    ADD = "add"
    MULTIPLY = "multiply"
    MULTIPLY_PLAIN = "multiply_plain"
    RESCALE = "rescale"
    ROTATE = "rotate"
    CONJUGATE = "conjugate"
    BOOTSTRAP = "bootstrap"

    ALL = (ADD, MULTIPLY, MULTIPLY_PLAIN, RESCALE, ROTATE, CONJUGATE,
           BOOTSTRAP)
    #: Operations consuming a switch key; these fuse only within one
    #: key-bundle identity (see :class:`~repro.serving.keys.TenantKeys`).
    KEYED = frozenset((MULTIPLY, ROTATE, CONJUGATE, BOOTSTRAP))
    #: Operations taking a second ciphertext operand.
    BINARY = frozenset((ADD, MULTIPLY))


@dataclass
class OpRequest:
    """One queued encrypted-operation request."""

    tenant: str
    op: str
    ciphertext: Ciphertext
    operand: Optional[Ciphertext] = None        # ADD / MULTIPLY rhs
    values: Optional[Sequence] = None           # MULTIPLY_PLAIN slot vector
    steps: int = 0                              # ROTATE step count (normalised)
    rescale: bool = True                        # trailing RESCALE for products
    keys: Any = None                            # resolved TenantKeys bundle
    future: Optional["asyncio.Future"] = field(default=None, repr=False)
    enqueued_at: float = 0.0                    # event-loop time at admission

    def coalesce_key(self) -> Tuple:
        """The compatibility key this request fuses under."""
        params: Tuple
        if self.op == OpName.ROTATE:
            params = (self.steps,)
        elif self.op in (OpName.MULTIPLY, OpName.MULTIPLY_PLAIN):
            params = (self.rescale,)
        else:
            params = ()
        key_part = self.keys.key_id if self.op in OpName.KEYED else None
        operand_sig = (stream_signature(self.operand)
                       if self.operand is not None else None)
        return (self.op, params, key_part,
                stream_signature(self.ciphertext), operand_sig)
