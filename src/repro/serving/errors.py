"""Serving-layer error taxonomy.

Two families matter operationally and the tests pin the distinction:

* **admission rejections** (:class:`RejectedRequest` subclasses) — raised
  synchronously at ``submit`` time, before the request enters the queue:
  backpressure (:class:`QueueFull`, :class:`TenantBusy`), health gating
  (:class:`ServiceUnavailable`) and lifecycle (:class:`EngineStopped`).
  The caller retries or sheds load; nothing reached the executor.
* **request-scoped errors** — bad tenant (:class:`UnknownTenant`), bad
  operation (:class:`UnknownOperation`) or operand validation failures
  surfaced through the request's future.  They fail one request (or one
  coalesced group of identically-malformed requests) and never count
  against the engine's availability.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "RejectedRequest",
    "QueueFull",
    "TenantBusy",
    "ServiceUnavailable",
    "EngineStopped",
    "UnknownTenant",
    "UnknownOperation",
]


class ServingError(Exception):
    """Base class of every serving-layer error."""


class RejectedRequest(ServingError):
    """A request refused at admission time (nothing was enqueued)."""


class QueueFull(RejectedRequest):
    """The bounded admission queue is at capacity — shed load upstream."""


class TenantBusy(RejectedRequest):
    """The tenant hit its in-flight request cap."""


class ServiceUnavailable(RejectedRequest):
    """Availability is gated after consecutive executor failures.

    While gated, a single probe request at a time is still admitted so the
    gate can observe recovery (see :class:`~repro.serving.health.HealthGate`).
    """


class EngineStopped(RejectedRequest):
    """The engine was stopped; queued work was drained or failed."""


class UnknownTenant(ServingError, KeyError):
    """No key bundle is registered for the tenant id."""

    def __str__(self) -> str:        # KeyError quotes its args; keep readable
        return str(self.args[0]) if self.args else KeyError.__str__(self)


class UnknownOperation(ServingError, ValueError):
    """The request names an operation the serving layer does not offer."""
