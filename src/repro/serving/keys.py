"""Per-tenant key material for the serving layer.

Every tenant of a :class:`~repro.serving.engine.ServingEngine` owns a
:class:`TenantKeys` bundle — secret/public/relinearization keys plus a
lazily-grown rotation key set — all generated for the *one* CKKS context
the engine serves (the prime chains and ring degree are shared; the key
material is not).  The bundle's ``key_id`` is what the request coalescer
keys on for key-consuming operations: two tenants whose bundles share a
``key_id`` (registered via :meth:`KeyRegistry.alias`, the "many sessions
of one data owner" shape) fuse their HMULT/HROTATE streams into one
launch, while tenants with distinct bundles only fuse their key-less
operations (HADD, CMULT, RESCALE) across each other.

The registry also holds the tenant's decryptor.  That is a reproduction
convenience for round-trip verification in tests, examples and
benchmarks — a production deployment would keep secret keys client-side
and register public material only.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, Union

from ..ckks.context import CkksContext
from ..ckks.decryptor import Decryptor
from ..ckks.encryptor import Encryptor
from ..ckks.keygen import KeyGenerator
from ..ckks.keys import PublicKey, RotationKeySet, SecretKey, SwitchKey
from .errors import UnknownTenant

__all__ = ["TenantKeys", "KeyRegistry"]


@dataclass
class TenantKeys:
    """One tenant's complete key bundle plus client-side helpers."""

    tenant: str
    #: Identity of the underlying key material; aliases share it, and the
    #: request coalescer fuses key-consuming ops only within one key_id.
    key_id: str
    secret_key: SecretKey
    public_key: PublicKey
    relinearization_key: SwitchKey
    rotation_keys: RotationKeySet
    encryptor: Encryptor = field(repr=False)
    decryptor: Decryptor = field(repr=False)

    def with_tenant(self, tenant: str) -> "TenantKeys":
        """The same bundle registered under another tenant id (an alias)."""
        return TenantKeys(
            tenant=tenant, key_id=self.key_id,
            secret_key=self.secret_key, public_key=self.public_key,
            relinearization_key=self.relinearization_key,
            rotation_keys=self.rotation_keys,
            encryptor=self.encryptor, decryptor=self.decryptor,
        )


class KeyRegistry:
    """Tenant-id → key-bundle mapping for one CKKS context."""

    def __init__(self, context: CkksContext, *,
                 keygen: Optional[KeyGenerator] = None) -> None:
        self.context = context
        self.keygen = keygen if keygen is not None else KeyGenerator(context)
        self._bundles: Dict[str, TenantKeys] = {}
        self._key_ids = itertools.count()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, tenant: str,
                 rotation_steps: Iterable[int] = ()) -> TenantKeys:
        """Generate a fresh key bundle for ``tenant``.

        Rotation keys beyond ``rotation_steps`` (and the conjugation key,
        which is always included) are generated lazily on first use via
        :meth:`ensure_rotation_keys`.
        """
        self._check_unregistered(tenant)
        keygen = self.keygen
        secret = keygen.generate_secret_key()
        public = keygen.generate_public_key(secret)
        bundle = TenantKeys(
            tenant=tenant,
            key_id="key-%d" % next(self._key_ids),
            secret_key=secret,
            public_key=public,
            relinearization_key=keygen.generate_relinearization_key(secret),
            rotation_keys=keygen.generate_rotation_keys(secret, rotation_steps),
            encryptor=Encryptor(self.context, public, secret),
            decryptor=Decryptor(self.context, secret),
        )
        self._bundles[tenant] = bundle
        return bundle

    def adopt(self, tenant: str, *, secret_key: SecretKey,
              public_key: PublicKey, relinearization_key: SwitchKey,
              rotation_keys: RotationKeySet) -> TenantKeys:
        """Register existing key material (e.g. a facade's) under ``tenant``."""
        self._check_unregistered(tenant)
        bundle = TenantKeys(
            tenant=tenant,
            key_id="key-%d" % next(self._key_ids),
            secret_key=secret_key,
            public_key=public_key,
            relinearization_key=relinearization_key,
            rotation_keys=rotation_keys,
            encryptor=Encryptor(self.context, public_key, secret_key),
            decryptor=Decryptor(self.context, secret_key),
        )
        self._bundles[tenant] = bundle
        return bundle

    def alias(self, tenant: str, source: Union[str, TenantKeys]) -> TenantKeys:
        """Register ``tenant`` as another session of ``source``'s key material.

        Aliased tenants keep separate quotas and health state but share the
        ``key_id``, so their key-consuming operations coalesce.
        """
        self._check_unregistered(tenant)
        bundle = (source if isinstance(source, TenantKeys)
                  else self.get(source)).with_tenant(tenant)
        self._bundles[tenant] = bundle
        return bundle

    def _check_unregistered(self, tenant: str) -> None:
        if tenant in self._bundles:
            raise ValueError("tenant %r is already registered" % tenant)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, tenant: str) -> TenantKeys:
        try:
            return self._bundles[tenant]
        except KeyError:
            raise UnknownTenant(
                "no key bundle registered for tenant %r; register it first"
                % tenant) from None

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._bundles

    def __len__(self) -> int:
        return len(self._bundles)

    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(self._bundles)

    # ------------------------------------------------------------------
    def ensure_rotation_keys(self, tenant: Union[str, TenantKeys],
                             steps: Iterable[int]) -> TenantKeys:
        """Lazily generate any missing rotation keys for the tenant.

        Reuses :meth:`KeyGenerator.ensure_rotation_keys` — the same lazy
        path the facade's ``ensure_rotation_keys`` delegates to — against
        the tenant's own secret key and rotation key set.
        """
        bundle = tenant if isinstance(tenant, TenantKeys) else self.get(tenant)
        self.keygen.ensure_rotation_keys(bundle.secret_key,
                                         bundle.rotation_keys, steps)
        return bundle
