"""Availability gating: consecutive-failure circuit breaking.

The operational idiom (availability gates only after *N consecutive*
failures, recovery on the first success) comes from hardened device
integrations: one transient executor fault must not flap the service, a
run of them must stop admitting traffic, and the gate has to be able to
observe recovery without an operator resetting it.  :class:`HealthGate`
implements that as a minimal circuit breaker:

* **closed** (available) — failures below the threshold; everything is
  admitted and any success resets the consecutive count;
* **open** (gated) — ``failure_threshold`` consecutive executor failures
  observed; regular admissions are refused, but a *single* outstanding
  probe request is allowed through at a time;
* a probe's success closes the gate immediately; its failure (or a
  neutral outcome such as a request-scoped validation error) releases the
  probe slot so the next probe can try.

The serving engine keeps one global gate plus one per tenant; executor
failures are attributed to both, request-scoped errors to neither.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["HealthGate"]


class HealthGate:
    """Consecutive-failure availability gate with single-probe recovery."""

    def __init__(self, failure_threshold: int = 3, *, name: str = "engine") -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.consecutive_failures = 0
        self.total_failures = 0
        self.total_successes = 0
        self._probe_pending = False

    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """True while failures stay below the gating threshold."""
        return self.consecutive_failures < self.failure_threshold

    def peek(self) -> bool:
        """Would an admission be allowed right now?  Never mutates."""
        return self.available or not self._probe_pending

    def admit(self) -> None:
        """Record an admission; books the probe slot while gated.

        Call only after :meth:`peek` returned True (the engine checks all
        gates before booking any, so a rejection elsewhere never leaks a
        booked probe).
        """
        if not self.available:
            self._probe_pending = True

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """An executor success: reset the count, close the gate."""
        self.total_successes += 1
        self.consecutive_failures = 0
        self._probe_pending = False

    def record_failure(self) -> None:
        """An executor failure: bump the count, free the probe slot."""
        self.total_failures += 1
        self.consecutive_failures += 1
        self._probe_pending = False

    def release_probe(self) -> None:
        """A neutral outcome (request-scoped error): free the probe slot.

        Neither resets nor bumps the consecutive count — a malformed
        request says nothing about executor health — but the probe slot
        must come back so the gate can still observe recovery.
        """
        self._probe_pending = False

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Diagnostics view of the gate state."""
        return {
            "available": self.available,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "probe_pending": self._probe_pending,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
        }
