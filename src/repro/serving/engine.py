"""The asyncio serving engine: dynamic batching of concurrent requests.

``ServingEngine`` is what feeds the fused ``(B, L, N)`` substrate from
real traffic.  Many independent tenants submit single encrypted-operation
requests concurrently; the engine coalesces compatible requests — same
operation and parameters, same key-bundle identity for key-consuming
ops, same :func:`~repro.ckks.batched_evaluator.stream_signature` — into
B-fused :class:`~repro.ckks.batched_evaluator.BatchedEvaluator` launches
sized by the :class:`~repro.batching.scheduler.BatchScheduler`, and
resolves each request's future with its result.  This is the dynamic-
batching pattern GPU inference servers use, applied to FHE operations.

**Flush policy.**  The worker wakes on the first queued request and
gathers until one of three things happens: the queue reaches the
scheduler's planned batch size; the oldest request has lingered
``max_linger`` seconds of event-loop time; or no new request arrived
within a quiet window (a quarter of the linger) — concurrent clients all
enqueue within one event-loop pass, so a quiet queue means the batch is
as big as current traffic makes it and waiting longer only adds latency.

**Backpressure.**  Admission is bounded: a full queue raises
:class:`~repro.serving.errors.QueueFull`, a tenant at its in-flight cap
raises :class:`~repro.serving.errors.TenantBusy` — explicit rejections
the caller can shed or retry on, never silent queue growth.

**Operational hardening.**  One global plus one per-tenant
:class:`~repro.serving.health.HealthGate`: availability gates only after
N *consecutive* executor failures (request-scoped errors — unknown
tenant, bad operands, a level-0 rescale — fail their own future and
never count), a single probe request is admitted while gated, and the
first success restores availability.  :meth:`ServingEngine.diagnostics`
exports queue depths, the executed-batch-size histogram, the coalesce
ratio, ops/sec and the kernel/transfer counters.

**Backend task-safety.**  The worker task snapshots the contextvars
context active at :meth:`start`, so the backend override selected by the
owner (``use_backend``/``set_active_backend``) covers every fused launch
regardless of which client's request triggered the flush.
"""

from __future__ import annotations

import asyncio
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Deque, Dict, List, Optional,
                    Sequence, Set)

from ..batching.scheduler import BatchScheduler
from ..ckks.ciphertext import Ciphertext
from .errors import (
    EngineStopped,
    QueueFull,
    ServiceUnavailable,
    TenantBusy,
    UnknownOperation,
)
from .health import HealthGate
from .keys import KeyRegistry, TenantKeys
from .request import OpName, OpRequest

if TYPE_CHECKING:        # annotation-only: the facade imports this package
    from ..api.facade import TensorFheContext

__all__ = ["ServingConfig", "ServingEngine"]

#: Exception classes treated as request-scoped (bad operands, missing
#: rotation material, malformed values): they fail the coalesced group's
#: futures but say nothing about executor health.
_REQUEST_ERRORS = (ValueError, KeyError, TypeError)


@dataclass
class ServingConfig:
    """Tunables of the serving engine."""

    #: Bounded admission queue depth; beyond it submissions raise QueueFull.
    max_queue_depth: int = 256
    #: Cap on the fused batch size; None defers to the scheduler's plan
    #: (which itself prefers the measured knee when calibrated).
    max_batch: Optional[int] = None
    #: Maximum event-loop seconds the oldest request waits for company.
    max_linger: float = 0.002
    #: Per-tenant cap on requests admitted but not yet resolved;
    #: None disables the cap.
    tenant_inflight_limit: Optional[int] = 64
    #: Consecutive executor failures before availability gates.
    failure_threshold: int = 3

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.max_linger < 0:
            raise ValueError("max_linger must be non-negative")

    @property
    def quiet_window(self) -> float:
        """Idle time after which a partial batch flushes early."""
        return self.max_linger / 4.0


class ServingEngine:
    """Multi-tenant dynamic-batching front end over one FHE context."""

    def __init__(self, fhe: "TensorFheContext", *,
                 config: Optional[ServingConfig] = None,
                 registry: Optional[KeyRegistry] = None,
                 scheduler: Optional[BatchScheduler] = None,
                 executor: Optional[Callable[[str, List[OpRequest]],
                                             Sequence[Ciphertext]]] = None) -> None:
        self.fhe = fhe
        self.config = config if config is not None else ServingConfig()
        self.registry = (registry if registry is not None
                         else KeyRegistry(fhe.context, keygen=fhe._keygen))
        self.scheduler = scheduler if scheduler is not None else fhe.batch_scheduler
        #: The batch executor; replaceable for fault injection in tests.
        self._executor = executor if executor is not None else self._run_op
        self._queue: Deque[OpRequest] = deque()
        self._work = asyncio.Event()
        self._worker_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped = False
        self._started_at: Optional[float] = None
        self._inflight: Counter = Counter()
        self._health = HealthGate(self.config.failure_threshold)
        self._tenant_health: Dict[str, HealthGate] = {}
        self._stats = _ServingStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._worker_task is not None

    async def start(self) -> "ServingEngine":
        """Spawn the batching worker on the running event loop."""
        if self._stopped:
            raise EngineStopped("serving engine was stopped; build a new one")
        if self._worker_task is None:
            self._loop = asyncio.get_running_loop()
            self._started_at = self._loop.time()
            self._worker_task = self._loop.create_task(
                self._worker(), name="repro-serving-worker")
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the worker; drain (default) or fail whatever is queued."""
        task, self._worker_task = self._worker_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._stopped = True
        if drain:
            while self._queue:
                self._flush()
        else:
            stopped = EngineStopped("serving engine stopped before execution")
            while self._queue:
                request = self._queue.popleft()
                if not request.future.done():
                    request.future.set_exception(stopped)

    async def __aenter__(self) -> "ServingEngine":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    async def submit(self, tenant: str, op: str, ciphertext: Ciphertext,
                     operand: Optional[Ciphertext] = None, *,
                     values: Optional[Sequence] = None, steps: int = 0,
                     rescale: bool = True) -> Ciphertext:
        """Submit one request and await its result."""
        return await self.submit_nowait(tenant, op, ciphertext, operand,
                                        values=values, steps=steps,
                                        rescale=rescale)

    def submit_nowait(self, tenant: str, op: str, ciphertext: Ciphertext,
                      operand: Optional[Ciphertext] = None, *,
                      values: Optional[Sequence] = None, steps: int = 0,
                      rescale: bool = True) -> "asyncio.Future":
        """Validate, admit and enqueue one request; returns its future.

        Raises an admission rejection (queue full, tenant busy, health
        gated, engine stopped) or a request-scoped validation error
        (unknown tenant/operation, malformed operands) synchronously;
        once a future is returned, the request is queued.
        """
        if self._stopped:
            raise EngineStopped("serving engine is stopped")
        keys = self._validate(tenant, op, ciphertext, operand, values)
        config = self.config
        if len(self._queue) >= config.max_queue_depth:
            self._stats.rejected += 1
            raise QueueFull(
                "admission queue is full (%d requests)" % config.max_queue_depth)
        limit = config.tenant_inflight_limit
        if limit is not None and self._inflight[tenant] >= limit:
            self._stats.rejected += 1
            raise TenantBusy(
                "tenant %r already has %d requests in flight" % (tenant, limit))
        tenant_gate = self._gate_for(tenant)
        if not self._health.peek():
            self._stats.rejected += 1
            raise ServiceUnavailable(
                "engine gated after %d consecutive executor failures"
                % self._health.consecutive_failures)
        if not tenant_gate.peek():
            self._stats.rejected += 1
            raise ServiceUnavailable(
                "tenant %r gated after %d consecutive executor failures"
                % (tenant, tenant_gate.consecutive_failures))
        self._health.admit()
        tenant_gate.admit()

        loop = self._loop if self._loop is not None else asyncio.get_running_loop()
        request = OpRequest(
            tenant=tenant, op=op, ciphertext=ciphertext, operand=operand,
            values=values, steps=steps % self.fhe.slot_count,
            rescale=bool(rescale) if op in (OpName.MULTIPLY,
                                            OpName.MULTIPLY_PLAIN) else False,
            keys=keys, future=loop.create_future(), enqueued_at=loop.time(),
        )
        self._queue.append(request)
        self._inflight[tenant] += 1
        request.future.add_done_callback(
            lambda _future, t=tenant: self._inflight.__setitem__(
                t, self._inflight[t] - 1))
        self._stats.submitted += 1
        self._work.set()
        return request.future

    # Convenience wrappers: one per served operation.
    async def add(self, tenant: str, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        return await self.submit(tenant, OpName.ADD, lhs, rhs)

    async def multiply(self, tenant: str, lhs: Ciphertext, rhs: Ciphertext,
                       *, rescale: bool = True) -> Ciphertext:
        return await self.submit(tenant, OpName.MULTIPLY, lhs, rhs,
                                 rescale=rescale)

    async def multiply_plain(self, tenant: str, ciphertext: Ciphertext,
                             values: Sequence, *, rescale: bool = True) -> Ciphertext:
        return await self.submit(tenant, OpName.MULTIPLY_PLAIN, ciphertext,
                                 values=values, rescale=rescale)

    async def rescale(self, tenant: str, ciphertext: Ciphertext) -> Ciphertext:
        return await self.submit(tenant, OpName.RESCALE, ciphertext)

    async def rotate(self, tenant: str, ciphertext: Ciphertext,
                     steps: int) -> Ciphertext:
        return await self.submit(tenant, OpName.ROTATE, ciphertext, steps=steps)

    async def conjugate(self, tenant: str, ciphertext: Ciphertext) -> Ciphertext:
        return await self.submit(tenant, OpName.CONJUGATE, ciphertext)

    async def bootstrap(self, tenant: str, ciphertext: Ciphertext) -> Ciphertext:
        """Refresh one exhausted ciphertext; concurrent refreshes fuse."""
        return await self.submit(tenant, OpName.BOOTSTRAP, ciphertext)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self, tenant: str, op: str, ciphertext: Ciphertext,
                  operand: Optional[Ciphertext],
                  values: Optional[Sequence]) -> TenantKeys:
        if op not in OpName.ALL:
            raise UnknownOperation(
                "unknown operation %r; served: %s" % (op, ", ".join(OpName.ALL)))
        if not isinstance(ciphertext, Ciphertext):
            raise TypeError("primary operand must be a Ciphertext, got %r"
                            % type(ciphertext).__name__)
        if op in OpName.BINARY:
            if not isinstance(operand, Ciphertext):
                raise TypeError("%s needs a second Ciphertext operand" % op)
        elif operand is not None:
            raise TypeError("%s takes no second ciphertext operand" % op)
        if op == OpName.MULTIPLY_PLAIN and values is None:
            raise TypeError("multiply_plain needs a slot-value vector")
        return self.registry.get(tenant)

    def _gate_for(self, tenant: str) -> HealthGate:
        gate = self._tenant_health.get(tenant)
        if gate is None:
            gate = HealthGate(self.config.failure_threshold, name=tenant)
            self._tenant_health[tenant] = gate
        return gate

    # ------------------------------------------------------------------
    # Worker: gather → coalesce → fused launches → resolve futures
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            if not self._queue:
                self._work.clear()
                await self._work.wait()
            await self._gather()
            self._flush()

    async def _gather(self) -> None:
        """Linger until the batch is full, quiet, or out of time."""
        loop = self._loop
        config = self.config
        deadline = loop.time() + config.max_linger
        target = self._flush_target()
        previous = -1
        while len(self._queue) < target:
            if len(self._queue) != previous:
                # New arrivals: one event-loop pass lets every runnable
                # client coroutine enqueue before we look again.
                previous = len(self._queue)
                await asyncio.sleep(0)
                continue
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            self._work.clear()
            try:
                await asyncio.wait_for(
                    self._work.wait(),
                    timeout=min(config.quiet_window, remaining) or remaining)
            except asyncio.TimeoutError:
                break        # nothing new within the quiet window: flush

    def _flush_target(self) -> int:
        requested = self.config.max_batch or self.fhe.parameters.batch_size
        plan = self.scheduler.plan(self.fhe.context.ring_degree,
                                   self.fhe.context.max_level + 1,
                                   requested=requested)
        return max(1, plan.batch_size)

    def _chunk_size(self, request: OpRequest) -> int:
        requested = self.config.max_batch or self.fhe.parameters.batch_size
        plan = self.scheduler.plan(self.fhe.context.ring_degree,
                                   request.ciphertext.level + 1,
                                   requested=requested)
        return max(1, plan.batch_size)

    def _flush(self) -> None:
        """Drain the queue into coalesced, scheduler-sized fused launches."""
        if not self._queue:
            return
        requests = list(self._queue)
        self._queue.clear()
        groups: Dict[tuple, List[OpRequest]] = {}
        for request in requests:
            groups.setdefault(request.coalesce_key(), []).append(request)
        for members in groups.values():
            size = self._chunk_size(members[0])
            for start in range(0, len(members), size):
                self._execute(members[start:start + size])

    def _execute(self, chunk: List[OpRequest]) -> None:
        """Run one coalesced chunk and settle its futures and health."""
        tenants = {request.tenant for request in chunk}
        try:
            results = self._executor(chunk[0].op, chunk)
        except _REQUEST_ERRORS as exc:
            # Bad operands fail their own group only; executor health is
            # not implicated, but booked probe slots must come back.
            self._stats.request_errors += len(chunk)
            self._release_probes(tenants)
            self._settle_errors(chunk, exc)
        except asyncio.CancelledError:        # never swallow cancellation
            raise
        except Exception as exc:
            self._stats.executor_failures += 1
            self._record_health(tenants, ok=False)
            self._settle_errors(chunk, exc)
        else:
            self._record_health(tenants, ok=True)
            self._stats.record_batch(chunk[0].op, len(chunk))
            for request, result in zip(chunk, results):
                if not request.future.done():
                    request.future.set_result(result)

    def _run_op(self, op: str, chunk: List[OpRequest]) -> Sequence[Ciphertext]:
        """Execute one coalesced chunk as fused batched-evaluator launches."""
        evaluator = self.fhe.batched_evaluator
        streams = [request.ciphertext for request in chunk]
        keys = chunk[0].keys
        if op == OpName.ADD:
            return evaluator.add(streams, [r.operand for r in chunk])
        if op == OpName.MULTIPLY:
            operands = [r.operand for r in chunk]
            if chunk[0].rescale:
                return evaluator.multiply_and_rescale(
                    streams, operands, keys.relinearization_key)
            return evaluator.multiply(streams, operands,
                                      keys.relinearization_key)
        if op == OpName.MULTIPLY_PLAIN:
            plaintexts = [
                request.keys.encryptor.encode(request.values,
                                              level=request.ciphertext.level)
                for request in chunk
            ]
            products = evaluator.multiply_plain(streams, plaintexts)
            if chunk[0].rescale:
                products = evaluator.rescale(products)
            return products
        if op == OpName.RESCALE:
            return evaluator.rescale(streams)
        if op == OpName.ROTATE:
            self.registry.ensure_rotation_keys(keys, [chunk[0].steps])
            return evaluator.rotate(streams, chunk[0].steps, keys.rotation_keys)
        if op == OpName.CONJUGATE:
            return evaluator.conjugate(streams, keys.rotation_keys)
        if op == OpName.BOOTSTRAP:
            bootstrapper = self.fhe.bootstrapper
            self.registry.ensure_rotation_keys(
                keys, bootstrapper.required_rotation_steps())
            return bootstrapper.bootstrap_many(
                streams, evaluator, keys.encryptor,
                keys.relinearization_key, keys.rotation_keys)
        raise UnknownOperation("unknown operation %r" % op)   # pragma: no cover

    # ------------------------------------------------------------------
    def _record_health(self, tenants: Set[str], *, ok: bool) -> None:
        gates = [self._health] + [self._gate_for(t) for t in tenants]
        for gate in gates:
            gate.record_success() if ok else gate.record_failure()

    def _release_probes(self, tenants: Set[str]) -> None:
        self._health.release_probe()
        for tenant in tenants:
            self._gate_for(tenant).release_probe()

    @staticmethod
    def _settle_errors(chunk: List[OpRequest], exc: BaseException) -> None:
        for request in chunk:
            if not request.future.done():
                request.future.set_exception(exc)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def health(self) -> HealthGate:
        """The engine-wide availability gate."""
        return self._health

    def tenant_health(self, tenant: str) -> HealthGate:
        return self._gate_for(tenant)

    def diagnostics(self) -> Dict[str, object]:
        """One snapshot of every operational signal the engine tracks."""
        stats = self._stats
        counter = self.fhe.kernel_counter
        elapsed = None
        if self._started_at is not None and self._loop is not None:
            elapsed = max(self._loop.time() - self._started_at, 1e-9)
        return {
            "running": self.running,
            "backend": self.fhe.compute_backend,
            "queue_depth": len(self._queue),
            "flush_target": self._flush_target(),
            "inflight": {tenant: count for tenant, count
                         in self._inflight.items() if count},
            "tenants": len(self.registry),
            "health": {
                "engine": self._health.snapshot(),
                "tenants": {tenant: gate.snapshot() for tenant, gate
                            in self._tenant_health.items()},
            },
            "requests": {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "rejected": stats.rejected,
                "request_errors": stats.request_errors,
                "executor_failures": stats.executor_failures,
            },
            "batches": {
                "executed": stats.batches,
                "histogram": dict(stats.batch_sizes),
                "per_op": dict(stats.per_op),
                "mean_size": stats.mean_batch_size,
                "coalesce_ratio": stats.coalesce_ratio,
            },
            "throughput": {
                "uptime_s": elapsed,
                "ops_per_second": (stats.completed / elapsed
                                   if elapsed else None),
            },
            "kernels": counter.snapshot(),
            "transfers": dict(counter.transfers),
        }


@dataclass
class _ServingStats:
    """Counters behind :meth:`ServingEngine.diagnostics`."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    request_errors: int = 0
    executor_failures: int = 0
    batches: int = 0
    batch_sizes: Counter = field(default_factory=Counter)
    per_op: Counter = field(default_factory=Counter)

    def record_batch(self, op: str, size: int) -> None:
        self.batches += 1
        self.batch_sizes[size] += 1
        self.per_op[op] += size
        self.completed += size

    @property
    def mean_batch_size(self) -> float:
        return self.completed / self.batches if self.batches else 0.0

    @property
    def coalesce_ratio(self) -> float:
        """Requests executed per fused flush (1.0 = no coalescing won)."""
        return self.mean_batch_size
