"""Async multi-tenant serving layer over the fused ``(B, L, N)`` substrate.

Concurrent encrypted-operation requests from many tenants are admitted
into a bounded queue, coalesced by compatibility (operation, key-bundle
identity, prime chain / level / scale / domain) and executed as B-fused
:class:`~repro.ckks.batched_evaluator.BatchedEvaluator` launches sized by
the :class:`~repro.batching.scheduler.BatchScheduler` — dynamic batching,
as GPU inference servers practice it, for homomorphic operations.

Entry points: ``TensorFheContext.create_serving_engine()`` or
:class:`ServingEngine` directly.
"""

from .engine import ServingConfig, ServingEngine
from .errors import (
    EngineStopped,
    QueueFull,
    RejectedRequest,
    ServiceUnavailable,
    ServingError,
    TenantBusy,
    UnknownOperation,
    UnknownTenant,
)
from .health import HealthGate
from .keys import KeyRegistry, TenantKeys
from .request import OpName, OpRequest

__all__ = [
    "ServingEngine",
    "ServingConfig",
    "OpName",
    "OpRequest",
    "KeyRegistry",
    "TenantKeys",
    "HealthGate",
    "ServingError",
    "RejectedRequest",
    "QueueFull",
    "TenantBusy",
    "ServiceUnavailable",
    "EngineStopped",
    "UnknownTenant",
    "UnknownOperation",
]
