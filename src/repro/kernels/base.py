"""Kernel instrumentation: names and invocation counters.

The paper's hierarchical reconstruction (Table II) decomposes every CKKS
operation into seven reusable arithmetic kernels.  The evaluator in this
library routes all polynomial work through the functions in this package,
and a :class:`KernelCounter` records how often each kernel ran and how many
limb-vectors it touched.  The tests use the counters to verify the Table II
composition, and the performance model uses the same kernel taxonomy.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..backend.residency import track_transfers

__all__ = ["KernelName", "KernelCounter", "KernelContext"]


class KernelName:
    """Canonical kernel identifiers (paper Table II)."""

    NTT = "NTT"
    INTT = "INTT"
    HADAMARD = "Hada-Mult"
    ELE_ADD = "Ele-Add"
    ELE_SUB = "Ele-Sub"
    FROBENIUS = "FrobeniusMap"
    CONJUGATE = "Conjugate"
    CONV = "Conv"

    ALL = (NTT, INTT, HADAMARD, ELE_ADD, ELE_SUB, FROBENIUS, CONJUGATE, CONV)


@dataclass
class KernelCounter:
    """Counts kernel invocations, limb-vectors and host↔device transfers.

    The ``transfers`` counter records residency-layer crossings (keys
    ``"host_to_device"`` / ``"device_to_host"``, see
    :mod:`repro.backend.residency`): a fused chain that keeps its operands
    device-resident shows zero intermediate transfers here, which is how
    the tests pin the paper's stay-on-device execution model.
    """

    invocations: Counter = field(default_factory=Counter)
    limb_vectors: Counter = field(default_factory=Counter)
    transfers: Counter = field(default_factory=Counter)

    def record(self, kernel: str, limbs: int = 1) -> None:
        """Record one invocation of ``kernel`` touching ``limbs`` limb-vectors."""
        self.invocations[kernel] += 1
        self.limb_vectors[kernel] += limbs

    def record_batch(self, kernel: str, operations: int,
                     limbs_per_operation: int) -> None:
        """Record ``operations`` invocations issued as one fused launch.

        Operation-batched execution fuses many independent operations into
        a single backend launch; the counters still record one invocation
        per batched operation so the instrumentation is independent of how
        the work is fused (matching looped per-operation execution).
        """
        self.invocations[kernel] += operations
        self.limb_vectors[kernel] += operations * limbs_per_operation

    def record_transfer(self, direction: str, count: int = 1) -> None:
        """Record ``count`` host↔device crossings (a transfer sink hook)."""
        self.transfers[direction] += count

    def transfer_total(self) -> int:
        """Total crossings in both directions (0 == fully resident)."""
        return sum(self.transfers.values())

    def reset(self) -> None:
        self.invocations.clear()
        self.limb_vectors.clear()
        self.transfers.clear()

    def snapshot(self) -> Dict[str, int]:
        """A plain dict copy of the invocation counts."""
        return dict(self.invocations)

    def total(self, kernel: str) -> int:
        return self.invocations.get(kernel, 0)

    def merge(self, other: "KernelCounter") -> None:
        self.invocations.update(other.invocations)
        self.limb_vectors.update(other.limb_vectors)
        self.transfers.update(other.transfers)


class KernelContext:
    """Shared state for the kernel layer: the NTT planner and the counters."""

    def __init__(self, planner, counter: Optional[KernelCounter] = None) -> None:
        self.planner = planner
        self.counter = counter if counter is not None else KernelCounter()

    @contextmanager
    def capture(self) -> Iterator[KernelCounter]:
        """Capture the kernels executed inside the ``with`` block.

        The captured counts are *also* accumulated into the context's main
        counter, mirroring a profiler attached to the kernel layer.  The
        block additionally registers the fresh counter as a residency
        transfer sink, so ``fresh.transfers`` reports exactly the
        host↔device crossings the block performed.
        """
        fresh = KernelCounter()
        previous = self.counter
        merged = KernelCounter()
        merged.merge(previous)
        self.counter = fresh
        try:
            with track_transfers(fresh):
                yield fresh
        finally:
            merged.merge(fresh)
            self.counter = merged
