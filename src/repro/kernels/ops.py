"""The seven reusable arithmetic kernels of the hierarchical reconstruction.

Every function takes a :class:`~repro.kernels.base.KernelContext` (NTT
planner + counters) and :class:`~repro.rns.poly.RnsPolynomial` operands,
performs the operation on all limbs and records the invocation.  The CKKS
evaluator composes these kernels exactly as Table II of the paper does, so
the instrumentation reproduces the paper's operation→kernel mapping.

Every kernel executes limb-batched: one vectorised launch covers the whole
``(limbs, N)`` residue matrix (the NTT/INTT kernels resolve to a single
batched engine call through the planner).  The counters still record
``limb_count`` limb-vectors per invocation, so the instrumentation is
independent of how the work is fused.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..numtheory.modular import moduli_column
from ..rns.conv import BasisConverter
from ..rns.poly import PolyDomain, RnsPolynomial
from .automorphism import apply_automorphism_coeff, apply_automorphism_eval
from .base import KernelContext, KernelName

__all__ = [
    "ntt",
    "intt",
    "hadamard_multiply",
    "element_add",
    "element_subtract",
    "frobenius_map",
    "conjugate",
    "basis_convert",
]


def ntt(context: KernelContext, polynomial: RnsPolynomial) -> RnsPolynomial:
    """Forward NTT of every limb (coefficient → evaluation domain)."""
    if polynomial.domain == PolyDomain.EVALUATION:
        return polynomial.copy()
    context.counter.record(KernelName.NTT, polynomial.limb_count)
    return polynomial.to_evaluation(context.planner)


def intt(context: KernelContext, polynomial: RnsPolynomial) -> RnsPolynomial:
    """Inverse NTT of every limb (evaluation → coefficient domain)."""
    if polynomial.domain == PolyDomain.COEFFICIENT:
        return polynomial.copy()
    context.counter.record(KernelName.INTT, polynomial.limb_count)
    return polynomial.to_coefficient(context.planner)


def hadamard_multiply(context: KernelContext, lhs: RnsPolynomial,
                      rhs: RnsPolynomial) -> RnsPolynomial:
    """Element-wise product of two evaluation-domain polynomials (Hada-Mult)."""
    context.counter.record(KernelName.HADAMARD, lhs.limb_count)
    return lhs.hadamard(rhs)


def element_add(context: KernelContext, lhs: RnsPolynomial,
                rhs: RnsPolynomial) -> RnsPolynomial:
    """Element-wise addition (Ele-Add)."""
    context.counter.record(KernelName.ELE_ADD, lhs.limb_count)
    return lhs.add(rhs)


def element_subtract(context: KernelContext, lhs: RnsPolynomial,
                     rhs: RnsPolynomial) -> RnsPolynomial:
    """Element-wise subtraction (Ele-Sub)."""
    context.counter.record(KernelName.ELE_SUB, lhs.limb_count)
    return lhs.subtract(rhs)


def _apply_automorphism(polynomial: RnsPolynomial, galois_element: int) -> RnsPolynomial:
    """Automorphism of a whole residue matrix as one vectorised launch."""
    if polynomial.domain == PolyDomain.COEFFICIENT:
        residues = apply_automorphism_coeff(polynomial.residues, galois_element,
                                            moduli_column(polynomial.moduli))
    else:
        residues = apply_automorphism_eval(polynomial.residues, galois_element)
    return RnsPolynomial(polynomial.ring_degree, polynomial.moduli,
                         residues, polynomial.domain)


def frobenius_map(context: KernelContext, polynomial: RnsPolynomial,
                  galois_element: int) -> RnsPolynomial:
    """Apply the Galois automorphism ``X -> X^g`` (FrobeniusMap kernel)."""
    context.counter.record(KernelName.FROBENIUS, polynomial.limb_count)
    return _apply_automorphism(polynomial, galois_element)


def conjugate(context: KernelContext, polynomial: RnsPolynomial) -> RnsPolynomial:
    """Apply complex conjugation ``X -> X^(2N-1)`` (Conjugate kernel)."""
    context.counter.record(KernelName.CONJUGATE, polynomial.limb_count)
    return _apply_automorphism(polynomial, 2 * polynomial.ring_degree - 1)


def basis_convert(context: KernelContext, polynomial: RnsPolynomial,
                  target_moduli: Sequence[int],
                  converter: Optional[BasisConverter] = None) -> RnsPolynomial:
    """Fast basis conversion (Conv kernel).

    A prebuilt :class:`BasisConverter` may be supplied to reuse its
    precomputed constants (the key-switching path does this).
    """
    context.counter.record(KernelName.CONV, polynomial.limb_count)
    if converter is None:
        converter = BasisConverter(polynomial.moduli, tuple(target_moduli))
    return converter.convert(polynomial)
