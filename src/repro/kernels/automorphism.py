"""Galois automorphisms of the ring ``Z_q[X]/(X^N + 1)``.

``apply_automorphism_coeff`` maps ``a(X) -> a(X^g)`` on coefficient vectors
(the FrobeniusMap/Conjugate kernels of the paper operate on the same ring
automorphism; in the NTT domain it becomes the pure index permutation the
paper describes, implemented by ``evaluation_permutation``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

__all__ = [
    "galois_element_for_rotation",
    "CONJUGATION_EXPONENT",
    "apply_automorphism_coeff",
    "evaluation_permutation",
    "apply_automorphism_eval",
]

#: ``X -> X^(2N-1)`` is complex conjugation on the CKKS slots.
CONJUGATION_EXPONENT = -1


def galois_element_for_rotation(steps: int, ring_degree: int) -> int:
    """Galois element ``5^steps mod 2N`` implementing a rotation by ``steps`` slots."""
    modulus = 2 * ring_degree
    return pow(5, steps % (ring_degree // 2), modulus)


@lru_cache(maxsize=256)
def _coefficient_permutation(ring_degree: int, galois_element: int) -> Tuple[np.ndarray, np.ndarray]:
    """Precompute target indices and sign flips for a coefficient automorphism."""
    if galois_element % 2 == 0:
        raise ValueError("Galois elements must be odd")
    galois_element %= 2 * ring_degree
    indices = np.arange(ring_degree, dtype=np.int64)
    raw_targets = (indices * galois_element) % (2 * ring_degree)
    wraps = raw_targets >= ring_degree
    targets = np.where(wraps, raw_targets - ring_degree, raw_targets)
    signs = np.where(wraps, -1, 1).astype(np.int64)
    return targets, signs


def apply_automorphism_coeff(coefficients: np.ndarray, galois_element: int,
                             modulus) -> np.ndarray:
    """Apply ``a(X) -> a(X^g)`` to coefficient vectors modulo ``modulus``.

    ``coefficients`` may carry leading batch axes (the RNS limb axis of a
    whole polynomial); ``modulus`` is then an array broadcastable against
    it — e.g. a ``(limbs, 1)`` column of per-limb primes — so the entire
    residue matrix is permuted and reduced in one launch.
    """
    coefficients = np.asarray(coefficients, dtype=np.int64)
    ring_degree = coefficients.shape[-1]
    targets, signs = _coefficient_permutation(ring_degree, galois_element % (2 * ring_degree))
    out = np.zeros_like(coefficients)
    out[..., targets] = (coefficients * signs) % modulus
    return out


@lru_cache(maxsize=256)
def evaluation_permutation(ring_degree: int, galois_element: int) -> np.ndarray:
    """Index permutation implementing the automorphism in the NTT domain.

    With the natural-order negacyclic NTT, entry ``k`` holds the evaluation
    at ``psi^(2k+1)``.  The automorphism sends that evaluation point to
    ``psi^((2k+1)*g)``, i.e. output ``k`` reads input ``k'`` with
    ``2k'+1 = (2k+1)*g mod 2N``.
    """
    galois_element %= 2 * ring_degree
    if galois_element % 2 == 0:
        raise ValueError("Galois elements must be odd")
    k = np.arange(ring_degree, dtype=np.int64)
    source = (((2 * k + 1) * galois_element) % (2 * ring_degree) - 1) // 2
    return source


def apply_automorphism_eval(values: np.ndarray, galois_element: int) -> np.ndarray:
    """Apply the automorphism to an evaluation-domain (NTT) vector."""
    values = np.asarray(values, dtype=np.int64)
    ring_degree = values.shape[-1]
    permutation = evaluation_permutation(ring_degree, galois_element % (2 * ring_degree))
    return values[..., permutation]
