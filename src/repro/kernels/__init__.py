"""Kernel layer: the paper's seven reusable arithmetic kernels + instrumentation."""

from .automorphism import (
    CONJUGATION_EXPONENT,
    apply_automorphism_coeff,
    apply_automorphism_eval,
    evaluation_permutation,
    galois_element_for_rotation,
)
from .base import KernelContext, KernelCounter, KernelName
from .ops import (
    basis_convert,
    conjugate,
    element_add,
    element_subtract,
    frobenius_map,
    hadamard_multiply,
    intt,
    ntt,
)

__all__ = [
    "KernelName",
    "KernelCounter",
    "KernelContext",
    "ntt",
    "intt",
    "hadamard_multiply",
    "element_add",
    "element_subtract",
    "frobenius_map",
    "conjugate",
    "basis_convert",
    "apply_automorphism_coeff",
    "apply_automorphism_eval",
    "evaluation_permutation",
    "galois_element_for_rotation",
    "CONJUGATION_EXPONENT",
]
