"""Workload-level performance model (Tables VII/X/XI, Figures 12/13).

Combines the per-operation model with the workload operation mixes: the
time of a workload is the sum over operations of ``count * amortised
latency`` (amortisation over the workload's batch size), bootstraps are
priced from their own operation mix, and the same accounting yields the
kernel-level and operation-level breakdowns of Figures 12 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..gpu.spec import A100, GpuSpec
from ..workloads.base import OperationCounts, WorkloadSpec
from ..workloads.catalog import BOOTSTRAP_OPERATIONS
from .cost_model import CostModelConfig
from .energy import EnergyModel
from .kernel_workloads import NttVariant
from .operation_model import ModelParameters, OperationModel

__all__ = ["WorkloadTimings", "WorkloadModel"]


@dataclass
class WorkloadTimings:
    """Modelled timing results of one workload run."""

    name: str
    total_seconds: float
    operation_seconds: Dict[str, float]
    kernel_seconds: Dict[str, float]
    bootstrap_seconds: float
    energy_joules: float

    def operation_breakdown(self) -> Dict[str, float]:
        total = sum(self.operation_seconds.values()) or 1.0
        return {op: t / total for op, t in self.operation_seconds.items()}

    def kernel_breakdown(self) -> Dict[str, float]:
        total = sum(self.kernel_seconds.values()) or 1.0
        return {kernel: t / total for kernel, t in self.kernel_seconds.items()}


class WorkloadModel:
    """Prices full workloads on a GPU using the operation model."""

    def __init__(self, *, gpu: GpuSpec = A100, variant: str = NttVariant.GEMM_TCU,
                 cost_config: Optional[CostModelConfig] = None,
                 power_watts: float = 264.0) -> None:
        self.gpu = gpu
        self.variant = variant
        self.cost_config = cost_config
        self.energy_model = EnergyModel(power_watts)

    # ------------------------------------------------------------------
    def operation_model_for(self, workload: WorkloadSpec) -> OperationModel:
        parameters = ModelParameters(
            ring_degree=workload.ring_degree,
            level_count=workload.level_count,
            dnum=workload.dnum,
            batch_size=workload.batch_size,
        )
        return OperationModel(parameters, gpu=self.gpu, variant=self.variant,
                              cost_config=self.cost_config)

    # ------------------------------------------------------------------
    def evaluate(self, workload: WorkloadSpec) -> WorkloadTimings:
        """Model the full execution of ``workload``."""
        model = self.operation_model_for(workload)
        counts = workload.total_operations()
        bootstrap_counts = BOOTSTRAP_OPERATIONS.scaled(workload.bootstraps_per_run)

        operation_seconds: Dict[str, float] = {}
        kernel_seconds: Dict[str, float] = {}
        for operation, count in self._merge(counts, bootstrap_counts).items():
            if count == 0:
                continue
            per_op = model.operation_time(operation)
            elapsed = per_op * count
            operation_seconds[operation] = elapsed
            for kernel, share in model.kernel_breakdown(operation).items():
                kernel_seconds[kernel] = kernel_seconds.get(kernel, 0.0) + elapsed * share

        bootstrap_seconds = sum(
            model.operation_time(operation) * count
            for operation, count in bootstrap_counts.as_dict().items()
        )
        total = sum(operation_seconds.values())
        return WorkloadTimings(
            name=workload.name,
            total_seconds=total,
            operation_seconds=operation_seconds,
            kernel_seconds=kernel_seconds,
            bootstrap_seconds=bootstrap_seconds,
            energy_joules=self.energy_model.joules_per_iteration(
                total / max(1, workload.iterations)),
        )

    def bootstrap_time(self, workload: WorkloadSpec, batch_size: Optional[int] = None) -> float:
        """Seconds for one full bootstrap batch (Table VII configuration)."""
        model = self.operation_model_for(workload)
        total = 0.0
        for operation, count in BOOTSTRAP_OPERATIONS.as_dict().items():
            if count:
                total += model.operation_time(operation) * count
        batch = batch_size if batch_size is not None else workload.batch_size
        return total * batch

    # ------------------------------------------------------------------
    @staticmethod
    def _merge(*counts: OperationCounts) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for count in counts:
            for operation, value in count.as_dict().items():
                merged[operation] = merged.get(operation, 0) + value
        return merged
