"""Performance and energy models plus the literature baselines."""

from .calibration import MeasuredPoint, MeasuredThroughput, default_results_dir
from .cost_model import CostModelConfig, GpuCostModel
from .energy import EnergyModel
from .kernel_workloads import (
    KernelWorkload,
    NttVariant,
    automorphism_workload,
    conv_workload,
    elementwise_workload,
    hadamard_workload,
    ntt_workload,
)
from .operation_model import OPERATIONS, ModelParameters, OperationModel
from .report import format_breakdown, format_comparison, format_table, ratio
from .workload_model import WorkloadModel, WorkloadTimings
from . import literature

__all__ = [
    "MeasuredPoint",
    "MeasuredThroughput",
    "default_results_dir",
    "KernelWorkload",
    "NttVariant",
    "ntt_workload",
    "hadamard_workload",
    "elementwise_workload",
    "automorphism_workload",
    "conv_workload",
    "CostModelConfig",
    "GpuCostModel",
    "ModelParameters",
    "OperationModel",
    "OPERATIONS",
    "WorkloadModel",
    "WorkloadTimings",
    "EnergyModel",
    "literature",
    "format_table",
    "format_comparison",
    "format_breakdown",
    "ratio",
]
