"""Energy model (paper Table XI).

The paper reports a stable 264 W GPU power draw during TensorFHE execution
(high utilisation keeps the power flat) and derives operations-per-watt for
the CKKS operations and joules-per-iteration for the workloads.  The model
here does the same arithmetic on top of the modelled execution times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["EnergyModel"]


@dataclass
class EnergyModel:
    """Constant-power energy accounting."""

    power_watts: float = 264.0

    def operations_per_watt(self, operation_time_seconds: float) -> float:
        """Throughput per watt for an operation of the given amortised latency."""
        if operation_time_seconds <= 0:
            raise ValueError("operation time must be positive")
        throughput = 1.0 / operation_time_seconds
        return throughput / self.power_watts

    def joules_per_iteration(self, iteration_time_seconds: float) -> float:
        """Energy of one workload iteration."""
        if iteration_time_seconds < 0:
            raise ValueError("iteration time must be non-negative")
        return iteration_time_seconds * self.power_watts

    def table_xi_operations(self, operation_times_seconds: Dict[str, float]) -> Dict[str, float]:
        """Ops/W for a dict of operation latencies (Table XI upper half)."""
        return {
            operation: self.operations_per_watt(latency)
            for operation, latency in operation_times_seconds.items()
        }
