"""Plain-text table formatting for the benchmark harness.

The benchmarks print the paper's rows next to the modelled/measured rows;
these helpers keep the formatting consistent and compute the ratio columns
so EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_comparison", "ratio", "format_breakdown"]


def ratio(paper_value: Optional[float], measured_value: Optional[float]) -> Optional[float]:
    """``measured / paper`` or ``None`` when either side is missing."""
    if not paper_value or measured_value is None:
        return None
    return measured_value / paper_value


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.2f" % value
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render rows as a fixed-width text table."""
    rows = [list(map(_format_cell, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison(paper: Dict[str, float], measured: Dict[str, float],
                      *, title: Optional[str] = None, unit: str = "") -> str:
    """Two-column paper-vs-measured table with a ratio column."""
    headers = ["item", "paper%s" % (" (%s)" % unit if unit else ""),
               "model%s" % (" (%s)" % unit if unit else ""), "model/paper"]
    rows = []
    for key in paper:
        measured_value = measured.get(key)
        rows.append([key, paper.get(key), measured_value,
                     ratio(paper.get(key), measured_value)])
    return format_table(headers, rows, title=title)


def format_breakdown(breakdown: Dict[str, float], title: Optional[str] = None) -> str:
    """Render a fraction breakdown (e.g. kernel shares) as percentages."""
    rows = [[name, 100.0 * share] for name, share in
            sorted(breakdown.items(), key=lambda item: -item[1])]
    return format_table(["component", "percent"], rows, title=title)
