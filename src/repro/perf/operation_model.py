"""Operation-level performance model (Tables VI/VIII/IX, Figures 5/11/14/15).

``OperationModel`` translates one CKKS operation (HMULT, HROTATE, RESCALE,
HADD, CMULT, plus the NTT kernel itself) into the kernel workloads of the
hierarchical reconstruction, prices them with :class:`GpuCostModel` and
reports amortised per-operation latency and the kernel-level breakdown.
The kernel composition follows Algorithms 1–6 of the paper with
NTT-domain-resident ciphertexts and the generalized (dnum) key switching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..gpu.spec import A100, GpuSpec
from .calibration import MeasuredThroughput
from .cost_model import CostModelConfig, GpuCostModel
from .kernel_workloads import (
    KernelWorkload,
    NttVariant,
    automorphism_workload,
    conv_workload,
    elementwise_workload,
    hadamard_workload,
    ntt_workload,
)

__all__ = ["ModelParameters", "OperationModel", "OPERATIONS"]

OPERATIONS = ("HMULT", "HROTATE", "RESCALE", "HADD", "CMULT")


@dataclass(frozen=True)
class ModelParameters:
    """CKKS parameters as the performance model sees them."""

    ring_degree: int
    level_count: int          # L + 1 active primes
    dnum: int = 5
    batch_size: int = 128

    @property
    def alpha(self) -> int:
        """Primes per key-switching decomposition group."""
        return math.ceil(self.level_count / self.dnum)

    @property
    def special_count(self) -> int:
        """Special primes; the GKS constraint requires K >= alpha."""
        return self.alpha

    @property
    def extended_limbs(self) -> int:
        return self.level_count + self.special_count


class OperationModel:
    """Per-operation latency and kernel breakdown for one configuration."""

    def __init__(self, parameters: ModelParameters, *, gpu: GpuSpec = A100,
                 variant: str = NttVariant.GEMM_TCU,
                 cost_config: Optional[CostModelConfig] = None,
                 batched: bool = True,
                 measured: Optional[MeasuredThroughput] = None) -> None:
        self.parameters = parameters
        self.gpu = gpu
        self.variant = variant
        self.batched = batched
        # A measured calibration recalibrates the cost constants (the
        # batched/unbatched efficiency ratio and the batching knee) unless
        # an explicit config pins them; see CostModelConfig.from_measurements.
        if cost_config is None and measured is not None and measured:
            cost_config = CostModelConfig.from_measurements(measured)
        self.measured = measured
        self.cost_model = GpuCostModel(gpu, cost_config)

    @classmethod
    def calibrated(cls, parameters: ModelParameters,
                   results_dir: Optional[str] = None,
                   **kwargs) -> "OperationModel":
        """A model recalibrated against the committed benchmark JSONs."""
        measured = MeasuredThroughput.from_results_dir(results_dir)
        return cls(parameters, measured=measured, **kwargs)

    # ------------------------------------------------------------------
    # Kernel composition of each operation (per single operation)
    # ------------------------------------------------------------------
    def kernel_workloads(self, operation: str) -> List[KernelWorkload]:
        """Kernel workloads of one operation (batch size 1)."""
        operation = operation.upper()
        p = self.parameters
        n = p.ring_degree
        limbs = p.level_count
        extended = p.extended_limbs
        special = p.special_count
        dnum = p.dnum
        if operation == "NTT":
            return [ntt_workload(n, 1, 1, self.variant)]
        if operation == "HADD":
            return [elementwise_workload("Ele-Add", n, limbs, 1).scaled(2)]
        if operation == "CMULT":
            return [hadamard_workload(n, limbs, 1).scaled(2),
                    elementwise_workload("Ele-Add", n, limbs, 1)]
        if operation == "RESCALE":
            return [
                ntt_workload(n, 2, 1, self.variant),                    # INTT of dropped limb (x2 comps)
                ntt_workload(n, 2, 1, self.variant),                    # NTT back after reduction
                elementwise_workload("Ele-Sub", n, limbs, 1).scaled(2),
            ]
        if operation == "HMULT":
            workloads = [
                hadamard_workload(n, limbs, 1).scaled(4),               # d0, d1 (x2), d2
                elementwise_workload("Ele-Add", n, limbs, 1).scaled(3),
                ntt_workload(n, limbs, 1, self.variant),                # INTT(d2)
            ]
            workloads.extend(self._keyswitch_workloads())
            return workloads
        if operation == "HROTATE":
            workloads = [
                automorphism_workload("FrobeniusMap", n, limbs, 1).scaled(2),
                ntt_workload(n, limbs, 1, self.variant),                # INTT of rotated c1
                elementwise_workload("Ele-Add", n, limbs, 1),
            ]
            workloads.extend(self._keyswitch_workloads())
            return workloads
        if operation == "CONJUGATE":
            workloads = [
                automorphism_workload("Conjugate", n, limbs, 1).scaled(2),
                ntt_workload(n, limbs, 1, self.variant),
                elementwise_workload("Ele-Add", n, limbs, 1),
            ]
            workloads.extend(self._keyswitch_workloads())
            return workloads
        raise ValueError("unknown operation %r" % operation)

    def _keyswitch_workloads(self) -> List[KernelWorkload]:
        """Kernels of one generalized key switch (Algorithm 1)."""
        p = self.parameters
        n = p.ring_degree
        limbs = p.level_count
        extended = p.extended_limbs
        special = p.special_count
        dnum = p.dnum
        alpha = p.alpha
        return [
            # ModUp: Conv of each slice into the extended basis, then NTT.
            conv_workload(n, alpha, extended - alpha, dnum),
            ntt_workload(n, extended, dnum, self.variant),
            # Inner product against the dnum key pairs.
            hadamard_workload(n, extended, 1).scaled(2 * dnum),
            elementwise_workload("Ele-Add", n, extended, 1).scaled(2 * max(1, dnum - 1)),
            # Back to coefficients and ModDown (Conv + Ele-Sub + scale).
            ntt_workload(n, extended, 2, self.variant),
            conv_workload(n, special, limbs, 2),
            elementwise_workload("Ele-Sub", n, limbs, 1).scaled(2),
            # Return the two components to the NTT domain.
            ntt_workload(n, limbs, 2, self.variant),
        ]

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def operation_time(self, operation: str) -> float:
        """Amortised seconds per operation (batch of ``batch_size`` ops)."""
        batch = self.parameters.batch_size if self.batched else 1
        total = 0.0
        for workload in self.kernel_workloads(operation):
            batched_workload = KernelWorkload(
                kernel=workload.kernel,
                cuda_int_ops=workload.cuda_int_ops * batch,
                tcu_macs=workload.tcu_macs * batch,
                bytes_moved=workload.bytes_moved * batch,
                launches=workload.launches,
                stall_bound=workload.stall_bound,
            )
            total += self.cost_model.kernel_time(batched_workload, batch_size=batch)
        return total / batch

    def operation_time_us(self, operation: str) -> float:
        """Amortised microseconds per operation."""
        return self.operation_time(operation) * 1e6

    def throughput_ops_per_second(self, operation: str) -> float:
        """Operations per second (the Table VIII metric)."""
        return 1.0 / self.operation_time(operation)

    # ------------------------------------------------------------------
    def kernel_breakdown(self, operation: str) -> Dict[str, float]:
        """Fraction of the operation's time spent in each kernel (Fig. 11)."""
        batch = self.parameters.batch_size if self.batched else 1
        times: Dict[str, float] = {}
        for workload in self.kernel_workloads(operation):
            batched_workload = KernelWorkload(
                kernel=workload.kernel,
                cuda_int_ops=workload.cuda_int_ops * batch,
                tcu_macs=workload.tcu_macs * batch,
                bytes_moved=workload.bytes_moved * batch,
                launches=workload.launches,
                stall_bound=workload.stall_bound,
            )
            elapsed = self.cost_model.kernel_time(batched_workload, batch_size=batch)
            times[workload.kernel] = times.get(workload.kernel, 0.0) + elapsed
        total = sum(times.values()) or 1.0
        return {kernel: elapsed / total for kernel, elapsed in sorted(times.items())}

    def all_operation_times_us(self) -> Dict[str, float]:
        """Convenience: Table VI row for this configuration."""
        return {operation: self.operation_time_us(operation) for operation in OPERATIONS}
