"""Analytical GPU cost model: kernel workloads → execution time.

Every kernel launch is modelled with a roofline: the compute time is the
arithmetic divided by the relevant peak throughput (CUDA cores for INT32
work, tensor cores for INT8 MACs) scaled by an achievable-efficiency
factor, the memory time is the traffic divided by the effective bandwidth,
and the launch overhead is added per kernel.  The achievable-efficiency
factors are the calibrated part of the model: they capture how far the
respective execution pipelines are from peak for this class of kernels and
are fitted once against the paper's measured A100 numbers (Table VI), then
reused for every experiment, GPU and parameter set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from dataclasses import dataclass, replace

from ..gpu.memory import MemoryTrafficModel
from ..gpu.spec import GpuSpec
from .kernel_workloads import KernelWorkload

if TYPE_CHECKING:
    from .calibration import MeasuredThroughput

__all__ = ["CostModelConfig", "GpuCostModel"]


@dataclass(frozen=True)
class CostModelConfig:
    """Calibrated efficiency constants of the cost model.

    The default values were fitted so that the modelled TensorFHE / A100
    operation latencies land close to the paper's Table VI; the same
    constants are used for every GPU and every variant (only the *peaks*
    change between GPUs), so relative comparisons are model-driven.
    """

    #: Fraction of peak INT32 throughput sustained by well-batched kernels.
    cuda_efficiency_batched: float = 0.40
    #: Fraction of peak INT32 throughput without operation batching
    #: (Figure 5: occupancy stays below ~15%).
    cuda_efficiency_unbatched: float = 0.055
    #: Extra derating applied to butterfly-style kernels: the RAW-stall and
    #: modulo overheads of Figure 4 (43% stalled cycles) that the GEMM
    #: formulations avoid.
    butterfly_stall_derating: float = 0.55
    #: Fraction of peak tensor-core INT8 throughput sustained by the
    #: segmented NTT GEMMs (CUTLASS with 16 concurrent streams).
    tcu_efficiency: float = 0.78
    #: Fraction of peak DRAM bandwidth for streaming, layout-optimised access.
    bandwidth_efficiency: float = 0.85
    #: Fixed overhead per kernel launch (seconds).
    launch_overhead_s: float = 4.0e-6
    #: Batch size beyond which kernels count as fully batched.
    batching_threshold: int = 16

    # ------------------------------------------------------------------
    @classmethod
    def from_measurements(cls, measured: "MeasuredThroughput",
                          **overrides) -> "CostModelConfig":
        """A config recalibrated against measured fused-launch speedups.

        The one quantity the committed benchmark JSONs observe directly is
        the ratio between fused (operation-batched) and looped execution of
        the same kernels.  The model encodes that ratio as
        ``cuda_efficiency_batched / cuda_efficiency_unbatched``, so the
        recalibration keeps the batched efficiency (fitted against the
        paper's Table VI) and rederives the *unbatched* efficiency from the
        measured geometric-mean speedup of the op-batching and key-switch
        sweeps.  The measured batching knee also replaces the default
        batching threshold when the sweeps observed one.

        With an empty calibration the default constants are returned
        unchanged; explicit ``overrides`` win over both.
        """
        base = cls()
        updates = {}
        speedup = measured.mean_batched_speedup(source="op_batching")
        if speedup <= 1.0:
            # The sharded scale-out sweep measures multi-process fan-out,
            # not per-kernel occupancy, so it is excluded from the
            # fallback aggregate that rederives the unbatched efficiency.
            speedup = measured.mean_batched_speedup(
                exclude_sources=("sharded",))
        if speedup > 1.0:
            updates["cuda_efficiency_unbatched"] = (
                base.cuda_efficiency_batched / speedup)
        knee = measured.preferred_batch(1 << 12, source="op_batching")
        if knee is not None:
            updates["batching_threshold"] = knee
        updates.update(overrides)
        return replace(base, **updates)


class GpuCostModel:
    """Roofline-style kernel timing for one GPU."""

    def __init__(self, gpu: GpuSpec,
                 config: Optional[CostModelConfig] = None) -> None:
        self.gpu = gpu
        self.config = config or CostModelConfig()
        self.memory_model = MemoryTrafficModel(gpu)

    # ------------------------------------------------------------------
    def kernel_time(self, workload: KernelWorkload, *, batch_size: int = 1,
                    contiguous_bytes: Optional[float] = None) -> float:
        """Seconds needed to execute ``workload`` on this GPU."""
        config = self.config
        batched = batch_size >= config.batching_threshold
        cuda_eff = (config.cuda_efficiency_batched if batched
                    else config.cuda_efficiency_unbatched)
        if workload.stall_bound:
            cuda_eff *= config.butterfly_stall_derating

        compute_time = 0.0
        if workload.cuda_int_ops:
            compute_time += workload.cuda_int_ops / (
                self.gpu.peak_int32_ops_per_second * cuda_eff)
        if workload.tcu_macs:
            if self.gpu.peak_tensor_int8_macs_per_second <= 0:
                raise ValueError(
                    "%s has no tensor cores; use a CUDA-core NTT variant" % self.gpu.name)
            compute_time += workload.tcu_macs / (
                self.gpu.peak_tensor_int8_macs_per_second * config.tcu_efficiency)

        if contiguous_bytes is None:
            bandwidth = (self.gpu.memory_bandwidth_bytes_per_second
                         * config.bandwidth_efficiency)
            memory_time = workload.bytes_moved / bandwidth if workload.bytes_moved else 0.0
        else:
            memory_time = self.memory_model.transfer_time(workload.bytes_moved,
                                                          contiguous_bytes)

        overhead = workload.launches * config.launch_overhead_s
        return max(compute_time, memory_time) + overhead

    # ------------------------------------------------------------------
    def vram_fits(self, bytes_required: float) -> bool:
        """Check whether a working set fits in the GPU's VRAM."""
        return bytes_required <= self.gpu.vram_bytes
