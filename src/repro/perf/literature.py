"""Published baseline numbers the paper compares against.

The paper collects the CPU / PrivFT / 100x / HEAX / ASIC numbers directly
from the cited literature (Section V), and so do we: these dictionaries are
a transcription of Tables VI, VII, VIII, X and XI, used by the benchmark
harness to print the comparison rows next to the modelled TensorFHE
numbers.  Dashes in the paper are represented with ``None``.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "TABLE_VI_OPERATION_DELAY_US",
    "TABLE_VII_BOOTSTRAP_SECONDS",
    "TABLE_VIII_HEAX_THROUGHPUT",
    "TABLE_IX_OCCUPANCY",
    "TABLE_X_WORKLOAD_SECONDS",
    "TABLE_XI_ENERGY",
    "FIGURE_4_STALLS",
    "FIGURE_10_IMPROVEMENTS",
    "HEADLINE_CLAIMS",
]

#: Table VI — operation delay in microseconds (paper reports the amortised
#: per-operation delay; CPU rows are seconds in the paper and are converted).
TABLE_VI_OPERATION_DELAY_US: Dict[str, Dict[str, Optional[float]]] = {
    "CPU": {"HMULT": 338e6, "HROTATE": 330e6, "RESCALE": 18611.0,
            "HADD": 3609.0, "CMULT": 3356.0},
    "PrivFT": {"HMULT": 7153.0, "HROTATE": None, "RESCALE": 208.0,
               "HADD": 24.0, "CMULT": 21.0},
    "100x": {"HMULT": 2227.0, "HROTATE": 2154.0, "RESCALE": 81.0,
             "HADD": 26.0, "CMULT": 22.0},
    "TensorFHE-NT": {"HMULT": 2124.0, "HROTATE": 2111.0, "RESCALE": 35.0,
                     "HADD": 6.0, "CMULT": 7.7},
    "TensorFHE-CO": {"HMULT": 1651.2, "HROTATE": 1523.2, "RESCALE": 9.2,
                     "HADD": 6.0, "CMULT": 7.7},
    "TensorFHE(V100)": {"HMULT": 1296.6, "HROTATE": 1254.4, "RESCALE": 15.4,
                        "HADD": 10.2, "CMULT": 11.5},
    "TensorFHE(A100)": {"HMULT": 851.0, "HROTATE": 852.0, "RESCALE": 7.7,
                        "HADD": 6.0, "CMULT": 7.7},
}

#: Table VII — Bootstrap execution time in seconds
#: (N=2^16, L=34, dnum=5, batch size 128).
TABLE_VII_BOOTSTRAP_SECONDS: Dict[str, float] = {
    "CPU": 10168.0,
    "GPGPU baseline": 54904.0,
    "100x": 42016.0,
    "TensorFHE-NT": 76731.0,
    "TensorFHE-CO": 70762.0,
    "TensorFHE": 32058.0,
}

#: Table VIII — kernel/operation throughput (per second) against HEAX.
#: Set A: N=2^12, logPQ=108, K=2; Set B: N=2^13, logPQ=217, K=4;
#: Set C: N=2^14, logPQ=437, K=8.
TABLE_VIII_HEAX_THROUGHPUT: Dict[str, Dict[str, Dict[str, float]]] = {
    "NTT": {
        "A": {"CPU": 7222.0, "HEAX": 195313.0, "TensorFHE": 910134.0},
        "B": {"CPU": 3437.0, "HEAX": 90144.0, "TensorFHE": 449974.0},
        "C": {"CPU": 1631.0, "HEAX": 41853.0, "TensorFHE": 209337.0},
    },
    "INTT": {
        "A": {"CPU": 7568.0, "HEAX": 195313.0, "TensorFHE": 913267.0},
        "B": {"CPU": 3539.0, "HEAX": 90144.0, "TensorFHE": 449084.0},
        "C": {"CPU": 1659.0, "HEAX": 41853.0, "TensorFHE": 209178.0},
    },
    "HMULT": {
        "A": {"CPU": 420.0, "HEAX": 97656.0, "TensorFHE": 88048.0},
        "B": {"CPU": 84.0, "HEAX": 22536.0, "TensorFHE": 27564.0},
        "C": {"CPU": 15.0, "HEAX": 2616.0, "TensorFHE": 3825.0},
    },
}

#: Table VIII parameter sets.
HEAX_PARAMETER_SETS = {
    "A": {"ring_degree": 1 << 12, "log_pq": 108, "special_count": 2, "level_count": 3},
    "B": {"ring_degree": 1 << 13, "log_pq": 217, "special_count": 4, "level_count": 6},
    "C": {"ring_degree": 1 << 14, "log_pq": 437, "special_count": 8, "level_count": 13},
}

#: Table IX — GPU occupancy of the batched TensorFHE operations (percent).
TABLE_IX_OCCUPANCY: Dict[str, float] = {
    "HMULT": 90.3,
    "HROTATE": 90.1,
    "RESCALE": 88.9,
    "HADD": 85.3,
    "CMULT": 88.1,
}

#: Table X — full-workload execution time in seconds.
TABLE_X_WORKLOAD_SECONDS: Dict[str, Dict[str, Optional[float]]] = {
    "CPU": {"resnet20": 88320.0, "lr": 22784.0, "lstm": 27488.0,
            "packed_bootstrapping": 550.4},
    "F1+": {"resnet20": 172.3, "lr": 40.9, "lstm": 82.3,
            "packed_bootstrapping": 1.8},
    "CraterLake": {"resnet20": 15.9, "lr": 7.6, "lstm": 4.4,
                   "packed_bootstrapping": 0.1},
    "BTS": {"resnet20": 122.2, "lr": 1.8, "lstm": None,
            "packed_bootstrapping": None},
    "ARK": {"resnet20": 18.8, "lr": 0.49, "lstm": None,
            "packed_bootstrapping": None},
    "100x": {"resnet20": 602.9, "lr": 49.6, "lstm": None,
             "packed_bootstrapping": 36.9},
    "TensorFHE": {"resnet20": 316.1, "lr": 14.1, "lstm": 123.1,
                  "packed_bootstrapping": 13.5},
}

#: Table XI — energy efficiency.
TABLE_XI_ENERGY: Dict[str, Dict[str, Optional[float]]] = {
    "ops_per_watt": {"HMULT": 0.57, "HROTATE": 0.57, "RESCALE": 66.67,
                     "HADD": 81.30, "CMULT": 66.67},
    "joules_per_iteration": {
        "ARK": {"resnet20": 32.5, "lr": 19.8, "lstm": None,
                "packed_bootstrapping": None},
        "CraterLake": {"resnet20": 79.7, "lr": 38.1, "lstm": 44.2,
                       "packed_bootstrapping": 1.3},
        "TensorFHE": {"resnet20": 1320.0, "lr": 58.27, "lstm": 1015.3,
                      "packed_bootstrapping": 111.3},
    },
    "gpu_power_watts": 264.0,
}

#: Figure 4 — stall fractions reported in the text for the butterfly NTT.
FIGURE_4_STALLS: Dict[str, float] = {
    "NTT_total_stall_percent": 43.2,
    "NTT_raw_stall_percent": 20.9,
    "raw_share_of_stalls_percent": 48.6,
}

#: Figure 10 — improvements of the GEMM NTT over the butterfly NTT.
FIGURE_10_IMPROVEMENTS: Dict[str, float] = {
    "raw_stall_reduction_points": 18.1,
    "long_latency_reduction_points": 10.8,
    "computation_increase_percent": 1.2,
    "overall_ntt_improvement_percent": 32.3,
}

#: Headline claims from the abstract / introduction.
HEADLINE_CLAIMS: Dict[str, float] = {
    "ntt_kops": 913.0,
    "hmult_kops": 88.0,
    "speedup_over_100x": 2.61,
    "speedup_over_f1plus_lr": 2.9,
    "hmult_speedup_over_cpu": 397.1,
    "hadd_speedup_over_cpu": 1035.8,
    "bootstrap_speedup_over_100x": 1.3,
}
