"""Work descriptors for the seven arithmetic kernels.

The analytical cost model needs to know, for every kernel invocation, how
much arithmetic it performs on the CUDA cores, how many INT8 MACs it issues
to the tensor cores and how many bytes it moves.  These functions derive
those numbers from the CKKS parameters (ring degree, limb count, batch
size) and the NTT formulation in use, mirroring the algorithm descriptions
of Section IV of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ntt.twiddle import split_degree

__all__ = ["NttVariant", "KernelWorkload", "ntt_workload", "hadamard_workload",
           "elementwise_workload", "automorphism_workload", "conv_workload"]

_WORD_BYTES = 4


class NttVariant:
    """The three NTT formulations evaluated in the paper (Table IV)."""

    BUTTERFLY = "butterfly"      # TensorFHE-NT
    GEMM_CUDA = "gemm_cuda"      # TensorFHE-CO
    GEMM_TCU = "gemm_tcu"        # TensorFHE

    ALL = (BUTTERFLY, GEMM_CUDA, GEMM_TCU)


@dataclass
class KernelWorkload:
    """Aggregate work of one (possibly batched) kernel launch."""

    kernel: str
    cuda_int_ops: float = 0.0
    tcu_macs: float = 0.0
    bytes_moved: float = 0.0
    launches: int = 1
    #: True for butterfly-style kernels whose serial dependency chains keep
    #: the SIMT pipeline stalled (Figure 4); the cost model derates their
    #: sustained CUDA-core throughput accordingly.
    stall_bound: bool = False

    def scaled(self, factor: float) -> "KernelWorkload":
        """Scale every resource by ``factor`` (e.g. an invocation count)."""
        return KernelWorkload(
            kernel=self.kernel,
            cuda_int_ops=self.cuda_int_ops * factor,
            tcu_macs=self.tcu_macs * factor,
            bytes_moved=self.bytes_moved * factor,
            launches=max(1, int(round(self.launches * factor))),
            stall_bound=self.stall_bound,
        )

    def merged_with(self, other: "KernelWorkload") -> "KernelWorkload":
        return KernelWorkload(
            kernel=self.kernel,
            cuda_int_ops=self.cuda_int_ops + other.cuda_int_ops,
            tcu_macs=self.tcu_macs + other.tcu_macs,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            launches=self.launches + other.launches,
            stall_bound=self.stall_bound or other.stall_bound,
        )


def ntt_workload(ring_degree: int, limbs: int, batch: int,
                 variant: str = NttVariant.GEMM_TCU) -> KernelWorkload:
    """Work of transforming ``batch * limbs`` polynomials of degree ``N``."""
    transforms = limbs * batch
    n = ring_degree
    if variant == NttVariant.BUTTERFLY:
        stages = math.log2(n)
        butterflies = n / 2 * stages
        # mul, add, sub plus two modulo corrections per butterfly; modulo on
        # a GPU without hardware support costs several integer instructions.
        cuda_ops = transforms * butterflies * 10.0
        bytes_moved = transforms * n * _WORD_BYTES * 2.0 * stages * 0.5
        return KernelWorkload("NTT", cuda_int_ops=cuda_ops, bytes_moved=bytes_moved,
                              launches=int(stages), stall_bound=True)
    n1, n2 = split_degree(n)
    if variant == NttVariant.GEMM_CUDA:
        # The GEMM formulation removes the inter-stage RAW dependencies and
        # all but one modulo per output.  Its arithmetic sits between the
        # fast transform and a dense O(N^1.5) product because the twiddle
        # GEMMs are blocked and heavily reuse operands; the factor below is
        # the calibrated effective op count per butterfly-equivalent.
        stages = math.log2(n)
        cuda_ops = transforms * (n / 2 * stages) * 14.0
        bytes_moved = transforms * n * _WORD_BYTES * 4.0 + (
            n1 * n1 + n1 * n2 + n2 * n2) * _WORD_BYTES
        return KernelWorkload("NTT", cuda_int_ops=cuda_ops, bytes_moved=bytes_moved,
                              launches=3)
    gemm_macs = n * (n1 + n2) + n            # three-step GEMMs + Hadamard twiddle
    if variant == NttVariant.GEMM_TCU:
        # 16 limb-pair INT8 GEMMs replace each u32 GEMM; segmentation, fusion
        # and the final modulo stay on the CUDA cores (Stages 1/3/5).
        tcu_macs = transforms * 16.0 * (n * (n1 + n2))
        cuda_ops = transforms * n * 24.0
        bytes_moved = transforms * n * _WORD_BYTES * 6.0
        return KernelWorkload("NTT", tcu_macs=tcu_macs, cuda_int_ops=cuda_ops,
                              bytes_moved=bytes_moved, launches=5)
    raise ValueError("unknown NTT variant %r" % variant)


def hadamard_workload(ring_degree: int, limbs: int, batch: int) -> KernelWorkload:
    """Element-wise modular multiplication of two batched polynomials.

    Operands are assumed resident in VRAM/L2 from the producing kernel, so
    the traffic counted is one read of each operand fragment not already
    cached plus the result write-back.
    """
    elements = ring_degree * limbs * batch
    return KernelWorkload("Hada-Mult", cuda_int_ops=elements * 6.0,
                          bytes_moved=elements * _WORD_BYTES * 1.0)


def elementwise_workload(kernel: str, ring_degree: int, limbs: int,
                         batch: int) -> KernelWorkload:
    """Element-wise addition or subtraction."""
    elements = ring_degree * limbs * batch
    return KernelWorkload(kernel, cuda_int_ops=elements * 2.0,
                          bytes_moved=elements * _WORD_BYTES * 1.0)


def automorphism_workload(kernel: str, ring_degree: int, limbs: int,
                          batch: int) -> KernelWorkload:
    """FrobeniusMap / Conjugate: an index permutation with sign fix-up."""
    elements = ring_degree * limbs * batch
    return KernelWorkload(kernel, cuda_int_ops=elements * 3.0,
                          bytes_moved=elements * _WORD_BYTES * 2.0)


def conv_workload(ring_degree: int, source_limbs: int, target_limbs: int,
                  batch: int) -> KernelWorkload:
    """Fast basis conversion from ``source_limbs`` to ``target_limbs`` primes."""
    elements = ring_degree * batch
    macs = elements * source_limbs * target_limbs
    return KernelWorkload("Conv", cuda_int_ops=macs * 2.0,
                          bytes_moved=elements * (source_limbs + target_limbs) * _WORD_BYTES)
