"""Measured-throughput calibration from the committed benchmark JSONs.

The analytical cost model prices kernels from datasheet peaks and
efficiency constants fitted against the paper's A100 numbers.  This
module is the *empirical* counterpart: it ingests the wall-clock JSONs
the benchmark harness commits under ``benchmarks/results/`` — the
backend sweep (``backends.json``), the operation-batching and key-switch
fusion sweeps (``op_batching*.json``, ``keyswitch_batching.json``) and
the float-reduction stage timing (``float_reduction.json``) — and turns
them into numbers the rest of the stack can consume:

* :meth:`MeasuredThroughput.preferred_batch` — the measured knee of the
  fused-speedup curve, which :class:`~repro.batching.scheduler.BatchScheduler`
  uses in place of the static :class:`~repro.gpu.spec.GpuSpec` saturation
  estimate (and which therefore sizes the serving layer's flushes);
* :meth:`MeasuredThroughput.ops_per_second` — measured fused-launch
  throughput for latency/linger budgeting;
* :meth:`CostModelConfig.from_measurements
  <repro.perf.cost_model.CostModelConfig.from_measurements>` — a cost
  model whose batched/unbatched efficiency ratio is the *measured* fused
  speedup instead of the datasheet-derived constant.

Entries are parsed from the benchmark key convention
``<label>_N<ring_degree>[_L<limbs>]_B<batch>`` used by every tracked
sweep; unknown files and keys are skipped, so the loader tolerates the
results directory growing new benchmarks.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["MeasuredPoint", "MeasuredThroughput", "ShardingCalibration",
           "sharding_calibration", "default_results_dir"]

#: Result files whose entries are (fused vs baseline) timing pairs, with
#: the JSON field names holding the fused and baseline microseconds.
_PAIRED_FILES: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "op_batching": (("fused_us",), ("per_ciphertext_us",)),
    "op_batching_cmult": (("fused_us",), ("sequential_us",)),
    "keyswitch_batching": (("fused_us",), ("per_stream_us",)),
    "float_reduction": (("float64_barrett_us",), ("int64_detour_us",)),
    # Scale-out sweep: sharded (multi-worker) vs inline single-process
    # execution of the same fused launch.  These ratios measure process
    # fan-out, not kernel batching efficiency — consumers deriving
    # *batching* constants exclude this source.
    "sharded": (("sharded_us",), ("inline_us",)),
}

_KEY_PATTERN = re.compile(
    r"^(?P<label>.+?)_N(?P<n>\d+)(?:_L(?P<l>\d+))?(?:_B(?P<b>\d+))?$")


def default_results_dir() -> Optional[str]:
    """The repo's ``benchmarks/results`` directory, if running from a checkout.

    Installed copies of the library have no results directory; callers
    must then pass an explicit path (or a mapping) to the loader.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    for _ in range(6):
        candidate = os.path.join(here, "benchmarks", "results")
        if os.path.isdir(candidate):
            return candidate
        here = os.path.dirname(here)
    return None


@dataclass(frozen=True)
class MeasuredPoint:
    """One measured (fused vs baseline) timing pair."""

    source: str                 # results file stem, e.g. "op_batching"
    label: str                  # sweep label, e.g. "four_step" / "matrix"
    ring_degree: int
    batch: int                  # 1 when the sweep had no B axis
    limbs: Optional[int]
    fused_us: float
    baseline_us: float

    @property
    def speedup(self) -> float:
        return self.baseline_us / self.fused_us if self.fused_us else float("inf")

    @property
    def fused_op_us(self) -> float:
        """Amortised microseconds per operation inside the fused launch."""
        return self.fused_us / max(1, self.batch)


class MeasuredThroughput:
    """Measured fused-launch throughput, loaded from benchmark JSONs."""

    def __init__(self, points: Sequence[MeasuredPoint],
                 backend_speedups: Optional[Dict[str, float]] = None) -> None:
        self.points: Tuple[MeasuredPoint, ...] = tuple(points)
        #: ``backends.json``: per-backend speedup over the numpy default.
        self.backend_speedups: Dict[str, float] = dict(backend_speedups or {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_results_dir(cls, path: Optional[str] = None) -> "MeasuredThroughput":
        """Load every recognised results file under ``path``.

        ``path=None`` resolves the repo checkout's ``benchmarks/results``;
        a missing directory (or one with no recognised files) yields an
        *empty* calibration, which every consumer treats as "no measured
        data" rather than an error.
        """
        path = default_results_dir() if path is None else path
        payloads: Dict[str, dict] = {}
        if path is not None and os.path.isdir(path):
            for entry in sorted(os.listdir(path)):
                if not entry.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(path, entry)) as handle:
                        payloads[entry[:-len(".json")]] = json.load(handle)
                except (OSError, ValueError):
                    continue        # unreadable/corrupt file: skip, stay usable
        return cls.from_payloads(payloads)

    @classmethod
    def from_payloads(cls, payloads: Dict[str, dict]) -> "MeasuredThroughput":
        """Build a calibration from already-parsed ``{stem: payload}`` dicts."""
        points: List[MeasuredPoint] = []
        backend_speedups: Dict[str, float] = {}
        for stem, payload in payloads.items():
            if stem == "backends":
                for backend, entry in payload.items():
                    speedup = entry.get("speedup_vs_numpy")
                    if isinstance(speedup, (int, float)) and speedup > 0:
                        backend_speedups[backend] = float(speedup)
                continue
            fields = _PAIRED_FILES.get(stem)
            if fields is None:
                continue
            fused_names, baseline_names = fields
            for key, entry in payload.items():
                match = _KEY_PATTERN.match(key)
                if match is None:
                    continue
                fused = _first_field(entry, fused_names)
                baseline = _first_field(entry, baseline_names)
                if fused is None or baseline is None or fused <= 0:
                    continue
                points.append(MeasuredPoint(
                    source=stem,
                    label=match.group("label"),
                    ring_degree=int(match.group("n")),
                    batch=int(match.group("b") or 1),
                    limbs=int(match.group("l")) if match.group("l") else None,
                    fused_us=fused,
                    baseline_us=baseline,
                ))
        return cls(points, backend_speedups)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.points) or bool(self.backend_speedups)

    def select(self, *, source: Optional[str] = None,
               label: Optional[str] = None,
               ring_degree: Optional[int] = None,
               exclude_sources: Tuple[str, ...] = ()) -> List[MeasuredPoint]:
        """Points matching every given filter."""
        return [
            point for point in self.points
            if (source is None or point.source == source)
            and point.source not in exclude_sources
            and (label is None or point.label == label)
            and (ring_degree is None or point.ring_degree == ring_degree)
        ]

    def mean_batched_speedup(self, *, source: Optional[str] = None,
                             exclude_sources: Tuple[str, ...] = ()) -> float:
        """Geometric-mean measured speedup of fused over looped execution.

        The geometric mean is the right aggregate for ratios; an empty
        selection returns 1.0 (no measured evidence of a speedup).
        ``exclude_sources`` drops files measuring a different axis (the
        scale-out sweep's process fan-out, for example) from the
        aggregate.
        """
        speedups = [p.speedup
                    for p in self.select(source=source,
                                         exclude_sources=exclude_sources)
                    if p.speedup > 0]
        if not speedups:
            return 1.0
        product = 1.0
        for value in speedups:
            product *= value
        return product ** (1.0 / len(speedups))

    def preferred_batch(self, ring_degree: int, *,
                        source: Optional[str] = None,
                        label: Optional[str] = None) -> Optional[int]:
        """The measured knee: the batch size of the best observed speedup.

        Falls back to the nearest measured ring degree when ``ring_degree``
        itself was never swept (the curve shape, not the absolute time, is
        what transfers).  Returns ``None`` with no matching data.
        """
        candidates = self.select(source=source, label=label)
        if not candidates:
            return None
        if not any(p.ring_degree == ring_degree for p in candidates):
            nearest = min({p.ring_degree for p in candidates},
                          key=lambda n: abs(n - ring_degree))
            ring_degree = nearest
        best = max((p for p in candidates if p.ring_degree == ring_degree),
                   key=lambda p: p.speedup)
        return best.batch

    def fused_op_us(self, ring_degree: int, *, source: Optional[str] = None,
                    label: Optional[str] = None,
                    batch: Optional[int] = None) -> Optional[float]:
        """Measured amortised microseconds per op inside a fused launch.

        Picks the matching point with the largest batch at (or nearest to)
        ``ring_degree`` unless ``batch`` pins one.  Returns ``None`` with
        no matching data.
        """
        candidates = self.select(source=source, label=label)
        if batch is not None:
            candidates = [p for p in candidates if p.batch == batch]
        if not candidates:
            return None
        if not any(p.ring_degree == ring_degree for p in candidates):
            nearest = min({p.ring_degree for p in candidates},
                          key=lambda n: abs(n - ring_degree))
            ring_degree = nearest
        matches = [p for p in candidates if p.ring_degree == ring_degree]
        chosen = max(matches, key=lambda p: p.batch)
        return chosen.fused_op_us

    def ops_per_second(self, ring_degree: int, *, source: Optional[str] = None,
                       label: Optional[str] = None) -> Optional[float]:
        """Measured fused throughput in operations per second."""
        per_op = self.fused_op_us(ring_degree, source=source, label=label)
        if per_op is None or per_op <= 0:
            return None
        return 1e6 / per_op

    def describe(self) -> Dict[str, object]:
        """Summary used by diagnostics endpoints and reports."""
        return {
            "points": len(self.points),
            "sources": sorted({p.source for p in self.points}),
            "backend_speedups": dict(self.backend_speedups),
            "mean_batched_speedup": self.mean_batched_speedup(),
        }


def _first_field(entry: dict, names: Tuple[str, ...]) -> Optional[float]:
    for name in names:
        value = entry.get(name)
        if isinstance(value, (int, float)):
            return float(value)
    return None


# ----------------------------------------------------------------------
# Sharded-backend calibration: measured knees for the scale-out pool
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardingCalibration:
    """Measured thresholds for the sharded scale-out backend.

    Written by ``benchmarks/bench_sharded.py`` as the ``calibration``
    block of ``benchmarks/results/sharded.json`` and consumed by
    :class:`~repro.backend.sharded.ShardedBackend` in place of its
    hardcoded ``min_shard_elements`` defaults.  Any field may be ``None``
    (not measured); the backend keeps its default for those.
    """

    #: GEMM multiply-accumulate count below which a launch stays inline
    #: (the measured knee where sharding first beat inline execution).
    min_shard_elements: Optional[int] = None
    #: Element count below which element-wise kernels stay inline.
    min_elementwise_elements: Optional[int] = None
    #: Worker count the sweep found best — only meaningful on a host with
    #: the same core count as the measuring one, see ``applies_to_host``.
    workers: Optional[int] = None
    #: ``os.cpu_count()`` of the measuring host.
    cpu_count: Optional[int] = None

    def applies_to_host(self) -> bool:
        """Whether the measured worker count transfers to this host.

        The knee thresholds are work-per-round-trip ratios and transfer
        across hosts; the best worker count is a property of the core
        count and only applies where it matches.
        """
        return self.cpu_count is None or self.cpu_count == (os.cpu_count() or 0)


def sharding_calibration(path: Optional[str] = None) -> Optional["ShardingCalibration"]:
    """Load the sharded backend's measured knees from ``sharded.json``.

    Returns ``None`` when no results directory, file or ``calibration``
    block exists — the backend then falls back to its hardcoded
    defaults.  Tolerant of malformed payloads for the same reason
    :meth:`MeasuredThroughput.from_results_dir` is: a broken benchmark
    artefact must never break backend construction.
    """
    path = default_results_dir() if path is None else path
    if path is None:
        return None
    try:
        with open(os.path.join(path, "sharded.json")) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    block = payload.get("calibration") if isinstance(payload, dict) else None
    if not isinstance(block, dict):
        return None

    def positive_int(name: str) -> Optional[int]:
        value = block.get(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return int(value) if value > 0 else None

    return ShardingCalibration(
        min_shard_elements=positive_int("min_shard_elements"),
        min_elementwise_elements=positive_int("min_elementwise_elements"),
        workers=positive_int("workers"),
        cpu_count=positive_int("cpu_count"),
    )
