"""API-layer batch-size selection (paper Section IV-E).

The paper's API layer "automatically generates the best batch size for the
different involved kernels according to the hardware resources": the batch
is limited by the VRAM needed for the batched operands and intermediates,
and there is little benefit in exceeding the batch size that already
saturates the GPU's resident threads.  :class:`BatchScheduler` encodes both
limits.

When a :class:`~repro.perf.calibration.MeasuredThroughput` calibration is
supplied, the *measured* knee of the fused-speedup curve (from the
benchmark JSONs committed under ``benchmarks/results/``) replaces the
datasheet-derived saturation estimate: the scheduler then recommends the
batch size that was actually observed to maximise fused throughput on
this substrate, which is what the serving layer's flush policy sizes its
launches with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..gpu.spec import GpuSpec
# Imported for real (not TYPE_CHECKING): the batching layer's public
# annotations must resolve under typing.get_type_hints, and calibration
# is stdlib-only so no import cycle is possible.
from ..perf.calibration import MeasuredThroughput

__all__ = ["BatchPlan", "BatchScheduler"]

_WORD_BYTES = 4
#: Working-set multiplier: operands, twiddles, limb-pair partial products
#: and double-buffered intermediates, relative to one ciphertext copy.
_INTERMEDIATE_FACTOR = 6.0


@dataclass
class BatchPlan:
    """Chosen batch size together with the reasons for the choice."""

    batch_size: int
    vram_limited_batch: int
    saturation_batch: int
    working_set_bytes_per_op: float
    #: The measured fused-speedup knee that drove the choice, when the
    #: scheduler was built with a calibration (None = static model).
    measured_batch: Optional[int] = None
    #: How many shard workers the compute backend fans the batch axis
    #: out to (1 = single-process backend).
    batch_fanout: int = 1

    @property
    def limited_by_vram(self) -> bool:
        return self.vram_limited_batch <= self.saturation_batch

    @property
    def measured(self) -> bool:
        return self.measured_batch is not None


class BatchScheduler:
    """Chooses operation-level batch sizes for a GPU and CKKS parameter set."""

    def __init__(self, gpu: GpuSpec, *, vram_utilisation: float = 0.85,
                 measured: Optional["MeasuredThroughput"] = None,
                 backend=None) -> None:
        self.gpu = gpu
        self.vram_utilisation = vram_utilisation
        #: Optional measured calibration; see the module docstring.
        self.measured = measured if measured else None
        #: Compute backend the plans size for: a registered name, an
        #: :class:`~repro.backend.base.ArrayBackend` instance, or ``None``
        #: to follow the process-wide active backend at plan time.
        self.backend = backend

    def batch_fanout(self) -> int:
        """How many workers the backend shards the batch axis across.

        A sharded backend splits the fused B axis over its worker pool,
        so saturating the pool needs ``workers × per-shard knee``
        operations in flight; single-process backends report 1.  Backends
        advertise the fan-out through ``capabilities()['batch_fanout']``;
        resolution failures (an unavailable ``REPRO_BACKEND``, say)
        degrade to 1 rather than breaking planning.
        """
        try:
            from ..backend.registry import resolve_backend
            capabilities = resolve_backend(self.backend).capabilities()
            return max(1, int(capabilities.get("batch_fanout", 1)))
        except Exception:
            return 1

    def working_set_per_operation(self, ring_degree: int, limb_count: int,
                                  components: int = 2) -> float:
        """Bytes of VRAM one batched operation needs (operands + temps)."""
        ciphertext_bytes = components * limb_count * ring_degree * _WORD_BYTES
        return ciphertext_bytes * _INTERMEDIATE_FACTOR

    def saturation_batch(self, ring_degree: int, limb_count: int) -> int:
        """Batch size beyond which the GPU's thread slots are already full."""
        elements_per_op = limb_count * ring_degree
        threads_per_op = max(1.0, elements_per_op / 8.0)
        return max(1, int(self.gpu.max_resident_threads * 4 // threads_per_op))

    def plan(self, ring_degree: int, limb_count: int, *, components: int = 2,
             requested: Optional[int] = None) -> BatchPlan:
        """Pick a batch size for the given parameters.

        ``requested`` (e.g. the paper's Table V batch sizes) caps the
        result; power-of-two sizes are preferred because the workloads pack
        power-of-two many ciphertexts.

        With a measured calibration, the observed fused-speedup knee
        replaces the saturation estimate (VRAM and ``requested`` still
        cap the result).  A batch-sharding backend multiplies the target
        by its worker fan-out — the knee is a *per-shard* quantity, so a
        pool of W workers saturates at W knees' worth of operations.
        """
        per_op = self.working_set_per_operation(ring_degree, limb_count, components)
        usable = self.gpu.vram_bytes * self.vram_utilisation
        vram_limit = max(1, int(usable // per_op))
        saturation = self.saturation_batch(ring_degree, limb_count)
        measured_batch = None
        if self.measured is not None:
            measured_batch = self.measured.preferred_batch(
                ring_degree, source="op_batching")
        fanout = self.batch_fanout()
        target = saturation if measured_batch is None else measured_batch
        target *= fanout
        batch = min(vram_limit, max(target, 1))
        if requested is not None:
            batch = min(batch, requested)
        batch = max(1, 1 << (batch.bit_length() - 1))
        return BatchPlan(
            batch_size=batch,
            vram_limited_batch=vram_limit,
            saturation_batch=saturation,
            working_set_bytes_per_op=per_op,
            measured_batch=measured_batch,
            batch_fanout=fanout,
        )
