"""Operation-level batching data layouts (paper Figure 9).

``BatchedData`` holds the residue data of ``B`` batched operations, each an
``(L, N)`` limb matrix, in either the original ``(B, L, N)`` order or the
TensorFHE-customised ``(L, B, N)`` order.  The pack/unpack helpers expose
what the GPU kernels would see: packing a level means gathering the
level-``l`` limb of every batched operation, which is contiguous only in
the ``(L, B, N)`` layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

__all__ = ["Layout", "BatchedData"]


class Layout:
    """Supported batching layouts."""

    B_L_N = "(B,L,N)"
    L_B_N = "(L,B,N)"

    ALL = (B_L_N, L_B_N)


@dataclass
class BatchedData:
    """Residue data of a batch of operations in a specific layout."""

    data: np.ndarray
    layout: str

    def __post_init__(self) -> None:
        if self.layout not in Layout.ALL:
            raise ValueError("unknown layout %r" % self.layout)
        if self.data.ndim != 3:
            raise ValueError("batched data must be a 3-D array")

    # ------------------------------------------------------------------
    @classmethod
    def from_operations(cls, limb_matrices: Iterable[np.ndarray],
                        layout: str = Layout.B_L_N) -> "BatchedData":
        """Stack per-operation ``(L, N)`` matrices into a batch."""
        stacked = np.stack([np.asarray(m, dtype=np.int64) for m in limb_matrices])
        batch = cls(stacked, Layout.B_L_N)
        return batch.convert(layout)

    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return self.data.shape[0] if self.layout == Layout.B_L_N else self.data.shape[1]

    @property
    def limb_count(self) -> int:
        return self.data.shape[1] if self.layout == Layout.B_L_N else self.data.shape[0]

    @property
    def ring_degree(self) -> int:
        return self.data.shape[2]

    # ------------------------------------------------------------------
    def convert(self, layout: str) -> "BatchedData":
        """Return the same data in another layout.

        Aliasing contract: the same-layout path is **zero-copy** — the
        returned batch shares ``self.data`` (every batched operation reads
        its operands, it never mutates them in place, so the alias is
        safe and saves a full ``(L, B, N)`` copy per batched op).  Callers
        that intend to write into the result must copy explicitly.  A
        cross-layout conversion materialises a fresh contiguous array.
        """
        if layout == self.layout:
            return BatchedData(self.data, layout)
        if layout not in Layout.ALL:
            raise ValueError("unknown layout %r" % layout)
        return BatchedData(np.ascontiguousarray(self.data.swapaxes(0, 1)), layout)

    def fused_matrix(self) -> np.ndarray:
        """The ``(L, B*N)`` matrix feeding the fused element-wise kernels.

        Row ``l`` holds limb ``l`` of every batched operation back to back
        — the shape the backend funnel's mat-mod kernels consume with one
        modulus per row.  Only defined for the ``(L, B, N)`` layout, where
        it is a zero-copy reshape of contiguous data.
        """
        if self.layout != Layout.L_B_N:
            raise ValueError("fused_matrix requires the %s layout" % Layout.L_B_N)
        return self.data.reshape(self.limb_count,
                                 self.batch_size * self.ring_degree)

    def level_pack(self, level: int) -> np.ndarray:
        """The ``(B, N)`` pack of limb ``level`` across the whole batch."""
        if self.layout == Layout.B_L_N:
            return self.data[:, level, :]
        return self.data[level]

    def operation(self, index: int) -> np.ndarray:
        """The ``(L, N)`` limb matrix of operation ``index``."""
        if self.layout == Layout.B_L_N:
            return self.data[index]
        return self.data[:, index, :]

    def contiguous_run_bytes(self, word_bytes: int = 4) -> int:
        """Contiguous bytes per gather when packing one level (Figure 9)."""
        if self.layout == Layout.B_L_N:
            return self.ring_degree * word_bytes
        return self.batch_size * self.ring_degree * word_bytes

    def gather_count(self) -> int:
        """Number of separate memory regions touched per level pack."""
        return self.batch_size if self.layout == Layout.B_L_N else 1

    def to_operations(self) -> List[np.ndarray]:
        """Unpack into the per-operation ``(L, N)`` matrices."""
        return [self.operation(i).copy() for i in range(self.batch_size)]
