"""Operation-level batching of NTT work (paper Section IV-D).

``OperationBatcher`` executes the same kernel for many operations at once:
all batched operations share one prime chain, so the batched forward and
inverse NTT are a single ``forward_ops``/``inverse_ops`` engine call — one
batched backend GEMM per transform step across *all* operations and limbs
(the paper's ``(L, B, N)`` multi-ciphertext execution) — and the
element-wise kernels are one funnel launch over the fused ``(L, B*N)``
matrix.  This is the functional counterpart of the throughput-oriented
execution the paper advocates; the performance benefit on a real GPU is
captured by the performance model, while this class demonstrates (and the
op-batching benchmark measures) the data-reuse and fused-launch mechanics.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..kernels.base import KernelContext, KernelName
from ..ntt.base import NttEngine
from ..numtheory.modular import mat_mod_add, mat_mod_mul
from .layout import BatchedData, Layout

__all__ = ["OperationBatcher"]


class OperationBatcher:
    """Executes whole ``(B, L, N)`` batches as single fused launches.

    Every batched operation shares the same prime chain: by default the
    engine's modulus replicated over every limb (the historical single-`q`
    behaviour), or an explicit per-limb ``moduli`` chain for RNS batches.
    Out-of-range operands are range-reduced on entry, as the engines'
    validators do, before reaching the backend funnel's reduced-residue
    kernels.

    ``kernels`` optionally attaches a :class:`~repro.kernels.base.KernelContext`
    whose counters record the batched kernels (NTT / INTT / Hada-Mult /
    Ele-Add) per *operation*, so fused execution counts exactly like a
    per-operation loop.
    """

    def __init__(self, engine: NttEngine, *, layout: str = Layout.L_B_N,
                 moduli: Optional[Sequence[int]] = None,
                 kernels: Optional[KernelContext] = None) -> None:
        self.engine = engine
        self.layout = layout
        self.moduli = None if moduli is None else tuple(int(q) for q in moduli)
        self.kernels = kernels

    # ------------------------------------------------------------------
    def forward_ntt(self, batch: BatchedData) -> BatchedData:
        """Forward-NTT every limb of every batched operation (one launch)."""
        return self._transform(batch, self.engine.forward_ops, KernelName.NTT)

    def inverse_ntt(self, batch: BatchedData) -> BatchedData:
        """Inverse-NTT every limb of every batched operation (one launch)."""
        return self._transform(batch, self.engine.inverse_ops, KernelName.INTT)

    def _transform(self, batch: BatchedData, transform, kernel: str) -> BatchedData:
        # One (B, L, N) stack, one engine call: the GEMM engines fuse both
        # axes into single backend launches per transform step.
        working = batch.convert(Layout.B_L_N)
        if self.moduli is None:
            # Single-modulus batch: every limb shares the engine's prime,
            # so fold the limb axis into the operation axis — the fused
            # launch then reuses the one (N, q) twiddle stack instead of
            # materialising a limb_count-times duplicated chain.
            stacks = working.data.reshape(-1, 1, batch.ring_degree)
            data = transform(stacks, (self.engine.modulus,))
            data = data.reshape(batch.batch_size, batch.limb_count,
                                batch.ring_degree)
        else:
            data = transform(working.data, self._moduli_for(batch))
        self._record(kernel, batch.batch_size, batch.limb_count)
        return BatchedData(data, Layout.B_L_N).convert(self.layout)

    # ------------------------------------------------------------------
    def hadamard(self, lhs: BatchedData, rhs: BatchedData) -> BatchedData:
        """Batched element-wise modular product (batched Hada-Mult).

        Routed through the backend funnel's exact mat-mod kernels, which
        keep the product exact for any modulus (the object-dtype path
        covers moduli at or above 2**31, where a raw int64 product would
        overflow).
        """
        return self._elementwise(lhs, rhs, mat_mod_mul, KernelName.HADAMARD)

    def add(self, lhs: BatchedData, rhs: BatchedData) -> BatchedData:
        """Batched element-wise modular addition (batched Ele-Add)."""
        return self._elementwise(lhs, rhs, mat_mod_add, KernelName.ELE_ADD)

    def _elementwise(self, lhs: BatchedData, rhs: BatchedData, op,
                     kernel: str) -> BatchedData:
        self._check_compatible(lhs, rhs)
        moduli = self._moduli_for(lhs)
        column = np.asarray(moduli, dtype=np.int64)[:, None]
        left = self._reduced(lhs, column)
        right = self._reduced(rhs, column)
        # One funnel launch over the (L, B*N) fused matrix: the moduli
        # column broadcasts per limb across every batched operation.
        fused = op(left, right, moduli)
        self._record(kernel, lhs.batch_size, lhs.limb_count)
        shaped = fused.reshape(lhs.limb_count, lhs.batch_size, lhs.ring_degree)
        return BatchedData(shaped, Layout.L_B_N).convert(self.layout)

    def _reduced(self, batch: BatchedData, column: np.ndarray) -> np.ndarray:
        """The fused ``(L, B*N)`` matrix, range-reduced if needed.

        The backend mat-mod kernels assume reduced residues; out-of-range
        inputs are reduced here first (scan-then-reduce, like the engines'
        validators) so callers may hand in raw coefficients.
        """
        fused = batch.convert(Layout.L_B_N).fused_matrix()
        if np.any(fused < 0) or np.any(fused >= column):
            fused = fused % column
        return fused

    # ------------------------------------------------------------------
    def _moduli_for(self, batch: BatchedData) -> Tuple[int, ...]:
        if self.moduli is not None:
            if len(self.moduli) != batch.limb_count:
                raise ValueError(
                    "batcher has %d moduli but the batch has %d limbs"
                    % (len(self.moduli), batch.limb_count)
                )
            return self.moduli
        return (self.engine.modulus,) * batch.limb_count

    def _record(self, kernel: str, operations: int, limbs: int) -> None:
        if self.kernels is not None:
            self.kernels.counter.record_batch(kernel, operations, limbs)

    def _check_compatible(self, lhs: BatchedData, rhs: BatchedData) -> None:
        if (lhs.batch_size, lhs.limb_count, lhs.ring_degree) != (
                rhs.batch_size, rhs.limb_count, rhs.ring_degree):
            raise ValueError("batched operands have mismatching shapes")
