"""Operation-level batching of NTT work (paper Section IV-D).

``OperationBatcher`` executes the same kernel for many operations at once:
all batched operations share the same ``(N, q)`` and therefore the same
twiddle matrices, so the batched forward/inverse NTT turns into one big
GEMM (or one engine call per operation for non-GEMM engines).  This is the
functional counterpart of the throughput-oriented execution the paper
advocates; the performance benefit on a real GPU is captured by the
performance model, while this class demonstrates the data-reuse and layout
mechanics and is used by the batching tests and benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..ntt.base import NttEngine
from .layout import BatchedData, Layout

__all__ = ["OperationBatcher"]


class OperationBatcher:
    """Applies per-limb kernels across a whole batch of operations."""

    def __init__(self, engine: NttEngine, *, layout: str = Layout.L_B_N) -> None:
        self.engine = engine
        self.layout = layout

    # ------------------------------------------------------------------
    def forward_ntt(self, batch: BatchedData) -> BatchedData:
        """Forward-NTT every limb of every batched operation."""
        return self._transform(batch, self.engine.forward_batch)

    def inverse_ntt(self, batch: BatchedData) -> BatchedData:
        """Inverse-NTT every limb of every batched operation."""
        return self._transform(batch, self.engine.inverse_batch)

    def _transform(self, batch: BatchedData, transform) -> BatchedData:
        working = batch.convert(self.layout)
        limb_count = working.limb_count
        outputs: List[np.ndarray] = []
        for level in range(limb_count):
            # One level-pack is a (B, N) matrix sharing a single twiddle
            # table — the engine's batched entry point handles it directly.
            pack = working.level_pack(level)
            outputs.append(transform(pack))
        if self.layout == Layout.L_B_N:
            data = np.stack(outputs)                       # (L, B, N)
        else:
            data = np.stack(outputs).swapaxes(0, 1)        # (B, L, N)
        return BatchedData(np.ascontiguousarray(data), self.layout)

    # ------------------------------------------------------------------
    def hadamard(self, lhs: BatchedData, rhs: BatchedData) -> BatchedData:
        """Batched element-wise modular product (batched Hada-Mult)."""
        self._check_compatible(lhs, rhs)
        left = lhs.convert(self.layout)
        right = rhs.convert(self.layout)
        product = (left.data.astype(np.int64) * right.data.astype(np.int64)) % self.engine.modulus
        return BatchedData(product, self.layout)

    def add(self, lhs: BatchedData, rhs: BatchedData) -> BatchedData:
        """Batched element-wise modular addition (batched Ele-Add)."""
        self._check_compatible(lhs, rhs)
        left = lhs.convert(self.layout)
        right = rhs.convert(self.layout)
        total = (left.data + right.data) % self.engine.modulus
        return BatchedData(total, self.layout)

    def _check_compatible(self, lhs: BatchedData, rhs: BatchedData) -> None:
        if (lhs.batch_size, lhs.limb_count, lhs.ring_degree) != (
                rhs.batch_size, rhs.limb_count, rhs.ring_degree):
            raise ValueError("batched operands have mismatching shapes")


def make_batch(operations: Sequence[np.ndarray], layout: str = Layout.L_B_N) -> BatchedData:
    """Convenience helper building a :class:`BatchedData` from (L, N) matrices."""
    return BatchedData.from_operations(operations, layout)
