"""Operation-level batching: data layouts, batched kernels, batch-size planning."""

from .batcher import OperationBatcher, make_batch
from .layout import BatchedData, Layout
from .scheduler import BatchPlan, BatchScheduler

__all__ = [
    "Layout",
    "BatchedData",
    "OperationBatcher",
    "make_batch",
    "BatchScheduler",
    "BatchPlan",
]
