"""Operation-level batching: data layouts, batched kernels, batch-size planning."""

from .batcher import OperationBatcher
from .layout import BatchedData, Layout
from .scheduler import BatchPlan, BatchScheduler

__all__ = [
    "Layout",
    "BatchedData",
    "OperationBatcher",
    "BatchScheduler",
    "BatchPlan",
]
