"""TensorFheContext: the high-level API layer of the paper (Section IV-E).

The paper's API layer collects FHE requests from the application, decomposes
them into kernel workflows, picks batch sizes and invokes the kernel layer.
``TensorFheContext`` is the library's equivalent single entry point: it owns
the CKKS context, all key material, the encryptor/decryptor/evaluator, the
batch scheduler and the kernel instrumentation, and exposes the FHE
operations as plain methods so applications never touch the lower layers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

import numpy as np

from ..backend.base import ArrayBackend
from ..backend.registry import resolve_backend
from ..batching.scheduler import BatchPlan, BatchScheduler
from ..ckks.batched_evaluator import BatchedEvaluator
from ..ckks.bootstrap import BootstrapConfig, Bootstrapper
from ..ckks.ciphertext import Ciphertext, Plaintext
from ..ckks.context import CkksContext
from ..ckks.decryptor import Decryptor
from ..ckks.encryptor import Encryptor
from ..ckks.evaluator import Evaluator
from ..ckks.keygen import KeyGenerator
from ..ckks.params import CkksParameters, get_preset
from ..gpu.spec import A100, GpuSpec

if TYPE_CHECKING:
    from ..serving import ServingEngine

__all__ = ["TensorFheContext"]


class TensorFheContext:
    """One-stop facade over key generation, encryption and evaluation."""

    def __init__(self, parameters: CkksParameters, *, seed: Optional[int] = None,
                 rotation_steps: Iterable[int] = (), gpu: GpuSpec = A100,
                 backend: Union[None, str, "ArrayBackend"] = None,
                 bootstrap_config: Optional[BootstrapConfig] = None) -> None:
        self.context = CkksContext(parameters, seed=seed, backend=backend)
        self.gpu = gpu
        self._keygen = KeyGenerator(self.context)
        self.secret_key = self._keygen.generate_secret_key()
        self.public_key = self._keygen.generate_public_key(self.secret_key)
        self.relinearization_key = self._keygen.generate_relinearization_key(self.secret_key)
        self.rotation_keys = self._keygen.generate_rotation_keys(
            self.secret_key, rotation_steps)
        self.encryptor = Encryptor(self.context, self.public_key, self.secret_key)
        self.decryptor = Decryptor(self.context, self.secret_key)
        self.evaluator = Evaluator(self.context)
        # The scheduler sizes fused batches for the same compute backend
        # the context launches on; a sharded backend multiplies the plan
        # by its worker fan-out so serving traffic fills the whole pool.
        self.batch_scheduler = BatchScheduler(gpu, backend=backend)
        self.batched_evaluator = BatchedEvaluator(self.context,
                                                  evaluator=self.evaluator)
        self.bootstrap_config = bootstrap_config
        self._bootstrapper: Optional[Bootstrapper] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_preset(cls, name: str, *, seed: Optional[int] = None,
                    rotation_steps: Iterable[int] = (),
                    backend: Union[None, str, "ArrayBackend"] = None) -> "TensorFheContext":
        """Build a context from a named parameter preset."""
        return cls(get_preset(name), seed=seed, rotation_steps=rotation_steps,
                   backend=backend)

    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return self.context.slot_count

    @property
    def parameters(self) -> CkksParameters:
        return self.context.parameters

    @property
    def kernel_counter(self):
        """Kernel instrumentation counters of this context."""
        return self.context.kernels.counter

    @property
    def compute_backend(self) -> str:
        """Name of the backend this context's NTT-engine GEMMs launch on.

        An explicit ``backend=`` pin covers the engine GEMM launches (the
        dominant cost); element-wise mat-mod kernels and the basis-
        conversion GEMM always follow the *process-wide* active backend.
        To route every launch, select the backend process-wide instead
        (``REPRO_BACKEND`` or :func:`repro.set_active_backend`) — with no
        pin, this property reports exactly that backend.
        """
        return resolve_backend(self.context.planner.backend).name

    @property
    def bootstrapper(self) -> Bootstrapper:
        """The lazily built :class:`~repro.ckks.bootstrap.Bootstrapper`.

        Constructed on first use from ``bootstrap_config`` (or the
        defaults) so contexts that never bootstrap pay nothing for the
        DFT matrices.
        """
        if self._bootstrapper is None:
            self._bootstrapper = Bootstrapper(self.context,
                                              self.bootstrap_config)
        return self._bootstrapper

    def ensure_rotation_keys(self, steps: Iterable[int]) -> None:
        """Generate any missing rotation keys for ``steps``."""
        self._keygen.ensure_rotation_keys(self.secret_key, self.rotation_keys,
                                          steps)

    # ------------------------------------------------------------------
    # Encryption / decryption
    # ------------------------------------------------------------------
    def encode(self, values: Sequence[complex], *, level: Optional[int] = None) -> Plaintext:
        return self.encryptor.encode(values, level=level)

    def encrypt(self, values: Sequence[complex]) -> Ciphertext:
        return self.encryptor.encrypt(values)

    def decrypt(self, ciphertext: Ciphertext) -> np.ndarray:
        return self.decryptor.decrypt_to_slots(ciphertext)

    def decrypt_real(self, ciphertext: Ciphertext) -> np.ndarray:
        return self.decryptor.decrypt_real(ciphertext)

    # ------------------------------------------------------------------
    # FHE operations (thin wrappers with the keys filled in)
    # ------------------------------------------------------------------
    def add(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        return self.evaluator.add(lhs, rhs)

    def subtract(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        return self.evaluator.subtract(lhs, rhs)

    def multiply(self, lhs: Ciphertext, rhs: Ciphertext, *, rescale: bool = True) -> Ciphertext:
        if rescale:
            return self.evaluator.multiply_and_rescale(lhs, rhs, self.relinearization_key)
        return self.evaluator.multiply(lhs, rhs, self.relinearization_key)

    def multiply_plain(self, ciphertext: Ciphertext, values: Sequence[complex],
                       *, rescale: bool = True) -> Ciphertext:
        plaintext = self.encryptor.encode(values, level=ciphertext.level)
        product = self.evaluator.multiply_plain(ciphertext, plaintext)
        return self.evaluator.rescale(product) if rescale else product

    def add_plain(self, ciphertext: Ciphertext, values: Sequence[complex]) -> Ciphertext:
        plaintext = self.encryptor.encode(values, level=ciphertext.level,
                                          scale=ciphertext.scale)
        return self.evaluator.add_plain(ciphertext, plaintext)

    def rotate(self, ciphertext: Ciphertext, steps: int) -> Ciphertext:
        self.ensure_rotation_keys([steps % self.slot_count])
        return self.evaluator.rotate(ciphertext, steps, self.rotation_keys)

    def conjugate(self, ciphertext: Ciphertext) -> Ciphertext:
        return self.evaluator.conjugate(ciphertext, self.rotation_keys)

    def rescale(self, ciphertext: Ciphertext) -> Ciphertext:
        return self.evaluator.rescale(ciphertext)

    def inner_sum(self, ciphertext: Ciphertext, count: Optional[int] = None) -> Ciphertext:
        """Sum the first ``count`` (power-of-two) slots into every slot.

        ``count == 1`` is a no-op sum and needs no rotation keys at all;
        larger counts need the powers of two strictly below ``count``.
        """
        count = self.slot_count if count is None else count
        self.ensure_rotation_keys([1 << i for i in range(count.bit_length() - 1)])
        return self.evaluator.rotate_and_sum(ciphertext, self.rotation_keys, count)

    def bootstrap(self, ciphertext: Ciphertext) -> Ciphertext:
        """Refresh one exhausted (level-0) ciphertext to a high level."""
        bootstrapper = self.bootstrapper
        self.ensure_rotation_keys(bootstrapper.required_rotation_steps())
        return bootstrapper.bootstrap(ciphertext, self.evaluator,
                                      self.encryptor, self.relinearization_key,
                                      self.rotation_keys)

    # ------------------------------------------------------------------
    # Batched FHE operations (independent streams, fused launches)
    # ------------------------------------------------------------------
    def add_many(self, lhs_streams: Sequence[Ciphertext],
                 rhs_streams: Sequence[Ciphertext]) -> list:
        """Batched HADD over independent pairs (fused ``(L, B, N)`` launches).

        The API layer picks the batch size *B* through the
        :class:`~repro.batching.scheduler.BatchScheduler` and feeds the
        streams to the :class:`~repro.ckks.batched_evaluator.BatchedEvaluator`
        one hardware-sized chunk at a time.
        """
        return self._run_batched(self.batched_evaluator.add,
                                 lhs_streams, rhs_streams)

    def multiply_many(self, lhs_streams: Sequence[Ciphertext],
                      rhs_streams: Sequence[Ciphertext], *,
                      rescale: bool = True) -> list:
        """Batched HMULT (optionally with the trailing batched RESCALE)."""
        if rescale:
            return self._run_batched(
                lambda lhs, rhs: self.batched_evaluator.multiply_and_rescale(
                    lhs, rhs, self.relinearization_key),
                lhs_streams, rhs_streams)
        return self._run_batched(
            lambda lhs, rhs: self.batched_evaluator.multiply(
                lhs, rhs, self.relinearization_key),
            lhs_streams, rhs_streams)

    def multiply_plain_many(self, ciphertexts: Sequence[Ciphertext],
                            values_streams: Sequence[Sequence[complex]], *,
                            rescale: bool = True) -> list:
        """Batched CMULT: each stream multiplied by its own slot vector."""
        ciphertexts = list(ciphertexts)
        values_streams = list(values_streams)
        if len(ciphertexts) != len(values_streams):
            raise ValueError("need one value vector per ciphertext stream")
        plaintexts = [
            self.encryptor.encode(values, level=ciphertext.level)
            for ciphertext, values in zip(ciphertexts, values_streams)
        ]
        products = self._run_batched(self.batched_evaluator.multiply_plain,
                                     ciphertexts, plaintexts)
        if rescale:
            return self.rescale_many(products)
        return products

    def rescale_many(self, ciphertexts: Sequence[Ciphertext]) -> list:
        """Batched RESCALE over independent streams."""
        ciphertexts = list(ciphertexts)
        results = []
        for start, stop in self._batch_bounds(ciphertexts):
            results.extend(self.batched_evaluator.rescale(ciphertexts[start:stop]))
        return results

    def rotate_many(self, ciphertexts: Sequence[Ciphertext],
                    steps: Union[int, Sequence[int]]) -> list:
        """Batched HROTATE: the automorphism plus a B-fused key switch.

        ``steps`` is either one shared step count or one per stream;
        streams sharing a step fuse into single launches (the switch key
        is per step, so only same-step streams can share an inner
        product).  Zero-step streams are copies and need no keys at all.
        """
        ciphertexts = list(ciphertexts)
        if isinstance(steps, (int, np.integer)):
            step_list = [int(steps)] * len(ciphertexts)
        else:
            step_list = [int(step) for step in steps]
            if len(step_list) != len(ciphertexts):
                raise ValueError("need one step count per ciphertext stream")
        normalized = [step % self.slot_count for step in step_list]
        self.ensure_rotation_keys(sorted({step for step in normalized if step}))
        results: list = [None] * len(ciphertexts)
        step_groups: dict = {}
        for index, step in enumerate(normalized):
            step_groups.setdefault(step, []).append(index)
        for step, indices in step_groups.items():
            streams = [ciphertexts[i] for i in indices]
            rotated: list = []
            for start, stop in self._batch_bounds(streams):
                rotated.extend(self.batched_evaluator.rotate(
                    streams[start:stop], step, self.rotation_keys))
            for i, ciphertext in zip(indices, rotated):
                results[i] = ciphertext
        return results

    def conjugate_many(self, ciphertexts: Sequence[Ciphertext]) -> list:
        """Batched HCONJ over independent streams (B-fused key switch)."""
        ciphertexts = list(ciphertexts)
        results = []
        for start, stop in self._batch_bounds(ciphertexts):
            results.extend(self.batched_evaluator.conjugate(
                ciphertexts[start:stop], self.rotation_keys))
        return results

    def bootstrap_many(self, ciphertexts: Sequence[Ciphertext]) -> list:
        """Batched bootstrap: the whole pipeline as fused ``B``-axis launches.

        ModRaise, the CoeffToSlot / SlotToCoeff BSGS transforms and the
        EvalMod sine ladder all run through the
        :class:`~repro.ckks.batched_evaluator.BatchedEvaluator`, so every
        HMULT / CMULT / HADD / HROTATE in the pipeline is one fused
        ``(B, ...)`` launch instead of ``B`` scalar ones.  Bit-identical to
        looping :meth:`bootstrap`.
        """
        ciphertexts = list(ciphertexts)
        if not ciphertexts:
            return []
        bootstrapper = self.bootstrapper
        self.ensure_rotation_keys(bootstrapper.required_rotation_steps())
        # Plan the batch size at the raised level — that is where the
        # pipeline's working set lives, not at the exhausted input level.
        raised_level = bootstrapper.mod_raise.target_level
        size = max(1, self.plan_batch(level=raised_level).batch_size)
        results = []
        for start in range(0, len(ciphertexts), size):
            results.extend(bootstrapper.bootstrap_many(
                ciphertexts[start:start + size], self.batched_evaluator,
                self.encryptor, self.relinearization_key, self.rotation_keys))
        return results

    def _run_batched(self, operation, lhs_streams, rhs_streams) -> list:
        lhs_streams, rhs_streams = list(lhs_streams), list(rhs_streams)
        if len(lhs_streams) != len(rhs_streams):
            raise ValueError("stream lists have different lengths")
        results = []
        for start, stop in self._batch_bounds(lhs_streams):
            results.extend(operation(lhs_streams[start:stop],
                                     rhs_streams[start:stop]))
        return results

    def _batch_bounds(self, streams: Sequence[Ciphertext]):
        """Chunk boundaries sized by the scheduler's chosen batch size."""
        if not streams:
            return
        # The deepest stream has the largest working set; let it bound B.
        level = max(ciphertext.level for ciphertext in streams)
        size = max(1, self.plan_batch(level=level).batch_size)
        for start in range(0, len(streams), size):
            yield start, min(start + size, len(streams))

    # ------------------------------------------------------------------
    def plan_batch(self, *, level: Optional[int] = None,
                   requested: Optional[int] = None) -> BatchPlan:
        """Ask the API layer for the operation-level batch size it would use."""
        level = self.context.max_level if level is None else level
        return self.batch_scheduler.plan(
            self.context.ring_degree, level + 1,
            requested=requested or self.parameters.batch_size,
        )

    # ------------------------------------------------------------------
    def create_serving_engine(self, **kwargs) -> "ServingEngine":
        """A multi-tenant :class:`~repro.serving.ServingEngine` over this context.

        Keyword arguments are forwarded to the engine constructor
        (``config=``, ``registry=``, ``scheduler=``).  Imported lazily so
        the api layer stays importable without the serving subsystem.
        """
        from ..serving import ServingEngine
        return ServingEngine(self, **kwargs)
