"""TensorFheContext: the high-level API layer of the paper (Section IV-E).

The paper's API layer collects FHE requests from the application, decomposes
them into kernel workflows, picks batch sizes and invokes the kernel layer.
``TensorFheContext`` is the library's equivalent single entry point: it owns
the CKKS context, all key material, the encryptor/decryptor/evaluator, the
batch scheduler and the kernel instrumentation, and exposes the FHE
operations as plain methods so applications never touch the lower layers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..backend.base import ArrayBackend
from ..backend.registry import resolve_backend
from ..batching.scheduler import BatchPlan, BatchScheduler
from ..ckks.ciphertext import Ciphertext, Plaintext
from ..ckks.context import CkksContext
from ..ckks.decryptor import Decryptor
from ..ckks.encryptor import Encryptor
from ..ckks.evaluator import Evaluator
from ..ckks.keygen import KeyGenerator
from ..ckks.params import CkksParameters, get_preset
from ..gpu.spec import A100, GpuSpec

__all__ = ["TensorFheContext"]


class TensorFheContext:
    """One-stop facade over key generation, encryption and evaluation."""

    def __init__(self, parameters: CkksParameters, *, seed: Optional[int] = None,
                 rotation_steps: Iterable[int] = (), gpu: GpuSpec = A100,
                 backend: Union[None, str, "ArrayBackend"] = None) -> None:
        self.context = CkksContext(parameters, seed=seed, backend=backend)
        self.gpu = gpu
        self._keygen = KeyGenerator(self.context)
        self.secret_key = self._keygen.generate_secret_key()
        self.public_key = self._keygen.generate_public_key(self.secret_key)
        self.relinearization_key = self._keygen.generate_relinearization_key(self.secret_key)
        self.rotation_keys = self._keygen.generate_rotation_keys(
            self.secret_key, rotation_steps)
        self.encryptor = Encryptor(self.context, self.public_key, self.secret_key)
        self.decryptor = Decryptor(self.context, self.secret_key)
        self.evaluator = Evaluator(self.context)
        self.batch_scheduler = BatchScheduler(gpu)

    # ------------------------------------------------------------------
    @classmethod
    def from_preset(cls, name: str, *, seed: Optional[int] = None,
                    rotation_steps: Iterable[int] = (),
                    backend: Union[None, str, "ArrayBackend"] = None) -> "TensorFheContext":
        """Build a context from a named parameter preset."""
        return cls(get_preset(name), seed=seed, rotation_steps=rotation_steps,
                   backend=backend)

    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return self.context.slot_count

    @property
    def parameters(self) -> CkksParameters:
        return self.context.parameters

    @property
    def kernel_counter(self):
        """Kernel instrumentation counters of this context."""
        return self.context.kernels.counter

    @property
    def compute_backend(self) -> str:
        """Name of the backend this context's NTT-engine GEMMs launch on.

        An explicit ``backend=`` pin covers the engine GEMM launches (the
        dominant cost); element-wise mat-mod kernels and the basis-
        conversion GEMM always follow the *process-wide* active backend.
        To route every launch, select the backend process-wide instead
        (``REPRO_BACKEND`` or :func:`repro.set_active_backend`) — with no
        pin, this property reports exactly that backend.
        """
        return resolve_backend(self.context.planner.backend).name

    def ensure_rotation_keys(self, steps: Iterable[int]) -> None:
        """Generate any missing rotation keys for ``steps``."""
        missing = [step for step in steps
                   if step % self.slot_count and step not in self.rotation_keys.keys]
        for step in missing:
            self.rotation_keys.add(step, self._keygen.generate_rotation_key(
                self.secret_key, step))

    # ------------------------------------------------------------------
    # Encryption / decryption
    # ------------------------------------------------------------------
    def encode(self, values: Sequence[complex], *, level: Optional[int] = None) -> Plaintext:
        return self.encryptor.encode(values, level=level)

    def encrypt(self, values: Sequence[complex]) -> Ciphertext:
        return self.encryptor.encrypt(values)

    def decrypt(self, ciphertext: Ciphertext) -> np.ndarray:
        return self.decryptor.decrypt_to_slots(ciphertext)

    def decrypt_real(self, ciphertext: Ciphertext) -> np.ndarray:
        return self.decryptor.decrypt_real(ciphertext)

    # ------------------------------------------------------------------
    # FHE operations (thin wrappers with the keys filled in)
    # ------------------------------------------------------------------
    def add(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        return self.evaluator.add(lhs, rhs)

    def subtract(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        return self.evaluator.subtract(lhs, rhs)

    def multiply(self, lhs: Ciphertext, rhs: Ciphertext, *, rescale: bool = True) -> Ciphertext:
        if rescale:
            return self.evaluator.multiply_and_rescale(lhs, rhs, self.relinearization_key)
        return self.evaluator.multiply(lhs, rhs, self.relinearization_key)

    def multiply_plain(self, ciphertext: Ciphertext, values: Sequence[complex],
                       *, rescale: bool = True) -> Ciphertext:
        plaintext = self.encryptor.encode(values, level=ciphertext.level)
        product = self.evaluator.multiply_plain(ciphertext, plaintext)
        return self.evaluator.rescale(product) if rescale else product

    def add_plain(self, ciphertext: Ciphertext, values: Sequence[complex]) -> Ciphertext:
        plaintext = self.encryptor.encode(values, level=ciphertext.level,
                                          scale=ciphertext.scale)
        return self.evaluator.add_plain(ciphertext, plaintext)

    def rotate(self, ciphertext: Ciphertext, steps: int) -> Ciphertext:
        self.ensure_rotation_keys([steps % self.slot_count])
        return self.evaluator.rotate(ciphertext, steps, self.rotation_keys)

    def conjugate(self, ciphertext: Ciphertext) -> Ciphertext:
        return self.evaluator.conjugate(ciphertext, self.rotation_keys)

    def rescale(self, ciphertext: Ciphertext) -> Ciphertext:
        return self.evaluator.rescale(ciphertext)

    def inner_sum(self, ciphertext: Ciphertext, count: Optional[int] = None) -> Ciphertext:
        """Sum the first ``count`` (power-of-two) slots into every slot."""
        count = self.slot_count if count is None else count
        self.ensure_rotation_keys([1 << i for i in range(max(1, count.bit_length() - 1))])
        return self.evaluator.rotate_and_sum(ciphertext, self.rotation_keys, count)

    # ------------------------------------------------------------------
    def plan_batch(self, *, level: Optional[int] = None,
                   requested: Optional[int] = None) -> BatchPlan:
        """Ask the API layer for the operation-level batch size it would use."""
        level = self.context.max_level if level is None else level
        return self.batch_scheduler.plan(
            self.context.ring_degree, level + 1,
            requested=requested or self.parameters.batch_size,
        )
