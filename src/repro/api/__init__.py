"""High-level API layer (the paper's API layer): a single facade object."""

from .facade import TensorFheContext

__all__ = ["TensorFheContext"]
