"""Four-step GEMM NTT (Eq. 9 of the paper, the *TensorFHE-CO* kernel).

The length-N input is reshaped into an ``N1 x N2`` matrix (``N = N1*N2``)
and the negacyclic NTT becomes three small GEMM/Hadamard steps::

    B = W1 @ a_mat            # inner length-N1 negacyclic NTTs (columns)
    C = B  ⊙ W2               # Hadamard twiddle correction
    R = C @ W3                # outer length-N2 cyclic DFTs (rows)
    A[k1 + N1*k2] = R[k1, k2] # column-major flattening

This keeps the twiddle matrices at ``O(N)`` size while exposing the work
as dense GEMMs — the form the tensor-core engine then lowers to INT8.
"""

from __future__ import annotations

import numpy as np

from .base import NttEngine
from .gemm_utils import modular_hadamard, modular_matmul
from .twiddle import TwiddleCache, get_twiddle_cache

__all__ = ["FourStepNtt"]


class FourStepNtt(NttEngine):
    """Three-GEMM decomposition of the negacyclic NTT (Eq. 9)."""

    name = "four_step"

    def __init__(self, ring_degree: int, modulus: int,
                 twiddles: TwiddleCache = None) -> None:
        super().__init__(ring_degree, modulus)
        self.twiddles = twiddles or get_twiddle_cache(ring_degree, modulus)
        self.n1, self.n2 = self.twiddles.four_step_shapes()

    # -- forward -------------------------------------------------------
    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = self._validate(coefficients)
        a_mat = coefficients.reshape(self.n1, self.n2)
        w1, w2, w3 = self.twiddles.four_step_forward()
        inner = self._gemm(w1, a_mat)
        twisted = self._hadamard(inner, w2)
        outer = self._gemm(twisted, w3)
        # Output index is k1 + N1*k2, i.e. column-major flattening.
        return outer.flatten(order="F")

    # -- inverse -------------------------------------------------------
    def inverse(self, values: np.ndarray) -> np.ndarray:
        values = self._validate(values)
        a_mat = values.reshape(self.n1, self.n2)
        v1, v2, v3 = self.twiddles.four_step_inverse()
        inner = self._gemm(v1, a_mat)
        twisted = self._hadamard(inner, v2)
        outer = self._gemm(twisted, v3)
        flattened = outer.flatten(order="F")
        return (flattened * self.twiddles.degree_inverse) % self.modulus

    # -- hooks the tensor-core engine overrides -------------------------
    def _gemm(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Modular GEMM on the "CUDA cores" (plain int64 matmul)."""
        return modular_matmul(lhs, rhs, self.modulus)

    def _hadamard(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Modular Hadamard product on the CUDA cores."""
        return modular_hadamard(lhs, rhs, self.modulus)
