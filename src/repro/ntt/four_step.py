"""Four-step GEMM NTT (Eq. 9 of the paper, the *TensorFHE-CO* kernel).

The length-N input is reshaped into an ``N1 x N2`` matrix (``N = N1*N2``)
and the negacyclic NTT becomes three small GEMM/Hadamard steps::

    B = W1 @ a_mat            # inner length-N1 negacyclic NTTs (columns)
    C = B  ⊙ W2               # Hadamard twiddle correction
    R = C @ W3                # outer length-N2 cyclic DFTs (rows)
    A[k1 + N1*k2] = R[k1, k2] # column-major flattening

This keeps the twiddle matrices at ``O(N)`` size while exposing the work
as dense GEMMs — the form the tensor-core engine then lowers to INT8.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..backend.blas_backend import FloatResidues
from ..backend.registry import resolve_backend
from ..backend.residency import DeviceBuffer, contiguous, is_buffer
from ..numtheory.modular import mat_mod_mul
from .base import NttEngine
from .gemm_utils import (
    modular_hadamard,
    modular_hadamard_limbs,
    modular_matmul,
    modular_matmul_limbs,
)
from .twiddle import TwiddleCache, get_twiddle_cache, get_twiddle_stack

__all__ = ["FourStepNtt"]


class FourStepNtt(NttEngine):
    """Three-GEMM decomposition of the negacyclic NTT (Eq. 9)."""

    name = "four_step"

    def __init__(self, ring_degree: int, modulus: int,
                 twiddles: Optional[TwiddleCache] = None, *,
                 backend=None) -> None:
        super().__init__(ring_degree, modulus, backend=backend)
        self.twiddles = twiddles or get_twiddle_cache(ring_degree, modulus)
        self.n1, self.n2 = self.twiddles.four_step_shapes()
        # Shape-matched scratch for the float-resident ops pipeline (see
        # _float_scratch); built lazily, replaced when the shape changes.
        self._float_buffers = None

    # -- forward -------------------------------------------------------
    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = self._validate(coefficients)
        a_mat = coefficients.reshape(self.n1, self.n2)
        w1, w2, w3 = self.twiddles.four_step_forward()
        inner = self._gemm(w1, a_mat)
        twisted = self._hadamard(inner, w2)
        outer = self._gemm(twisted, w3)
        # Output index is k1 + N1*k2, i.e. column-major flattening.
        return outer.flatten(order="F")

    # -- inverse -------------------------------------------------------
    def inverse(self, values: np.ndarray) -> np.ndarray:
        values = self._validate(values)
        a_mat = values.reshape(self.n1, self.n2)
        v1, v2, v3 = self.twiddles.four_step_inverse()
        inner = self._gemm(v1, a_mat)
        twisted = self._hadamard(inner, v2)
        outer = self._gemm(twisted, v3)
        flattened = outer.flatten(order="F")
        return (flattened * self.twiddles.degree_inverse) % self.modulus

    # -- limb-batched path: the whole RNS polynomial in three launches --
    # Residency-handle inputs pick the stack's resident operand handles
    # and keep every reshape/transpose on the resident image, so both
    # transform directions thread handles end-to-end.
    def forward_limbs(self, residues: np.ndarray,
                      moduli: Sequence[int]) -> np.ndarray:
        """Forward NTT of all limbs via batched three-GEMM decomposition.

        The per-modulus ``W1/W2/W3`` operands are stacked along the limb
        axis (cached per ``(N, moduli)``), so each of the three steps is a
        single 3-D ``matmul``/Hadamard launch over every limb at once.
        """
        residues, moduli_array = self._validate_limbs(residues, moduli)
        residues = self._stage_resident(residues)
        stack = get_twiddle_stack(self.ring_degree, tuple(int(q) for q in moduli))
        if is_buffer(residues):
            w1, w2, w3 = stack.four_step_forward_buffers()
        else:
            w1, w2, w3 = stack.four_step_forward()
        w1_cache, w3_cache = stack.four_step_forward_caches()
        limbs = residues.shape[0]
        a_mat = residues.reshape(limbs, self.n1, self.n2)
        inner = self._gemm_limbs(w1, a_mat, moduli_array, lhs_cache=w1_cache)
        twisted = self._hadamard_limbs(inner, w2, moduli_array)
        outer = self._gemm_limbs(twisted, w3, moduli_array, rhs_cache=w3_cache)
        # Column-major flattening of every (N1, N2) slice, as in forward().
        return outer.transpose(0, 2, 1).reshape(limbs, self.ring_degree)

    def inverse_limbs(self, values: np.ndarray,
                      moduli: Sequence[int]) -> np.ndarray:
        """Inverse NTT of all limbs via batched three-GEMM decomposition."""
        values, moduli_array = self._validate_limbs(values, moduli)
        values = self._stage_resident(values)
        stack = get_twiddle_stack(self.ring_degree, tuple(int(q) for q in moduli))
        if is_buffer(values):
            v1, v2, v3 = stack.four_step_inverse_buffers()
        else:
            v1, v2, v3 = stack.four_step_inverse()
        v1_cache, v3_cache = stack.four_step_inverse_caches()
        limbs = values.shape[0]
        a_mat = values.reshape(limbs, self.n1, self.n2)
        inner = self._gemm_limbs(v1, a_mat, moduli_array, lhs_cache=v1_cache)
        twisted = self._hadamard_limbs(inner, v2, moduli_array)
        outer = self._gemm_limbs(twisted, v3, moduli_array, rhs_cache=v3_cache)
        flattened = outer.transpose(0, 2, 1).reshape(limbs, self.ring_degree)
        # Funnel multiply: exact even for moduli whose residue products
        # overflow int64 (the funnel's object-dtype path covers >= 2**31).
        return mat_mod_mul(flattened, stack.degree_inverse_column, moduli_array)

    # -- operation-batched path: the whole (B, L, N) stack, 3 launches --
    def forward_ops(self, stacks: np.ndarray,
                    moduli: Sequence[int]) -> np.ndarray:
        """Forward NTT of a ``(B, L, N)`` stack in three fused launches.

        The operation axis folds into the free dimension of each GEMM: the
        inner NTT runs on ``(limbs, N1, B*N2)`` operands, the Hadamard
        twiddle broadcasts across the batch (a zero-copy ``(limbs, N1, 1,
        N2)`` view — no per-batch operand is materialised), and the outer
        DFT folds the batch into its row dimension — so every transform
        step is one backend launch covering all ``B`` operations and all
        limbs.
        """
        stacks, moduli_array = self._validate_ops(stacks, moduli)
        stacks = self._stage_resident(stacks)
        stack = get_twiddle_stack(self.ring_degree, tuple(int(q) for q in moduli))
        fused = self._float_ops_pipeline(stacks, stack, inverse=False)
        if fused is not None:
            return fused
        if is_buffer(stacks):
            w1, w2, w3 = stack.four_step_forward_buffers()
        else:
            w1, w2, w3 = stack.four_step_forward()
        w1_cache, w3_cache = stack.four_step_forward_caches()
        return self._ops_pipeline(stacks, moduli_array, w1, w2, w3,
                                  w1_cache, w3_cache)

    def inverse_ops(self, stacks: np.ndarray,
                    moduli: Sequence[int]) -> np.ndarray:
        """Inverse NTT of a ``(B, L, N)`` stack in three fused launches."""
        stacks, moduli_array = self._validate_ops(stacks, moduli)
        if stacks.shape[0] == 0:
            return stacks
        stacks = self._stage_resident(stacks)
        stack = get_twiddle_stack(self.ring_degree, tuple(int(q) for q in moduli))
        fused = self._float_ops_pipeline(stacks, stack, inverse=True)
        if fused is not None:
            return fused
        if is_buffer(stacks):
            v1, v2, v3 = stack.four_step_inverse_buffers()
        else:
            v1, v2, v3 = stack.four_step_inverse()
        v1_cache, v3_cache = stack.four_step_inverse_caches()
        flattened = self._ops_pipeline(stacks, moduli_array, v1, v2, v3,
                                       v1_cache, v3_cache)
        batch, limbs = flattened.shape[0], flattened.shape[1]
        # Funnel multiply: exact even for moduli whose residue products
        # overflow int64 (the funnel's object-dtype path covers >= 2**31).
        scaled = mat_mod_mul(
            flattened.reshape(batch * limbs, self.ring_degree),
            np.tile(stack.degree_inverse_column, (batch, 1)),
            np.tile(moduli_array, batch))
        return scaled.reshape(batch, limbs, self.ring_degree)

    def _float_scratch(self, shape):
        """Three reusable float64 buffers of ``shape`` (input, ping, pong).

        The float pipeline's temporaries are tens of MB at production
        shapes; faulting them in fresh per transform costs more than the
        reduction arithmetic itself, so one shape-matched set lives on the
        engine and is ping-ponged through.  Results that escape to the
        caller are always fresh copies, never views of these buffers.
        """
        cached = self._float_buffers
        if cached is None or cached[0].shape != shape:
            cached = tuple(np.empty(shape, dtype=np.float64)
                           for _ in range(3))
            self._float_buffers = cached
        return cached

    def _float_ops_pipeline(self, stacks, stack, *, inverse: bool):
        """Float64-resident three-launch pipeline, or None when ineligible.

        The perf shape of the paper's tensor-core kernel: both GEMMs run as
        raw dgemms on the ``(B, limbs, N1, N2)`` layout (a broadcast
        ``matmul`` — no batch transpose, no contiguous copy between steps)
        and every intermediate modular reduction is a lazy float64 Barrett
        pass (:mod:`repro.numtheory.floatmod`) ping-ponged between two
        buffers, so nothing int64 is materialised until the very end — and
        for residency-handle inputs not even then: the result is a
        float-resident handle whose int64 image is built lazily at the
        host boundary.

        Eligibility: the resolved backend's ``capabilities()`` report
        declares ``float_residency``, this engine's GEMM/Hadamard hooks
        are not overridden (the tensor-core engine lowers them to INT8 and
        must keep doing so), and the whole transform fits the 2**53
        exactness guard.  Any miss returns None and the caller runs the
        exact int64 pipeline — bit-identical either way.
        """
        if (type(self)._gemm_limbs is not FourStepNtt._gemm_limbs
                or type(self)._hadamard_limbs is not FourStepNtt._hadamard_limbs):
            return None
        backend = resolve_backend(self.backend)
        if not backend.capabilities().get("float_residency", False):
            return None
        chain = stack.barrett_chain
        q = chain.qmax
        # Largest intermediate: the inner GEMM on canonical operands, the
        # Hadamard on lazy residues (|x| <= 2q), or the outer GEMM on lazy
        # residues; the inverse path's degree-inverse multiply on a lazy
        # residue is bounded by 2q*(q-1) and already covered.
        bound = max(self.n1 * (q - 1) ** 2, 2 * self.n2 * q * (q - 1))
        if not chain.fits(bound):
            return None
        batch, limbs = stacks.shape[0], stacks.shape[1]
        if batch == 0:
            return None
        if inverse:
            g1_cache, g3_cache = stack.four_step_inverse_caches()
            g2f = stack.four_step_inverse_hadamard_cache().full()
        else:
            g1_cache, g3_cache = stack.four_step_forward_caches()
            g2f = stack.four_step_forward_hadamard_cache().full()
        # Scratch reuse: three shape-matched float64 buffers live on the
        # engine between calls.  Freshly mmapped 10s-of-MB temporaries cost
        # more in page faults than the arithmetic they hold at these
        # shapes, so the pipeline ping-pongs through warm buffers instead
        # (results handed to the caller are always fresh copies below).
        shape = (batch, limbs, self.n1, self.n2)
        conv, work_a, work_b = self._float_scratch(shape)
        a_f = None
        if is_buffer(stacks):
            cache = stacks.float_cache()
            if cache is not None:
                a_f = cache.full().reshape(shape)
        if a_f is None:
            host = (stacks.ensure_host() if is_buffer(stacks)
                    else stacks)
            np.copyto(conv.reshape(batch, limbs, self.ring_degree), host,
                      casting="unsafe")
            a_f = conv
        # GEMM 1 (inner NTTs), lazy-reduced into the ping-pong buffer.
        backend.fmatmul(g1_cache.full()[None], a_f, out=work_a)
        lazy = chain.lazy_reduce(work_a, axis=1, out=work_b)
        # Hadamard twiddle on lazy residues (broadcast over the batch).
        np.multiply(lazy, g2f[None], out=work_a)
        lazy = chain.lazy_reduce(work_a, axis=1, out=work_b)
        # GEMM 2 (outer DFTs) and canonicalisation.  ``conv`` is free again
        # (the converted input is only read by GEMM 1), so it takes the
        # outer product.
        outer = backend.fmatmul(lazy, g3_cache.full()[None], out=conv)
        if inverse:
            # Fold the degree-inverse multiply into the reduction chain:
            # one lazy pass confines the residues, the scalar multiply
            # stays within the guard, and the canonical passes finish.
            lazy = chain.lazy_reduce(outer, axis=1, out=work_a)
            np.multiply(
                lazy, stack.degree_inverse_float.reshape(1, limbs, 1, 1),
                out=outer)
        result = chain.canonical_reduce(outer, axis=1, out=outer,
                                        scratch=work_a)
        # Column-major flattening of every (N1, N2) slice, per operation.
        flat = result.transpose(0, 1, 3, 2)
        if is_buffer(stacks):
            values = np.ascontiguousarray(flat).reshape(
                batch, limbs, self.ring_degree)
            return DeviceBuffer.from_float(FloatResidues(values, q - 1))
        # Merged transpose + cast: one pass writes the int64 output.
        out = np.empty(flat.shape, dtype=np.int64)
        np.copyto(out, flat, casting="unsafe")
        return out.reshape(batch, limbs, self.ring_degree)

    def _ops_pipeline(self, stacks: np.ndarray, moduli_array: np.ndarray,
                      w1: np.ndarray, w2: np.ndarray, w3: np.ndarray,
                      w1_cache, w3_cache) -> np.ndarray:
        """The three fused launches shared by both transform directions.

        Works uniformly on host arrays and residency handles: every
        reshape/transpose is a resident-image view, so a handle batch
        flows through all three launches without a host copy.
        """
        # Stage the shared Hadamard-twiddle handle before slicing it: the
        # broadcast view below is a fresh handle per call, so the upload
        # must land on the cached parent (w1/w3 go through the funnel
        # whole and stage themselves).
        w2 = self._stage_resident(w2)
        batch, limbs = stacks.shape[0], stacks.shape[1]
        a_mat = stacks.reshape(batch, limbs, self.n1, self.n2)
        inner = self._gemm_limbs(
            w1,
            contiguous(a_mat.transpose(1, 2, 0, 3)).reshape(
                limbs, self.n1, batch * self.n2),
            moduli_array, lhs_cache=w1_cache)
        twisted = self._hadamard_limbs(
            inner.reshape(limbs, self.n1, batch, self.n2),
            w2[:, :, None, :], moduli_array)
        outer = self._gemm_limbs(
            contiguous(
                twisted.transpose(0, 2, 1, 3)).reshape(
                    limbs, batch * self.n1, self.n2),
            w3, moduli_array, rhs_cache=w3_cache)
        # Column-major flattening of every (N1, N2) slice, per operation.
        return contiguous(
            outer.reshape(limbs, batch, self.n1, self.n2)
            .transpose(1, 0, 3, 2)).reshape(batch, limbs, self.ring_degree)

    # -- hooks the tensor-core engine overrides -------------------------
    def _gemm(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Modular GEMM on the "CUDA cores" (active backend)."""
        return modular_matmul(lhs, rhs, self.modulus, backend=self.backend)

    def _hadamard(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Modular Hadamard product on the CUDA cores."""
        return modular_hadamard(lhs, rhs, self.modulus, backend=self.backend)

    def _gemm_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                    moduli: np.ndarray, *, lhs_cache=None,
                    rhs_cache=None) -> np.ndarray:
        """Limb-batched modular GEMM (one 3-D launch on the active backend)."""
        return modular_matmul_limbs(lhs, rhs, moduli,
                                    lhs_cache=lhs_cache, rhs_cache=rhs_cache,
                                    backend=self.backend)

    def _hadamard_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                        moduli: np.ndarray) -> np.ndarray:
        """Limb-batched modular Hadamard product."""
        return modular_hadamard_limbs(lhs, rhs, moduli, backend=self.backend)
