"""Overflow-safe modular matrix products for the GEMM-based NTT engines.

NumPy's int64 matmul silently wraps on overflow, so the GEMM engines split
the inner (reduction) dimension into chunks small enough that
``chunk * (q-1)**2`` stays below 2**62 and reduce modulo ``q`` between
chunks.  This matches the paper's observation that avoiding per-element
modulo reductions and instead reducing an accumulator occasionally is what
makes the matrix formulation fast; here it additionally keeps the Python
implementation exact for arbitrary 30-bit moduli.
"""

from __future__ import annotations

import numpy as np

__all__ = ["modular_matmul", "modular_hadamard", "max_safe_chunk"]

_SAFE_ACCUMULATOR_BITS = 62


def max_safe_chunk(modulus: int) -> int:
    """Largest inner-dimension chunk whose accumulation cannot overflow int64."""
    limit = 1 << _SAFE_ACCUMULATOR_BITS
    per_term = (modulus - 1) * (modulus - 1)
    if per_term == 0:
        return limit
    return max(1, limit // per_term)


def modular_matmul(lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
    """Return ``(lhs @ rhs) mod modulus`` exactly, using chunked accumulation."""
    lhs = np.asarray(lhs, dtype=np.int64)
    rhs = np.asarray(rhs, dtype=np.int64)
    if lhs.shape[-1] != rhs.shape[0]:
        raise ValueError(
            "inner dimensions do not match: %s @ %s" % (lhs.shape, rhs.shape)
        )
    inner = lhs.shape[-1]
    chunk = max_safe_chunk(modulus)
    if chunk >= inner:
        return (lhs @ rhs) % modulus
    result = np.zeros(lhs.shape[:-1] + rhs.shape[1:], dtype=np.int64)
    for start in range(0, inner, chunk):
        stop = min(start + chunk, inner)
        partial = (lhs[..., start:stop] @ rhs[start:stop]) % modulus
        result = (result + partial) % modulus
    return result


def modular_hadamard(lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(lhs * rhs) mod modulus`` on int64 arrays."""
    lhs = np.asarray(lhs, dtype=np.int64)
    rhs = np.asarray(rhs, dtype=np.int64)
    if modulus >= (1 << 31):
        product = lhs.astype(object) * rhs.astype(object)
        return np.asarray(product % modulus, dtype=np.int64)
    return (lhs * rhs) % modulus
