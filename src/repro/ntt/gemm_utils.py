"""The modular-GEMM funnel: validation, exactness guards, backend dispatch.

Every GEMM-shaped launch of the library — the batched NTT engines, the fast
basis conversion, the per-modulus matrix products — passes through the
helpers in this module.  They own the *semantic* layer: shape validation
and the object-dtype fallbacks for moduli at or above 2**31 (where a single
product of two residues no longer fits int64).  The arithmetic itself is
delegated to the active :class:`~repro.backend.base.ArrayBackend`, which is
how the same engines run on chunked int64 numpy, exact float64 BLAS, a
multiprocess pool or an accelerator library — selected per call
(``backend=``), per planner, or process-wide (``REPRO_BACKEND``).

Residency: each funnel accepts either host ``numpy`` arrays or
:class:`~repro.backend.residency.DeviceBuffer` handles.  The convention is
*handle in → handle out*: when any operand is a handle the launch dispatches
to the backend's ``*_native`` kernel (which keeps device-resident operands
on the device) and the result comes back as a handle, so a chain of funnel
calls performs zero intermediate host copies.  Plain-array call sites are
untouched — they keep the exact historical code path.  Handles are trusted
to hold reduced residues; only the oversized-moduli exact path materialises
them on host (a counted transfer on device backends).

Float residency: on backends whose ``capabilities()`` report declares
``float_residency`` (i.e. blas), a handle operand that carries a float64
residue image — a
twiddle-stack buffer, or the :class:`~repro.backend.blas_backend.
FloatResidues` output of a previous float-resident launch — dispatches
:func:`modular_hadamard_limbs` and the batched GEMM to lazy-Barrett float64
kernels (:mod:`repro.numtheory.floatmod`) and hands back another
float-resident handle, so chained funnel calls materialise no int64
intermediates at all.  The dispatch lives in the backend's ``*_native``
overrides; the funnels themselves stay semantics-only.

``FloatOperandCache`` and ``max_safe_chunk`` are re-exported from their new
homes under :mod:`repro.backend` for backward compatibility.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend.blas_backend import FloatOperandCache
from ..backend.numpy_backend import max_safe_chunk
from ..backend.registry import resolve_backend
from ..backend.residency import as_buffer, is_buffer

__all__ = [
    "modular_matmul",
    "modular_hadamard",
    "max_safe_chunk",
    "FloatOperandCache",
    "modular_matmul_limbs",
    "modular_hadamard_limbs",
    "modular_matmul_rows",
]

#: Above this bound a single residue product can overflow int64 and the
#: funnels take the exact object-dtype path instead of dispatching.
_INT64_SAFE_MODULUS = 1 << 31


def _shape(operand):
    """Shape of an array-or-handle without materialising a host image."""
    if is_buffer(operand):
        return operand.shape
    return np.asarray(operand).shape


def modular_matmul(lhs: np.ndarray, rhs: np.ndarray, modulus: int, *,
                   backend=None) -> np.ndarray:
    """Return ``(lhs @ rhs) mod modulus`` exactly on the active backend."""
    resident = is_buffer(lhs) or is_buffer(rhs)
    if not resident:
        lhs = np.asarray(lhs, dtype=np.int64)
        rhs = np.asarray(rhs, dtype=np.int64)
    if _shape(lhs)[-1] != _shape(rhs)[0]:
        raise ValueError(
            "inner dimensions do not match: %s @ %s" % (_shape(lhs), _shape(rhs))
        )
    if resident:
        return resolve_backend(backend).matmul_native(
            as_buffer(lhs), as_buffer(rhs), modulus)
    return resolve_backend(backend).matmul(lhs, rhs, modulus)


def modular_hadamard(lhs: np.ndarray, rhs: np.ndarray, modulus: int, *,
                     backend=None) -> np.ndarray:
    """Element-wise ``(lhs * rhs) mod modulus`` on int64 arrays."""
    resident = is_buffer(lhs) or is_buffer(rhs)
    if not resident:
        lhs = np.asarray(lhs, dtype=np.int64)
        rhs = np.asarray(rhs, dtype=np.int64)
    if modulus >= _INT64_SAFE_MODULUS:
        product = (np.asarray(lhs, dtype=np.int64).astype(object)
                   * np.asarray(rhs, dtype=np.int64).astype(object))
        out = np.asarray(product % modulus, dtype=np.int64)
        return as_buffer(out) if resident else out
    if resident:
        return resolve_backend(backend).hadamard_native(
            as_buffer(lhs), as_buffer(rhs), modulus)
    return resolve_backend(backend).hadamard(lhs, rhs, modulus)


def modular_matmul_limbs(lhs: np.ndarray, rhs: np.ndarray, moduli, *,
                         lhs_cache: Optional[FloatOperandCache] = None,
                         rhs_cache: Optional[FloatOperandCache] = None,
                         backend=None) -> np.ndarray:
    """Batched modular GEMM: ``out[i] = (lhs[i] @ rhs[i]) mod moduli[i]``.

    ``lhs`` has shape ``(limbs, M, K)`` and ``rhs`` ``(limbs, K, P)``; both
    must already be reduced modulo their row's prime.  The whole stack is
    one backend launch; ``lhs_cache``/``rhs_cache`` pass a reusable
    operand's cached float64 image to backends that exploit it (blas).
    Handles may carry their own attached float images, which the blas
    backend picks up when no explicit cache is given.
    """
    resident = is_buffer(lhs) or is_buffer(rhs)
    if not resident:
        lhs = np.asarray(lhs, dtype=np.int64)
        rhs = np.asarray(rhs, dtype=np.int64)
    lhs_shape, rhs_shape = _shape(lhs), _shape(rhs)
    if len(lhs_shape) != 3 or len(rhs_shape) != 3:
        raise ValueError(
            "expected 3-D limb stacks, got %s @ %s" % (lhs_shape, rhs_shape)
        )
    if lhs_shape[0] != rhs_shape[0] or lhs_shape[2] != rhs_shape[1]:
        raise ValueError(
            "limb stacks do not align: %s @ %s" % (lhs_shape, rhs_shape)
        )
    moduli = np.asarray(moduli, dtype=np.int64)
    if int(moduli.max()) >= _INT64_SAFE_MODULUS:
        # A single product of two reduced residues can overflow int64;
        # take the exact (slow) object-dtype path, as mat_mod_mul does.
        column = moduli.reshape(-1, 1, 1)
        product = np.matmul(np.asarray(lhs, dtype=np.int64).astype(object),
                            np.asarray(rhs, dtype=np.int64).astype(object))
        out = np.asarray(product % column, dtype=np.int64)
        return as_buffer(out) if resident else out
    if resident:
        return resolve_backend(backend).matmul_limbs_native(
            as_buffer(lhs), as_buffer(rhs), moduli,
            lhs_cache=lhs_cache, rhs_cache=rhs_cache)
    return resolve_backend(backend).matmul_limbs(
        lhs, rhs, moduli, lhs_cache=lhs_cache, rhs_cache=rhs_cache)


def modular_hadamard_limbs(lhs: np.ndarray, rhs: np.ndarray, moduli, *,
                           backend=None) -> np.ndarray:
    """Element-wise ``(lhs * rhs) mod moduli`` with per-limb moduli.

    The leading axis of both operands is the limb axis; ``moduli[i]``
    reduces slice ``i``.
    """
    resident = is_buffer(lhs) or is_buffer(rhs)
    if not resident:
        lhs = np.asarray(lhs, dtype=np.int64)
        rhs = np.asarray(rhs, dtype=np.int64)
    moduli = np.asarray(moduli, dtype=np.int64)
    if int(moduli.max()) >= _INT64_SAFE_MODULUS:
        lhs_host = np.asarray(lhs, dtype=np.int64)
        rhs_host = np.asarray(rhs, dtype=np.int64)
        column = moduli.reshape((moduli.shape[0],) + (1,) * (lhs_host.ndim - 1))
        product = lhs_host.astype(object) * rhs_host.astype(object)
        out = np.asarray(product % column, dtype=np.int64)
        return as_buffer(out) if resident else out
    if resident:
        return resolve_backend(backend).hadamard_limbs_native(
            as_buffer(lhs), as_buffer(rhs), moduli)
    return resolve_backend(backend).hadamard_limbs(lhs, rhs, moduli)


def modular_matmul_rows(lhs: np.ndarray, rhs: np.ndarray, row_moduli, *,
                        operand_bound: Optional[int] = None,
                        backend=None) -> np.ndarray:
    """Row-moduli GEMM: ``out[j] = (lhs[j] @ rhs) mod row_moduli[j]``.

    Used by the fast basis conversion, where every *output* row has its own
    prime.  Operand entries may live in different residue domains, so the
    overflow bound comes from the actual operand maxima instead of the
    moduli; resident callers pass ``operand_bound`` (any upper bound on
    ``max(lhs) * max(rhs)``) so the funnel never has to materialise a
    device operand just to scan it.
    """
    resident = is_buffer(lhs) or is_buffer(rhs)
    if not resident:
        lhs = np.asarray(lhs, dtype=np.int64)
        rhs = np.asarray(rhs, dtype=np.int64)
    if _shape(lhs)[-1] != _shape(rhs)[0]:
        raise ValueError(
            "inner dimensions do not match: %s @ %s" % (_shape(lhs), _shape(rhs))
        )
    row_moduli = np.asarray(row_moduli, dtype=np.int64)
    if operand_bound is None:
        lhs_host = np.asarray(lhs, dtype=np.int64)
        rhs_host = np.asarray(rhs, dtype=np.int64)
        operand_bound = int(lhs_host.max(initial=0)) * int(rhs_host.max(initial=0))
    per_term = operand_bound
    if per_term >= (1 << 63):
        # Even a chunk of one row would overflow int64: exact object path.
        column = row_moduli.reshape(-1, 1)
        product = (np.asarray(lhs, dtype=np.int64).astype(object)
                   @ np.asarray(rhs, dtype=np.int64).astype(object))
        out = np.asarray(product % column, dtype=np.int64)
        return as_buffer(out) if resident else out
    if resident:
        return resolve_backend(backend).matmul_rows_native(
            as_buffer(lhs), as_buffer(rhs), row_moduli,
            operand_bound=per_term)
    return resolve_backend(backend).matmul_rows(lhs, rhs, row_moduli,
                                                operand_bound=per_term)
