"""Overflow-safe modular matrix products for the GEMM-based NTT engines.

NumPy's int64 matmul silently wraps on overflow, so the GEMM engines split
the inner (reduction) dimension into chunks small enough that
``chunk * (q-1)**2`` stays below 2**62 and reduce modulo ``q`` between
chunks.  This matches the paper's observation that avoiding per-element
modulo reductions and instead reducing an accumulator occasionally is what
makes the matrix formulation fast; here it additionally keeps the Python
implementation exact for arbitrary 30-bit moduli.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..numtheory.modular import mat_mod_mul

__all__ = [
    "modular_matmul",
    "modular_hadamard",
    "max_safe_chunk",
    "FloatOperandCache",
    "modular_matmul_limbs",
    "modular_hadamard_limbs",
    "modular_matmul_rows",
]

_SAFE_ACCUMULATOR_BITS = 62
#: Largest integer magnitude float64 represents exactly (2**53); products and
#: partial sums below this bound make a BLAS dgemm bit-exact.
_FLOAT_EXACT_LIMIT = 1 << 53


def max_safe_chunk(modulus: int) -> int:
    """Largest inner-dimension chunk whose accumulation cannot overflow int64."""
    limit = 1 << _SAFE_ACCUMULATOR_BITS
    per_term = (modulus - 1) * (modulus - 1)
    if per_term == 0:
        return limit
    return max(1, limit // per_term)


def modular_matmul(lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
    """Return ``(lhs @ rhs) mod modulus`` exactly, using chunked accumulation."""
    lhs = np.asarray(lhs, dtype=np.int64)
    rhs = np.asarray(rhs, dtype=np.int64)
    if lhs.shape[-1] != rhs.shape[0]:
        raise ValueError(
            "inner dimensions do not match: %s @ %s" % (lhs.shape, rhs.shape)
        )
    inner = lhs.shape[-1]
    chunk = max_safe_chunk(modulus)
    if chunk >= inner:
        return (lhs @ rhs) % modulus
    result = np.zeros(lhs.shape[:-1] + rhs.shape[1:], dtype=np.int64)
    for start in range(0, inner, chunk):
        stop = min(start + chunk, inner)
        partial = (lhs[..., start:stop] @ rhs[start:stop]) % modulus
        result = (result + partial) % modulus
    return result


def modular_hadamard(lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(lhs * rhs) mod modulus`` on int64 arrays."""
    lhs = np.asarray(lhs, dtype=np.int64)
    rhs = np.asarray(rhs, dtype=np.int64)
    if modulus >= (1 << 31):
        product = lhs.astype(object) * rhs.astype(object)
        return np.asarray(product % modulus, dtype=np.int64)
    return (lhs * rhs) % modulus


# ----------------------------------------------------------------------
# Limb-batched variants: one launch for a whole RNS polynomial.
#
# The batched NTT paths stack the per-modulus GEMM operands along a leading
# limb axis and issue a single ``np.matmul`` over the 3-D stacks, reducing
# row ``i`` modulo ``moduli[i]``.  The chunking argument is the same as for
# :func:`modular_matmul`, using the largest modulus of the stack.
# ----------------------------------------------------------------------

def _limb_broadcast(moduli, ndim: int) -> np.ndarray:
    """Reshape a ``(limbs,)`` moduli vector to broadcast over ``ndim`` axes."""
    moduli = np.asarray(moduli, dtype=np.int64)
    return moduli.reshape((moduli.shape[0],) + (1,) * (ndim - 1))


class FloatOperandCache:
    """Lazily cached float64 forms of a reusable int64 GEMM operand.

    The limb-batched GEMMs run on BLAS float64 whenever the 2**53 mantissa
    bound keeps them exact — the software analogue of the paper lowering
    GEMMs to low-precision tensor-core arithmetic.  Twiddle stacks are
    reused across every NTT of an instance, so their float64 image (and,
    for larger moduli, a high/low split that restores exactness) is built
    once and cached here.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = np.asarray(matrix, dtype=np.int64)
        self.max_value = int(self.matrix.max(initial=0))
        self._full = None
        self._split = None

    def full(self) -> np.ndarray:
        """The operand converted to float64 (exact: entries < 2**31 < 2**53)."""
        if self._full is None:
            self._full = self.matrix.astype(np.float64)
        return self._full

    def split(self):
        """``(shift, hi, lo)`` with ``matrix == hi * 2**shift + lo``.

        Splitting roughly halves the bit-width of each part, so each of
        the two partial GEMMs fits the float64 exactness bound for moduli
        too large for a single pass.
        """
        if self._split is None:
            shift = max(1, (self.max_value.bit_length() + 1) // 2)
            hi = (self.matrix >> shift).astype(np.float64)
            lo = (self.matrix & ((1 << shift) - 1)).astype(np.float64)
            self._split = (shift, hi, lo)
        return self._split


def _float_matmul_limbs(lhs, rhs, column, inner, lhs_cache, rhs_cache):
    """Exact float64 fast path for the batched GEMM, or None if unsafe.

    One operand side carries a :class:`FloatOperandCache` (the reusable
    twiddle stack); the other is converted per call.  Falls back to None
    when even the split operand would break the 2**53 exactness bound.
    """
    cache = lhs_cache if lhs_cache is not None else rhs_cache
    other = rhs if lhs_cache is not None else lhs
    other_bound = int(column.max()) - 1

    def combine(product):
        return np.rint(product).astype(np.int64) % column

    if inner * cache.max_value * other_bound < _FLOAT_EXACT_LIMIT:
        other_f = other.astype(np.float64)
        if lhs_cache is not None:
            return combine(np.matmul(cache.full(), other_f))
        return combine(np.matmul(other_f, cache.full()))

    shift, hi, lo = cache.split()
    hi_max = max(1, cache.max_value >> shift)
    lo_max = (1 << shift) - 1
    if inner * max(hi_max, lo_max) * other_bound >= _FLOAT_EXACT_LIMIT:
        return None
    other_f = other.astype(np.float64)
    if lhs_cache is not None:
        high = combine(np.matmul(hi, other_f))
        low = combine(np.matmul(lo, other_f))
    else:
        high = combine(np.matmul(other_f, hi))
        low = combine(np.matmul(other_f, lo))
    weight = (1 << shift) % column
    return (low + (high * weight) % column) % column


def modular_matmul_limbs(lhs: np.ndarray, rhs: np.ndarray, moduli, *,
                         lhs_cache: Optional[FloatOperandCache] = None,
                         rhs_cache: Optional[FloatOperandCache] = None) -> np.ndarray:
    """Batched modular GEMM: ``out[i] = (lhs[i] @ rhs[i]) mod moduli[i]``.

    ``lhs`` has shape ``(limbs, M, K)`` and ``rhs`` ``(limbs, K, P)``; both
    must already be reduced modulo their row's prime.  The whole stack is
    one ``np.matmul`` launch.  When one side passes its cached float64
    image (``lhs_cache``/``rhs_cache``) and the 2**53 bound holds, the
    launch runs on BLAS float64 bit-exactly; otherwise it runs on int64,
    chunked along ``K`` whenever the accumulator could overflow.
    """
    lhs = np.asarray(lhs, dtype=np.int64)
    rhs = np.asarray(rhs, dtype=np.int64)
    if lhs.ndim != 3 or rhs.ndim != 3:
        raise ValueError(
            "expected 3-D limb stacks, got %s @ %s" % (lhs.shape, rhs.shape)
        )
    if lhs.shape[0] != rhs.shape[0] or lhs.shape[2] != rhs.shape[1]:
        raise ValueError(
            "limb stacks do not align: %s @ %s" % (lhs.shape, rhs.shape)
        )
    column = _limb_broadcast(moduli, 3)
    inner = lhs.shape[2]
    if int(column.max()) >= (1 << 31):
        # A single product of two reduced residues can overflow int64;
        # take the exact (slow) object-dtype path, as mat_mod_mul does.
        product = np.matmul(lhs.astype(object), rhs.astype(object))
        return np.asarray(product % column, dtype=np.int64)
    if lhs_cache is not None or rhs_cache is not None:
        result = _float_matmul_limbs(lhs, rhs, column, inner,
                                     lhs_cache, rhs_cache)
        if result is not None:
            return result
    chunk = max_safe_chunk(int(column.max()))
    if chunk >= inner:
        return np.matmul(lhs, rhs) % column
    result = np.zeros((lhs.shape[0], lhs.shape[1], rhs.shape[2]), dtype=np.int64)
    for start in range(0, inner, chunk):
        stop = min(start + chunk, inner)
        partial = np.matmul(lhs[:, :, start:stop], rhs[:, start:stop, :]) % column
        result = (result + partial) % column
    return result


def modular_hadamard_limbs(lhs: np.ndarray, rhs: np.ndarray, moduli) -> np.ndarray:
    """Element-wise ``(lhs * rhs) mod moduli`` with per-limb moduli.

    The leading axis of both operands is the limb axis; ``moduli[i]``
    reduces slice ``i``.  Thin shim over
    :func:`repro.numtheory.modular.mat_mod_mul` that flattens any trailing
    axes so a single implementation owns the reduction logic.
    """
    lhs = np.asarray(lhs, dtype=np.int64)
    rhs = np.asarray(rhs, dtype=np.int64)
    limbs = lhs.shape[0]
    flat = mat_mod_mul(lhs.reshape(limbs, -1), rhs.reshape(limbs, -1),
                       np.asarray(moduli, dtype=np.int64))
    return flat.reshape(lhs.shape)


def modular_matmul_rows(lhs: np.ndarray, rhs: np.ndarray, row_moduli) -> np.ndarray:
    """Row-moduli GEMM: ``out[j] = (lhs[j] @ rhs) mod row_moduli[j]``.

    Used by the fast basis conversion, where every *output* row has its own
    prime.  Operand entries may live in different residue domains, so the
    chunk bound is derived from the actual operand maxima instead of the
    moduli.
    """
    lhs = np.asarray(lhs, dtype=np.int64)
    rhs = np.asarray(rhs, dtype=np.int64)
    if lhs.shape[-1] != rhs.shape[0]:
        raise ValueError(
            "inner dimensions do not match: %s @ %s" % (lhs.shape, rhs.shape)
        )
    column = np.asarray(row_moduli, dtype=np.int64)[:, None]
    inner = lhs.shape[-1]
    per_term = int(lhs.max(initial=0)) * int(rhs.max(initial=0))
    if per_term >= (1 << 63):
        # Even a chunk of one row would overflow int64: exact object path.
        product = lhs.astype(object) @ rhs.astype(object)
        return np.asarray(product % column, dtype=np.int64)
    chunk = inner if per_term == 0 else max(1, (1 << _SAFE_ACCUMULATOR_BITS) // per_term)
    if chunk >= inner:
        return (lhs @ rhs) % column
    result = np.zeros((lhs.shape[0], rhs.shape[1]), dtype=np.int64)
    for start in range(0, inner, chunk):
        stop = min(start + chunk, inner)
        partial = (lhs[:, start:stop] @ rhs[start:stop]) % column
        result = (result + partial) % column
    return result
