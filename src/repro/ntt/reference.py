"""Reference O(N^2) negacyclic NTT used as the correctness oracle.

Implements Eq. 4 of the paper literally with Python integers; every other
engine is tested against this one.  It is deliberately simple and slow.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..numtheory.modular import mod_inverse
from .base import NttEngine
from .twiddle import TwiddleCache, get_twiddle_cache

__all__ = ["ReferenceNtt", "reference_forward", "reference_inverse"]


def reference_forward(coefficients: Sequence[int], ring_degree: int, modulus: int,
                      psi: int) -> np.ndarray:
    """Direct evaluation of ``A_k = sum_n a_n psi^(2nk+n) mod q``."""
    n = ring_degree
    result = np.zeros(n, dtype=np.int64)
    psi_powers = [pow(psi, e, modulus) for e in range(2 * n)]
    for k in range(n):
        accumulator = 0
        for idx in range(n):
            exponent = (2 * idx * k + idx) % (2 * n)
            accumulator = (accumulator + int(coefficients[idx]) * psi_powers[exponent]) % modulus
        result[k] = accumulator
    return result


def reference_inverse(values: Sequence[int], ring_degree: int, modulus: int,
                      psi: int) -> np.ndarray:
    """Direct evaluation of ``a_n = N^-1 sum_k A_k psi^-(2nk+n) mod q``."""
    n = ring_degree
    psi_inv = mod_inverse(psi, modulus)
    n_inv = mod_inverse(n, modulus)
    psi_inv_powers = [pow(psi_inv, e, modulus) for e in range(2 * n)]
    result = np.zeros(n, dtype=np.int64)
    for out in range(n):
        accumulator = 0
        for k in range(n):
            exponent = (2 * out * k + out) % (2 * n)
            accumulator = (accumulator + int(values[k]) * psi_inv_powers[exponent]) % modulus
        result[out] = accumulator * n_inv % modulus
    return result


class ReferenceNtt(NttEngine):
    """Quadratic-time oracle engine (Eq. 1/2/4 evaluated directly)."""

    name = "reference"

    def __init__(self, ring_degree: int, modulus: int,
                 twiddles: Optional[TwiddleCache] = None, *,
                 backend=None) -> None:
        super().__init__(ring_degree, modulus, backend=backend)
        self.twiddles = twiddles or get_twiddle_cache(ring_degree, modulus)

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = self._validate(coefficients)
        return reference_forward(coefficients, self.ring_degree, self.modulus,
                                 self.twiddles.psi)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        values = self._validate(values)
        return reference_inverse(values, self.ring_degree, self.modulus,
                                 self.twiddles.psi)
