"""NTT engines: reference, butterfly, single-GEMM, four-step and tensor-core."""

from .base import NttEngine
from .butterfly import ButterflyNtt
from .four_step import FourStepNtt
from .matrix import MatrixNtt
from .negacyclic import (
    negacyclic_multiply,
    pointwise_multiply,
    schoolbook_negacyclic_multiply,
)
from .planner import (
    DEFAULT_ENGINE,
    ENGINE_REGISTRY,
    NttPlanner,
    available_engines,
    create_engine,
)
from .reference import ReferenceNtt
from .tensorcore import TensorCoreNtt
from .twiddle import (
    TwiddleCache,
    TwiddleStack,
    clear_twiddle_stacks,
    get_twiddle_cache,
    get_twiddle_stack,
    split_degree,
)

__all__ = [
    "NttEngine",
    "ReferenceNtt",
    "ButterflyNtt",
    "MatrixNtt",
    "FourStepNtt",
    "TensorCoreNtt",
    "TwiddleCache",
    "TwiddleStack",
    "get_twiddle_cache",
    "get_twiddle_stack",
    "clear_twiddle_stacks",
    "split_degree",
    "negacyclic_multiply",
    "pointwise_multiply",
    "schoolbook_negacyclic_multiply",
    "NttPlanner",
    "create_engine",
    "available_engines",
    "ENGINE_REGISTRY",
    "DEFAULT_ENGINE",
]
