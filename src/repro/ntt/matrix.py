"""Single-GEMM NTT (Eq. 8 of the paper).

The butterfly network is replaced by one matrix–vector product
``A = (W @ a) mod q`` with ``W[k, n] = psi^(2nk+n)``.  Only one modulo
reduction per output coefficient is needed, and the twiddle matrix is
precomputed once per CKKS instance.  The quadratic work is the price the
paper pays for removing the RAW dependencies between butterfly stages.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..backend.blas_backend import FloatResidues
from ..backend.registry import resolve_backend
from ..backend.residency import DeviceBuffer, contiguous, is_buffer
from ..numtheory.modular import mat_mod_mul
from .base import NttEngine
from .gemm_utils import modular_matmul, modular_matmul_limbs
from .twiddle import TwiddleCache, get_twiddle_cache, get_twiddle_stack

__all__ = ["MatrixNtt"]


class MatrixNtt(NttEngine):
    """Full ``N x N`` matrix formulation of the negacyclic NTT."""

    name = "matrix"

    def __init__(self, ring_degree: int, modulus: int,
                 twiddles: Optional[TwiddleCache] = None, *,
                 backend=None) -> None:
        super().__init__(ring_degree, modulus, backend=backend)
        self.twiddles = twiddles or get_twiddle_cache(ring_degree, modulus)
        # Shape-matched scratch for the float-resident ops pipeline (see
        # _float_scratch); built lazily, replaced when the shape changes.
        self._float_buffers = None

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = self._validate(coefficients)
        weight = self.twiddles.forward_matrix()
        return modular_matmul(weight, coefficients[:, None], self.modulus,
                              backend=self.backend)[:, 0]

    def inverse(self, values: np.ndarray) -> np.ndarray:
        values = self._validate(values)
        weight = self.twiddles.inverse_matrix()
        raw = modular_matmul(weight, values[:, None], self.modulus,
                             backend=self.backend)[:, 0]
        return (raw * self.twiddles.degree_inverse) % self.modulus

    def forward_batch(self, coefficient_rows: np.ndarray) -> np.ndarray:
        """Batched forward transform: one GEMM for the whole batch.

        This is exactly the operation-level batching argument of the paper:
        with ``B`` operations sharing the twiddle matrix, the matrix–vector
        products become a single matrix–matrix product.
        """
        rows = np.asarray(coefficient_rows, dtype=np.int64)
        if rows.ndim == 1:
            return self.forward(rows)
        weight = self.twiddles.forward_matrix()
        return modular_matmul(weight, rows.T % self.modulus, self.modulus,
                              backend=self.backend).T

    def inverse_batch(self, value_rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(value_rows, dtype=np.int64)
        if rows.ndim == 1:
            return self.inverse(rows)
        weight = self.twiddles.inverse_matrix()
        raw = modular_matmul(weight, rows.T % self.modulus, self.modulus,
                             backend=self.backend).T
        return (raw * self.twiddles.degree_inverse) % self.modulus

    # -- limb-batched path (one 3-D GEMM per whole RNS polynomial) ------
    # Residency-handle inputs select the stack's resident operand handle
    # (device image cached, float image attached) and every shape op runs
    # on the resident image, so the transform threads handles end-to-end:
    # handle in → handle out with zero intermediate host copies.
    def forward_limbs(self, residues: np.ndarray,
                      moduli: Sequence[int]) -> np.ndarray:
        """Forward NTT of all limbs as one batched matmul over stacked ``W``."""
        residues, moduli_array = self._validate_limbs(residues, moduli)
        residues = self._stage_resident(residues)
        stack = get_twiddle_stack(self.ring_degree, tuple(int(q) for q in moduli))
        weights = (stack.forward_matrices_buffer() if is_buffer(residues)
                   else stack.forward_matrices())
        return modular_matmul_limbs(
            weights, residues[:, :, None], moduli_array,
            lhs_cache=stack.forward_matrices_cache(),
            backend=self.backend)[:, :, 0]

    def inverse_limbs(self, values: np.ndarray,
                      moduli: Sequence[int]) -> np.ndarray:
        """Inverse NTT of all limbs as one batched matmul over stacked ``V``."""
        values, moduli_array = self._validate_limbs(values, moduli)
        values = self._stage_resident(values)
        stack = get_twiddle_stack(self.ring_degree, tuple(int(q) for q in moduli))
        weights = (stack.inverse_matrices_buffer() if is_buffer(values)
                   else stack.inverse_matrices())
        raw = modular_matmul_limbs(
            weights, values[:, :, None], moduli_array,
            lhs_cache=stack.inverse_matrices_cache(),
            backend=self.backend)[:, :, 0]
        # Funnel multiply: exact even for moduli whose residue products
        # overflow int64 (the funnel's object-dtype path covers >= 2**31).
        return mat_mod_mul(raw, stack.degree_inverse_column, moduli_array)

    # -- operation-batched path: the whole (B, L, N) stack in one GEMM --
    def forward_ops(self, stacks: np.ndarray,
                    moduli: Sequence[int]) -> np.ndarray:
        """Forward NTT of every limb of every operation as one 3-D GEMM.

        The operation axis folds into the free (column) dimension of the
        limb-batched matmul: ``out[l] = W[l] @ x[l]`` with ``x[l]`` the
        ``(N, B)`` matrix of limb ``l`` across the whole batch, so the
        entire ``(B, L, N)`` stack is a single backend launch.
        """
        stacks, moduli_array = self._validate_ops(stacks, moduli)
        stacks = self._stage_resident(stacks)
        stack = get_twiddle_stack(self.ring_degree, tuple(int(q) for q in moduli))
        fused = self._float_ops_pipeline(stacks, stack, inverse=False)
        if fused is not None:
            return fused
        weights = (stack.forward_matrices_buffer() if is_buffer(stacks)
                   else stack.forward_matrices())
        rhs = contiguous(stacks.transpose(1, 2, 0))                 # (L, N, B)
        out = modular_matmul_limbs(
            weights, rhs, moduli_array,
            lhs_cache=stack.forward_matrices_cache(),
            backend=self.backend)
        return contiguous(out.transpose(2, 0, 1))                   # (B, L, N)

    def inverse_ops(self, stacks: np.ndarray,
                    moduli: Sequence[int]) -> np.ndarray:
        """Inverse NTT of a whole ``(B, L, N)`` stack as one 3-D GEMM."""
        stacks, moduli_array = self._validate_ops(stacks, moduli)
        stacks = self._stage_resident(stacks)
        stack = get_twiddle_stack(self.ring_degree, tuple(int(q) for q in moduli))
        fused = self._float_ops_pipeline(stacks, stack, inverse=True)
        if fused is not None:
            return fused
        weights = (stack.inverse_matrices_buffer() if is_buffer(stacks)
                   else stack.inverse_matrices())
        rhs = contiguous(stacks.transpose(1, 2, 0))                 # (L, N, B)
        raw = modular_matmul_limbs(
            weights, rhs, moduli_array,
            lhs_cache=stack.inverse_matrices_cache(),
            backend=self.backend)
        raw = mat_mod_mul(raw, stack.degree_inverse_column[:, :, None],
                          moduli_array[:, None, None])
        return contiguous(raw.transpose(2, 0, 1))                   # (B, L, N)

    # -- float-resident ops pipeline ------------------------------------
    def _float_scratch(self, shape):
        """Three reusable float64 buffers of ``shape`` (input, ping, pong).

        Same rationale as the four-step engine's scratch set: the
        pipeline's temporaries dominate page-fault cost at production
        shapes, so one shape-matched set lives on the engine.  Results
        handed to callers are always fresh copies, never views of these.
        """
        cached = self._float_buffers
        if cached is None or cached[0].shape != shape:
            cached = tuple(np.empty(shape, dtype=np.float64)
                           for _ in range(3))
            self._float_buffers = cached
        return cached

    def _float_ops_pipeline(self, stacks, stack, *, inverse: bool):
        """Float64-resident single-GEMM pipeline, or None when ineligible.

        The matrix engine's whole ops transform is one ``(L, N, N) @
        (L, N, B)`` GEMM, so the float path is a raw dgemm over the cached
        float64 twiddle stack followed by a lazy float64 Barrett chain —
        the inverse direction folds the degree-inverse multiply into the
        reduction passes, exactly like the four-step pipeline.  For
        residency-handle inputs the result is a float-resident handle;
        int64 only ever exists for plain-array callers.

        Eligibility mirrors four_step: the resolved backend reports
        ``float_residency`` and the full-length accumulation fits the
        2**53 guard (``N * (q-1)**2`` — tighter than the four-step bound,
        which is the quadratic-GEMM price this engine pays).  A miss
        returns None and the caller runs the exact int64 path.
        """
        backend = resolve_backend(self.backend)
        if not backend.capabilities().get("float_residency", False):
            return None
        chain = stack.barrett_chain
        q = chain.qmax
        n = self.ring_degree
        bound = max(n * (q - 1) ** 2, 2 * q * (q - 1))
        if not chain.fits(bound):
            return None
        batch, limbs = stacks.shape[0], stacks.shape[1]
        if batch == 0:
            return None
        weights_f = (stack.inverse_matrices_cache() if inverse
                     else stack.forward_matrices_cache()).full()
        shape = (limbs, n, batch)
        conv, work_a, work_b = self._float_scratch(shape)
        a_f = None
        if is_buffer(stacks):
            cache = stacks.float_cache()
            if cache is not None:
                a_f = cache.full().transpose(1, 2, 0)           # (L, N, B)
        if a_f is None:
            host = stacks.ensure_host() if is_buffer(stacks) else stacks
            np.copyto(conv, host.transpose(1, 2, 0), casting="unsafe")
            a_f = conv
        raw = backend.fmatmul(weights_f, a_f, out=work_a)
        if inverse:
            # One lazy pass confines the residues to (-q, 2q); the scalar
            # multiply then stays within the guard, and the canonical
            # passes finish the fold.
            lazy = chain.lazy_reduce(raw, axis=0, out=work_b)
            np.multiply(lazy,
                        stack.degree_inverse_float.reshape(limbs, 1, 1),
                        out=raw)
        result = chain.canonical_reduce(raw, axis=0, out=raw,
                                        scratch=work_b)
        flat = result.transpose(2, 0, 1)                        # (B, L, N)
        if is_buffer(stacks):
            return DeviceBuffer.from_float(
                FloatResidues(np.ascontiguousarray(flat), q - 1))
        out = np.empty(flat.shape, dtype=np.int64)
        np.copyto(out, flat, casting="unsafe")
        return out
