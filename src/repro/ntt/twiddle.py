"""Twiddle-factor tables shared by all NTT engines.

One of the paper's key observations (Section IV-B) is that the twiddle
factor matrices depend only on the CKKS instance parameters ``(N, q)`` and
can therefore be precomputed once and reused by every NTT in the workload.
:class:`TwiddleCache` is that precomputation: powers of the negacyclic root
``psi`` for the butterfly engine, the full ``W`` matrix of Eq. 8 and the
``W1/W2/W3`` matrices of Eq. 9 for the GEMM engines, all cached per
``(N, q)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from ..backend.residency import DeviceBuffer
from ..numtheory.bit_ops import bit_reverse_permutation, ilog2, is_power_of_two
from ..numtheory.floatmod import BarrettChain, get_barrett_chain
from ..numtheory.modular import mod_inverse, mod_pow
from ..numtheory.roots import find_negacyclic_root, root_powers
from .gemm_utils import FloatOperandCache

__all__ = [
    "TwiddleCache",
    "TwiddleStack",
    "split_degree",
    "get_twiddle_cache",
    "get_twiddle_stack",
    "clear_twiddle_stacks",
]


def split_degree(ring_degree: int) -> Tuple[int, int]:
    """Split ``N`` into ``N1 * N2`` with ``N1 >= N2``, both powers of two.

    The four-step (Eq. 9) and tensor-core NTT engines reshape the length-N
    input into an ``N1 x N2`` matrix; a near-square split minimises the
    total GEMM work and matches the paper's choice of small twiddle
    matrices.
    """
    if not is_power_of_two(ring_degree):
        raise ValueError("ring degree must be a power of two, got %d" % ring_degree)
    log_n = ilog2(ring_degree)
    log_n1 = (log_n + 1) // 2
    n1 = 1 << log_n1
    n2 = ring_degree // n1
    return n1, n2


@dataclass
class TwiddleCache:
    """Precomputed roots of unity and twiddle matrices for one ``(N, q)``."""

    ring_degree: int
    modulus: int
    psi: int = field(init=False)
    psi_inv: int = field(init=False)
    degree_inverse: int = field(init=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.ring_degree):
            raise ValueError("ring degree must be a power of two")
        if (self.modulus - 1) % (2 * self.ring_degree) != 0:
            raise ValueError(
                "modulus %d is not NTT-friendly for N=%d (q != 1 mod 2N)"
                % (self.modulus, self.ring_degree)
            )
        self.psi = find_negacyclic_root(self.ring_degree, self.modulus)
        self.psi_inv = mod_inverse(self.psi, self.modulus)
        self.degree_inverse = mod_inverse(self.ring_degree, self.modulus)
        self._cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Butterfly-engine tables
    # ------------------------------------------------------------------
    def psi_powers_bitrev(self) -> np.ndarray:
        """Powers of psi in bit-reversed order (forward butterfly table)."""
        return self._cached("psi_brv", self._build_psi_powers_bitrev)

    def psi_inv_powers_bitrev(self) -> np.ndarray:
        """Powers of psi^-1 in bit-reversed order (inverse butterfly table)."""
        return self._cached("psi_inv_brv", self._build_psi_inv_powers_bitrev)

    def _build_psi_powers_bitrev(self) -> np.ndarray:
        powers = root_powers(self.psi, self.ring_degree, self.modulus)
        perm = bit_reverse_permutation(self.ring_degree)
        return np.asarray(powers, dtype=np.int64)[perm]

    def _build_psi_inv_powers_bitrev(self) -> np.ndarray:
        powers = root_powers(self.psi_inv, self.ring_degree, self.modulus)
        perm = bit_reverse_permutation(self.ring_degree)
        return np.asarray(powers, dtype=np.int64)[perm]

    # ------------------------------------------------------------------
    # Single-GEMM (Eq. 8) tables
    # ------------------------------------------------------------------
    def forward_matrix(self) -> np.ndarray:
        """The full ``N x N`` forward twiddle matrix ``W[k, n] = psi^(2nk+n)``."""
        return self._cached("W_forward", self._build_forward_matrix)

    def inverse_matrix(self) -> np.ndarray:
        """The full inverse matrix ``V[n, k] = psi^-(2nk+n)`` (without 1/N)."""
        return self._cached("W_inverse", self._build_inverse_matrix)

    def _build_forward_matrix(self) -> np.ndarray:
        n = self.ring_degree
        q = self.modulus
        psi_powers = np.asarray(root_powers(self.psi, 2 * n, q), dtype=np.int64)
        k = np.arange(n, dtype=np.int64)[:, None]
        idx = np.arange(n, dtype=np.int64)[None, :]
        exponents = (2 * idx * k + idx) % (2 * n)
        return psi_powers[exponents]

    def _build_inverse_matrix(self) -> np.ndarray:
        n = self.ring_degree
        q = self.modulus
        psi_inv_powers = np.asarray(root_powers(self.psi_inv, 2 * n, q), dtype=np.int64)
        out = np.arange(n, dtype=np.int64)[:, None]
        k = np.arange(n, dtype=np.int64)[None, :]
        exponents = (2 * out * k + out) % (2 * n)
        return psi_inv_powers[exponents]

    # ------------------------------------------------------------------
    # Four-step (Eq. 9) tables
    # ------------------------------------------------------------------
    def four_step_shapes(self) -> Tuple[int, int]:
        """Return the ``(N1, N2)`` split used by the GEMM decomposition."""
        return split_degree(self.ring_degree)

    def four_step_forward(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(W1, W2, W3)`` of Eq. 9 for the forward transform.

        * ``W1[k1, n1] = psi_{2N1}^(2 n1 k1 + n1)`` — the inner negacyclic
          NTT of length N1 applied down the columns;
        * ``W2[k1, n2] = psi_{2N}^(2 k1 n2 + n2)`` — the Hadamard twiddle;
        * ``W3[n2, k2] = psi_{2N2}^(2 n2 k2)`` — the outer cyclic DFT.
        """
        return self._cached("fourstep_forward", self._build_four_step_forward)

    def four_step_inverse(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(V1, V2, V3)`` for the inverse four-step transform."""
        return self._cached("fourstep_inverse", self._build_four_step_inverse)

    def _build_four_step_forward(self):
        n1, n2 = split_degree(self.ring_degree)
        n = self.ring_degree
        q = self.modulus
        # psi_{2N1} = psi ** N2, psi_{2N2} = psi ** N1.
        psi_2n1 = mod_pow(self.psi, n2, q)
        psi_2n2 = mod_pow(self.psi, n1, q)
        psi_2n1_pow = np.asarray(root_powers(psi_2n1, 2 * n1, q), dtype=np.int64)
        psi_pow = np.asarray(root_powers(self.psi, 2 * n, q), dtype=np.int64)
        psi_2n2_pow = np.asarray(root_powers(psi_2n2, 2 * n2, q), dtype=np.int64)

        k1 = np.arange(n1, dtype=np.int64)
        idx1 = np.arange(n1, dtype=np.int64)
        w1 = psi_2n1_pow[(2 * np.outer(k1, idx1) + idx1[None, :]) % (2 * n1)]

        idx2 = np.arange(n2, dtype=np.int64)
        w2 = psi_pow[(2 * np.outer(k1, idx2) + idx2[None, :]) % (2 * n)]

        k2 = np.arange(n2, dtype=np.int64)
        w3 = psi_2n2_pow[(2 * np.outer(idx2, k2)) % (2 * n2)]
        return w1, w2, w3

    def _build_four_step_inverse(self):
        n1, n2 = split_degree(self.ring_degree)
        n = self.ring_degree
        q = self.modulus
        psi_inv = self.psi_inv
        omega_n1_inv = mod_pow(psi_inv, 2 * n2, q)   # inverse N1-th root
        psi_2n2_inv = mod_pow(psi_inv, n1, q)        # inverse 2*N2-th root
        omega_n1_inv_pow = np.asarray(root_powers(omega_n1_inv, n1, q), dtype=np.int64)
        psi_inv_pow = np.asarray(root_powers(psi_inv, 2 * n, q), dtype=np.int64)
        psi_2n2_inv_pow = np.asarray(root_powers(psi_2n2_inv, 2 * n2, q), dtype=np.int64)

        out1 = np.arange(n1, dtype=np.int64)
        k1 = np.arange(n1, dtype=np.int64)
        v1 = omega_n1_inv_pow[np.outer(out1, k1) % n1]

        k2 = np.arange(n2, dtype=np.int64)
        v2 = psi_inv_pow[(2 * np.outer(out1, k2) + out1[:, None]) % (2 * n)]

        out2 = np.arange(n2, dtype=np.int64)
        v3 = psi_2n2_inv_pow[(2 * np.outer(k2, out2) + out2[None, :]) % (2 * n2)]
        return v1, v2, v3

    # ------------------------------------------------------------------
    def _cached(self, key: str, builder):
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]


@lru_cache(maxsize=128)
def get_twiddle_cache(ring_degree: int, modulus: int) -> TwiddleCache:
    """Return a process-wide shared :class:`TwiddleCache` for ``(N, q)``.

    This mirrors the paper's data-reuse argument: every NTT of a CKKS
    instance shares the same twiddle matrices, so they are built once.
    """
    return TwiddleCache(ring_degree, modulus)


class _PrefixFloatCache(FloatOperandCache):
    """Zero-copy prefix view of a parent stack's :class:`FloatOperandCache`.

    ``full()``/``split()`` return row slices of the parent's cached float64
    images, so a level-prefix stack adds no float storage of its own.  The
    parent's ``max_value`` is kept as a conservative upper bound for the
    prefix: the 2**53 exactness guards only ever compare against an upper
    bound, so a larger bound can never make a float launch inexact.
    """

    def __init__(self, parent: FloatOperandCache, limbs: int) -> None:
        self._parent = parent
        self._limbs = limbs
        self.matrix = parent.matrix[:limbs]
        self.max_value = parent.max_value

    def full(self) -> np.ndarray:
        return self._parent.full()[:self._limbs]

    def split(self):
        shift, hi, lo = self._parent.split()
        return shift, hi[:self._limbs], lo[:self._limbs]


class TwiddleStack:
    """Per-modulus twiddle operands stacked along a leading limb axis.

    The limb-batched NTT paths transform a whole ``(limbs, N)`` residue
    matrix in one launch, which requires the per-modulus GEMM operands as
    3-D stacks (``W[i]`` is the table for ``moduli[i]``).  Building a stack
    is one-time precomputation (like the twiddle tables themselves) and is
    cached per ``(N, moduli)`` via :func:`get_twiddle_stack`; the hot
    transform path only indexes the prebuilt arrays.

    CKKS levels form prefix chains of one prime sequence, so a stack whose
    moduli are a prefix of an already-built deeper chain is constructed
    with that chain as ``parent``: every operand (and its float64 image) is
    then a zero-copy row slice of the parent's arrays instead of a fresh
    per-prefix copy — for a depth-L chain this cuts the resident stack
    memory from O(L^2) matrices to O(L).
    """

    def __init__(self, ring_degree: int, moduli: Tuple[int, ...],
                 parent: Optional["TwiddleStack"] = None) -> None:
        self.ring_degree = ring_degree
        self.moduli = tuple(int(q) for q in moduli)
        if not self.moduli:
            raise ValueError("a twiddle stack needs at least one modulus")
        if parent is not None:
            if parent.ring_degree != ring_degree:
                raise ValueError("parent stack has a different ring degree")
            if parent.moduli[:len(self.moduli)] != self.moduli:
                raise ValueError(
                    "moduli %s are not a prefix of the parent chain %s"
                    % (self.moduli, parent.moduli)
                )
        self._parent = parent
        self.caches = tuple(get_twiddle_cache(ring_degree, q) for q in self.moduli)
        self.moduli_array = np.asarray(self.moduli, dtype=np.int64)
        self.degree_inverse_column = np.asarray(
            [cache.degree_inverse for cache in self.caches], dtype=np.int64
        )[:, None]
        self._stacks: Dict[str, np.ndarray] = {}
        self._float_caches: Dict[str, FloatOperandCache] = {}
        self._buffers: Dict[str, DeviceBuffer] = {}

    @property
    def limb_count(self) -> int:
        return len(self.moduli)

    # -- Eq. 8 (single-GEMM) stacks ------------------------------------
    def forward_matrices(self) -> np.ndarray:
        """``(limbs, N, N)`` stack of the full forward twiddle matrices."""
        return self._stacked("W_forward", lambda cache: cache.forward_matrix())

    def inverse_matrices(self) -> np.ndarray:
        """``(limbs, N, N)`` stack of the full inverse twiddle matrices."""
        return self._stacked("W_inverse", lambda cache: cache.inverse_matrix())

    # -- Eq. 9 (four-step) stacks --------------------------------------
    def four_step_forward(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(W1, W2, W3)`` stacks, each ``(limbs, ...)``, for the forward pass."""
        return (
            self._stacked("fs_w1", lambda cache: cache.four_step_forward()[0]),
            self._stacked("fs_w2", lambda cache: cache.four_step_forward()[1]),
            self._stacked("fs_w3", lambda cache: cache.four_step_forward()[2]),
        )

    def four_step_inverse(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(V1, V2, V3)`` stacks for the inverse four-step pass."""
        return (
            self._stacked("fs_v1", lambda cache: cache.four_step_inverse()[0]),
            self._stacked("fs_v2", lambda cache: cache.four_step_inverse()[1]),
            self._stacked("fs_v3", lambda cache: cache.four_step_inverse()[2]),
        )

    # -- float64 images for the BLAS fast path -------------------------
    def forward_matrices_cache(self) -> FloatOperandCache:
        return self._float("W_forward", self.forward_matrices)

    def inverse_matrices_cache(self) -> FloatOperandCache:
        return self._float("W_inverse", self.inverse_matrices)

    def four_step_forward_caches(self) -> Tuple[FloatOperandCache, FloatOperandCache]:
        """Float caches for ``(W1, W3)`` (the GEMM operands)."""
        self.four_step_forward()
        return self._float("fs_w1"), self._float("fs_w3")

    def four_step_inverse_caches(self) -> Tuple[FloatOperandCache, FloatOperandCache]:
        """Float caches for ``(V1, V3)``."""
        self.four_step_inverse()
        return self._float("fs_v1"), self._float("fs_v3")

    def four_step_forward_hadamard_cache(self) -> FloatOperandCache:
        """Float cache for the forward Hadamard twiddle ``W2``.

        The float-resident four-step pipeline multiplies lazy residues by
        ``W2`` directly on the FMA units, so the Hadamard operand needs a
        reusable float64 image just like the GEMM operands.
        """
        self.four_step_forward()
        return self._float("fs_w2")

    def four_step_inverse_hadamard_cache(self) -> FloatOperandCache:
        """Float cache for the inverse Hadamard twiddle ``V2``."""
        self.four_step_inverse()
        return self._float("fs_v2")

    # -- Barrett constants for the float-resident kernels ---------------
    @property
    def barrett_chain(self) -> BarrettChain:
        """Precomputed float64 Barrett constants for this prime chain.

        Shared process-wide per moduli tuple (prefix chains of one prime
        sequence each get their own chain object, but the reciprocals are
        computed once per prime thanks to the ``lru_cache`` backing
        :func:`~repro.numtheory.floatmod.get_barrett_chain`).
        """
        return get_barrett_chain(self.moduli)

    @property
    def degree_inverse_float(self) -> np.ndarray:
        """``degree_inverse_column`` as a reusable float64 ``(limbs, 1)`` image."""
        cached = getattr(self, "_degree_inverse_float", None)
        if cached is None:
            cached = self.degree_inverse_column.astype(np.float64)
            self._degree_inverse_float = cached
        return cached

    # -- resident operand handles (the device images of the stacks) ----
    def forward_matrices_buffer(self) -> DeviceBuffer:
        """Resident handle onto :meth:`forward_matrices` (float image attached)."""
        return self._buffer("W_forward", self.forward_matrices)

    def inverse_matrices_buffer(self) -> DeviceBuffer:
        """Resident handle onto :meth:`inverse_matrices`."""
        return self._buffer("W_inverse", self.inverse_matrices)

    def four_step_forward_buffers(self) -> Tuple[DeviceBuffer, DeviceBuffer, DeviceBuffer]:
        """Resident handles onto the ``(W1, W2, W3)`` stacks."""
        self.four_step_forward()
        return (self._buffer("fs_w1"), self._buffer("fs_w2"),
                self._buffer("fs_w3"))

    def four_step_inverse_buffers(self) -> Tuple[DeviceBuffer, DeviceBuffer, DeviceBuffer]:
        """Resident handles onto the ``(V1, V2, V3)`` stacks."""
        self.four_step_inverse()
        return (self._buffer("fs_v1"), self._buffer("fs_v2"),
                self._buffer("fs_v3"))

    # ------------------------------------------------------------------
    def _buffer(self, key: str, build=None) -> DeviceBuffer:
        """The shared :class:`DeviceBuffer` wrapping stacked operand ``key``.

        One handle per stack and per process: a device backend uploads the
        operand once and every later transform reuses the native image,
        and the blas backend finds the float64 image pre-attached.  Every
        stacked operand attaches its float cache — the GEMM stacks feed
        the dgemm fast paths, and the Hadamard twiddles (``fs_w2`` /
        ``fs_v2``) feed the float-resident element-wise kernels.  Twiddles
        are immutable, so the handles are never invalidated — dropping the
        stack via :func:`clear_twiddle_stacks` drops the handles with it.
        """
        buf = self._buffers.get(key)
        if buf is None:
            if build is not None:
                build()
            buf = DeviceBuffer.wrap(self._stacks[key])
            buf.attach_float_cache(self._float(key))
            self._buffers[key] = buf
        return buf

    def _stacked(self, key: str, extract) -> np.ndarray:
        if key not in self._stacks:
            if self._parent is not None:
                # Zero-copy: the prefix rows of the parent's stacked operand.
                self._stacks[key] = self._parent._stacked(key, extract)[:self.limb_count]
            else:
                self._stacks[key] = np.stack([extract(cache) for cache in self.caches])
        return self._stacks[key]

    def _float(self, key: str, build=None) -> FloatOperandCache:
        if key not in self._float_caches:
            if build is not None:
                build()
            if self._parent is not None:
                self._float_caches[key] = _PrefixFloatCache(
                    self._parent._float(key), self.limb_count)
            else:
                self._float_caches[key] = FloatOperandCache(self._stacks[key])
        return self._float_caches[key]


#: Built stacks per ``(N, moduli)``; consulted for prefix reuse.
_STACK_CACHE: Dict[Tuple[int, Tuple[int, ...]], TwiddleStack] = {}
#: Entry bound matching the old ``lru_cache(maxsize=128)``: long-lived
#: processes sweeping many parameter sets must not accumulate root stacks
#: forever.  Eviction is FIFO; prefix views stay valid because they hold
#: numpy views of the root's arrays, not the root stack object.
_STACK_CACHE_LIMIT = 128


def get_twiddle_stack(ring_degree: int, moduli) -> TwiddleStack:
    """Process-wide shared :class:`TwiddleStack` for ``(N, moduli)``.

    CKKS levels form prefix chains of one prime sequence, so the number of
    distinct stacks per instance is the number of levels actually visited —
    and whenever a deeper chain with the requested moduli as a prefix is
    already cached (the common case: the full chain is built at encryption
    level before any rescale), the new stack is a zero-copy view of it.
    """
    key = (ring_degree, tuple(int(q) for q in moduli))
    stack = _STACK_CACHE.get(key)
    if stack is None:
        parent = None
        for (cached_degree, chain), candidate in _STACK_CACHE.items():
            if (cached_degree == ring_degree
                    and len(chain) > len(key[1])
                    and chain[:len(key[1])] == key[1]
                    and (parent is None or candidate.limb_count > parent.limb_count)):
                parent = candidate
        stack = TwiddleStack(ring_degree, key[1], parent=parent)
        while len(_STACK_CACHE) >= _STACK_CACHE_LIMIT:
            _STACK_CACHE.pop(next(iter(_STACK_CACHE)))
        _STACK_CACHE[key] = stack
    return stack


def clear_twiddle_stacks() -> None:
    """Drop all cached twiddle stacks (frees the stacked operand memory)."""
    _STACK_CACHE.clear()
