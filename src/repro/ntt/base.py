"""Common interface for all NTT engines.

The paper evaluates three configurations that differ only in how the NTT
kernel is computed (Table IV): *TensorFHE-NT* (radix-2 butterflies),
*TensorFHE-CO* (GEMM formulation on CUDA cores) and *TensorFHE* (segmented
GEMMs on tensor cores).  Every engine implements this interface so the
kernel layer, the CKKS evaluator and the benchmarks can swap them freely.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["NttEngine"]


class NttEngine(abc.ABC):
    """Negacyclic NTT over ``Z_q[X]/(X^N + 1)`` for one ``(N, q)`` pair.

    All engines accept and return coefficient vectors in natural order with
    entries reduced to ``[0, q)``.
    """

    #: Short identifier used by the planner and the benchmarks.
    name = "abstract"

    def __init__(self, ring_degree: int, modulus: int) -> None:
        self.ring_degree = ring_degree
        self.modulus = modulus

    @abc.abstractmethod
    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Transform a coefficient vector to the evaluation (NTT) domain."""

    @abc.abstractmethod
    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Transform an evaluation-domain vector back to coefficients."""

    def forward_batch(self, coefficient_rows: np.ndarray) -> np.ndarray:
        """Forward-transform each row of a 2-D array (operation batching)."""
        rows = np.asarray(coefficient_rows, dtype=np.int64)
        if rows.ndim == 1:
            return self.forward(rows)
        return np.stack([self.forward(row) for row in rows])

    def inverse_batch(self, value_rows: np.ndarray) -> np.ndarray:
        """Inverse-transform each row of a 2-D array (operation batching)."""
        rows = np.asarray(value_rows, dtype=np.int64)
        if rows.ndim == 1:
            return self.inverse(rows)
        return np.stack([self.inverse(row) for row in rows])

    def _validate(self, vector: np.ndarray) -> np.ndarray:
        array = np.asarray(vector, dtype=np.int64)
        if array.ndim != 1 or array.shape[0] != self.ring_degree:
            raise ValueError(
                "expected a vector of length %d, got shape %s"
                % (self.ring_degree, array.shape)
            )
        if np.any(array < 0) or np.any(array >= self.modulus):
            array = array % self.modulus
        return array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(N=%d, q=%d)" % (type(self).__name__, self.ring_degree, self.modulus)
