"""Common interface for all NTT engines.

The paper evaluates three configurations that differ only in how the NTT
kernel is computed (Table IV): *TensorFHE-NT* (radix-2 butterflies),
*TensorFHE-CO* (GEMM formulation on CUDA cores) and *TensorFHE* (segmented
GEMMs on tensor cores).  Every engine implements this interface so the
kernel layer, the CKKS evaluator and the benchmarks can swap them freely.

Batched execution model
-----------------------
Engines expose two batch axes, mirroring the paper's operation-level
batching (Section IV-C):

* ``forward_batch`` / ``inverse_batch`` — many polynomials sharing one
  modulus (the *B* axis of the paper's ``(L, B, N)`` layout);
* ``forward_limbs`` / ``inverse_limbs`` — the limbs of one RNS polynomial,
  each row with its own prime (the *L* axis);
* ``forward_ops`` / ``inverse_ops`` — both axes fused: a ``(B, L, N)``
  stack of whole RNS polynomials, the paper's full multi-ciphertext
  batched execution.

``forward_limbs`` is the primary path of the CKKS stack: a whole
``(limbs, N)`` residue matrix is transformed in one engine call.  The GEMM
engines implement it natively by stacking the per-modulus twiddle operands
into 3-D batched ``matmul`` launches, and extend the same launches to
``forward_ops`` by folding the operation axis into the GEMM's free
dimension — one backend launch per transform step covers every operation
and every limb.  This base class provides generic fallbacks (per-limb and
per-operation dispatch) for the butterfly and reference engines.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import abc

import numpy as np

from ..backend.registry import resolve_backend
from ..backend.residency import as_ndarray, is_buffer, match_residency, stack_arrays

__all__ = ["NttEngine"]


class NttEngine(abc.ABC):
    """Negacyclic NTT over ``Z_q[X]/(X^N + 1)`` for one ``(N, q)`` pair.

    All engines accept and return coefficient vectors in natural order with
    entries reduced to ``[0, q)``.

    Engines are backend-agnostic: the GEMM launches they issue go through
    the :mod:`repro.ntt.gemm_utils` funnel, which dispatches to the compute
    backend pinned at construction (``backend=``) or, when none is pinned,
    to the process-wide active backend (``REPRO_BACKEND`` / numpy).
    """

    #: Short identifier used by the planner and the benchmarks.
    name = "abstract"

    def __init__(self, ring_degree: int, modulus: int, *,
                 backend=None) -> None:
        self.ring_degree = ring_degree
        self.modulus = modulus
        #: Pinned backend spec (None / name / instance) forwarded to every
        #: GEMM funnel call; None tracks the process-wide active backend.
        self.backend = backend
        # Sibling engines (same class, same N, other primes) backing the
        # generic per-limb fallback of forward_limbs/inverse_limbs.
        self._limb_engines: Dict[int, "NttEngine"] = {}

    @abc.abstractmethod
    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Transform a coefficient vector to the evaluation (NTT) domain."""

    @abc.abstractmethod
    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Transform an evaluation-domain vector back to coefficients."""

    def forward_batch(self, coefficient_rows: np.ndarray) -> np.ndarray:
        """Forward-transform each row of a 2-D array (operation batching)."""
        rows = np.asarray(coefficient_rows, dtype=np.int64)
        if rows.ndim == 1:
            return self.forward(rows)
        return np.stack([self.forward(row) for row in rows])

    def inverse_batch(self, value_rows: np.ndarray) -> np.ndarray:
        """Inverse-transform each row of a 2-D array (operation batching)."""
        rows = np.asarray(value_rows, dtype=np.int64)
        if rows.ndim == 1:
            return self.inverse(rows)
        return np.stack([self.inverse(row) for row in rows])

    # ------------------------------------------------------------------
    # Limb-batched transforms: one call per RNS polynomial.
    # ------------------------------------------------------------------
    def forward_limbs(self, residues: np.ndarray,
                      moduli: Sequence[int]) -> np.ndarray:
        """Forward-transform row ``i`` of ``residues`` modulo ``moduli[i]``.

        Generic fallback: dispatch each limb to a cached sibling engine of
        the same class (a host-level loop — resident inputs are staged to
        host with the transfer counted).  The GEMM engines override this
        with a single batched launch over the stacked twiddle operands.
        """
        validated, moduli = self._validate_limbs(residues, moduli)
        rows = as_ndarray(validated)
        out = np.stack([
            self._engine_for_modulus(int(q)).forward(rows[i])
            for i, q in enumerate(moduli)
        ])
        return match_residency(out, residues)

    def inverse_limbs(self, values: np.ndarray,
                      moduli: Sequence[int]) -> np.ndarray:
        """Inverse-transform row ``i`` of ``values`` modulo ``moduli[i]``.

        Generic per-limb fallback; see :meth:`forward_limbs`.
        """
        validated, moduli = self._validate_limbs(values, moduli)
        rows = as_ndarray(validated)
        out = np.stack([
            self._engine_for_modulus(int(q)).inverse(rows[i])
            for i, q in enumerate(moduli)
        ])
        return match_residency(out, values)

    # ------------------------------------------------------------------
    # Operation-batched transforms: one call per (B, L, N) stack.
    # ------------------------------------------------------------------
    def forward_ops(self, stacks: np.ndarray,
                    moduli: Sequence[int]) -> np.ndarray:
        """Forward-transform a ``(B, L, N)`` stack of RNS polynomials.

        ``stacks[b, i]`` is limb ``i`` of operation ``b`` and is reduced
        modulo ``moduli[i]`` — every operation shares the same prime chain,
        which is what lets the batch share one twiddle stack.  Generic
        fallback: one :meth:`forward_limbs` call per operation, which owns
        the per-slice validation (no second pass over the stack here).
        The GEMM engines override this with a single batched launch per
        transform step covering all ``B * L`` rows.
        """
        stacks = self._check_ops_shape(stacks)
        if stacks.shape[0] == 0:
            return stacks
        return stack_arrays([self.forward_limbs(stacks[b], moduli)
                             for b in range(stacks.shape[0])])

    def inverse_ops(self, stacks: np.ndarray,
                    moduli: Sequence[int]) -> np.ndarray:
        """Inverse-transform a ``(B, L, N)`` stack of RNS polynomials.

        Generic per-operation fallback; see :meth:`forward_ops`.
        """
        stacks = self._check_ops_shape(stacks)
        if stacks.shape[0] == 0:
            return stacks
        return stack_arrays([self.inverse_limbs(stacks[b], moduli)
                             for b in range(stacks.shape[0])])

    def _stage_resident(self, operand):
        """Promote a handle input onto this engine's device before slicing.

        The transform paths carve views out of the input (``[:, :, None]``,
        reshapes); staging the *parent* handle first means those views are
        device-side and the upload happens exactly once per handle instead
        of once per derived view.  A no-op for host arrays/backends.
        """
        if is_buffer(operand):
            backend = resolve_backend(self.backend)
            if not backend.device_is_host:
                operand.ensure_device(backend)
        return operand

    def _engine_for_modulus(self, modulus: int) -> "NttEngine":
        """Return a same-class engine for ``(N, modulus)`` (cached)."""
        if modulus == self.modulus:
            return self
        engine = self._limb_engines.get(modulus)
        if engine is None:
            engine = type(self)(self.ring_degree, modulus, backend=self.backend)
            self._limb_engines[modulus] = engine
        return engine

    def _validate(self, vector: np.ndarray) -> np.ndarray:
        array = np.asarray(vector, dtype=np.int64)
        if array.ndim != 1 or array.shape[0] != self.ring_degree:
            raise ValueError(
                "expected a vector of length %d, got shape %s"
                % (self.ring_degree, array.shape)
            )
        if np.any(array < 0) or np.any(array >= self.modulus):
            array = array % self.modulus
        return array

    def _validate_limbs(self, residues: np.ndarray,
                        moduli: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Check/reduce a ``(limbs, N)`` residue matrix against its moduli.

        Residency handles with a host image (every user-constructed handle
        has one) get the same range scan/reduction as plain arrays — the
        historical contract for out-of-range residues.  Only device-only
        handles are trusted as reduced: their values were produced by the
        library's own kernels, and scanning them would force a host copy.
        """
        moduli_array = np.asarray([int(q) for q in moduli], dtype=np.int64)
        if is_buffer(residues):
            shape = residues.shape
            if len(shape) != 2 or shape[1] != self.ring_degree:
                raise ValueError(
                    "expected a (limbs, %d) residue matrix, got shape %s"
                    % (self.ring_degree, shape)
                )
            if moduli_array.shape[0] != shape[0]:
                raise ValueError(
                    "got %d moduli for %d limbs"
                    % (moduli_array.shape[0], shape[0])
                )
            host = residues.host_image
            if host is not None:
                column = moduli_array[:, None]
                if np.any(host < 0) or np.any(host >= column):
                    # A stale device image would hold the unreduced values.
                    residues = type(residues).wrap(host % column)
            return residues, moduli_array
        array = np.asarray(residues, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != self.ring_degree:
            raise ValueError(
                "expected a (limbs, %d) residue matrix, got shape %s"
                % (self.ring_degree, array.shape)
            )
        if moduli_array.shape[0] != array.shape[0]:
            raise ValueError(
                "got %d moduli for %d limbs"
                % (moduli_array.shape[0], array.shape[0])
            )
        column = moduli_array[:, None]
        if np.any(array < 0) or np.any(array >= column):
            array = array % column
        return array, moduli_array

    def _check_ops_shape(self, stacks: np.ndarray) -> np.ndarray:
        """Shape-check a ``(B, limbs, N)`` stack (no range scan)."""
        if is_buffer(stacks):
            shape = stacks.shape
            if len(shape) != 3 or shape[2] != self.ring_degree:
                raise ValueError(
                    "expected a (B, limbs, %d) stack, got shape %s"
                    % (self.ring_degree, shape)
                )
            return stacks
        array = np.asarray(stacks, dtype=np.int64)
        if array.ndim != 3 or array.shape[2] != self.ring_degree:
            raise ValueError(
                "expected a (B, limbs, %d) stack, got shape %s"
                % (self.ring_degree, array.shape)
            )
        return array

    def _validate_ops(self, stacks: np.ndarray,
                      moduli: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Check/reduce a ``(B, limbs, N)`` stack against its shared moduli.

        Handles with a host image get the same scan/reduction as plain
        arrays; device-only handles are trusted (see :meth:`_validate_limbs`).
        """
        array = self._check_ops_shape(stacks)
        moduli_array = np.asarray([int(q) for q in moduli], dtype=np.int64)
        if moduli_array.shape[0] != array.shape[1]:
            raise ValueError(
                "got %d moduli for %d limbs"
                % (moduli_array.shape[0], array.shape[1])
            )
        # Moduli broadcast over the limb axis (axis 1) of the stack.
        column = moduli_array[None, :, None]
        if is_buffer(array):
            host = array.host_image
            if host is not None and (np.any(host < 0) or np.any(host >= column)):
                array = type(array).wrap(host % column)
            return array, moduli_array
        if np.any(array < 0) or np.any(array >= column):
            array = array % column
        return array, moduli_array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(N=%d, q=%d)" % (type(self).__name__, self.ring_degree, self.modulus)
