"""Radix-2 butterfly NTT (the *TensorFHE-NT* kernel).

This is the classic in-place negacyclic NTT: Cooley–Tukey butterflies for
the forward transform and Gentleman–Sande butterflies for the inverse
(Figure 2 of the paper), with the negacyclic twist merged into the twiddle
factors as in Longa–Naehrig.  It is the formulation the paper's stall
analysis (Figure 4) shows to be RAW-stall bound on a GPU: every stage
depends on the previous one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..numtheory.bit_ops import ilog2
from .base import NttEngine
from .twiddle import TwiddleCache, get_twiddle_cache

__all__ = ["ButterflyNtt"]


class ButterflyNtt(NttEngine):
    """Iterative radix-2 CT/GS negacyclic NTT with precomputed twiddles."""

    name = "butterfly"

    def __init__(self, ring_degree: int, modulus: int,
                 twiddles: Optional[TwiddleCache] = None, *,
                 backend=None) -> None:
        super().__init__(ring_degree, modulus, backend=backend)
        self.twiddles = twiddles or get_twiddle_cache(ring_degree, modulus)
        self._psi_brv = self.twiddles.psi_powers_bitrev()
        self._psi_inv_brv = self.twiddles.psi_inv_powers_bitrev()
        self._stages = ilog2(ring_degree)

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Cooley–Tukey forward NTT; natural-order input and output."""
        work = self._validate(coefficients).copy()
        n = self.ring_degree
        q = self.modulus
        psi = self._psi_brv
        t = n
        m = 1
        while m < n:
            t //= 2
            for i in range(m):
                j1 = 2 * i * t
                j2 = j1 + t
                factor = int(psi[m + i])
                upper = work[j1:j2]
                lower = work[j1 + t:j2 + t]
                twisted = (lower * factor) % q
                summed = upper + twisted
                np.subtract(summed, q, out=summed, where=summed >= q)
                diffed = upper - twisted
                np.add(diffed, q, out=diffed, where=diffed < 0)
                work[j1:j2] = summed
                work[j1 + t:j2 + t] = diffed
            m *= 2
        # The butterfly network leaves the result in bit-reversed order; the
        # engine contract is natural order, so undo the permutation here.
        from ..numtheory.bit_ops import bit_reverse_permutation

        return work[bit_reverse_permutation(n)]

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Gentleman–Sande inverse NTT; natural-order input and output."""
        from ..numtheory.bit_ops import bit_reverse_permutation

        n = self.ring_degree
        q = self.modulus
        # GS consumes bit-reversed input, so permute first.
        work = self._validate(values)[bit_reverse_permutation(n)].copy()
        psi_inv = self._psi_inv_brv
        t = 1
        m = n
        while m > 1:
            j1 = 0
            h = m // 2
            for i in range(h):
                j2 = j1 + t
                factor = int(psi_inv[h + i])
                upper = work[j1:j2]
                lower = work[j1 + t:j2 + t]
                summed = upper + lower
                np.subtract(summed, q, out=summed, where=summed >= q)
                diffed = upper - lower
                np.add(diffed, q, out=diffed, where=diffed < 0)
                work[j1:j2] = summed
                work[j1 + t:j2 + t] = (diffed * factor) % q
                j1 += 2 * t
            t *= 2
            m //= 2
        return (work * self.twiddles.degree_inverse) % q
