"""Negacyclic polynomial multiplication built on the NTT engines.

Polynomial multiplication in ``Z_q[X]/(X^N + 1)`` is the workhorse of every
CKKS operation.  With the negacyclic twist folded into the twiddle factors
(Eq. 3/4 of the paper) it is simply ``INTT(NTT(a) ⊙ NTT(b))``.  A
schoolbook implementation is provided as the oracle for the tests.
"""

from __future__ import annotations

import numpy as np

from ..numtheory.modular import vec_mod_mul
from .base import NttEngine

__all__ = ["negacyclic_multiply", "schoolbook_negacyclic_multiply", "pointwise_multiply"]


def pointwise_multiply(lhs_ntt: np.ndarray, rhs_ntt: np.ndarray, modulus: int) -> np.ndarray:
    """Hadamard product of two evaluation-domain vectors."""
    return vec_mod_mul(lhs_ntt, rhs_ntt, modulus)


def negacyclic_multiply(lhs: np.ndarray, rhs: np.ndarray, engine: NttEngine) -> np.ndarray:
    """Multiply two polynomials modulo ``X^N + 1`` using an NTT engine."""
    lhs_ntt = engine.forward(np.asarray(lhs, dtype=np.int64))
    rhs_ntt = engine.forward(np.asarray(rhs, dtype=np.int64))
    product_ntt = pointwise_multiply(lhs_ntt, rhs_ntt, engine.modulus)
    return engine.inverse(product_ntt)


def schoolbook_negacyclic_multiply(lhs, rhs, ring_degree: int, modulus: int) -> np.ndarray:
    """Quadratic-time negacyclic multiplication (test oracle).

    Coefficient ``k`` of the product is ``sum_{i+j=k} a_i b_j - sum_{i+j=k+N} a_i b_j``.
    """
    lhs = [int(x) % modulus for x in lhs]
    rhs = [int(x) % modulus for x in rhs]
    if len(lhs) != ring_degree or len(rhs) != ring_degree:
        raise ValueError("operands must have length %d" % ring_degree)
    result = [0] * ring_degree
    for i, a_i in enumerate(lhs):
        if a_i == 0:
            continue
        for j, b_j in enumerate(rhs):
            if b_j == 0:
                continue
            index = i + j
            term = a_i * b_j % modulus
            if index < ring_degree:
                result[index] = (result[index] + term) % modulus
            else:
                result[index - ring_degree] = (result[index - ring_degree] - term) % modulus
    return np.asarray(result, dtype=np.int64)
