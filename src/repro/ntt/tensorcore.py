"""Tensor-core NTT (the full *TensorFHE* kernel, paper Figure 8).

Same three-GEMM decomposition as :class:`~repro.ntt.four_step.FourStepNtt`,
but every GEMM is lowered to the simulated Tensor Core Units:

* **Stage 1** — segment the input matrix into four u8 limb matrices
  (:func:`repro.tcu.segmentation.segment_matrix`);
* **Stage 2** — run the limb-pair GEMMs ``O_ij = W1_i @ T_j`` on the
  TCU simulator, one CUDA stream each (up to 16 concurrent GEMMs);
* **Stage 3** — fuse the partial products (Booth accumulation), Hadamard-
  multiply with ``W2`` and re-segment;
* **Stage 4** — limb-pair GEMMs with ``W3`` on the TCUs;
* **Stage 5** — fuse and reduce modulo ``q`` (plus the ``N^-1`` factor for
  the inverse transform).

The class keeps the :class:`~repro.tcu.gemm.TcuStats` counters of all GEMMs
it issued so the performance model and the benchmarks can report tensor-
core utilisation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..backend.residency import as_ndarray
from ..numtheory.bit_ops import SEGMENT_COUNT, segment_u32
from ..tcu.fusion import fuse_partial_products, fuse_partial_products_limbs
from ..tcu.gemm import TcuStats, TensorCoreGemm
from ..tcu.segmentation import segment_matrix
from ..tcu.streams import StreamScheduler, StreamTask
from .four_step import FourStepNtt
from .gemm_utils import modular_hadamard
from .twiddle import TwiddleCache

__all__ = ["TensorCoreNtt"]


class TensorCoreNtt(FourStepNtt):
    """Four-step NTT whose GEMMs run on the simulated INT8 tensor cores."""

    name = "tensorcore"

    def __init__(self, ring_degree: int, modulus: int,
                 twiddles: Optional[TwiddleCache] = None, *,
                 stream_count: int = 16, backend=None) -> None:
        super().__init__(ring_degree, modulus, twiddles, backend=backend)
        self.tcu = TensorCoreGemm()
        self.stream_scheduler = StreamScheduler(stream_count)
        self.last_schedule = None

    # ------------------------------------------------------------------
    @property
    def stats(self) -> TcuStats:
        """Tensor-core work counters accumulated since construction."""
        return self.tcu.stats

    def reset_stats(self) -> None:
        self.tcu.stats.reset()

    # ------------------------------------------------------------------
    def _gemm(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Lower a modular GEMM to segmented INT8 tensor-core GEMMs.

        Both operands are segmented into u8 limb matrices; every pair of
        non-zero limbs produces one INT8 GEMM with s32 accumulation, and
        the partial products are fused modulo ``q``.
        """
        lhs_segments = segment_matrix(np.asarray(lhs, dtype=np.int64))
        rhs_segments = segment_matrix(np.asarray(rhs, dtype=np.int64))
        partials: Dict[Tuple[int, int], np.ndarray] = {}
        tasks = []
        inner = np.asarray(lhs).shape[1]
        for limb_left in lhs_segments.nonzero_limbs():
            for limb_right in rhs_segments.nonzero_limbs():
                partial = self.tcu.multiply(lhs_segments.limb(limb_left),
                                            rhs_segments.limb(limb_right))
                partials[(limb_left, limb_right)] = partial
                tasks.append(StreamTask(
                    name="gemm_%d_%d" % (limb_left, limb_right),
                    cost=float(partial.shape[0] * partial.shape[1] * inner),
                ))
        self.last_schedule = self.stream_scheduler.schedule(tasks)
        return fuse_partial_products(partials, self.modulus)

    def _hadamard(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Hadamard products stay on the CUDA cores, as in the paper."""
        return modular_hadamard(lhs, rhs, self.modulus, backend=self.backend)

    def _gemm_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                    moduli: np.ndarray, *, lhs_cache=None,
                    rhs_cache=None) -> np.ndarray:
        """Limb-batched segmented GEMM on the simulated tensor cores.

        Both 3-D operand stacks (RNS limb axis leading) are segmented into
        u8 byte planes in one shot; every pair of non-zero byte planes then
        issues a *single* batched TCU GEMM covering all RNS limbs — the
        CUTLASS batched-GEMM launch of the paper — and the partial products
        are fused with per-limb moduli.

        Residency boundary: the u8 segmentation is a host-side simulation
        step, so handle operands are staged to host here (``as_ndarray``
        counts the crossing on device backends) — the analogue of the
        paper's explicit INT8 re-quantisation before a tensor-core launch.
        """
        lhs = as_ndarray(lhs)
        rhs = as_ndarray(rhs)
        lhs_segments = segment_u32(lhs)
        rhs_segments = segment_u32(rhs)
        lhs_active = [s for s in range(SEGMENT_COUNT) if lhs_segments[s].any()]
        rhs_active = [s for s in range(SEGMENT_COUNT) if rhs_segments[s].any()]
        limbs = lhs.shape[0]
        inner = lhs.shape[2]
        if not lhs_active or not rhs_active:
            self.last_schedule = self.stream_scheduler.schedule([])
            return np.zeros((limbs, lhs.shape[1], rhs.shape[2]), dtype=np.int64)
        partials: Dict[Tuple[int, int], np.ndarray] = {}
        tasks = []
        for seg_left in lhs_active:
            for seg_right in rhs_active:
                partial = self.tcu.multiply_batch(lhs_segments[seg_left],
                                                  rhs_segments[seg_right])
                partials[(seg_left, seg_right)] = partial
                tasks.append(StreamTask(
                    name="gemm_%d_%d" % (seg_left, seg_right),
                    cost=float(limbs * partial.shape[1] * partial.shape[2] * inner),
                ))
        self.last_schedule = self.stream_scheduler.schedule(tasks)
        return fuse_partial_products_limbs(partials, moduli)
