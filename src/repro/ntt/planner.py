"""NTT engine registry and planner.

The planner is the software analogue of the paper's API layer picking which
NTT kernel to launch: it instantiates the requested engine (butterfly /
matrix / four-step / tensor-core / reference), caches engines per
``(engine, N, q)`` so their twiddle tables are reused, and exposes a
``default_engine`` that the CKKS stack uses.

The planner also fronts the limb-batched execution model: the CKKS stack
transforms whole RNS polynomials through :meth:`NttPlanner.forward_limbs` /
:meth:`NttPlanner.inverse_limbs`, which resolve to **one** engine call per
polynomial (the engine fuses the limb axis into a batched launch) instead
of ``limb_count`` per-limb calls.

Residency: every transform entry point accepts either host arrays or
:class:`~repro.backend.residency.DeviceBuffer` handles and forwards them
verbatim — the engines follow the funnel convention (handle in → handle
out), so a resident polynomial transforms without ever touching host.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Type

import numpy as np

from ..backend.registry import get_backend
from .base import NttEngine
from .butterfly import ButterflyNtt
from .four_step import FourStepNtt
from .matrix import MatrixNtt
from .reference import ReferenceNtt
from .tensorcore import TensorCoreNtt

__all__ = ["ENGINE_REGISTRY", "available_engines", "create_engine", "NttPlanner"]

ENGINE_REGISTRY: Dict[str, Type[NttEngine]] = {
    ReferenceNtt.name: ReferenceNtt,
    ButterflyNtt.name: ButterflyNtt,
    MatrixNtt.name: MatrixNtt,
    FourStepNtt.name: FourStepNtt,
    TensorCoreNtt.name: TensorCoreNtt,
}

#: Engine used by the CKKS stack when none is specified.  The four-step
#: GEMM engine is the fastest functionally-exact pure-numpy formulation and
#: corresponds to the paper's TensorFHE-CO configuration.
DEFAULT_ENGINE = FourStepNtt.name


def available_engines() -> Tuple[str, ...]:
    """Names of all registered NTT engines."""
    return tuple(ENGINE_REGISTRY)


def create_engine(name: str, ring_degree: int, modulus: int, **kwargs) -> NttEngine:
    """Instantiate engine ``name`` for the given ring degree and modulus."""
    try:
        engine_cls = ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown NTT engine %r; available: %s" % (name, ", ".join(ENGINE_REGISTRY))
        ) from None
    return engine_cls(ring_degree, modulus, **kwargs)


class NttPlanner:
    """Caches NTT engines per ``(engine_name, N, q)`` triple.

    ``backend`` pins the compute substrate every cached engine launches
    its GEMMs on: a registered backend name, an
    :class:`~repro.backend.base.ArrayBackend` instance, or ``None`` to
    follow the process-wide active backend (``REPRO_BACKEND`` / numpy).
    """

    def __init__(self, engine_name: str = DEFAULT_ENGINE, *,
                 backend=None) -> None:
        if engine_name not in ENGINE_REGISTRY:
            raise ValueError("unknown NTT engine %r" % engine_name)
        self.engine_name = engine_name
        if isinstance(backend, str):
            # Fail fast on typos instead of at the first transform.
            backend = get_backend(backend)
        self.backend = backend
        self._engines: Dict[Tuple[str, int, int], NttEngine] = {}

    def engine_for(self, ring_degree: int, modulus: int, *,
                   name: Optional[str] = None) -> NttEngine:
        """Return (and cache) an engine for ``(N, q)``."""
        engine_name = name or self.engine_name
        key = (engine_name, ring_degree, modulus)
        engine = self._engines.get(key)
        if engine is None:
            engine = create_engine(engine_name, ring_degree, modulus,
                                   backend=self.backend)
            self._engines[key] = engine
        return engine

    # ------------------------------------------------------------------
    # Limb-batched transforms: one engine call per RNS polynomial.
    # ------------------------------------------------------------------
    def forward_limbs(self, ring_degree: int, moduli: Sequence[int],
                      residues: np.ndarray, *,
                      name: Optional[str] = None) -> np.ndarray:
        """Forward-NTT a whole ``(limbs, N)`` residue matrix in one call.

        The engine cached for ``(N, moduli[0])`` executes the batch; GEMM
        engines fuse the limb axis into 3-D batched matmuls, the butterfly
        and reference engines fall back to per-limb sibling dispatch.
        """
        engine = self.engine_for(ring_degree, int(moduli[0]), name=name)
        return engine.forward_limbs(residues, moduli)

    def inverse_limbs(self, ring_degree: int, moduli: Sequence[int],
                      values: np.ndarray, *,
                      name: Optional[str] = None) -> np.ndarray:
        """Inverse-NTT a whole ``(limbs, N)`` value matrix in one call."""
        engine = self.engine_for(ring_degree, int(moduli[0]), name=name)
        return engine.inverse_limbs(values, moduli)

    # ------------------------------------------------------------------
    # Operation-batched transforms: one engine call per (B, L, N) stack.
    # ------------------------------------------------------------------
    def forward_ops(self, ring_degree: int, moduli: Sequence[int],
                    stacks: np.ndarray, *,
                    name: Optional[str] = None) -> np.ndarray:
        """Forward-NTT a whole ``(B, limbs, N)`` stack in one call.

        Every operation shares the prime chain ``moduli``; GEMM engines
        fuse both the operation and the limb axis into single batched
        launches per transform step, the butterfly and reference engines
        fall back to per-operation dispatch.
        """
        engine = self.engine_for(ring_degree, int(moduli[0]), name=name)
        return engine.forward_ops(stacks, moduli)

    def inverse_ops(self, ring_degree: int, moduli: Sequence[int],
                    stacks: np.ndarray, *,
                    name: Optional[str] = None) -> np.ndarray:
        """Inverse-NTT a whole ``(B, limbs, N)`` stack in one call."""
        engine = self.engine_for(ring_degree, int(moduli[0]), name=name)
        return engine.inverse_ops(stacks, moduli)

    def clear(self) -> None:
        """Drop all cached engines (and their twiddle tables)."""
        self._engines.clear()

    def __len__(self) -> int:
        return len(self._engines)
