"""NTT engine registry and planner.

The planner is the software analogue of the paper's API layer picking which
NTT kernel to launch: it instantiates the requested engine (butterfly /
matrix / four-step / tensor-core / reference), caches engines per
``(engine, N, q)`` so their twiddle tables are reused, and exposes a
``default_engine`` that the CKKS stack uses.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from .base import NttEngine
from .butterfly import ButterflyNtt
from .four_step import FourStepNtt
from .matrix import MatrixNtt
from .reference import ReferenceNtt
from .tensorcore import TensorCoreNtt

__all__ = ["ENGINE_REGISTRY", "available_engines", "create_engine", "NttPlanner"]

ENGINE_REGISTRY: Dict[str, Type[NttEngine]] = {
    ReferenceNtt.name: ReferenceNtt,
    ButterflyNtt.name: ButterflyNtt,
    MatrixNtt.name: MatrixNtt,
    FourStepNtt.name: FourStepNtt,
    TensorCoreNtt.name: TensorCoreNtt,
}

#: Engine used by the CKKS stack when none is specified.  The four-step
#: GEMM engine is the fastest functionally-exact pure-numpy formulation and
#: corresponds to the paper's TensorFHE-CO configuration.
DEFAULT_ENGINE = FourStepNtt.name


def available_engines() -> Tuple[str, ...]:
    """Names of all registered NTT engines."""
    return tuple(ENGINE_REGISTRY)


def create_engine(name: str, ring_degree: int, modulus: int, **kwargs) -> NttEngine:
    """Instantiate engine ``name`` for the given ring degree and modulus."""
    try:
        engine_cls = ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown NTT engine %r; available: %s" % (name, ", ".join(ENGINE_REGISTRY))
        ) from None
    return engine_cls(ring_degree, modulus, **kwargs)


class NttPlanner:
    """Caches NTT engines per ``(engine_name, N, q)`` triple."""

    def __init__(self, engine_name: str = DEFAULT_ENGINE) -> None:
        if engine_name not in ENGINE_REGISTRY:
            raise ValueError("unknown NTT engine %r" % engine_name)
        self.engine_name = engine_name
        self._engines: Dict[Tuple[str, int, int], NttEngine] = {}

    def engine_for(self, ring_degree: int, modulus: int, *, name: str = None) -> NttEngine:
        """Return (and cache) an engine for ``(N, q)``."""
        engine_name = name or self.engine_name
        key = (engine_name, ring_degree, modulus)
        engine = self._engines.get(key)
        if engine is None:
            engine = create_engine(engine_name, ring_degree, modulus)
            self._engines[key] = engine
        return engine

    def clear(self) -> None:
        """Drop all cached engines (and their twiddle tables)."""
        self._engines.clear()

    def __len__(self) -> int:
        return len(self._engines)
