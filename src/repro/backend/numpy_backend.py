"""Exact chunked-int64 backend: the zero-dependency default substrate.

NumPy's int64 matmul silently wraps on overflow, so the GEMMs split the
inner (reduction) dimension into chunks small enough that
``chunk * (q-1)**2`` stays below 2**62 and reduce modulo ``q`` between
chunks.  This matches the paper's observation that avoiding per-element
modulo reductions and instead reducing an accumulator occasionally is what
makes the matrix formulation fast; here it additionally keeps the Python
implementation exact for arbitrary 30-bit moduli.

This module is also the canonical home of the vectorised mat-mod kernels:
the public helpers in :mod:`repro.numtheory.modular` and
:mod:`repro.ntt.gemm_utils` dispatch to the active backend, and every other
backend inherits these int64 implementations as its exact fallback.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import ArrayBackend

__all__ = ["NumpyBackend", "max_safe_chunk"]

_SAFE_ACCUMULATOR_BITS = 62


def max_safe_chunk(modulus: int) -> int:
    """Largest inner-dimension chunk whose accumulation cannot overflow int64."""
    limit = 1 << _SAFE_ACCUMULATOR_BITS
    per_term = (modulus - 1) * (modulus - 1)
    if per_term == 0:
        return limit
    return max(1, limit // per_term)


def _moduli_column(moduli, ndim: int) -> np.ndarray:
    """Reshape a moduli vector to broadcast over the trailing ``ndim - 1`` axes."""
    moduli = np.asarray(moduli, dtype=np.int64)
    if moduli.ndim == 0:
        moduli = moduli.reshape(1)
    return moduli.reshape((moduli.shape[0],) + (1,) * (ndim - 1))


class NumpyBackend(ArrayBackend):
    """Pure-numpy int64 substrate, exact for all moduli below 2**31."""

    name = "numpy"

    # ------------------------------------------------------------------
    # Batched modular GEMMs
    # ------------------------------------------------------------------
    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:
        column = _moduli_column(moduli, 3)
        inner = lhs.shape[2]
        chunk = max_safe_chunk(int(column.max()))
        if chunk >= inner:
            return np.matmul(lhs, rhs) % column
        result = np.zeros((lhs.shape[0], lhs.shape[1], rhs.shape[2]), dtype=np.int64)
        for start in range(0, inner, chunk):
            stop = min(start + chunk, inner)
            partial = np.matmul(lhs[:, :, start:stop], rhs[:, start:stop, :]) % column
            result = (result + partial) % column
        return result

    def matmul(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        inner = lhs.shape[-1]
        chunk = max_safe_chunk(modulus)
        if chunk >= inner:
            return (lhs @ rhs) % modulus
        result = np.zeros(lhs.shape[:-1] + rhs.shape[1:], dtype=np.int64)
        for start in range(0, inner, chunk):
            stop = min(start + chunk, inner)
            partial = (lhs[..., start:stop] @ rhs[start:stop]) % modulus
            result = (result + partial) % modulus
        return result

    def matmul_rows(self, lhs: np.ndarray, rhs: np.ndarray,
                    row_moduli: np.ndarray, *,
                    operand_bound: Optional[int] = None) -> np.ndarray:
        column = _moduli_column(row_moduli, 2)
        inner = lhs.shape[-1]
        # Operand entries may live in residue domains other than the output
        # rows' primes, so the chunk bound comes from the actual maxima.
        per_term = (operand_bound if operand_bound is not None
                    else int(lhs.max(initial=0)) * int(rhs.max(initial=0)))
        chunk = inner if per_term == 0 else max(
            1, (1 << _SAFE_ACCUMULATOR_BITS) // per_term)
        if chunk >= inner:
            return (lhs @ rhs) % column
        result = np.zeros((lhs.shape[0], rhs.shape[1]), dtype=np.int64)
        for start in range(0, inner, chunk):
            stop = min(start + chunk, inner)
            partial = (lhs[:, start:stop] @ rhs[start:stop]) % column
            result = (result + partial) % column
        return result

    # ------------------------------------------------------------------
    # Element-wise mat-mod kernels
    # ------------------------------------------------------------------
    def hadamard_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                       moduli: np.ndarray) -> np.ndarray:
        return (lhs * rhs) % _moduli_column(moduli, lhs.ndim)

    def hadamard(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        return (lhs * rhs) % modulus

    def mat_reduce(self, matrix: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        return matrix % _moduli_column(moduli, matrix.ndim)

    def mat_add(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        column = _moduli_column(moduli, a.ndim)
        out = a + b
        np.subtract(out, column, out=out, where=out >= column)
        return out

    def mat_sub(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        column = _moduli_column(moduli, a.ndim)
        out = a - b
        np.add(out, column, out=out, where=out < 0)
        return out

    def mat_neg(self, a: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        column = _moduli_column(moduli, a.ndim)
        return ((column - a) % column).astype(np.int64)

    def mat_mul(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        return (a * b) % _moduli_column(moduli, a.ndim)
