"""Pluggable compute backends for the batched modular-GEMM substrate.

See :mod:`repro.backend.base` for the interface contract,
:mod:`repro.backend.registry` for runtime selection (``REPRO_BACKEND`` env
var, ``set_active_backend`` or explicit ``backend=`` arguments) and
:mod:`repro.backend.residency` for the :class:`DeviceBuffer` handles that
keep operands backend-native across kernel launches.
"""

from .base import ArrayBackend
from .blas_backend import BlasFloat64Backend, FloatOperandCache
from .cupy_backend import CupyBackend
from .multiprocess_backend import MultiprocessBackend
from .numpy_backend import NumpyBackend, max_safe_chunk
from .residency import (
    DEVICE_TO_HOST,
    HOST_TO_DEVICE,
    DeviceBuffer,
    as_buffer,
    as_ndarray,
    is_buffer,
    track_transfers,
)
from .registry import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    available_backends,
    get_active_backend,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    set_active_backend,
    use_backend,
)
from .sharded import (
    WORKERS_ENV_VAR,
    ShardedBackend,
    ShmArena,
    parse_worker_count,
)
from .torch_backend import TorchBackend

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "BlasFloat64Backend",
    "MultiprocessBackend",
    "ShardedBackend",
    "ShmArena",
    "WORKERS_ENV_VAR",
    "parse_worker_count",
    "TorchBackend",
    "CupyBackend",
    "FloatOperandCache",
    "max_safe_chunk",
    "DeviceBuffer",
    "HOST_TO_DEVICE",
    "DEVICE_TO_HOST",
    "is_buffer",
    "as_buffer",
    "as_ndarray",
    "track_transfers",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "register_backend",
    "registered_backends",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "get_active_backend",
    "set_active_backend",
    "use_backend",
]
