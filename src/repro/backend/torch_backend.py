"""Optional torch backend: the batched GEMM funnel on ``torch.matmul``.

A thin proof of the backend seam: the same chunked-exact modular GEMMs,
lowered to torch tensors.  CPU torch is enough to exercise the whole CKKS
stack through it (that is what CI does when torch is installed); on a CUDA
build, passing ``device="cuda"`` stages the operands on the GPU, which is
the first step toward the paper's actual execution model.

The backend registers unconditionally but reports itself unavailable when
``import torch`` fails, so the library keeps zero hard dependencies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .numpy_backend import NumpyBackend, max_safe_chunk

__all__ = ["TorchBackend"]

try:  # pragma: no cover - exercised only where torch is installed
    import torch
except ImportError:  # pragma: no cover
    torch = None


class TorchBackend(NumpyBackend):
    """Batched modular GEMMs on torch int64 tensors (CPU by default).

    Element-wise mat-mod kernels are memory-bound and stay on the inherited
    numpy implementations; only the GEMM launches are lowered to torch.
    """

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        if torch is None:
            raise RuntimeError("torch is not installed; TorchBackend is unavailable")
        self.device = torch.device(device)

    @classmethod
    def is_available(cls) -> bool:
        return torch is not None

    # ------------------------------------------------------------------
    def to_device(self, array: np.ndarray):
        return torch.from_numpy(np.ascontiguousarray(array, dtype=np.int64)).to(self.device)

    def from_device(self, array) -> np.ndarray:
        if torch is not None and isinstance(array, torch.Tensor):
            return array.cpu().numpy()
        return np.asarray(array, dtype=np.int64)

    def synchronize(self) -> None:
        if self.device.type == "cuda":  # pragma: no cover - CUDA only
            torch.cuda.synchronize(self.device)

    # ------------------------------------------------------------------
    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:
        lhs_t = self.to_device(lhs)
        rhs_t = self.to_device(rhs)
        column = self.to_device(np.asarray(moduli, dtype=np.int64)).reshape(-1, 1, 1)
        inner = lhs.shape[2]
        chunk = max_safe_chunk(int(np.asarray(moduli).max()))
        if chunk >= inner:
            out = torch.matmul(lhs_t, rhs_t) % column
        else:
            out = torch.zeros((lhs.shape[0], lhs.shape[1], rhs.shape[2]),
                              dtype=torch.int64, device=self.device)
            for start in range(0, inner, chunk):
                stop = min(start + chunk, inner)
                partial = torch.matmul(lhs_t[:, :, start:stop],
                                       rhs_t[:, start:stop, :]) % column
                out = (out + partial) % column
        return self.from_device(out)

    def matmul(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        lhs = np.asarray(lhs, dtype=np.int64)
        rhs = np.asarray(rhs, dtype=np.int64)
        inner = lhs.shape[-1]
        chunk = max_safe_chunk(modulus)
        lhs_t = self.to_device(lhs)
        rhs_t = self.to_device(rhs)
        if chunk >= inner:
            return self.from_device(torch.matmul(lhs_t, rhs_t) % modulus)
        out = torch.zeros(lhs.shape[:-1] + rhs.shape[1:],
                          dtype=torch.int64, device=self.device)
        for start in range(0, inner, chunk):
            stop = min(start + chunk, inner)
            partial = torch.matmul(lhs_t[..., start:stop],
                                   rhs_t[start:stop]) % modulus
            out = (out + partial) % modulus
        return self.from_device(out)
