"""Optional torch backend: the batched GEMM funnel on ``torch.matmul``.

A thin proof of the backend seam: the same chunked-exact modular GEMMs,
lowered to torch tensors.  CPU torch is enough to exercise the whole CKKS
stack through it (that is what CI does when torch is installed); on a CUDA
build, passing ``device="cuda"`` stages the operands on the GPU.

Residency: the backend is ``device_is_host = False`` — its native storage
is a ``torch.Tensor`` — so :class:`~repro.backend.residency.DeviceBuffer`
handles keep tensors live across launches and every numpy↔tensor crossing
is counted by the transfer instrumentation.  The ``*_native`` overrides
below run entirely on tensors: a fused chain of funnel calls through
handles performs zero intermediate conversions.

Float64-split fallback: consumer GPUs (and several mobile-class devices)
have no int64 matmul.  When the probe detects that — or ``use_float64``
forces it — the batched GEMM lowers to float64 matmuls guarded by the same
``2**53`` exactness bound as the blas backend: a single pass for small
primes, a hi/lo split of the lhs operand for primes up to ~27+ bits, and
the exact chunked-int64 path (or host numpy) when even the split would be
inexact.

The backend registers unconditionally but reports itself unavailable when
``import torch`` fails, so the library keeps zero hard dependencies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .blas_backend import FLOAT_EXACT_LIMIT
from .numpy_backend import NumpyBackend, max_safe_chunk
from .residency import DeviceBuffer

__all__ = ["TorchBackend"]

try:  # pragma: no cover - exercised only where torch is installed
    import torch
except ImportError:  # pragma: no cover
    torch = None


class TorchBackend(NumpyBackend):
    """Batched modular GEMMs on torch int64 tensors (CPU by default).

    ``use_float64=True`` forces the float64-split GEMM path (the default
    is a probe: int64 matmul support is detected per device).  Element-wise
    mat-mod kernels run on torch tensors in the ``*_native`` variants and
    on the inherited numpy implementations at the host level.
    """

    name = "torch"
    device_is_host = False

    def __init__(self, device: str = "cpu", *,
                 use_float64: Optional[bool] = None) -> None:
        if torch is None:
            raise RuntimeError("torch is not installed; TorchBackend is unavailable")
        self.device = torch.device(device)
        #: Whether this device can run int64 matmul at all (CUDA often
        #: cannot).  Distinct from ``use_float64``: forcing the float path
        #: on a capable device keeps the exact chunked-int64 fallback for
        #: launches the 2**53 guard rejects, while an incapable device
        #: falls back to host numpy instead.
        self._int64_matmul = self._probe_int64_matmul()  # pragma: no cover
        if use_float64 is None:  # pragma: no cover - needs torch
            use_float64 = not self._int64_matmul
        self.use_float64 = use_float64

    @classmethod
    def is_available(cls) -> bool:
        return torch is not None

    def capabilities(self) -> dict:  # pragma: no cover - needs torch
        """The base report plus the torch GEMM strategy probes.

        The float64-split GEMM is per-launch arithmetic, not a resident
        float image between launches, so ``float_residency`` stays False
        — the hi/lo split that *does* extend float residency to 30-bit
        chains lives in :mod:`repro.numtheory.floatmod` and is reported
        by the blas backend.
        """
        report = super().capabilities()
        report["int64_matmul"] = bool(self._int64_matmul)
        report["float64_split_gemm"] = bool(self.use_float64)
        return report

    def _probe_int64_matmul(self) -> bool:  # pragma: no cover - needs torch
        """Whether this device supports int64 matmul (CUDA often not)."""
        try:
            probe = torch.ones((1, 1), dtype=torch.int64, device=self.device)
            torch.matmul(probe, probe)
            return True
        except RuntimeError:
            return False

    # ------------------------------------------------------------------
    def to_device(self, array: np.ndarray):  # pragma: no cover - needs torch
        return torch.from_numpy(np.ascontiguousarray(array, dtype=np.int64)).to(self.device)

    def from_device(self, array) -> np.ndarray:
        if torch is not None and isinstance(array, torch.Tensor):  # pragma: no cover
            return array.cpu().numpy()
        return np.asarray(array, dtype=np.int64)

    def synchronize(self) -> None:
        if self.device.type == "cuda":  # pragma: no cover - CUDA only
            torch.cuda.synchronize(self.device)

    # ------------------------------------------------------------------
    # Native view algebra (torch names differ from numpy for two calls)
    # ------------------------------------------------------------------
    def nat_transpose(self, array, axes):  # pragma: no cover - needs torch
        return array.permute(axes)

    def nat_contiguous(self, array):  # pragma: no cover - needs torch
        return array.contiguous()

    def nat_copy(self, array):  # pragma: no cover - needs torch
        return array.clone()

    def nat_getitem(self, array, key):  # pragma: no cover - needs torch
        if isinstance(key, np.ndarray):
            key = torch.from_numpy(key).to(self.device)
        elif isinstance(key, tuple):
            key = tuple(
                torch.from_numpy(k).to(self.device) if isinstance(k, np.ndarray) else k
                for k in key
            )
        return array[key]

    def nat_stack(self, arrays, axis: int = 0):  # pragma: no cover - needs torch
        return torch.stack(list(arrays), dim=axis)

    def nat_concat(self, arrays, axis: int = 0):  # pragma: no cover - needs torch
        return torch.cat(list(arrays), dim=axis)

    # ------------------------------------------------------------------
    # Tensor-level kernels shared by the host and native entry points
    # ------------------------------------------------------------------
    def _matmul_limbs_t(self, lhs_t, rhs_t, moduli: np.ndarray):  # pragma: no cover
        column = self.to_device(np.asarray(moduli, dtype=np.int64)).reshape(-1, 1, 1)
        inner = lhs_t.shape[2]
        qmax = int(np.asarray(moduli).max())
        if self.use_float64:
            out = self._float_matmul_limbs_t(lhs_t, rhs_t, column, inner, qmax)
            if out is not None:
                return out
        if not self._int64_matmul:
            # The float guard declined and this device has no int64
            # matmul: stage through host numpy for the exact chunked path
            # (slow but correct — the last-resort promised by the guard).
            out = NumpyBackend.matmul_limbs(self, self.from_device(lhs_t),
                                            self.from_device(rhs_t), moduli)
            return self.to_device(out)
        chunk = max_safe_chunk(qmax)
        if chunk >= inner:
            return torch.matmul(lhs_t, rhs_t) % column
        out = torch.zeros((lhs_t.shape[0], lhs_t.shape[1], rhs_t.shape[2]),
                          dtype=torch.int64, device=self.device)
        for start in range(0, inner, chunk):
            stop = min(start + chunk, inner)
            partial = torch.matmul(lhs_t[:, :, start:stop],
                                   rhs_t[:, start:stop, :]) % column
            out = (out + partial) % column
        return out

    def _float_matmul_limbs_t(self, lhs_t, rhs_t, column, inner: int,
                              qmax: int):  # pragma: no cover - needs torch
        """Float64 batched GEMM, exact under the 2**53 bound, else None.

        Mirrors the blas backend's guarded fast path on tensors: single
        pass when ``inner * (q-1)**2`` fits the mantissa, otherwise a
        hi/lo split of the lhs operand halves the bit-width per partial
        GEMM (covers >27-bit primes at production N); None when even the
        split partials could round — the caller then falls back to the
        exact chunked-int64 path.  ``column`` is the broadcast moduli
        tensor for limb stacks or a plain int for the single-modulus
        kernel (torch's ``%`` broadcasts both the same way), so this is
        the single home of the guard logic.
        """
        bound = qmax - 1

        def combine(product):
            return torch.round(product).to(torch.int64) % column

        if inner * bound * bound < FLOAT_EXACT_LIMIT:
            return combine(torch.matmul(lhs_t.double(), rhs_t.double()))

        shift = max(1, (bound.bit_length() + 1) // 2)
        hi_max = max(1, bound >> shift)
        lo_max = (1 << shift) - 1
        if inner * max(hi_max, lo_max) * bound >= FLOAT_EXACT_LIMIT:
            return None
        rhs_f = rhs_t.double()
        high = combine(torch.matmul((lhs_t >> shift).double(), rhs_f))
        low = combine(torch.matmul((lhs_t & ((1 << shift) - 1)).double(), rhs_f))
        weight = (1 << shift) % column
        return (low + (high * weight) % column) % column

    def _float_hadamard_limbs_t(self, lhs_t, rhs_t, column,
                                qmax: int):  # pragma: no cover - needs torch
        """Float64 element-wise modular multiply, exact or None.

        The element-wise sibling of :meth:`_float_matmul_limbs_t` for
        devices without int64 multiplies: a single float64 pass when the
        residue product ``(q-1)**2`` fits the mantissa, otherwise the same
        hi/lo split of the lhs operand (covers >27-bit primes); None when
        even the split partials could round.
        """
        bound = qmax - 1

        def combine(product):
            return torch.round(product).to(torch.int64) % column

        if bound * bound < FLOAT_EXACT_LIMIT:
            return combine(lhs_t.double() * rhs_t.double())

        shift = max(1, (bound.bit_length() + 1) // 2)
        hi_max = max(1, bound >> shift)
        lo_max = (1 << shift) - 1
        if max(hi_max, lo_max) * bound >= FLOAT_EXACT_LIMIT:
            return None
        rhs_f = rhs_t.double()
        high = combine((lhs_t >> shift).double() * rhs_f)
        low = combine((lhs_t & ((1 << shift) - 1)).double() * rhs_f)
        weight = (1 << shift) % column
        return (low + (high * weight) % column) % column

    @staticmethod
    def _column_t(tensor_like, moduli):  # pragma: no cover - needs torch
        """Moduli broadcast column on the operand's device."""
        column = torch.from_numpy(
            np.ascontiguousarray(np.asarray(moduli, dtype=np.int64).reshape(-1)))
        column = column.to(tensor_like.device)
        return column.reshape((column.shape[0],) + (1,) * (tensor_like.dim() - 1))

    # ------------------------------------------------------------------
    # Host-level kernels (stage through tensors, return numpy)
    # ------------------------------------------------------------------
    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:  # pragma: no cover
        out = self._matmul_limbs_t(self.to_device(lhs), self.to_device(rhs), moduli)
        return self.from_device(out)

    def _matmul_t(self, lhs_t, rhs_t, modulus: int):  # pragma: no cover - needs torch
        inner = lhs_t.shape[-1]
        if self.use_float64:
            # torch's % broadcasts ints and tensors alike, so the scalar
            # modulus reuses the guarded limb-column helper unchanged.
            out = self._float_matmul_limbs_t(lhs_t, rhs_t, modulus, inner,
                                             modulus)
            if out is not None:
                return out
        if not self._int64_matmul:
            out = NumpyBackend.matmul(self, self.from_device(lhs_t),
                                      self.from_device(rhs_t), modulus)
            return self.to_device(out)
        chunk = max_safe_chunk(modulus)
        if chunk >= inner:
            return torch.matmul(lhs_t, rhs_t) % modulus
        out = torch.zeros(tuple(lhs_t.shape[:-1]) + tuple(rhs_t.shape[1:]),
                          dtype=torch.int64, device=self.device)
        for start in range(0, inner, chunk):
            stop = min(start + chunk, inner)
            partial = torch.matmul(lhs_t[..., start:stop],
                                   rhs_t[start:stop]) % modulus
            out = (out + partial) % modulus
        return out

    def matmul(self, lhs: np.ndarray, rhs: np.ndarray,
               modulus: int) -> np.ndarray:  # pragma: no cover - needs torch
        out = self._matmul_t(self.to_device(np.asarray(lhs, dtype=np.int64)),
                             self.to_device(np.asarray(rhs, dtype=np.int64)),
                             modulus)
        return self.from_device(out)

    # ------------------------------------------------------------------
    # Residency-aware kernels: tensors in, tensors out, zero host copies
    # ------------------------------------------------------------------
    def matmul_limbs_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                            moduli: np.ndarray, *,
                            lhs_cache: Optional[object] = None,
                            rhs_cache: Optional[object] = None) -> DeviceBuffer:  # pragma: no cover
        out = self._matmul_limbs_t(lhs.ensure_device(self),
                                   rhs.ensure_device(self), moduli)
        return DeviceBuffer.from_native(out, self)

    def matmul_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                      modulus: int) -> DeviceBuffer:  # pragma: no cover - needs torch
        out = self._matmul_t(lhs.ensure_device(self), rhs.ensure_device(self),
                             modulus)
        return DeviceBuffer.from_native(out, self)

    def hadamard_limbs_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                              moduli: np.ndarray) -> DeviceBuffer:  # pragma: no cover
        lhs_t = lhs.ensure_device(self)
        rhs_t = rhs.ensure_device(self)
        column = self._column_t(lhs_t, moduli)
        if self.use_float64:
            out = self._float_hadamard_limbs_t(
                lhs_t, rhs_t, column, int(np.asarray(moduli).max()))
            if out is not None:
                return DeviceBuffer.from_native(out, self)
        out = (lhs_t * rhs_t) % column
        return DeviceBuffer.from_native(out, self)

    def mat_reduce_native(self, matrix: DeviceBuffer,
                          moduli: np.ndarray) -> DeviceBuffer:  # pragma: no cover
        matrix_t = matrix.ensure_device(self)
        out = matrix_t % self._column_t(matrix_t, moduli)
        return DeviceBuffer.from_native(out, self)

    def mat_add_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:  # pragma: no cover
        a_t = a.ensure_device(self)
        column = self._column_t(a_t, moduli)
        out = a_t + b.ensure_device(self)
        return DeviceBuffer.from_native(torch.where(out >= column, out - column, out), self)

    def mat_sub_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:  # pragma: no cover
        a_t = a.ensure_device(self)
        column = self._column_t(a_t, moduli)
        out = a_t - b.ensure_device(self)
        return DeviceBuffer.from_native(torch.where(out < 0, out + column, out), self)

    def mat_neg_native(self, a: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:  # pragma: no cover
        a_t = a.ensure_device(self)
        column = self._column_t(a_t, moduli)
        return DeviceBuffer.from_native((column - a_t) % column, self)

    def mat_mul_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:  # pragma: no cover
        a_t = a.ensure_device(self)
        b_t = b.ensure_device(self)
        column = self._column_t(a_t, moduli)
        if self.use_float64:
            out = self._float_hadamard_limbs_t(
                a_t, b_t, column, int(np.asarray(moduli).max()))
            if out is not None:
                return DeviceBuffer.from_native(out, self)
        out = (a_t * b_t) % column
        return DeviceBuffer.from_native(out, self)
