"""Backend registry and runtime selection.

Selection precedence, highest first:

1. an explicit ``backend=`` argument (on ``TensorFheContext``,
   ``CkksContext``, ``NttPlanner`` or any funnel helper) — accepts a
   registered name or an :class:`~repro.backend.base.ArrayBackend` instance;
2. a process-wide override installed with :func:`set_active_backend` (or
   scoped with the :func:`use_backend` context manager);
3. the ``REPRO_BACKEND`` environment variable;
4. the zero-dependency ``numpy`` default.

Backends register a *class*; one instance per name is created lazily and
shared process-wide (the multiprocess backend's worker pool, for example,
is per-instance state worth sharing).

The override slot itself is a :class:`contextvars.ContextVar`, not a
module global: concurrent ``asyncio`` tasks (the serving layer's worker
and its clients, for example) each see their own override.  A task
spawned with ``create_task`` inherits the override active at spawn time,
and a ``set_active_backend``/``use_backend`` call inside one task can
never leak into a sibling task.  Synchronous code observes exactly the
historical process-wide semantics, since it all runs in one context.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional, Tuple, Type, Union

from .base import ArrayBackend
from .blas_backend import BlasFloat64Backend
from .cupy_backend import CupyBackend
from .multiprocess_backend import MultiprocessBackend
from .numpy_backend import NumpyBackend
from .sharded import ShardedBackend
from .torch_backend import TorchBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "register_backend",
    "available_backends",
    "registered_backends",
    "get_backend",
    "resolve_backend",
    "get_active_backend",
    "set_active_backend",
    "use_backend",
]

#: Environment variable consulted when no explicit backend is supplied.
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: Name used when neither an argument, an override nor the env var selects one.
DEFAULT_BACKEND = NumpyBackend.name

BackendSpec = Union[None, str, ArrayBackend]

_REGISTRY: Dict[str, Type[ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
#: Override installed by :func:`set_active_backend` (None means "resolve
#: from the environment").  A ``ContextVar`` so concurrent asyncio tasks
#: cannot observe each other's override.
_ACTIVE: ContextVar[Optional[ArrayBackend]] = ContextVar(
    "repro_active_backend", default=None)


def register_backend(backend_cls: Type[ArrayBackend]) -> Type[ArrayBackend]:
    """Register a backend class under its ``name`` (usable as a decorator).

    Optional-dependency backends register unconditionally; availability is
    checked at lookup time via ``is_available`` so that merely listing
    backends never imports a heavy library.
    """
    name = backend_cls.name
    if not name or name == ArrayBackend.name:
        raise ValueError("backend class %r needs a concrete name" % backend_cls)
    if ":" in name:
        raise ValueError("backend name %r may not contain ':' (reserved "
                         "for parameterised specs)" % name)
    _REGISTRY[name] = backend_cls
    for key in [key for key in _INSTANCES
                if key == name or key.startswith(name + ":")]:
        _INSTANCES.pop(key, None)
    return backend_cls


def registered_backends() -> Tuple[str, ...]:
    """Names of all registered backends, available or not."""
    return tuple(_REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can run in this process."""
    return tuple(name for name, cls in _REGISTRY.items() if cls.is_available())


def get_backend(name: str) -> ArrayBackend:
    """Return the shared instance of backend ``name``.

    A ``:`` in the name separates the registered backend from a
    parameter spec the class parses itself via its ``from_spec``
    classmethod — e.g. ``sharded:blas:4`` is the sharded backend over
    blas delegates with four workers.  One instance is cached per *full*
    spec string, so ``sharded:blas:2`` and ``sharded:blas:4`` coexist.

    Raises
    ------
    ValueError
        If the name is unregistered, its optional dependency is missing,
        or the spec suffix does not parse.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    base, separator, spec = name.partition(":")
    try:
        backend_cls = _REGISTRY[base]
    except KeyError:
        raise ValueError(
            "unknown compute backend %r; registered: %s"
            % (name, ", ".join(_REGISTRY))
        ) from None
    if not backend_cls.is_available():
        raise ValueError(
            "compute backend %r is registered but unavailable "
            "(optional dependency not installed)" % base
        )
    if separator:
        factory = getattr(backend_cls, "from_spec", None)
        if factory is None:
            raise ValueError(
                "compute backend %r does not take a parameterised spec "
                "(got %r)" % (base, name))
        instance = factory(spec)
    else:
        instance = backend_cls()
    _INSTANCES[name] = instance
    return instance


def get_active_backend() -> ArrayBackend:
    """The backend the funnels use when no explicit one is passed."""
    active = _ACTIVE.get()
    if active is not None:
        return active
    return get_backend(os.environ.get(BACKEND_ENV_VAR, DEFAULT_BACKEND))


def set_active_backend(backend: BackendSpec) -> Optional[ArrayBackend]:
    """Install a backend override in the current context; returns the previous one.

    ``None`` clears the override, restoring ``REPRO_BACKEND``/default
    resolution.  The override is context-local: installing it inside an
    asyncio task affects that task (and tasks it spawns afterwards) only.
    """
    previous = _ACTIVE.get()
    _ACTIVE.set(None if backend is None else resolve_backend(backend))
    return previous


@contextmanager
def use_backend(backend: BackendSpec) -> Iterator[ArrayBackend]:
    """Scoped :func:`set_active_backend` (restores the previous override)."""
    token = _ACTIVE.set(None if backend is None else resolve_backend(backend))
    try:
        yield get_active_backend()
    finally:
        _ACTIVE.reset(token)


def resolve_backend(backend: BackendSpec) -> ArrayBackend:
    """Normalise a backend spec (None / name / instance) to an instance."""
    if backend is None:
        return get_active_backend()
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)


register_backend(NumpyBackend)
register_backend(BlasFloat64Backend)
register_backend(MultiprocessBackend)
register_backend(ShardedBackend)
register_backend(TorchBackend)
register_backend(CupyBackend)
