"""Device residency: backend-native array handles for the GEMM funnel.

The paper's batched kernels win by keeping operand tensors *resident* on
the accelerator between fused launches; before this layer existed, every
funnel call round-tripped through host ``numpy.int64`` arrays (one
``to_device``/``from_device`` pair per launch), so a device backend could
never amortise its transfers and the blas backend rebuilt its float64
operand images per call.

:class:`DeviceBuffer` is the residency handle.  It wraps up to three images
of one int64 array:

* a **host** image — a ``numpy.int64`` ndarray, the canonical exact form
  used at the encode / decrypt / serialize boundaries;
* a **native** image — whatever the owning
  :class:`~repro.backend.base.ArrayBackend` stores (a torch/cupy tensor on
  an accelerator backend).  CPU backends declare ``device_is_host = True``
  and never materialise a separate native image, so residency is the
  identity for them and every existing call site keeps working; and
* a **float64 operand** image — the blas backend's residency.  Usually a
  lazily attached conversion of the host image
  (:class:`~repro.backend.blas_backend.FloatOperandCache`), but the
  float-resident kernel chains also produce handles whose *only* image is
  float64 (:class:`~repro.backend.blas_backend.FloatResidues`, via
  :meth:`DeviceBuffer.from_float`): the int64 host form is then built on
  first ``ensure_host()`` — a host-side cast, not a counted transfer — so
  a chain of float-resident launches materialises no int64 intermediates.

``ensure_host()`` / ``ensure_device(backend)`` convert between the images
on demand; each *crossing* (building one image from the other through a
non-host backend) is recorded with the active transfer sinks — see
:func:`track_transfers` and
:meth:`repro.kernels.base.KernelCounter.record_transfer` — which is how the
tests assert that a fused HMULT chain performs **zero** intermediate
host↔device conversions.

Invalidation contract
---------------------
The host image is authoritative.  Code that mutates a handle's host array
in place (the library itself never does — every kernel allocates a fresh
result) MUST call :meth:`DeviceBuffer.invalidate_device` afterwards so a
stale native image (or cached float64 operand image) is never reused.
Handles produced by slicing/reshaping share storage with their parent
exactly like numpy views; invalidation is per-handle, so mutate-and-share
patterns should invalidate every live handle onto the same storage.

Shape manipulation (``reshape`` / ``transpose`` / indexing /
``ascontiguous``) applies to the resident image directly — on a device
backend these are device-side views, so chaining kernels through handles
never forces a copy back to host.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "HOST_TO_DEVICE",
    "DEVICE_TO_HOST",
    "DeviceBuffer",
    "record_transfer",
    "track_transfers",
    "is_buffer",
    "as_buffer",
    "as_ndarray",
    "match_residency",
    "stack_arrays",
    "concatenate_arrays",
    "contiguous",
]

#: Transfer directions recorded with the active sinks.
HOST_TO_DEVICE = "host_to_device"
DEVICE_TO_HOST = "device_to_host"

#: Active transfer sinks (objects with ``record_transfer(direction, count)``),
#: innermost last.  Process-global: handles do not carry a kernel context.
_TRANSFER_SINKS: List[object] = []


def record_transfer(direction: str, count: int = 1) -> None:
    """Report ``count`` host↔device crossings to every active sink."""
    for sink in _TRANSFER_SINKS:
        sink.record_transfer(direction, count)


@contextmanager
def track_transfers(sink) -> Iterator[object]:
    """Record every transfer inside the ``with`` block on ``sink``.

    ``sink`` is typically a :class:`~repro.kernels.base.KernelCounter`;
    anything with a ``record_transfer(direction, count)`` method works.
    Sinks nest: an inner scope reports to the outer sinks as well.
    """
    _TRANSFER_SINKS.append(sink)
    try:
        yield sink
    finally:
        _TRANSFER_SINKS.remove(sink)


class DeviceBuffer:
    """Handle to one int64 array with host and/or backend-native images."""

    __slots__ = ("_host", "_native", "_backend", "_float_cache")

    def __init__(self, host: Optional[np.ndarray] = None, *,
                 native: Optional[object] = None,
                 backend: Optional[object] = None,
                 float_cache: Optional[object] = None) -> None:
        if host is None and native is None and float_cache is None:
            raise ValueError("a DeviceBuffer needs at least one image")
        if native is not None and backend is None:
            raise ValueError("a native image needs its owning backend")
        self._host = host
        self._native = native
        self._backend = backend
        self._float_cache = float_cache

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, array) -> "DeviceBuffer":
        """Wrap ``array`` as a host-resident handle (idempotent)."""
        if isinstance(array, DeviceBuffer):
            return array
        return cls(host=np.asarray(array, dtype=np.int64))

    @classmethod
    def from_native(cls, native, backend) -> "DeviceBuffer":
        """Wrap a backend-native array as a device-resident handle."""
        if getattr(backend, "device_is_host", True):
            return cls(host=np.asarray(native, dtype=np.int64))
        return cls(native=native, backend=backend)

    @classmethod
    def from_float(cls, cache) -> "DeviceBuffer":
        """Wrap a float64-resident residue image as a handle.

        ``cache`` duck-types ``FloatOperandCache``: ``full()`` returns the
        float64 values, ``.matrix`` the (lazily built) int64 form and
        ``.max_value`` an upper bound on the entries.  The int64 host image
        is only materialised when :meth:`ensure_host` is called — the
        "no int64 until the host boundary" contract of the float-resident
        kernel chains.
        """
        return cls(float_cache=cache)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        image = self._host if self._host is not None else self._native
        if image is None:
            image = self._float_cache.full()
        return tuple(image.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def resident_backend(self):
        """The backend owning the native image, or None when host-only."""
        return self._backend

    @property
    def host_image(self) -> Optional[np.ndarray]:
        """The host image if already materialised, else None (no transfer).

        Lets validation layers scan operands that have a host image anyway
        (every user-constructed handle does) without ever forcing a
        device-resident intermediate back to host.
        """
        return self._host

    def is_resident(self, backend) -> bool:
        """Whether this handle already holds ``backend``'s native image."""
        if getattr(backend, "device_is_host", True):
            return self._host is not None
        return self._native is not None and self._backend is backend

    # ------------------------------------------------------------------
    # Conversions (the transfer-counted crossings)
    # ------------------------------------------------------------------
    def ensure_host(self) -> np.ndarray:
        """Return the host int64 image, converting (one D2H) if absent.

        A float-resident handle (no host, no native image) materialises
        int64 from its float64 image here — a host-side cast, so no
        transfer is recorded.
        """
        if self._host is None:
            if self._native is None:
                self._host = np.asarray(self._float_cache.matrix,
                                        dtype=np.int64)
            else:
                record_transfer(DEVICE_TO_HOST)
                self._host = np.asarray(self._backend.from_device(self._native),
                                        dtype=np.int64)
        return self._host

    def ensure_device(self, backend) -> object:
        """Return ``backend``'s native image, converting (one H2D) if absent.

        For host backends (``device_is_host``) this is the host image — the
        identity residency that keeps CPU execution copy-free.  A handle
        resident on a *different* device backend is staged through host
        (one D2H, one H2D), matching what real accelerator runtimes do.
        """
        if getattr(backend, "device_is_host", True):
            return self.ensure_host()
        if self._native is not None and self._backend is backend:
            return self._native
        host = self.ensure_host()
        record_transfer(HOST_TO_DEVICE)
        self._native = backend.to_device(host)
        self._backend = backend
        return self._native

    def invalidate_device(self) -> None:
        """Drop native/derived images after an in-place host mutation.

        Part of the residency contract: the host image is authoritative,
        so whoever writes to it must invalidate the handle before the next
        kernel launch reads a stale native image or float64 operand cache.
        """
        if self._host is None:
            # Never strand a device- or float-only handle without an image.
            self.ensure_host()
        self._native = None
        self._backend = None
        self._float_cache = None

    # ------------------------------------------------------------------
    # Float64 operand image (the blas backend's residency)
    # ------------------------------------------------------------------
    def attach_float_cache(self, cache) -> "DeviceBuffer":
        """Attach a prebuilt float64 operand image (blas fast path)."""
        self._float_cache = cache
        return self

    def float_cache(self, factory=None):
        """The attached float64 operand cache, building via ``factory``.

        With no factory this is a peek: reusable operands (twiddle stacks,
        benchmark-resident inputs) attach a cache explicitly; transient
        intermediates return None so nobody pays a conversion that would
        only be used once.
        """
        if self._float_cache is None and factory is not None:
            self._float_cache = factory(self.ensure_host())
        return self._float_cache

    # ------------------------------------------------------------------
    # Shape manipulation on the resident image (device-side views)
    # ------------------------------------------------------------------
    def _on_device(self) -> bool:
        return (self._native is not None
                and not getattr(self._backend, "device_is_host", True))

    def _apply(self, host_op, native_op) -> "DeviceBuffer":
        if self._on_device():
            return DeviceBuffer(native=native_op(self._backend, self._native),
                                backend=self._backend)
        if self._host is None and self._native is None:
            # Float-resident handle: shape ops are dtype-agnostic, so they
            # apply to the float64 image directly and the result stays
            # float-resident (no int64 materialisation for a view chain).
            cache = self._float_cache
            return DeviceBuffer(
                float_cache=type(cache)(host_op(cache.full()), cache.max_value))
        return DeviceBuffer(host=host_op(self.ensure_host()))

    def reshape(self, *shape) -> "DeviceBuffer":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._apply(lambda a: a.reshape(shape),
                           lambda b, a: b.nat_reshape(a, shape))

    def transpose(self, *axes) -> "DeviceBuffer":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return self._apply(lambda a: a.transpose(axes),
                           lambda b, a: b.nat_transpose(a, axes))

    def ascontiguous(self) -> "DeviceBuffer":
        return self._apply(np.ascontiguousarray,
                           lambda b, a: b.nat_contiguous(a))

    def __getitem__(self, key) -> "DeviceBuffer":
        return self._apply(lambda a: a[key],
                           lambda b, a: b.nat_getitem(a, key))

    def copy(self) -> "DeviceBuffer":
        return self._apply(lambda a: a.copy(), lambda b, a: b.nat_copy(a))

    # ------------------------------------------------------------------
    def __array__(self, dtype=None, copy=None):
        """Numpy interop escape hatch: materialise the host image.

        Any numpy operation applied directly to a handle transparently
        falls back to host execution — with the D2H crossing counted, so
        an accidental de-residency in a hot path shows up in the transfer
        counters instead of silently hiding a copy.  ``copy=True``
        (``np.array``'s default) is honoured with a real copy: the host
        image is the authoritative storage, so handing out an alias as a
        "copy" would let callers corrupt it without invalidation.
        """
        host = self.ensure_host()
        if dtype is not None and np.dtype(dtype) != host.dtype:
            return host.astype(dtype)          # astype always copies
        if copy:
            return host.copy()
        return host

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = []
        if self._host is not None:
            where.append("host")
        if self._native is not None:
            where.append("device:%s" % getattr(self._backend, "name", "?"))
        return "DeviceBuffer(shape=%s, resident=%s)" % (
            self.shape, "+".join(where) or "none")


ArrayLike = Union[np.ndarray, DeviceBuffer]


def is_buffer(value) -> bool:
    """Whether ``value`` is a residency handle."""
    return isinstance(value, DeviceBuffer)


def as_buffer(value) -> DeviceBuffer:
    """Coerce an array-or-handle to a handle (host wrap for arrays)."""
    return DeviceBuffer.wrap(value)


def as_ndarray(value) -> np.ndarray:
    """Coerce an array-or-handle to a host int64 ndarray (counted D2H)."""
    if isinstance(value, DeviceBuffer):
        return value.ensure_host()
    return np.asarray(value, dtype=np.int64)


def match_residency(result: np.ndarray, *operands) -> ArrayLike:
    """Wrap a host ``result`` as a handle iff any operand was a handle.

    The funnel convention: handle in → handle out, plain arrays in → plain
    array out, so existing host call sites are untouched while resident
    pipelines keep threading handles.
    """
    if any(isinstance(op, DeviceBuffer) for op in operands):
        return DeviceBuffer.wrap(result)
    return result


def _device_group(parts: Sequence[ArrayLike]):
    """The shared non-host backend if every part is resident on it."""
    backend = None
    for part in parts:
        if not (isinstance(part, DeviceBuffer) and part._on_device()):
            return None
        if backend is None:
            backend = part._backend
        elif part._backend is not backend:
            return None
    return backend


def _float_group(parts: Sequence[ArrayLike]):
    """The float64 images when combining them loses no residency.

    Returns the per-part float caches iff every part is a non-device
    handle carrying a float image and at least one of them is
    *float-only* (no host image): combining in float64 then keeps the
    whole group int64-free, whereas casting a float-only part to int64
    just to join host siblings would break the residency chain the
    float-native kernels built.  When every part already has a host
    image, the host combine is the cheaper exact path.
    """
    caches = []
    float_only = False
    for part in parts:
        if not isinstance(part, DeviceBuffer) or part._on_device():
            return None
        cache = part._float_cache
        if cache is None:
            return None
        caches.append(cache)
        if part._host is None and part._native is None:
            float_only = True
    return caches if float_only else None


def _combine_float(caches, combine, axis: int) -> DeviceBuffer:
    from .blas_backend import FloatResidues  # local: avoids import cycle
    values = combine([c.full() for c in caches], axis=axis)
    bound = max(int(c.max_value) for c in caches)
    return DeviceBuffer.from_float(FloatResidues(values, bound))


def stack_arrays(parts: Sequence[ArrayLike], axis: int = 0) -> ArrayLike:
    """``np.stack`` over arrays/handles, staying device-side when possible."""
    parts = list(parts)
    backend = _device_group(parts)
    if backend is not None:
        native = backend.nat_stack([p._native for p in parts], axis)
        return DeviceBuffer(native=native, backend=backend)
    caches = _float_group(parts)
    if caches is not None:
        return _combine_float(caches, np.stack, axis)
    result = np.stack([as_ndarray(p) for p in parts], axis=axis)
    return match_residency(result, *parts)


def concatenate_arrays(parts: Sequence[ArrayLike], axis: int = 0) -> ArrayLike:
    """``np.concatenate`` over arrays/handles, device-side when possible."""
    parts = list(parts)
    backend = _device_group(parts)
    if backend is not None:
        native = backend.nat_concat([p._native for p in parts], axis)
        return DeviceBuffer(native=native, backend=backend)
    caches = _float_group(parts)
    if caches is not None:
        return _combine_float(caches, np.concatenate, axis)
    result = np.concatenate([as_ndarray(p) for p in parts], axis=axis)
    return match_residency(result, *parts)


def contiguous(value: ArrayLike) -> ArrayLike:
    """C-contiguous copy-if-needed on the resident image."""
    if isinstance(value, DeviceBuffer):
        return value.ascontiguous()
    return np.ascontiguousarray(value)
