"""The ``ArrayBackend`` interface: one compute substrate for the GEMM funnel.

The limb-batched refactor funnelled every hot path of the library through a
handful of array primitives — batched modular GEMMs
(:meth:`ArrayBackend.matmul_limbs`), element-wise mat-mod kernels and the
row-moduli GEMM of the fast basis conversion.  This module defines that
funnel as an explicit interface so the substrate becomes pluggable: the
engines, the RNS layer and the CKKS stack call the *active* backend and
never name a concrete array library.

Implementations registered with :mod:`repro.backend.registry`:

* ``numpy`` — exact chunked int64 arithmetic, the zero-dependency default;
* ``blas`` — the 2**53-guarded float64 BLAS fast path (bit-exact);
* ``multiprocess`` — shards the limb axis of large batched GEMMs across a
  process pool with shared-memory operands;
* ``sharded`` — persistent shared-memory workers executing whole fused
  kernels per shard over a pinned delegate backend (spec
  ``sharded:<delegate>:<workers>``, e.g. ``sharded:blas:4``); the
  multiprocess backend is its limb-axis special case;
* ``torch`` / ``cupy`` — optional accelerator stubs that register only when
  the library imports.

Contract
--------
Every host-level method receives ``numpy.int64`` arrays whose entries are
already reduced modulo their (row's) modulus, with every modulus below
``2**31`` so a product of two residues fits in int64; the oversized-moduli
object-dtype fallbacks stay in the dispatching funnels
(:mod:`repro.ntt.gemm_utils`, :mod:`repro.numtheory.modular`).  Methods
return reduced int64 arrays.

Residency
---------
Each host kernel has a ``*_native`` variant that accepts and returns
:class:`~repro.backend.residency.DeviceBuffer` handles.  The defaults here
unwrap to host (an identity for CPU backends, a *counted* transfer for
device backends) and re-wrap the host result, so every backend is
residency-correct out of the box; device backends override them to operate
on their native arrays directly, which is what keeps a fused kernel chain
on the accelerator with zero intermediate host copies.  The ``nat_*``
helpers are the small view/layout algebra the residency layer needs on
native arrays (device-side views — no copies).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from .residency import DeviceBuffer

__all__ = ["ArrayBackend"]


class ArrayBackend(abc.ABC):
    """Compute substrate for the batched modular-GEMM funnel."""

    #: Registry identifier (also what ``REPRO_BACKEND`` selects).
    name = "abstract"

    #: Whether this backend's native storage *is* host numpy memory.  CPU
    #: backends keep True: residency is the identity for them and the
    #: transfer counters never tick.  Accelerator backends (torch, cupy)
    #: set False so every host↔device crossing is counted.
    device_is_host = True

    #: Deprecated alias of ``capabilities()["float_residency"]``.  Kept so
    #: external code that still reads the bare class attribute keeps
    #: working; new code (the funnels, the engines, test auto-skips)
    #: queries :meth:`capabilities` instead.
    supports_float_residency = False

    def capabilities(self) -> dict:
        """Structured capability report for this backend.

        The report is the single place dispatch layers look when deciding
        which fast path a backend supports:

        * ``name`` — the registry identifier;
        * ``device_is_host`` — whether native storage *is* host numpy
          memory (False on accelerator backends, where every host↔device
          crossing is transfer-counted);
        * ``float_residency`` — whether the float-resident element-wise
          kernels (``f*``) are a profitable substrate here.  The engines
          and funnels only take a float-resident fast path when this is
          True *and* the :class:`~repro.numtheory.floatmod.BarrettChain`
          exactness guard accepts the operand bounds; everything else
          keeps the int64 path.  The default kernels are plain numpy and
          correct everywhere — the flag is about profit, not correctness;
        * ``exact_fallback`` — whether guard-rejected launches fall back
          to an exact path (always True for the in-tree backends).

        Subclasses that toggle the legacy class attributes inherit a
        correct report automatically; backends with richer capabilities
        may override and extend the dict (readers must tolerate extra
        keys and use ``.get`` for optional ones).
        """
        return {
            "name": self.name,
            "device_is_host": bool(self.device_is_host),
            "float_residency": bool(self.supports_float_residency),
            "exact_fallback": True,
        }

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current process.

        Optional-dependency backends (torch, cupy) override this with an
        import probe; they register unconditionally but are only listed by
        :func:`repro.backend.registry.available_backends` when importable.
        """
        return True

    # ------------------------------------------------------------------
    # Allocation / transfer hooks
    # ------------------------------------------------------------------
    def to_device(self, array: np.ndarray) -> object:
        """Move an int64 host array into this backend's native storage."""
        return np.asarray(array, dtype=np.int64)

    def from_device(self, array: object) -> np.ndarray:
        """Move a native array back to an int64 host ``numpy.ndarray``."""
        return np.asarray(array, dtype=np.int64)

    def empty(self, shape, dtype=np.int64) -> object:
        """Allocate an uninitialised native array (result staging)."""
        return np.empty(shape, dtype=dtype)

    def synchronize(self) -> None:
        """Block until queued device work is complete (no-op on CPU)."""

    # ------------------------------------------------------------------
    # Batched modular GEMMs (the hot path)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:
        """Batched GEMM ``out[i] = (lhs[i] @ rhs[i]) mod moduli[i]``.

        ``lhs`` is ``(limbs, M, K)``, ``rhs`` is ``(limbs, K, P)``.  The
        optional caches are :class:`~repro.backend.blas_backend.FloatOperandCache`
        instances for a reusable operand (the twiddle stacks); backends
        that cannot exploit them must ignore them.
        """

    @abc.abstractmethod
    def matmul(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        """Exact 2-D modular GEMM ``(lhs @ rhs) mod modulus``."""

    @abc.abstractmethod
    def matmul_rows(self, lhs: np.ndarray, rhs: np.ndarray,
                    row_moduli: np.ndarray, *,
                    operand_bound: Optional[int] = None) -> np.ndarray:
        """Row-moduli GEMM ``out[j] = (lhs[j] @ rhs) mod row_moduli[j]``.

        The fast-basis-conversion shape: operand rows may live in residue
        domains other than ``row_moduli``, so overflow bounds come from the
        operand maxima, not the moduli.  ``operand_bound`` is the caller's
        precomputed ``max(lhs) * max(rhs)`` (the funnel already scanned the
        operands for its own object-path guard); implementations fall back
        to scanning when it is absent.
        """

    # ------------------------------------------------------------------
    # Element-wise mat-mod kernels (one launch per (limbs, N) matrix)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def hadamard_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                       moduli: np.ndarray) -> np.ndarray:
        """Element-wise ``(lhs * rhs) mod moduli`` along the leading limb axis."""

    @abc.abstractmethod
    def hadamard(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        """Element-wise ``(lhs * rhs) mod modulus`` (single modulus)."""

    @abc.abstractmethod
    def mat_reduce(self, matrix: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``matrix[i] mod moduli[i]``."""

    @abc.abstractmethod
    def mat_add(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``(a + b) mod moduli`` for reduced operands (Ele-Add)."""

    @abc.abstractmethod
    def mat_sub(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``(a - b) mod moduli`` for reduced operands (Ele-Sub)."""

    @abc.abstractmethod
    def mat_neg(self, a: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``(-a) mod moduli``."""

    @abc.abstractmethod
    def mat_mul(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``(a * b) mod moduli`` (Hada-Mult on matrices)."""

    # ------------------------------------------------------------------
    # Float-resident element-wise kernels (Barrett reduction on the FMA
    # units, see :mod:`repro.numtheory.floatmod`).
    #
    # Operands and results are *canonical float64 residue images*: exact
    # integers in [0, q) stored as float64, the form the 2**53-guarded
    # GEMM fast paths already consume and produce.  Staying in that form
    # between launches is what removes the int64 ``%`` passes from fused
    # pipelines.  Callers own the exactness guard
    # (``chain.fits(operand_bound)``); these kernels assume it holds.
    # ------------------------------------------------------------------
    def fmatmul(self, lhs: np.ndarray, rhs: np.ndarray,
                out: Optional[np.ndarray] = None) -> np.ndarray:
        """Raw float64 matmul on resident float images (no reduction).

        The dgemm hook of the float-resident pipeline: callers follow it
        with :meth:`~repro.numtheory.floatmod.BarrettChain.lazy_reduce` /
        ``canonical_reduce`` under their own operand bound.  ``out`` (which
        must not alias either operand) lets hot pipelines write into a
        reused scratch buffer instead of faulting fresh pages per launch.
        """
        return np.matmul(lhs, rhs, out=out)

    def fhadamard_limbs(self, lhs: np.ndarray, rhs: np.ndarray, chain, *,
                        axis: int = 0) -> np.ndarray:
        """Element-wise multiply of float residue images, canonical result.

        Exact when ``chain.fits_product()`` for canonical operands: a
        single pass when ``(qmax - 1)**2`` fits the mantissa, the hi/lo
        split (:meth:`~repro.numtheory.floatmod.BarrettChain.
        product_reduce`) for wider primes up to 2**31.
        """
        return chain.product_reduce(lhs, rhs, axis=axis)

    def fadd_limbs(self, a: np.ndarray, b: np.ndarray, chain, *,
                   axis: int = 0) -> np.ndarray:
        """Element-wise ``(a + b) mod q`` on canonical float residue images."""
        q_col, _ = chain.columns(a.ndim, axis)
        out = a + b
        np.subtract(out, q_col, out=out, where=out >= q_col)
        return out

    def fsub_limbs(self, a: np.ndarray, b: np.ndarray, chain, *,
                   axis: int = 0) -> np.ndarray:
        """Element-wise ``(a - b) mod q`` on canonical float residue images."""
        q_col, _ = chain.columns(a.ndim, axis)
        out = a - b
        np.add(out, q_col, out=out, where=out < 0)
        return out

    def fneg_limbs(self, a: np.ndarray, chain, *,
                   axis: int = 0) -> np.ndarray:
        """Element-wise ``(-a) mod q`` on canonical float residue images.

        Always exact: the only intermediate is ``q - a`` with ``a`` in
        ``[0, q)``, so no operand-bound guard is needed.
        """
        q_col, _ = chain.columns(a.ndim, axis)
        out = q_col - a
        np.subtract(out, q_col, out=out, where=out == q_col)
        return out

    def fscalar_mul_limbs(self, a: np.ndarray, scalars: np.ndarray, chain, *,
                          axis: int = 0) -> np.ndarray:
        """Per-limb scalar multiply on float residue images, canonical result.

        ``scalars`` is a float64 array of canonical residues broadcastable
        against ``a`` (e.g. a ``(limbs, 1)`` column).
        """
        return chain.canonical_reduce(a * scalars, axis=axis)

    def freduce_limbs(self, values: np.ndarray, chain, *,
                      axis: int = 0) -> np.ndarray:
        """Canonical Barrett reduction of integer-valued float64 arrays.

        Exact whenever ``chain.fits(max |values|)`` — the float-resident
        analogue of :meth:`mat_reduce` for bounded intermediates.
        """
        return chain.canonical_reduce(values, axis=axis)

    # ------------------------------------------------------------------
    # Residency-aware variants: DeviceBuffer in, DeviceBuffer out.
    #
    # Defaults route through the host kernels.  ``ensure_host`` is free on
    # CPU backends (identity residency) and a *counted* D2H transfer on
    # device backends, so an unported backend stays correct while the
    # transfer counters expose exactly where it leaves the device.
    # ------------------------------------------------------------------
    def matmul_limbs_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                            moduli: np.ndarray, *,
                            lhs_cache: Optional[object] = None,
                            rhs_cache: Optional[object] = None) -> DeviceBuffer:
        """Residency-aware :meth:`matmul_limbs` (handles in and out)."""
        out = self.matmul_limbs(lhs.ensure_host(), rhs.ensure_host(), moduli,
                                lhs_cache=lhs_cache, rhs_cache=rhs_cache)
        return DeviceBuffer.wrap(out)

    def matmul_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                      modulus: int) -> DeviceBuffer:
        """Residency-aware :meth:`matmul`."""
        return DeviceBuffer.wrap(
            self.matmul(lhs.ensure_host(), rhs.ensure_host(), modulus))

    def matmul_rows_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                           row_moduli: np.ndarray, *,
                           operand_bound: Optional[int] = None) -> DeviceBuffer:
        """Residency-aware :meth:`matmul_rows`."""
        return DeviceBuffer.wrap(
            self.matmul_rows(lhs.ensure_host(), rhs.ensure_host(), row_moduli,
                             operand_bound=operand_bound))

    def hadamard_limbs_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                              moduli: np.ndarray) -> DeviceBuffer:
        """Residency-aware :meth:`hadamard_limbs`."""
        return DeviceBuffer.wrap(
            self.hadamard_limbs(lhs.ensure_host(), rhs.ensure_host(), moduli))

    def hadamard_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                        modulus: int) -> DeviceBuffer:
        """Residency-aware :meth:`hadamard`."""
        return DeviceBuffer.wrap(
            self.hadamard(lhs.ensure_host(), rhs.ensure_host(), modulus))

    def mat_reduce_native(self, matrix: DeviceBuffer,
                          moduli: np.ndarray) -> DeviceBuffer:
        """Residency-aware :meth:`mat_reduce`."""
        return DeviceBuffer.wrap(self.mat_reduce(matrix.ensure_host(), moduli))

    def mat_add_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:
        """Residency-aware :meth:`mat_add`."""
        return DeviceBuffer.wrap(
            self.mat_add(a.ensure_host(), b.ensure_host(), moduli))

    def mat_sub_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:
        """Residency-aware :meth:`mat_sub`."""
        return DeviceBuffer.wrap(
            self.mat_sub(a.ensure_host(), b.ensure_host(), moduli))

    def mat_neg_native(self, a: DeviceBuffer, moduli: np.ndarray) -> DeviceBuffer:
        """Residency-aware :meth:`mat_neg`."""
        return DeviceBuffer.wrap(self.mat_neg(a.ensure_host(), moduli))

    def mat_mul_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:
        """Residency-aware :meth:`mat_mul`."""
        return DeviceBuffer.wrap(
            self.mat_mul(a.ensure_host(), b.ensure_host(), moduli))

    # ------------------------------------------------------------------
    # Native view/layout algebra (device-side views, never copies back).
    # Numpy semantics by default — correct for every numpy-like native
    # array type; torch overrides the two calls whose names differ.
    # ------------------------------------------------------------------
    def nat_reshape(self, array, shape):
        return array.reshape(shape)

    def nat_transpose(self, array, axes):
        return array.transpose(axes)

    def nat_getitem(self, array, key):
        return array[key]

    def nat_contiguous(self, array):
        return np.ascontiguousarray(array)

    def nat_copy(self, array):
        return array.copy()

    def nat_stack(self, arrays, axis: int = 0):
        return np.stack(arrays, axis=axis)

    def nat_concat(self, arrays, axis: int = 0):
        return np.concatenate(arrays, axis=axis)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(name=%r)" % (type(self).__name__, self.name)
