"""The ``ArrayBackend`` interface: one compute substrate for the GEMM funnel.

The limb-batched refactor funnelled every hot path of the library through a
handful of array primitives — batched modular GEMMs
(:meth:`ArrayBackend.matmul_limbs`), element-wise mat-mod kernels and the
row-moduli GEMM of the fast basis conversion.  This module defines that
funnel as an explicit interface so the substrate becomes pluggable: the
engines, the RNS layer and the CKKS stack call the *active* backend and
never name a concrete array library.

Implementations registered with :mod:`repro.backend.registry`:

* ``numpy`` — exact chunked int64 arithmetic, the zero-dependency default;
* ``blas`` — the 2**53-guarded float64 BLAS fast path (bit-exact);
* ``multiprocess`` — shards the limb axis of large batched GEMMs across a
  process pool with shared-memory operands;
* ``torch`` / ``cupy`` — optional accelerator stubs that register only when
  the library imports.

Contract
--------
Every method receives ``numpy.int64`` arrays whose entries are already
reduced modulo their (row's) modulus, with every modulus below ``2**31`` so
a product of two residues fits in int64; the oversized-moduli object-dtype
fallbacks stay in the dispatching funnels (:mod:`repro.ntt.gemm_utils`,
:mod:`repro.numtheory.modular`).  Methods return reduced int64 arrays.
Device-resident backends convert at the boundary via :meth:`to_device` /
:meth:`from_device`.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend(abc.ABC):
    """Compute substrate for the batched modular-GEMM funnel."""

    #: Registry identifier (also what ``REPRO_BACKEND`` selects).
    name = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current process.

        Optional-dependency backends (torch, cupy) override this with an
        import probe; they register unconditionally but are only listed by
        :func:`repro.backend.registry.available_backends` when importable.
        """
        return True

    # ------------------------------------------------------------------
    # Allocation / transfer hooks
    # ------------------------------------------------------------------
    def to_device(self, array: np.ndarray) -> object:
        """Move an int64 host array into this backend's native storage."""
        return np.asarray(array, dtype=np.int64)

    def from_device(self, array: object) -> np.ndarray:
        """Move a native array back to an int64 host ``numpy.ndarray``."""
        return np.asarray(array, dtype=np.int64)

    def empty(self, shape, dtype=np.int64) -> object:
        """Allocate an uninitialised native array (result staging)."""
        return np.empty(shape, dtype=dtype)

    def synchronize(self) -> None:
        """Block until queued device work is complete (no-op on CPU)."""

    # ------------------------------------------------------------------
    # Batched modular GEMMs (the hot path)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:
        """Batched GEMM ``out[i] = (lhs[i] @ rhs[i]) mod moduli[i]``.

        ``lhs`` is ``(limbs, M, K)``, ``rhs`` is ``(limbs, K, P)``.  The
        optional caches are :class:`~repro.backend.blas_backend.FloatOperandCache`
        instances for a reusable operand (the twiddle stacks); backends
        that cannot exploit them must ignore them.
        """

    @abc.abstractmethod
    def matmul(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        """Exact 2-D modular GEMM ``(lhs @ rhs) mod modulus``."""

    @abc.abstractmethod
    def matmul_rows(self, lhs: np.ndarray, rhs: np.ndarray,
                    row_moduli: np.ndarray, *,
                    operand_bound: Optional[int] = None) -> np.ndarray:
        """Row-moduli GEMM ``out[j] = (lhs[j] @ rhs) mod row_moduli[j]``.

        The fast-basis-conversion shape: operand rows may live in residue
        domains other than ``row_moduli``, so overflow bounds come from the
        operand maxima, not the moduli.  ``operand_bound`` is the caller's
        precomputed ``max(lhs) * max(rhs)`` (the funnel already scanned the
        operands for its own object-path guard); implementations fall back
        to scanning when it is absent.
        """

    # ------------------------------------------------------------------
    # Element-wise mat-mod kernels (one launch per (limbs, N) matrix)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def hadamard_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                       moduli: np.ndarray) -> np.ndarray:
        """Element-wise ``(lhs * rhs) mod moduli`` along the leading limb axis."""

    @abc.abstractmethod
    def hadamard(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        """Element-wise ``(lhs * rhs) mod modulus`` (single modulus)."""

    @abc.abstractmethod
    def mat_reduce(self, matrix: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``matrix[i] mod moduli[i]``."""

    @abc.abstractmethod
    def mat_add(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``(a + b) mod moduli`` for reduced operands (Ele-Add)."""

    @abc.abstractmethod
    def mat_sub(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``(a - b) mod moduli`` for reduced operands (Ele-Sub)."""

    @abc.abstractmethod
    def mat_neg(self, a: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``(-a) mod moduli``."""

    @abc.abstractmethod
    def mat_mul(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        """Row-wise ``(a * b) mod moduli`` (Hada-Mult on matrices)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(name=%r)" % (type(self).__name__, self.name)
