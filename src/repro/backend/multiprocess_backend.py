"""Multiprocess backend: shard the limb axis across a CPU process pool.

The batched modular GEMM is embarrassingly parallel along its leading limb
axis — limb ``i`` touches only ``lhs[i]``, ``rhs[i]`` and ``moduli[i]``.
This backend plays the role of a multi-device substrate on a plain CPU: it
splits the limb axis into one contiguous shard per worker, publishes the
operands once through POSIX shared memory (no per-task pickling of the
arrays) and lets each worker write its shard of the result in place.

Small launches are not worth a round trip through the pool, so anything
below :attr:`MultiprocessBackend.min_shard_elements` multiply-accumulates
runs inline on the inherited chunked-int64 arithmetic; the pool itself is
created lazily on the first large launch and torn down at interpreter exit.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Tuple

import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["MultiprocessBackend"]

#: Below this many multiply-accumulates the pool round trip costs more than
#: the GEMM itself and the launch stays inline.
_DEFAULT_MIN_SHARD_ELEMENTS = 1 << 22


def _shard_worker(names: Tuple[str, str, str], shapes, moduli_shard,
                  start: int, stop: int) -> None:
    """Compute ``out[start:stop] = (lhs @ rhs) mod moduli`` inside a worker.

    All three arrays live in shared memory; the worker attaches, computes
    its contiguous limb shard with the exact int64 arithmetic and writes the
    result in place.
    """
    from multiprocessing import shared_memory

    lhs_shape, rhs_shape, out_shape = shapes
    segments = [shared_memory.SharedMemory(name=name) for name in names]
    try:
        lhs = np.ndarray(lhs_shape, dtype=np.int64, buffer=segments[0].buf)
        rhs = np.ndarray(rhs_shape, dtype=np.int64, buffer=segments[1].buf)
        out = np.ndarray(out_shape, dtype=np.int64, buffer=segments[2].buf)
        out[start:stop] = NumpyBackend().matmul_limbs(
            lhs[start:stop], rhs[start:stop],
            np.asarray(moduli_shard, dtype=np.int64))
    finally:
        for segment in segments:
            segment.close()


class MultiprocessBackend(NumpyBackend):
    """Limb-sharded batched GEMMs over a shared-memory process pool."""

    name = "multiprocess"

    def __init__(self, *, workers: Optional[int] = None,
                 min_shard_elements: int = _DEFAULT_MIN_SHARD_ELEMENTS) -> None:
        env_workers = os.environ.get("REPRO_BACKEND_WORKERS")
        if workers is None and env_workers:
            workers = int(env_workers)
        # An explicit worker count (argument or env var) is honoured as-is;
        # only the cpu_count fallback is floored at 2 so sharding exists.
        if workers is None:
            workers = max(2, os.cpu_count() or 2)
        self.workers = max(1, workers)
        self.min_shard_elements = min_shard_elements
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # fork keeps worker start cheap and inherits the numpy import;
            # fall back to the platform default where fork is unavailable.
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=context)
            atexit.register(self.close)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (it is recreated lazily if needed)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:
        limbs, rows, inner = lhs.shape
        columns = rhs.shape[2]
        work = limbs * rows * inner * columns
        if limbs < 2 or work < self.min_shard_elements:
            return super().matmul_limbs(lhs, rhs, moduli,
                                        lhs_cache=lhs_cache, rhs_cache=rhs_cache)
        return self._sharded_matmul(lhs, rhs, np.asarray(moduli, dtype=np.int64))

    def _sharded_matmul(self, lhs: np.ndarray, rhs: np.ndarray,
                        moduli: np.ndarray) -> np.ndarray:
        from multiprocessing import shared_memory

        pool = self._ensure_pool()
        limbs = lhs.shape[0]
        out_shape = (limbs, lhs.shape[1], rhs.shape[2])
        lhs = np.ascontiguousarray(lhs, dtype=np.int64)
        rhs = np.ascontiguousarray(rhs, dtype=np.int64)
        segments = []
        try:
            for operand in (lhs, rhs):
                segment = shared_memory.SharedMemory(create=True,
                                                     size=operand.nbytes)
                np.ndarray(operand.shape, dtype=np.int64,
                           buffer=segment.buf)[...] = operand
                segments.append(segment)
            out_segment = shared_memory.SharedMemory(
                create=True, size=int(np.prod(out_shape)) * 8)
            segments.append(out_segment)

            names = tuple(segment.name for segment in segments)
            shapes = (lhs.shape, rhs.shape, out_shape)
            shard_count = min(self.workers, limbs)
            bounds = np.linspace(0, limbs, shard_count + 1).astype(int)
            futures = [
                pool.submit(_shard_worker, names, shapes,
                            moduli[start:stop].tolist(), int(start), int(stop))
                for start, stop in zip(bounds[:-1], bounds[1:])
                if stop > start
            ]
            for future in futures:
                future.result()
            out = np.ndarray(out_shape, dtype=np.int64,
                             buffer=out_segment.buf).copy()
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()
        return out
