"""Multiprocess backend: the limb-axis special case of the sharded pool.

The batched modular GEMM is embarrassingly parallel along its leading limb
axis — limb ``i`` touches only ``lhs[i]``, ``rhs[i]`` and ``moduli[i]``.
This backend keeps that historical contract (GEMMs shard by limbs, every
other kernel runs inline on exact chunked-int64 numpy) but now runs on the
:class:`~repro.backend.sharded.ShardedBackend` machinery: **persistent**
fork-spawned workers, a reusable :class:`~repro.backend.sharded.ShmArena`
instead of per-launch ``SharedMemory(create=True)``/``unlink`` cycles, and
zero-copy results read straight out of the arena.

The first incarnation paid per-call pool setup, per-launch segment churn
and a result ``.copy()`` on every sharded GEMM, which capped it at ~1.09x
over numpy (``benchmarks/results/backends.json``); the general-purpose
scale-out backend — column/B-axis sharding, blas delegates, calibrated
thresholds — is :class:`~repro.backend.sharded.ShardedBackend`.

Small launches are not worth a round trip through the workers, so anything
below :attr:`MultiprocessBackend.min_shard_elements` multiply-accumulates
runs inline; the workers fork lazily on the first large launch and are
torn down at :meth:`close` or interpreter exit.
"""

from __future__ import annotations

from typing import Optional

from .sharded import (
    ShardedBackend,
    _DEFAULT_MIN_SHARD_ELEMENTS,
    parse_worker_count,
)

__all__ = ["MultiprocessBackend"]


class MultiprocessBackend(ShardedBackend):
    """Limb-sharded batched GEMMs over the persistent shared-memory pool."""

    name = "multiprocess"

    # Historical contract: only the limb axis of ``matmul_limbs`` shards.
    shard_columns = False
    shard_elementwise = False

    def __init__(self, *, workers: Optional[int] = None,
                 min_shard_elements: Optional[int] = None) -> None:
        if min_shard_elements is None:
            min_shard_elements = _DEFAULT_MIN_SHARD_ELEMENTS
        super().__init__("numpy", workers=workers,
                         min_shard_elements=min_shard_elements)

    @classmethod
    def from_spec(cls, spec: str) -> "MultiprocessBackend":
        """The delegate is pinned to numpy, so the only spec is a worker
        count: ``multiprocess:4``."""
        workers = parse_worker_count(
            spec, source="backend spec %r" % ("%s:%s" % (cls.name, spec)))
        return cls(workers=workers)
