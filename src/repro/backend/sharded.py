"""Sharded scale-out backend: persistent shared-memory workers.

The paper's thesis is that FHE throughput comes from mapping the whole
workload onto massively parallel batched hardware; this module is the
software analogue of the *multi-device* half of that claim.  A
:class:`ShardedBackend` splits the leading axis of every fused launch —
the operation batch B for ``forward_ops``-style GEMMs (folded into the
rhs columns), the limb axis for the 2-D funnels — across a pool of
**persistent** fork-spawned workers.  Each worker pins its own delegate
backend (numpy or blas) and attaches *once* to a reusable shared-memory
arena, so a launch costs one pipe round trip per shard and zero segment
creation in steady state.

What the first ``multiprocess`` backend got wrong (measured 1.09x over
numpy, ``benchmarks/results/backends.json``) and this design fixes:

* **Workers are persistent.**  Processes fork on the first sharded
  launch and serve a small command protocol over pipes until
  :meth:`ShardedBackend.close`; there is no per-call pool setup.
* **Memory is persistent.**  :class:`ShmArena` is a slab allocator over
  POSIX shared memory with per-size slot reuse and grow-on-demand; after
  warmup a repeated fused launch allocates *zero* new segments (asserted
  by tests via :meth:`ShmArena.stats`).  Reusable operands — the twiddle
  stacks the engines pass every call — are published once and found
  again by object identity.
* **Results are zero-copy.**  The caller receives a numpy view into the
  arena's out slot; a finalizer returns the slot to the free list when
  the result is garbage collected, instead of ``.copy()``-ing every
  launch.
* **Workers execute whole funnel kernels.**  One command runs an entire
  ``matmul_limbs`` / ``mat_add`` / … shard through the delegate backend,
  so the blas delegate's guarded float64 dgemm (and its exact chunked
  fallback) runs inside the worker unchanged — shards stay bit-identical
  to the single-process delegate.

Launches below the measured knee stay inline on the delegate: the
thresholds and worker counts come from
:func:`repro.perf.calibration.sharding_calibration` (the committed
``benchmarks/results/sharded.json``) when available, with conservative
hardcoded defaults otherwise.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import ArrayBackend

__all__ = ["WORKERS_ENV_VAR", "parse_worker_count", "ShmArena", "ShardedBackend"]

#: Environment variable supplying a default worker count.
WORKERS_ENV_VAR = "REPRO_BACKEND_WORKERS"

#: Below this many multiply-accumulates a GEMM stays inline: the pipe
#: round trip plus the operand copy into the arena costs more than the
#: arithmetic.  Overridden by the measured knee when a calibration exists.
_DEFAULT_MIN_SHARD_ELEMENTS = 1 << 22
#: Element-wise kernels are bandwidth-bound, so sharding pays off far
#: later than for GEMMs; below this many elements they stay inline.
_DEFAULT_MIN_ELEMENTWISE_ELEMENTS = 1 << 24

#: Arena slabs are rounded up to whole pages so slightly different shapes
#: (e.g. the same GEMM at B=7 vs B=8) can reuse one slot.
_SLAB_ALIGN = 4096


def parse_worker_count(value, *, source: str = WORKERS_ENV_VAR) -> Optional[int]:
    """Parse a worker count from an env var or backend spec segment.

    ``None``/empty means "not configured" and returns ``None``; anything
    else must be a positive integer, rejected with a message naming the
    *source* (the bare ``int()`` of the original multiprocess backend
    produced an unattributed ``ValueError: invalid literal ...``).
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise ValueError("%s must be a positive integer worker count, got %r"
                         % (source, value))
    if not isinstance(value, int):
        text = str(value).strip()
        if not text:
            return None
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                "%s must be a positive integer worker count, got %r"
                % (source, text)) from None
    if value < 1:
        raise ValueError("%s must be a positive integer worker count, got %d"
                         % (source, value))
    return value


# ----------------------------------------------------------------------
# Shared-memory arena
# ----------------------------------------------------------------------
class _ArenaSlot:
    """One shared-memory slab: a named segment plus its byte capacity."""

    __slots__ = ("segment", "capacity")

    def __init__(self, segment, capacity: int) -> None:
        self.segment = segment
        self.capacity = capacity

    @property
    def name(self) -> str:
        return self.segment.name


class ShmArena:
    """Reusable slab allocator over POSIX shared memory.

    ``borrow`` hands out the smallest free slab that fits (creating one
    only when none does — grow-on-demand), ``release`` returns a slab to
    the free list, and ``close`` unlinks everything.  Slabs are never
    shrunk or unlinked mid-life, which is exactly what lets workers
    attach to each segment once and cache the mapping.
    """

    def __init__(self) -> None:
        self._free: Dict[int, List[_ArenaSlot]] = {}
        self._slabs: List[_ArenaSlot] = []
        self._closed = False
        #: Allocation counters; ``slabs_created`` staying flat across
        #: repeated launches is the steady-state acceptance criterion.
        self._stats = {"slabs_created": 0, "bytes_created": 0,
                       "borrows": 0, "reuses": 0, "operand_hits": 0}

    # ------------------------------------------------------------------
    def borrow(self, nbytes: int) -> _ArenaSlot:
        """Smallest free slab holding ``nbytes`` (a fresh one if none fits)."""
        if self._closed:
            raise RuntimeError("ShmArena is closed")
        needed = max(1, int(nbytes))
        self._stats["borrows"] += 1
        best = None
        for capacity, slots in self._free.items():
            if slots and capacity >= needed and (best is None or capacity < best):
                best = capacity
        if best is not None:
            self._stats["reuses"] += 1
            return self._free[best].pop()
        from multiprocessing import shared_memory
        capacity = -(-needed // _SLAB_ALIGN) * _SLAB_ALIGN
        slot = _ArenaSlot(shared_memory.SharedMemory(create=True, size=capacity),
                          capacity)
        self._slabs.append(slot)
        self._stats["slabs_created"] += 1
        self._stats["bytes_created"] += capacity
        return slot

    def release(self, slot: _ArenaSlot) -> None:
        """Return a slab to the free list (no-op after close)."""
        if self._closed:
            return
        self._free.setdefault(slot.capacity, []).append(slot)

    def ndarray(self, slot: _ArenaSlot, shape, dtype=np.int64) -> np.ndarray:
        """A numpy view over the slab's buffer (no copy)."""
        return np.ndarray(shape, dtype=dtype, buffer=slot.segment.buf)

    def stats(self) -> Dict[str, int]:
        """Snapshot of the allocation counters."""
        return dict(self._stats)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink every slab.  Idempotent.

        A still-alive result view keeps its mapping usable (unlinking an
        attached segment is safe on POSIX); ``SharedMemory.close`` raises
        ``BufferError`` while such a view exports the buffer, which is
        tolerated — the mapping goes away when the view does.
        """
        if self._closed:
            return
        self._closed = True
        for slot in self._slabs:
            try:
                slot.segment.close()
            except BufferError:  # a borrowed result view is still alive
                pass
            try:
                slot.segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._free.clear()
        self._slabs = []


# ----------------------------------------------------------------------
# Worker side: one handler per funnel kernel.  Each handler receives the
# full arrays (views into the arena), the shard bounds and any small
# pickled parameters, runs the delegate backend on its contiguous shard
# and writes the result slice in place.
# ----------------------------------------------------------------------
def _k_matmul_limbs(backend, arrays, params):
    lhs, rhs, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.matmul_limbs(lhs[shard], rhs[shard], params["moduli"])


def _k_matmul_limbs_cols(backend, arrays, params):
    lhs, rhs, out = arrays
    shard = slice(params["start"], params["stop"])
    out[:, :, shard] = backend.matmul_limbs(
        lhs, np.ascontiguousarray(rhs[:, :, shard]), params["moduli"])


def _k_matmul(backend, arrays, params):
    lhs, rhs, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.matmul(lhs[shard], rhs, params["modulus"])


def _k_matmul_rows(backend, arrays, params):
    lhs, rhs, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.matmul_rows(lhs[shard], rhs, params["moduli"],
                                     operand_bound=params["operand_bound"])


def _k_hadamard(backend, arrays, params):
    lhs, rhs, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.hadamard(lhs[shard], rhs[shard], params["modulus"])


def _k_hadamard_limbs(backend, arrays, params):
    lhs, rhs, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.hadamard_limbs(lhs[shard], rhs[shard], params["moduli"])


def _k_mat_add(backend, arrays, params):
    a, b, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.mat_add(a[shard], b[shard], params["moduli"])


def _k_mat_sub(backend, arrays, params):
    a, b, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.mat_sub(a[shard], b[shard], params["moduli"])


def _k_mat_mul(backend, arrays, params):
    a, b, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.mat_mul(a[shard], b[shard], params["moduli"])


def _k_mat_neg(backend, arrays, params):
    a, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.mat_neg(a[shard], params["moduli"])


def _k_mat_reduce(backend, arrays, params):
    a, out = arrays
    shard = slice(params["start"], params["stop"])
    out[shard] = backend.mat_reduce(a[shard], params["moduli"])


_KERNELS = {
    "matmul_limbs": _k_matmul_limbs,
    "matmul_limbs_cols": _k_matmul_limbs_cols,
    "matmul": _k_matmul,
    "matmul_rows": _k_matmul_rows,
    "hadamard": _k_hadamard,
    "hadamard_limbs": _k_hadamard_limbs,
    "mat_add": _k_mat_add,
    "mat_sub": _k_mat_sub,
    "mat_mul": _k_mat_mul,
    "mat_neg": _k_mat_neg,
    "mat_reduce": _k_mat_reduce,
}


def _worker_main(conn, delegate_name: str) -> None:
    """Serve ``run`` commands until ``close`` / EOF.

    The worker builds its own delegate backend instance and caches one
    :class:`SharedMemory` attachment per slab name — attach once, reuse
    for every later launch that lands in the same slab.
    """
    from multiprocessing import shared_memory

    from .registry import get_backend

    backend = get_backend(delegate_name)
    segments: Dict[str, object] = {}

    def attach(name):
        # Attach once per slab and cache the mapping.  Workers fork from
        # the parent, so the attach-side resource-tracker registration is
        # an idempotent duplicate in the shared tracker — the parent's
        # unlink is the single cleanup point.
        segment = segments.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            segments[name] = segment
        return segment

    arrays = []
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            if command[0] == "close":
                break
            if command[0] == "ping":
                conn.send(("ok", os.getpid()))
                continue
            try:
                _, op, specs, params = command
                arrays = [
                    np.ndarray(shape, dtype=np.dtype(dtype),
                               buffer=attach(name).buf)
                    for name, shape, dtype in specs
                ]
                _KERNELS[op](backend, arrays, params)
                arrays = []
                conn.send(("ok", None))
            except Exception:  # pragma: no cover - exercised via parent raise
                import traceback
                conn.send(("err", traceback.format_exc()))
    finally:
        del arrays
        for segment in segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover
                pass
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ShardedBackend(ArrayBackend):
    """Shard fused launches across persistent shared-memory workers.

    ``delegate`` (a registered backend name or instance — itself not
    sharded) executes each shard inside the workers and every
    below-threshold launch inline in the parent, so results are
    bit-identical to the delegate by construction.  Construct directly,
    or through the registry spec ``sharded[:delegate[:workers]]``
    (e.g. ``REPRO_BACKEND=sharded:blas:4``).
    """

    name = "sharded"
    device_is_host = True
    supports_float_residency = False

    #: Whether GEMMs whose limb axis is too short may shard the rhs
    #: columns instead (the fused B axis of ``forward_ops`` launches).
    shard_columns = True
    #: Whether element-wise kernels shard at all (bandwidth-bound; the
    #: rehabilitated multiprocess backend keeps the historical GEMM-only
    #: behaviour by disabling this).
    shard_elementwise = True

    _DEFAULT_DELEGATE = "numpy"

    def __init__(self, delegate=None, *, workers: Optional[int] = None,
                 min_shard_elements: Optional[int] = None,
                 min_elementwise_elements: Optional[int] = None,
                 calibration=None) -> None:
        from .registry import get_backend  # lazy: registry registers us

        if delegate is None:
            delegate = self._DEFAULT_DELEGATE
        if isinstance(delegate, str):
            delegate = get_backend(delegate)
        if isinstance(delegate, ShardedBackend):
            raise ValueError(
                "sharded delegate must be a single-process backend, got %r"
                % delegate.name)
        self.delegate: ArrayBackend = delegate
        self._delegate_spec: str = delegate.name

        if calibration is None:
            calibration = self._load_calibration()
        if workers is None:
            workers = parse_worker_count(os.environ.get(WORKERS_ENV_VAR))
        if workers is None and calibration is not None \
                and calibration.applies_to_host():
            workers = calibration.workers
        if workers is None:
            # Floored at 2 so sharding exists even on small hosts; an
            # explicit count (argument, env var, spec) is honoured as-is.
            workers = max(2, os.cpu_count() or 2)
        self.workers = max(1, int(workers))

        if min_shard_elements is None and calibration is not None:
            min_shard_elements = calibration.min_shard_elements
        if min_shard_elements is None:
            min_shard_elements = _DEFAULT_MIN_SHARD_ELEMENTS
        self.min_shard_elements = int(min_shard_elements)
        if min_elementwise_elements is None and calibration is not None:
            min_elementwise_elements = calibration.min_elementwise_elements
        if min_elementwise_elements is None:
            min_elementwise_elements = _DEFAULT_MIN_ELEMENTWISE_ELEMENTS
        self.min_elementwise_elements = int(min_elementwise_elements)

        self._procs: List[Tuple[object, object]] = []
        self._arena: Optional[ShmArena] = None
        #: id(original) -> (weakref, slot, spec): operands republished by
        #: identity (the engines pass the same twiddle stacks every call).
        self._operand_slots: Dict[int, tuple] = {}
        # Registered once here — not per pool creation — so repeated
        # close()/relaunch cycles cannot stack exit handlers.
        atexit.register(self.close)

    # ------------------------------------------------------------------
    # Configuration / lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def _load_calibration():
        try:
            from ..perf.calibration import sharding_calibration
            return sharding_calibration()
        except Exception:  # pragma: no cover - calibration is optional
            return None

    @classmethod
    def from_spec(cls, spec: str) -> "ShardedBackend":
        """Build from the registry spec suffix ``[delegate][:workers]``."""
        full = "%s:%s" % (cls.name, spec)
        parts = spec.split(":") if spec else []
        if len(parts) > 2:
            raise ValueError(
                "backend spec %r has too many segments; expected "
                "%s[:delegate[:workers]]" % (full, cls.name))
        delegate = parts[0] if parts and parts[0] else None
        workers = None
        if len(parts) == 2:
            workers = parse_worker_count(parts[1],
                                         source="backend spec %r" % full)
            if workers is None:
                raise ValueError(
                    "backend spec %r has an empty worker count" % full)
        return cls(delegate, workers=workers)

    def capabilities(self) -> dict:
        report = super().capabilities()
        report.update({
            "sharded": True,
            "delegate": self._delegate_spec,
            "shard_workers": self.workers,
            # How much wider the serving layer may size a fused batch:
            # only column-sharding backends fan the B axis out.
            "batch_fanout": self.workers if self.shard_columns else 1,
            "min_shard_elements": self.min_shard_elements,
        })
        return report

    def arena_stats(self) -> Dict[str, int]:
        """Allocation counters of the arena ({} before the first launch)."""
        return self._arena.stats() if self._arena is not None else {}

    def _ensure_workers(self):
        if self._procs:
            return self._procs
        if self._arena is None or self._arena.closed:
            self._arena = ShmArena()
            self._operand_slots.clear()
        try:
            # Spawn the parent's resource tracker *before* forking so the
            # workers inherit it: attach-side registrations then dedup in
            # the one shared tracker instead of each worker starting its
            # own, whose exit-time cleanup would unlink live segments.
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - semi-private API
            pass
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        for index in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child_conn, self._delegate_spec),
                name="repro-shard-%d" % index, daemon=True)
            process.start()
            child_conn.close()
            self._procs.append((process, parent_conn))
        return self._procs

    def close(self) -> None:
        """Stop the workers and free the arena.  Idempotent.

        The backend stays usable: the next sharded launch forks a fresh
        pool and arena.
        """
        procs, self._procs = self._procs, []
        for _, conn in procs:
            try:
                conn.send(("close",))
            except (OSError, BrokenPipeError):  # pragma: no cover
                pass
        for process, conn in procs:
            process.join(timeout=5)
            conn.close()
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._operand_slots.clear()

    # ------------------------------------------------------------------
    # Arena plumbing
    # ------------------------------------------------------------------
    def _publish(self, original: np.ndarray):
        """Copy an operand into the arena (or find its cached slot).

        Returns ``(spec, slot_or_None)``; a non-None slot means the
        operand could not be identity-cached and the caller releases it
        after the launch.  Cached slots are pinned for the lifetime of
        the *original* array — a dead weakref releases them — which is
        what makes the engines' long-lived twiddle stacks a one-time
        publish.
        """
        arena = self._arena
        key = id(original)
        entry = self._operand_slots.get(key)
        if entry is not None and entry[0]() is original:
            arena._stats["operand_hits"] += 1
            return entry[2], None
        contiguous = np.ascontiguousarray(original)
        slot = arena.borrow(contiguous.nbytes)
        arena.ndarray(slot, contiguous.shape, contiguous.dtype)[...] = contiguous
        spec = (slot.name, contiguous.shape, contiguous.dtype.str)
        try:
            ref = weakref.ref(original,
                              self._make_evictor(key, slot, arena))
        except TypeError:  # pragma: no cover - plain ndarrays are weakref-able
            return spec, slot
        self._operand_slots[key] = (ref, slot, spec)
        return spec, None

    def _make_evictor(self, key, slot, arena):
        operand_slots = self._operand_slots

        def evict(ref):
            entry = operand_slots.get(key)
            if entry is not None and entry[0] is ref:
                del operand_slots[key]
            arena.release(slot)

        return evict

    def _borrow_out(self, shape, dtype=np.int64):
        arena = self._arena
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        slot = arena.borrow(nbytes)
        out = arena.ndarray(slot, shape, dtype)
        # Zero-copy result: the slot returns to the free list when the
        # caller drops the view, not via an eager .copy().
        weakref.finalize(out, arena.release, slot)
        return out, (slot.name, tuple(shape), np.dtype(dtype).str)

    def _dispatch(self, op: str, specs, axis_len: int, params: dict,
                  sliced_moduli=None) -> None:
        """One pipe round trip per shard; every shard is a whole kernel."""
        procs = self._ensure_workers()
        shards = max(1, min(self.workers, axis_len))
        bounds = np.linspace(0, axis_len, shards + 1).astype(int)
        pending = []
        for (start, stop), (process, conn) in zip(
                zip(bounds[:-1], bounds[1:]), procs):
            if stop <= start:
                continue
            shard_params = dict(params)
            shard_params["start"] = int(start)
            shard_params["stop"] = int(stop)
            if sliced_moduli is not None:
                shard_params["moduli"] = sliced_moduli[start:stop]
            try:
                conn.send(("run", op, specs, shard_params))
            except (OSError, BrokenPipeError):
                self.close()
                raise RuntimeError(
                    "sharded worker pipe broke while launching %r" % op)
            pending.append(conn)
        failure = None
        for conn in pending:
            try:
                status, detail = conn.recv()
            except (EOFError, OSError):
                self.close()
                raise RuntimeError("sharded worker died executing %r" % op)
            if status != "ok" and failure is None:
                failure = detail
        if failure is not None:
            raise RuntimeError("sharded kernel %r failed in a worker:\n%s"
                               % (op, failure))

    def _run(self, op: str, operands, out_shape, axis_len: int, params: dict,
             sliced_moduli=None) -> np.ndarray:
        """Publish operands, dispatch one kernel, return the arena view."""
        self._ensure_workers()
        arena = self._arena
        transient = []
        specs = []
        try:
            for operand in operands:
                spec, slot = self._publish(operand)
                specs.append(spec)
                if slot is not None:
                    transient.append(slot)
            out, out_spec = self._borrow_out(out_shape)
            specs.append(out_spec)
            self._dispatch(op, tuple(specs), axis_len, params, sliced_moduli)
        finally:
            for slot in transient:
                arena.release(slot)
        return out

    # ------------------------------------------------------------------
    # Shard planning helpers
    # ------------------------------------------------------------------
    def _moduli_int64(self, moduli) -> np.ndarray:
        return np.asarray(moduli, dtype=np.int64)

    def _elementwise_axis(self, a: np.ndarray, moduli: np.ndarray):
        """Leading-axis shard length for an element-wise launch, or None."""
        if not self.shard_elementwise or self.workers < 2:
            return None
        if a.ndim < 1 or a.shape[0] < 2 or a.size < self.min_elementwise_elements:
            return None
        return a.shape[0]

    def _elementwise_moduli(self, a: np.ndarray, moduli: np.ndarray):
        """(full_moduli, sliced_moduli): slice along the shard axis only
        when the moduli column actually spans it."""
        if moduli.ndim >= 1 and moduli.shape[0] == a.shape[0]:
            return None, moduli
        return moduli, None

    # ------------------------------------------------------------------
    # Batched modular GEMMs
    # ------------------------------------------------------------------
    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:
        limbs, rows, inner = lhs.shape
        columns = rhs.shape[2]
        work = limbs * rows * inner * columns
        moduli_arr = self._moduli_int64(moduli)
        if self.workers >= 2 and work >= self.min_shard_elements:
            out_shape = (limbs, rows, columns)
            # Prefer the limb axis (contiguous shards, moduli slice with
            # them); fused forward_ops launches with few limbs but a wide
            # folded-B rhs shard the columns instead.
            if limbs >= 2 and (limbs >= self.workers
                               or not self.shard_columns
                               or limbs >= columns):
                return self._run("matmul_limbs", (lhs, rhs), out_shape,
                                 limbs, {}, sliced_moduli=moduli_arr)
            if self.shard_columns and columns >= 2:
                return self._run("matmul_limbs_cols", (lhs, rhs), out_shape,
                                 columns, {"moduli": moduli_arr})
        return self.delegate.matmul_limbs(lhs, rhs, moduli,
                                          lhs_cache=lhs_cache,
                                          rhs_cache=rhs_cache)

    def matmul(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        if (self.workers >= 2 and lhs.ndim == 2 and rhs.ndim == 2
                and lhs.shape[0] >= 2
                and lhs.shape[0] * lhs.shape[1] * rhs.shape[1]
                >= self.min_shard_elements):
            out_shape = (lhs.shape[0], rhs.shape[1])
            return self._run("matmul", (lhs, rhs), out_shape, lhs.shape[0],
                             {"modulus": int(modulus)})
        return self.delegate.matmul(lhs, rhs, modulus)

    def matmul_rows(self, lhs: np.ndarray, rhs: np.ndarray,
                    row_moduli: np.ndarray, *,
                    operand_bound: Optional[int] = None) -> np.ndarray:
        rows, inner = lhs.shape
        columns = rhs.shape[1]
        if (self.workers >= 2 and rows >= 2
                and rows * inner * columns >= self.min_shard_elements):
            moduli_arr = self._moduli_int64(row_moduli)
            if operand_bound is None:
                # One scan in the parent instead of one per worker; the
                # chunked reduction is exact for any bound ≥ the true max.
                operand_bound = int(lhs.max(initial=0)) * int(rhs.max(initial=0))
            return self._run("matmul_rows", (lhs, rhs), (rows, columns), rows,
                             {"operand_bound": int(operand_bound)},
                             sliced_moduli=moduli_arr)
        return self.delegate.matmul_rows(lhs, rhs, row_moduli,
                                         operand_bound=operand_bound)

    # ------------------------------------------------------------------
    # Element-wise mat-mod kernels
    # ------------------------------------------------------------------
    def _elementwise_binary(self, op: str, a: np.ndarray, b: np.ndarray,
                            moduli, fallback) -> np.ndarray:
        moduli_arr = self._moduli_int64(moduli)
        axis_len = self._elementwise_axis(a, moduli_arr)
        if axis_len is None or a.shape != b.shape:
            return fallback()
        full, sliced = self._elementwise_moduli(a, moduli_arr)
        params = {} if full is None else {"moduli": full}
        return self._run(op, (a, b), a.shape, axis_len, params,
                         sliced_moduli=sliced)

    def _elementwise_unary(self, op: str, a: np.ndarray, moduli,
                           fallback) -> np.ndarray:
        moduli_arr = self._moduli_int64(moduli)
        axis_len = self._elementwise_axis(a, moduli_arr)
        if axis_len is None:
            return fallback()
        full, sliced = self._elementwise_moduli(a, moduli_arr)
        params = {} if full is None else {"moduli": full}
        return self._run(op, (a,), a.shape, axis_len, params,
                         sliced_moduli=sliced)

    def hadamard_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                       moduli: np.ndarray) -> np.ndarray:
        return self._elementwise_binary(
            "hadamard_limbs", lhs, rhs, moduli,
            lambda: self.delegate.hadamard_limbs(lhs, rhs, moduli))

    def hadamard(self, lhs: np.ndarray, rhs: np.ndarray, modulus: int) -> np.ndarray:
        if (self.shard_elementwise and self.workers >= 2
                and lhs.shape == rhs.shape and lhs.ndim >= 1
                and lhs.shape[0] >= 2
                and lhs.size >= self.min_elementwise_elements):
            return self._run("hadamard", (lhs, rhs), lhs.shape, lhs.shape[0],
                             {"modulus": int(modulus)})
        return self.delegate.hadamard(lhs, rhs, modulus)

    def mat_reduce(self, matrix: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        return self._elementwise_unary(
            "mat_reduce", matrix, moduli,
            lambda: self.delegate.mat_reduce(matrix, moduli))

    def mat_add(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        return self._elementwise_binary(
            "mat_add", a, b, moduli,
            lambda: self.delegate.mat_add(a, b, moduli))

    def mat_sub(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        return self._elementwise_binary(
            "mat_sub", a, b, moduli,
            lambda: self.delegate.mat_sub(a, b, moduli))

    def mat_neg(self, a: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        return self._elementwise_unary(
            "mat_neg", a, moduli,
            lambda: self.delegate.mat_neg(a, moduli))

    def mat_mul(self, a: np.ndarray, b: np.ndarray, moduli: np.ndarray) -> np.ndarray:
        return self._elementwise_binary(
            "mat_mul", a, b, moduli,
            lambda: self.delegate.mat_mul(a, b, moduli))
