"""Optional cupy backend: the batched GEMM funnel on a CUDA device.

Mirrors :class:`~repro.backend.torch_backend.TorchBackend` for the cupy
array library.  cupy's int64 ``matmul`` runs on the GPU with the same
wrap-on-overflow semantics as numpy, so the exact chunked accumulation
carries over unchanged; operands are staged once per launch and results
copied back to the host at the funnel boundary.

Registers unconditionally, reports unavailable when ``import cupy`` fails.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .numpy_backend import NumpyBackend, max_safe_chunk
from .residency import DeviceBuffer

__all__ = ["CupyBackend"]

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy
except ImportError:  # pragma: no cover
    cupy = None


class CupyBackend(NumpyBackend):
    """Batched modular GEMMs on cupy int64 device arrays.

    Residency: ``device_is_host = False`` — native storage is a cupy
    device array, every host crossing is counted, and the batched-GEMM
    ``*_native`` variant keeps operands and results on the GPU (cupy's
    numpy-compatible view algebra means the inherited ``nat_*`` helpers
    work unchanged on device arrays).
    """

    name = "cupy"
    device_is_host = False

    def __init__(self) -> None:
        if cupy is None:
            raise RuntimeError("cupy is not installed; CupyBackend is unavailable")

    @classmethod
    def is_available(cls) -> bool:
        return cupy is not None

    # ------------------------------------------------------------------
    def to_device(self, array: np.ndarray):
        return cupy.asarray(np.ascontiguousarray(array, dtype=np.int64))

    def from_device(self, array) -> np.ndarray:
        if cupy is not None and isinstance(array, cupy.ndarray):
            return cupy.asnumpy(array)
        return np.asarray(array, dtype=np.int64)

    def synchronize(self) -> None:  # pragma: no cover - CUDA only
        cupy.cuda.get_current_stream().synchronize()

    def nat_contiguous(self, array):  # pragma: no cover - needs cupy
        return cupy.ascontiguousarray(array)

    def nat_stack(self, arrays, axis: int = 0):  # pragma: no cover - needs cupy
        return cupy.stack(list(arrays), axis=axis)

    def nat_concat(self, arrays, axis: int = 0):  # pragma: no cover - needs cupy
        return cupy.concatenate(list(arrays), axis=axis)

    # ------------------------------------------------------------------
    def _matmul_limbs_d(self, lhs_d, rhs_d, moduli):  # pragma: no cover - needs cupy
        column = self.to_device(np.asarray(moduli, dtype=np.int64)).reshape(-1, 1, 1)
        inner = lhs_d.shape[2]
        chunk = max_safe_chunk(int(np.asarray(moduli).max()))
        if chunk >= inner:
            return cupy.matmul(lhs_d, rhs_d) % column
        out = cupy.zeros((lhs_d.shape[0], lhs_d.shape[1], rhs_d.shape[2]),
                         dtype=cupy.int64)
        for start in range(0, inner, chunk):
            stop = min(start + chunk, inner)
            partial = cupy.matmul(lhs_d[:, :, start:stop],
                                  rhs_d[:, start:stop, :]) % column
            out = (out + partial) % column
        return out

    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:  # pragma: no cover
        out = self._matmul_limbs_d(self.to_device(lhs), self.to_device(rhs), moduli)
        return self.from_device(out)

    def matmul_limbs_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                            moduli: np.ndarray, *,
                            lhs_cache: Optional[object] = None,
                            rhs_cache: Optional[object] = None) -> DeviceBuffer:  # pragma: no cover
        out = self._matmul_limbs_d(lhs.ensure_device(self),
                                   rhs.ensure_device(self), moduli)
        return DeviceBuffer.from_native(out, self)

    def hadamard_limbs_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                              moduli: np.ndarray) -> DeviceBuffer:  # pragma: no cover
        lhs_d = lhs.ensure_device(self)
        column = self.to_device(np.asarray(moduli, dtype=np.int64).reshape(-1))
        column = column.reshape((column.shape[0],) + (1,) * (lhs_d.ndim - 1))
        out = (lhs_d * rhs.ensure_device(self)) % column
        return DeviceBuffer.from_native(out, self)
