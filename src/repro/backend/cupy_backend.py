"""Optional cupy backend: the batched GEMM funnel on a CUDA device.

Mirrors :class:`~repro.backend.torch_backend.TorchBackend` for the cupy
array library.  cupy's int64 ``matmul`` runs on the GPU with the same
wrap-on-overflow semantics as numpy, so the exact chunked accumulation
carries over unchanged; operands are staged once per launch and results
copied back to the host at the funnel boundary.

Registers unconditionally, reports unavailable when ``import cupy`` fails.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .numpy_backend import NumpyBackend, max_safe_chunk

__all__ = ["CupyBackend"]

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy
except ImportError:  # pragma: no cover
    cupy = None


class CupyBackend(NumpyBackend):
    """Batched modular GEMMs on cupy int64 device arrays."""

    name = "cupy"

    def __init__(self) -> None:
        if cupy is None:
            raise RuntimeError("cupy is not installed; CupyBackend is unavailable")

    @classmethod
    def is_available(cls) -> bool:
        return cupy is not None

    # ------------------------------------------------------------------
    def to_device(self, array: np.ndarray):
        return cupy.asarray(np.ascontiguousarray(array, dtype=np.int64))

    def from_device(self, array) -> np.ndarray:
        if cupy is not None and isinstance(array, cupy.ndarray):
            return cupy.asnumpy(array)
        return np.asarray(array, dtype=np.int64)

    def synchronize(self) -> None:  # pragma: no cover - CUDA only
        cupy.cuda.get_current_stream().synchronize()

    # ------------------------------------------------------------------
    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[object] = None,
                     rhs_cache: Optional[object] = None) -> np.ndarray:
        lhs_d = self.to_device(lhs)
        rhs_d = self.to_device(rhs)
        column = self.to_device(np.asarray(moduli, dtype=np.int64)).reshape(-1, 1, 1)
        inner = lhs.shape[2]
        chunk = max_safe_chunk(int(np.asarray(moduli).max()))
        if chunk >= inner:
            out = cupy.matmul(lhs_d, rhs_d) % column
        else:
            out = cupy.zeros((lhs.shape[0], lhs.shape[1], rhs.shape[2]),
                             dtype=cupy.int64)
            for start in range(0, inner, chunk):
                stop = min(start + chunk, inner)
                partial = cupy.matmul(lhs_d[:, :, start:stop],
                                      rhs_d[:, start:stop, :]) % column
                out = (out + partial) % column
        return self.from_device(out)
