"""BLAS float64 backend: the exact fast path for the batched GEMMs.

The limb-batched GEMMs run on BLAS float64 whenever the 2**53 mantissa
bound keeps them exact — the software analogue of the paper lowering GEMMs
to low-precision tensor-core arithmetic.  Historically this fast path lived
ad hoc inside :mod:`repro.ntt.gemm_utils`; it is now a backend in its own
right, selectable with ``REPRO_BACKEND=blas``, and every launch that the
mantissa guard rejects falls back to the exact chunked-int64 arithmetic of
:class:`~repro.backend.numpy_backend.NumpyBackend`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .numpy_backend import NumpyBackend
from .residency import DeviceBuffer

__all__ = ["BlasFloat64Backend", "FloatOperandCache", "FloatResidues",
           "FLOAT_EXACT_LIMIT"]

#: Largest integer magnitude float64 represents exactly (2**53); products and
#: partial sums below this bound make a BLAS dgemm bit-exact.
FLOAT_EXACT_LIMIT = 1 << 53


class FloatOperandCache:
    """Lazily cached float64 forms of a reusable int64 GEMM operand.

    Twiddle stacks are reused across every NTT of an instance, so their
    float64 image (and, for larger moduli, a high/low split that restores
    exactness) is built once and cached here.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = np.asarray(matrix, dtype=np.int64)
        self.max_value = int(self.matrix.max(initial=0))
        self._full = None
        self._split = None

    def full(self) -> np.ndarray:
        """The operand converted to float64 (exact: entries < 2**31 < 2**53)."""
        if self._full is None:
            self._full = self.matrix.astype(np.float64)
        return self._full

    def split(self):
        """``(shift, hi, lo)`` with ``matrix == hi * 2**shift + lo``.

        Splitting roughly halves the bit-width of each part, so each of
        the two partial GEMMs fits the float64 exactness bound for moduli
        too large for a single pass.
        """
        if self._split is None:
            shift = max(1, (self.max_value.bit_length() + 1) // 2)
            hi = (self.matrix >> shift).astype(np.float64)
            lo = (self.matrix & ((1 << shift) - 1)).astype(np.float64)
            self._split = (shift, hi, lo)
        return self._split


def _barrett_chain(moduli):
    """Shared :class:`~repro.numtheory.floatmod.BarrettChain` for ``moduli``.

    Imported lazily: :mod:`repro.numtheory` pulls in the backend registry,
    which imports this module — a top-level import here would cycle.
    """
    from ..numtheory.floatmod import get_barrett_chain

    return get_barrett_chain(moduli)


class FloatResidues(FloatOperandCache):
    """A float64-resident residue image whose int64 form is built lazily.

    The output carrier of the float-resident kernel chains: ``values`` are
    canonical residues already in float64, so ``full()`` is free and the
    int64 ``matrix`` — which :meth:`~repro.backend.residency.DeviceBuffer.
    ensure_host` asks for at the host boundary — is a single (exact)
    truncating cast, deferred until someone actually needs int64.  Between
    launches nothing int64 exists, which is the point: the chain's Barrett
    reductions replace every intermediate ``%`` pass.
    """

    def __init__(self, values: np.ndarray, max_value: int) -> None:
        self._values = values
        self._matrix = None
        self.max_value = int(max_value)
        self._full = values
        self._split = None

    @property
    def matrix(self) -> np.ndarray:
        if self._matrix is None:
            out = np.empty(self._values.shape, dtype=np.int64)
            np.copyto(out, self._values, casting="unsafe")
            self._matrix = out
        return self._matrix

    def split(self):
        """Hi/lo split computed in float64 — never materialises int64.

        Scaling by a power of two only touches the exponent, so the
        floor/subtract decomposition is bit-exact and the residue image
        stays float-resident even through split GEMM paths.
        """
        if self._split is None:
            shift = max(1, (self.max_value.bit_length() + 1) // 2)
            pow_f = float(1 << shift)
            hi = np.floor(self._values * (1.0 / pow_f))
            lo = self._values - hi * pow_f
            self._split = (shift, hi, lo)
        return self._split


def float_matmul_limbs(lhs, rhs, column, inner, lhs_cache, rhs_cache):
    """Exact float64 fast path for the batched GEMM, or None if unsafe.

    At least one operand side carries a :class:`FloatOperandCache` (the
    reusable twiddle stack, or a residency handle's attached image); a
    side without a cache is converted per call.  When *both* sides carry
    caches — the fully resident case — no per-call conversion happens at
    all.  Falls back to None when even the split operand would break the
    2**53 exactness bound.
    """
    cache = lhs_cache if lhs_cache is not None else rhs_cache
    if lhs_cache is not None:
        other, other_cache = rhs, rhs_cache
    else:
        other, other_cache = lhs, None
    # The conversion-free side's bound comes from its cached scan; a raw
    # side keeps the conservative modulus bound (matching the historical
    # guard, which never scans the transient operand).
    other_bound = (other_cache.max_value if other_cache is not None
                   else int(column.max()) - 1)

    def combine(product):
        return np.rint(product).astype(np.int64) % column

    def other_float():
        if other_cache is not None:
            return other_cache.full()
        return other.astype(np.float64)

    if inner * cache.max_value * other_bound < FLOAT_EXACT_LIMIT:
        other_f = other_float()
        if lhs_cache is not None:
            return combine(np.matmul(cache.full(), other_f))
        return combine(np.matmul(other_f, cache.full()))

    shift, hi, lo = cache.split()
    hi_max = max(1, cache.max_value >> shift)
    lo_max = (1 << shift) - 1
    if inner * max(hi_max, lo_max) * other_bound >= FLOAT_EXACT_LIMIT:
        return None
    other_f = other_float()
    if lhs_cache is not None:
        high = combine(np.matmul(hi, other_f))
        low = combine(np.matmul(lo, other_f))
    else:
        high = combine(np.matmul(other_f, hi))
        low = combine(np.matmul(other_f, lo))
    weight = (1 << shift) % column
    return (low + (high * weight) % column) % column


class BlasFloat64Backend(NumpyBackend):
    """Guarded float64 BLAS substrate (bit-exact, int64 fallback)."""

    name = "blas"
    supports_float_residency = True

    # ------------------------------------------------------------------
    # Float-residency helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _peek_float(buf: DeviceBuffer):
        """A handle's attached float64 image, or None (never builds one)."""
        cache = buf.float_cache()
        return None if cache is None else cache.full()

    def _float_operands(self, a: DeviceBuffer, b: DeviceBuffer):
        """Float images for a binary kernel, or None when not worthwhile.

        At least one side must already carry a float image (otherwise the
        int64 path is at least as cheap as paying two conversions); the
        other side is converted per call.
        """
        a_f, b_f = self._peek_float(a), self._peek_float(b)
        if a_f is None and b_f is None:
            return None
        if a_f is None:
            a_f = a.ensure_host().astype(np.float64)
        if b_f is None:
            b_f = b.ensure_host().astype(np.float64)
        return a_f, b_f

    def matmul_limbs(self, lhs: np.ndarray, rhs: np.ndarray,
                     moduli: np.ndarray, *,
                     lhs_cache: Optional[FloatOperandCache] = None,
                     rhs_cache: Optional[FloatOperandCache] = None) -> np.ndarray:
        column = np.asarray(moduli, dtype=np.int64).reshape(-1, 1, 1)
        inner = lhs.shape[2]
        if lhs_cache is None and rhs_cache is None:
            # No reusable operand: cache the (typically smaller) rhs side
            # for this call so the launch can still run on dgemm.
            rhs_cache = FloatOperandCache(rhs)
        result = float_matmul_limbs(lhs, rhs, column, inner,
                                    lhs_cache, rhs_cache)
        if result is not None:
            return result
        return super().matmul_limbs(lhs, rhs, moduli)

    def matmul_limbs_native(self, lhs, rhs, moduli, *,
                            lhs_cache: Optional[FloatOperandCache] = None,
                            rhs_cache: Optional[FloatOperandCache] = None):
        """Residency-aware batched GEMM: reuse handle-attached float images.

        This is the blas backend's device residency: a handle whose
        float64 operand image was attached once (twiddle-stack buffers,
        long-lived benchmark operands) never pays the per-call int64 →
        float64 conversion again.  Peek only — a cache is never *built*
        here, so transient intermediates cost nothing extra.
        """
        if lhs_cache is None:
            lhs_cache = lhs.float_cache()
        if rhs_cache is None:
            rhs_cache = rhs.float_cache()
        if lhs_cache is not None and rhs_cache is not None:
            # Fully resident launch: both operands already have float64
            # images, so the int64 hosts are never touched at all.
            column = np.asarray(moduli, dtype=np.int64).reshape(-1, 1, 1)
            inner = lhs.shape[2]
            result = float_matmul_limbs(None, None, column, inner,
                                        lhs_cache, rhs_cache)
            if result is not None:
                return DeviceBuffer.wrap(result)
        out = self.matmul_limbs(lhs.ensure_host(), rhs.ensure_host(), moduli,
                                lhs_cache=lhs_cache, rhs_cache=rhs_cache)
        return DeviceBuffer.wrap(out)

    # ------------------------------------------------------------------
    # Float-resident element-wise natives: when an operand already lives
    # as a float64 residue image, multiply/add/sub stay on the FMA units
    # (lazy Barrett, see repro.numtheory.floatmod) and hand back another
    # float-resident handle — no int64 materialisation mid-chain.
    # ------------------------------------------------------------------
    def hadamard_limbs_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                              moduli: np.ndarray) -> DeviceBuffer:
        operands = self._float_operands(lhs, rhs)
        if operands is not None:
            chain = _barrett_chain(moduli)
            if chain.fits_product():
                out = self.fhadamard_limbs(operands[0], operands[1], chain)
                return DeviceBuffer.from_float(
                    FloatResidues(out, chain.qmax - 1))
        return super().hadamard_limbs_native(lhs, rhs, moduli)

    def mat_mul_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:
        operands = self._float_operands(a, b)
        if operands is not None:
            chain = _barrett_chain(moduli)
            if chain.fits_product():
                out = self.fhadamard_limbs(operands[0], operands[1], chain)
                return DeviceBuffer.from_float(
                    FloatResidues(out, chain.qmax - 1))
        return super().mat_mul_native(a, b, moduli)

    def mat_add_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:
        operands = self._float_operands(a, b)
        if operands is not None:
            chain = _barrett_chain(moduli)
            if chain.fits(2 * (chain.qmax - 1)):
                out = self.fadd_limbs(operands[0], operands[1], chain)
                return DeviceBuffer.from_float(
                    FloatResidues(out, chain.qmax - 1))
        return super().mat_add_native(a, b, moduli)

    def mat_sub_native(self, a: DeviceBuffer, b: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:
        operands = self._float_operands(a, b)
        if operands is not None:
            chain = _barrett_chain(moduli)
            if chain.fits(2 * (chain.qmax - 1)):
                out = self.fsub_limbs(operands[0], operands[1], chain)
                return DeviceBuffer.from_float(
                    FloatResidues(out, chain.qmax - 1))
        return super().mat_sub_native(a, b, moduli)

    def mat_neg_native(self, a: DeviceBuffer,
                       moduli: np.ndarray) -> DeviceBuffer:
        a_f = self._peek_float(a)
        if a_f is not None:
            chain = _barrett_chain(moduli)
            out = self.fneg_limbs(a_f, chain)
            return DeviceBuffer.from_float(FloatResidues(out, chain.qmax - 1))
        return super().mat_neg_native(a, moduli)

    def mat_reduce_native(self, matrix: DeviceBuffer,
                          moduli: np.ndarray) -> DeviceBuffer:
        cache = matrix.float_cache()
        if cache is not None:
            chain = _barrett_chain(moduli)
            # The operand may hold residues of a *different* basis (the
            # rescale reduces the dropped limb against every surviving
            # prime), so the guard uses the image's own bound.
            if chain.fits(cache.max_value):
                out = self.freduce_limbs(cache.full(), chain)
                return DeviceBuffer.from_float(
                    FloatResidues(out, chain.qmax - 1))
        return super().mat_reduce_native(matrix, moduli)

    def matmul_rows_native(self, lhs: DeviceBuffer, rhs: DeviceBuffer,
                           row_moduli: np.ndarray, *,
                           operand_bound: Optional[int] = None) -> DeviceBuffer:
        lhs_cache, rhs_cache = lhs.float_cache(), rhs.float_cache()
        if lhs_cache is not None and rhs_cache is not None:
            chain = _barrett_chain(row_moduli)
            out = self._float_matmul_rows(lhs_cache, rhs_cache, chain,
                                          lhs.shape[-1])
            if out is not None:
                return DeviceBuffer.from_float(
                    FloatResidues(out, chain.qmax - 1))
        return super().matmul_rows_native(lhs, rhs, row_moduli,
                                          operand_bound=operand_bound)

    def _float_matmul_rows(self, lhs_cache, rhs_cache, chain, inner: int):
        """Row-moduli dgemm on resident float images, or None if unsafe.

        The fast-basis-conversion shape: lhs rows (the precomputed
        ``q_hat mod p_j`` constants) pair with output row moduli, the rhs
        (float-resident source residues) is shared.  A single dgemm when
        the accumulation bound fits the mantissa; otherwise the lhs hi/lo
        split halves the per-partial bit-width and the partials are
        recombined entirely in float via
        :meth:`~repro.numtheory.floatmod.BarrettChain.product_reduce`
        against the per-row residues of ``2**shift`` — no int64 exists at
        any point.
        """
        bound = inner * lhs_cache.max_value * rhs_cache.max_value
        if chain.fits(bound):
            raw = np.matmul(lhs_cache.full(), rhs_cache.full())
            return chain.canonical_reduce(raw)
        shift, hi, lo = lhs_cache.split()
        hi_max = max(1, lhs_cache.max_value >> shift)
        lo_max = (1 << shift) - 1
        rhs_max = rhs_cache.max_value
        if not (chain.fits(inner * hi_max * rhs_max)
                and chain.fits(inner * lo_max * rhs_max)
                and chain.fits_product()):
            return None
        rhs_f = rhs_cache.full()
        high = chain.canonical_reduce(np.matmul(hi, rhs_f))
        low = chain.canonical_reduce(np.matmul(lo, rhs_f))
        weight_col = ((1 << shift) % chain.moduli_array
                      ).astype(np.float64)[:, None]
        weighted = chain.product_reduce(high, weight_col)
        return self.fadd_limbs(weighted, low, chain)
