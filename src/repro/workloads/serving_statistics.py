"""Encrypted statistics as concurrent serving-layer traffic.

The sequential example (``examples/encrypted_statistics.py``) computes
mean and variance of one client's encrypted vector through the facade.
This module re-expresses that workload as *many concurrent clients* of a
:class:`~repro.serving.engine.ServingEngine`: every client runs its own
mean/variance pipeline — square via HMULT, rotate-and-sum via
HROTATE/HADD rounds, the final ``1/n`` scaling via CMULT — awaiting each
intermediate result, and the engine fills the B axis from the traffic
itself.  Clients advance in loose lockstep (every client's round-``k``
rotation lands within one linger window of the others), so each round
coalesces into a fused ``(B, L, N)`` launch without any pre-built batch
list — the point the serving layer exists to prove.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:        # annotation-only: the facade reaches this module
    from ..api.facade import TensorFheContext
    from ..serving.engine import ServingEngine

__all__ = ["ClientStatistics", "ServingStatisticsReport", "run_serving_statistics"]


@dataclass
class ClientStatistics:
    """One client's decrypted statistics next to the plaintext truth."""

    tenant: str
    mean: float
    variance: float
    expected_mean: float
    expected_variance: float

    @property
    def mean_error(self) -> float:
        return abs(self.mean - self.expected_mean)

    @property
    def variance_error(self) -> float:
        return abs(self.variance - self.expected_variance)


@dataclass
class ServingStatisticsReport:
    """Outcome of one concurrent encrypted-statistics run."""

    clients: List[ClientStatistics]
    diagnostics: Dict[str, object] = field(repr=False)

    @property
    def mean_batch_size(self) -> float:
        return self.diagnostics["batches"]["mean_size"]

    @property
    def batches_executed(self) -> int:
        return self.diagnostics["batches"]["executed"]

    @property
    def requests_completed(self) -> int:
        return self.diagnostics["requests"]["completed"]

    @property
    def max_error(self) -> float:
        return max(max(c.mean_error, c.variance_error) for c in self.clients)


async def _client_pipeline(engine: "ServingEngine", tenant: str,
                           values: np.ndarray) -> ClientStatistics:
    """Mean and variance of one encrypted vector, request by request."""
    registry = engine.registry
    bundle = registry.get(tenant)
    count = len(values)
    ciphertext = bundle.encryptor.encrypt(values)
    inverse_count = np.full(count, 1.0 / count)

    async def inner_sum(ct):
        shift = 1
        while shift < count:
            rotated = await engine.rotate(tenant, ct, shift)
            ct = await engine.add(tenant, ct, rotated)
            shift *= 2
        return ct

    # E[x] — rotate-and-sum, then the 1/n plaintext scaling.
    ct_mean = await engine.multiply_plain(
        tenant, await inner_sum(ciphertext), inverse_count)
    # E[x^2] — square first (HMULT + rescale), then the same reduction.
    ct_square = await engine.multiply(tenant, ciphertext, ciphertext)
    ct_square_mean = await engine.multiply_plain(
        tenant, await inner_sum(ct_square), inverse_count)

    mean = float(bundle.decryptor.decrypt_real(ct_mean)[0])
    square_mean = float(bundle.decryptor.decrypt_real(ct_square_mean)[0])
    return ClientStatistics(
        tenant=tenant,
        mean=mean,
        variance=square_mean - mean ** 2,
        expected_mean=float(np.mean(values)),
        expected_variance=float(np.var(values)),
    )


async def run_serving_statistics(fhe: "TensorFheContext", *,
                                 clients: int = 8,
                                 seed: int = 21,
                                 engine: Optional["ServingEngine"] = None,
                                 datasets: Optional[Sequence[np.ndarray]] = None,
                                 ) -> ServingStatisticsReport:
    """Run ``clients`` concurrent encrypted-statistics pipelines.

    All client tenants alias one key bundle (many sessions of one data
    owner), so HMULT rounds fuse across clients as well as the key-less
    HADD/CMULT/HROTATE rounds.  Pass ``datasets`` to override the
    synthetic per-client measurement vectors.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    engine = engine if engine is not None else fhe.create_serving_engine()
    registry = engine.registry
    tenants = ["stats-%02d" % index for index in range(clients)]
    owner = registry.register(tenants[0])
    for tenant in tenants[1:]:
        registry.alias(tenant, owner)

    rng = np.random.default_rng(seed)
    slots = fhe.slot_count
    if datasets is None:
        datasets = [rng.normal(22.0, 3.0, slots) / 32.0 for _ in tenants]
    elif len(datasets) != clients:
        raise ValueError("need one dataset per client")

    async with engine:
        results = await asyncio.gather(*[
            _client_pipeline(engine, tenant, np.asarray(values, dtype=np.float64))
            for tenant, values in zip(tenants, datasets)
        ])
        diagnostics = engine.diagnostics()
    return ServingStatisticsReport(clients=list(results),
                                   diagnostics=diagnostics)
