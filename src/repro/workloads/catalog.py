"""The four evaluated workloads (paper Section V, Table V and Table X).

Operation counts are reconstructed from the structure of the cited
implementations and calibrated so that the modelled TensorFHE runtimes land
in the range the paper measures (Table X); the baseline comparisons in the
benchmarks then exercise the model's *relative* predictions.  Derivations:

* **ResNet-20** [42] — 20 convolution/FC layers evaluated with the
  multiplexed-convolution method; each layer is a large homomorphic
  matrix-vector product (rotations + plaintext multiplications) plus a
  degree-2 polynomial activation; 64 images are packed per run and the
  network is bootstrapped repeatedly to restore levels.
* **Logistic Regression (HELR)** [30] — 14 training iterations over 16384
  samples packed 128-per-polynomial; each iteration is a batched gradient
  computation (inner products via rotate-and-sum) plus a degree-3 sigmoid
  approximation; three bootstraps over the run.
* **LSTM** [54] — 128 recurrent cells with 128-dimensional embeddings; each
  cell step is two dense 128x128 layers plus element-wise gates, evaluated
  for 32 packed sentences.
* **Packed bootstrapping** [46], [58] — 32 ciphertexts bootstrapped back to
  L=57; the work is the bootstrap pipeline itself.
"""

from __future__ import annotations

from typing import Dict

from .base import OperationCounts, WorkloadSpec

__all__ = ["RESNET20", "LOGISTIC_REGRESSION", "LSTM", "PACKED_BOOTSTRAPPING",
           "WORKLOADS", "get_workload", "BOOTSTRAP_OPERATIONS"]


#: Operation mix of ONE bootstrap of a fully packed ciphertext (N=2^16,
#: 2^15 slots): CoeffToSlot and SlotToCoeff via the BSGS homomorphic DFT
#: (Faster-DFT radix decomposition: ~3 levels of ~56 diagonal CMULTs and
#: ~2*sqrt(56) rotations each), plus the degree-31 sine/EvalMod stage.
BOOTSTRAP_OPERATIONS = OperationCounts(
    hmult=40,
    hrotate=180,
    rescale=220,
    hadd=360,
    cmult=260,
)


# ResNet-20: 19 conv layers + 1 FC, ~36 rotations and ~36 CMULTs per layer
# channel-block with the multiplexed packing, x ~8 channel blocks per layer
# on average, plus one HMULT-based square activation per layer per block.
_RESNET_LAYER = OperationCounts(hmult=560, hrotate=10080, rescale=11550, hadd=10500, cmult=10080)
RESNET20 = WorkloadSpec(
    name="resnet20",
    ring_degree=1 << 16,
    level_count=30,
    batch_size=64,
    iterations=20,                       # one "iteration" per layer
    operations_per_iteration=_RESNET_LAYER,
    bootstraps_per_run=18,               # re-bootstrapped between layer groups
    packed_inputs=64,
    description="ResNet-20 encrypted inference on 64 packed images",
)

# HELR: per iteration a batched gradient over 1024-sample minibatches:
# X^T * sigmoid(X*w) with rotate-and-sum inner products (log2(256)=8
# rotations per feature block, 8 feature blocks) + degree-3 sigmoid.
_LR_ITERATION = OperationCounts(hmult=60, hrotate=640, rescale=750, hadd=800, cmult=480)
LOGISTIC_REGRESSION = WorkloadSpec(
    name="lr",
    ring_degree=1 << 16,
    level_count=39,
    batch_size=64,
    iterations=14,
    operations_per_iteration=_LR_ITERATION,
    bootstraps_per_run=3,
    packed_inputs=128,
    description="HELR logistic regression, 14 iterations, 16384 samples",
)

# LSTM: 128 cell steps; each step two 128x128 dense layers (BSGS: ~2*sqrt(128)
# rotations + 128 diagonal CMULTs each) plus element-wise gate products.
_LSTM_CELL = OperationCounts(hmult=240, hrotate=1440, rescale=2100, hadd=2400, cmult=2160)
LSTM = WorkloadSpec(
    name="lstm",
    ring_degree=1 << 15,
    level_count=26,
    batch_size=32,
    iterations=128,
    operations_per_iteration=_LSTM_CELL,
    bootstraps_per_run=24,
    packed_inputs=32,
    description="LSTM text classifier, 128 cells, 32 packed sentences",
)

# Packed bootstrapping: the workload IS the bootstrap (32 ciphertexts).
PACKED_BOOTSTRAPPING = WorkloadSpec(
    name="packed_bootstrapping",
    ring_degree=1 << 16,
    level_count=58,
    batch_size=32,
    iterations=1,
    operations_per_iteration=OperationCounts(),
    bootstraps_per_run=32,
    packed_inputs=32,
    description="Packed bootstrapping of 32 ciphertexts to L=57",
)

WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (RESNET20, LOGISTIC_REGRESSION, LSTM, PACKED_BOOTSTRAPPING)
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by its Table X name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            "unknown workload %r; available: %s" % (name, sorted(WORKLOADS))
        ) from None
