"""Workload descriptions: the FHE operation mix of each evaluated application.

The paper evaluates four applications (Section V): ResNet-20 inference,
HELR logistic regression, an LSTM classifier and packed bootstrapping.
Their absolute runtimes come from the operation mix they issue; this module
describes that mix.  The counts are reconstructed from the structure of the
cited implementations (layer shapes, iteration counts, BSGS parameters) —
see each workload module for the derivation — and feed the workload-level
performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["OperationCounts", "WorkloadSpec"]


@dataclass
class OperationCounts:
    """Counts of CKKS operations issued by (part of) a workload."""

    hmult: int = 0
    hrotate: int = 0
    rescale: int = 0
    hadd: int = 0
    cmult: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "HMULT": self.hmult,
            "HROTATE": self.hrotate,
            "RESCALE": self.rescale,
            "HADD": self.hadd,
            "CMULT": self.cmult,
        }

    def total(self) -> int:
        return self.hmult + self.hrotate + self.rescale + self.hadd + self.cmult

    def scaled(self, factor: int) -> "OperationCounts":
        return OperationCounts(
            hmult=self.hmult * factor,
            hrotate=self.hrotate * factor,
            rescale=self.rescale * factor,
            hadd=self.hadd * factor,
            cmult=self.cmult * factor,
        )

    def merged(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            hmult=self.hmult + other.hmult,
            hrotate=self.hrotate + other.hrotate,
            rescale=self.rescale + other.rescale,
            hadd=self.hadd + other.hadd,
            cmult=self.cmult + other.cmult,
        )


@dataclass
class WorkloadSpec:
    """A complete workload: CKKS parameters, op counts and bootstrap usage."""

    name: str
    ring_degree: int
    level_count: int
    batch_size: int
    iterations: int
    operations_per_iteration: OperationCounts
    bootstraps_per_run: int = 0
    #: Number of independent ciphertext streams processed in parallel
    #: (images, sentences, sample blocks) — the paper's packing factor.
    packed_inputs: int = 1
    description: str = ""
    dnum: int = 5

    def total_operations(self) -> OperationCounts:
        """Operation counts of one full run (excluding bootstraps)."""
        return self.operations_per_iteration.scaled(self.iterations)

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "name": self.name,
            "N": self.ring_degree,
            "L": self.level_count - 1,
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "bootstraps": self.bootstraps_per_run,
            "packed_inputs": self.packed_inputs,
        }
        info.update(self.total_operations().as_dict())
        return info
