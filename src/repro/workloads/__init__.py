"""Workload models (ResNet-20, logistic regression, LSTM, packed
bootstrapping) plus the executable serving-layer statistics workload."""

from .base import OperationCounts, WorkloadSpec
from .serving_statistics import (
    ClientStatistics,
    ServingStatisticsReport,
    run_serving_statistics,
)
from .catalog import (
    BOOTSTRAP_OPERATIONS,
    LOGISTIC_REGRESSION,
    LSTM,
    PACKED_BOOTSTRAPPING,
    RESNET20,
    WORKLOADS,
    get_workload,
)

__all__ = [
    "OperationCounts",
    "WorkloadSpec",
    "RESNET20",
    "LOGISTIC_REGRESSION",
    "LSTM",
    "PACKED_BOOTSTRAPPING",
    "BOOTSTRAP_OPERATIONS",
    "WORKLOADS",
    "get_workload",
    "ClientStatistics",
    "ServingStatisticsReport",
    "run_serving_statistics",
]
