"""Workload models: ResNet-20, logistic regression, LSTM, packed bootstrapping."""

from .base import OperationCounts, WorkloadSpec
from .catalog import (
    BOOTSTRAP_OPERATIONS,
    LOGISTIC_REGRESSION,
    LSTM,
    PACKED_BOOTSTRAPPING,
    RESNET20,
    WORKLOADS,
    get_workload,
)

__all__ = [
    "OperationCounts",
    "WorkloadSpec",
    "RESNET20",
    "LOGISTIC_REGRESSION",
    "LSTM",
    "PACKED_BOOTSTRAPPING",
    "BOOTSTRAP_OPERATIONS",
    "WORKLOADS",
    "get_workload",
]
