"""ModDown: divide a polynomial in the extended basis ``C_l ∪ P`` by ``P``.

The inner product of the key switch produces values of the form
``P * d * s' + e`` represented over ``C_l ∪ P``.  ModDown removes the
``P`` factor (with rounding) and returns to the ciphertext basis:

    ModDown(x)_i = [(x_i - Conv([x]_P)_i) * P^{-1}]_{q_i}

where ``Conv`` is the fast basis conversion from the special basis to the
ciphertext basis.  The result equals ``round(x / P)`` up to the small
rounding term inherent in the approximate conversion.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..numtheory.modular import mat_mod_mul, mat_mod_sub, mod_inverse, moduli_column
from .conv import BasisConverter
from .poly import PolyDomain, RnsPolynomial

__all__ = ["ModDown"]


class ModDown:
    """Exact-division-by-P operator for the extended key-switching basis."""

    def __init__(self, ciphertext_moduli: Sequence[int], special_moduli: Sequence[int]) -> None:
        self.ciphertext_moduli = tuple(int(q) for q in ciphertext_moduli)
        self.special_moduli = tuple(int(p) for p in special_moduli)
        if not self.special_moduli:
            raise ValueError("ModDown requires at least one special prime")
        special_product = 1
        for p in self.special_moduli:
            special_product *= p
        self.special_product = special_product
        self._converter = BasisConverter(self.special_moduli, self.ciphertext_moduli)
        self._p_inverse = {
            q: mod_inverse(special_product % q, q) for q in self.ciphertext_moduli
        }
        self._ciphertext_column = moduli_column(self.ciphertext_moduli)
        self._p_inverse_column = np.asarray(
            [self._p_inverse[q] for q in self.ciphertext_moduli], dtype=np.int64
        )[:, None]

    def apply(self, polynomial: RnsPolynomial) -> RnsPolynomial:
        """Return ``round(polynomial / P)`` in the ciphertext basis.

        The subtraction and the multiply by ``P^{-1}`` are single 2-D
        launches over all ciphertext limbs.
        """
        if polynomial.domain != PolyDomain.COEFFICIENT:
            raise ValueError("ModDown requires the coefficient domain")
        expected = self.ciphertext_moduli + self.special_moduli
        if tuple(polynomial.moduli) != expected:
            raise ValueError("polynomial basis does not match this ModDown instance")
        ciphertext_count = len(self.ciphertext_moduli)
        folded = self._converter.convert_residues(
            polynomial.residues[ciphertext_count:])
        column = self._ciphertext_column
        diff = mat_mod_sub(polynomial.residues[:ciphertext_count], folded, column)
        residues = mat_mod_mul(diff, self._p_inverse_column, column)
        return RnsPolynomial(polynomial.ring_degree, self.ciphertext_moduli,
                             residues, PolyDomain.COEFFICIENT)
