"""ModDown: divide a polynomial in the extended basis ``C_l ∪ P`` by ``P``.

The inner product of the key switch produces values of the form
``P * d * s' + e`` represented over ``C_l ∪ P``.  ModDown removes the
``P`` factor (with rounding) and returns to the ciphertext basis:

    ModDown(x)_i = [(x_i - Conv([x]_P)_i) * P^{-1}]_{q_i}

where ``Conv`` is the fast basis conversion from the special basis to the
ciphertext basis.  The result equals ``round(x / P)`` up to the small
rounding term inherent in the approximate conversion.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backend.residency import contiguous, is_buffer
from ..numtheory.modular import mat_mod_mul, mat_mod_sub, mod_inverse, moduli_column
from .conv import BasisConverter
from .poly import PolyDomain, RnsPolynomial

__all__ = ["ModDown"]


class ModDown:
    """Exact-division-by-P operator for the extended key-switching basis."""

    def __init__(self, ciphertext_moduli: Sequence[int], special_moduli: Sequence[int]) -> None:
        self.ciphertext_moduli = tuple(int(q) for q in ciphertext_moduli)
        self.special_moduli = tuple(int(p) for p in special_moduli)
        if not self.special_moduli:
            raise ValueError("ModDown requires at least one special prime")
        special_product = 1
        for p in self.special_moduli:
            special_product *= p
        self.special_product = special_product
        self._converter = BasisConverter(self.special_moduli, self.ciphertext_moduli)
        self._p_inverse = {
            q: mod_inverse(special_product % q, q) for q in self.ciphertext_moduli
        }
        self._ciphertext_column = moduli_column(self.ciphertext_moduli)
        self._p_inverse_column = np.asarray(
            [self._p_inverse[q] for q in self.ciphertext_moduli], dtype=np.int64
        )[:, None]

    def apply(self, polynomial: RnsPolynomial) -> RnsPolynomial:
        """Return ``round(polynomial / P)`` in the ciphertext basis.

        The subtraction and the multiply by ``P^{-1}`` are single 2-D
        launches over all ciphertext limbs; the whole step threads the
        polynomial's residency handle (Conv included), so a device-resident
        operand never stages through host.
        """
        if polynomial.domain != PolyDomain.COEFFICIENT:
            raise ValueError("ModDown requires the coefficient domain")
        expected = self.ciphertext_moduli + self.special_moduli
        if tuple(polynomial.moduli) != expected:
            raise ValueError("polynomial basis does not match this ModDown instance")
        ciphertext_count = len(self.ciphertext_moduli)
        buffer = polynomial.buffer
        folded = self._converter.convert_residues(buffer[ciphertext_count:])
        column = self._ciphertext_column
        diff = mat_mod_sub(buffer[:ciphertext_count], folded, column)
        residues = mat_mod_mul(diff, self._p_inverse_column, column)
        return RnsPolynomial(polynomial.ring_degree, self.ciphertext_moduli,
                             residues, PolyDomain.COEFFICIENT)

    def apply_batch(self, stacks: np.ndarray) -> np.ndarray:
        """ModDown a ``(B, extended, N)`` residue stack to ``(B, active, N)``.

        One batched Conv folds the special limbs of every stream at once
        and the subtraction / multiply-by-``P^{-1}`` run as single funnel
        launches over the fused ``(B*active, N)`` matrix, so no per-stream
        loop remains.  Stream ``b`` of the result is bit-identical to
        :meth:`apply` on slice ``b`` (the funnel keeps >= 2**31 moduli
        exact).
        """
        if not is_buffer(stacks):
            stacks = np.asarray(stacks, dtype=np.int64)
        expected_limbs = len(self.ciphertext_moduli) + len(self.special_moduli)
        if len(stacks.shape) != 3 or stacks.shape[1] != expected_limbs:
            raise ValueError(
                "expected a (B, %d, N) residue stack, got shape %s"
                % (expected_limbs, stacks.shape)
            )
        batch, _, n = stacks.shape
        ciphertext_count = len(self.ciphertext_moduli)
        if batch == 0:
            return np.zeros((0, ciphertext_count, n), dtype=np.int64)
        folded = self._converter.convert_residues_batch(
            contiguous(stacks[:, ciphertext_count:]))
        tiled_moduli = np.tile(self._ciphertext_column, (batch, 1))
        tiled_inverses = np.tile(self._p_inverse_column, (batch, 1))
        diff = mat_mod_sub(
            stacks[:, :ciphertext_count].reshape(batch * ciphertext_count, n),
            folded.reshape(batch * ciphertext_count, n), tiled_moduli)
        residues = mat_mod_mul(diff, tiled_inverses, tiled_moduli)
        return residues.reshape(batch, ciphertext_count, n)
