"""Residue Number System layer: bases, polynomials, basis conversion, ModUp/ModDown."""

from .basis import RnsBasis, build_default_basis
from .conv import BasisConverter, convert_basis
from .moddown import ModDown
from .modup import ModUp
from .poly import PolyDomain, RnsPolynomial

__all__ = [
    "RnsBasis",
    "build_default_basis",
    "RnsPolynomial",
    "PolyDomain",
    "BasisConverter",
    "convert_basis",
    "ModUp",
    "ModDown",
]
