"""RNS polynomials: the central data structure of the CKKS stack.

An :class:`RnsPolynomial` stores one element of ``R_Q = Z_Q[X]/(X^N + 1)``
as a ``(limbs, N)`` int64 matrix — row ``i`` holds the coefficients modulo
prime ``moduli[i]``.  Polynomials track whether they are in the coefficient
or the evaluation (NTT) domain; arithmetic helpers enforce matching domains
and moduli, mirroring the checks a GPU kernel launcher would perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..numtheory.crt import CrtContext
from ..numtheory.modular import vec_mod_add, vec_mod_mul, vec_mod_neg, vec_mod_sub
from ..ntt.planner import NttPlanner

__all__ = ["PolyDomain", "RnsPolynomial"]


class PolyDomain:
    """Domain tags for RNS polynomials."""

    COEFFICIENT = "coefficient"
    EVALUATION = "evaluation"


@dataclass
class RnsPolynomial:
    """A polynomial in RNS representation.

    Parameters
    ----------
    ring_degree:
        The polynomial degree ``N``.
    moduli:
        The primes of this polynomial's basis (one row per prime).
    residues:
        Int64 array of shape ``(len(moduli), ring_degree)``.
    domain:
        Either :data:`PolyDomain.COEFFICIENT` or :data:`PolyDomain.EVALUATION`.
    """

    ring_degree: int
    moduli: Sequence[int]
    residues: np.ndarray
    domain: str = PolyDomain.COEFFICIENT

    def __post_init__(self) -> None:
        self.moduli = tuple(int(q) for q in self.moduli)
        self.residues = np.asarray(self.residues, dtype=np.int64)
        expected = (len(self.moduli), self.ring_degree)
        if self.residues.shape != expected:
            raise ValueError(
                "residue matrix has shape %s, expected %s"
                % (self.residues.shape, expected)
            )
        if self.domain not in (PolyDomain.COEFFICIENT, PolyDomain.EVALUATION):
            raise ValueError("unknown polynomial domain %r" % self.domain)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, ring_degree: int, moduli: Sequence[int],
             domain: str = PolyDomain.COEFFICIENT) -> "RnsPolynomial":
        """The all-zero polynomial over ``moduli``."""
        residues = np.zeros((len(tuple(moduli)), ring_degree), dtype=np.int64)
        return cls(ring_degree, moduli, residues, domain)

    @classmethod
    def from_integers(cls, coefficients: Iterable[int], moduli: Sequence[int],
                      ring_degree: int = None) -> "RnsPolynomial":
        """Build a coefficient-domain polynomial from (possibly signed) integers."""
        coefficients = [int(c) for c in coefficients]
        ring_degree = len(coefficients) if ring_degree is None else ring_degree
        if len(coefficients) != ring_degree:
            raise ValueError("coefficient count does not match ring degree")
        moduli = tuple(int(q) for q in moduli)
        rows = [[c % q for c in coefficients] for q in moduli]
        return cls(ring_degree, moduli, np.asarray(rows, dtype=np.int64))

    @classmethod
    def random_uniform(cls, ring_degree: int, moduli: Sequence[int],
                       rng: np.random.Generator,
                       domain: str = PolyDomain.COEFFICIENT) -> "RnsPolynomial":
        """A polynomial with independently uniform residues (used for the mask ``a``)."""
        moduli = tuple(int(q) for q in moduli)
        rows = [rng.integers(0, q, ring_degree, dtype=np.int64) for q in moduli]
        return cls(ring_degree, moduli, np.stack(rows), domain)

    @classmethod
    def random_ternary(cls, ring_degree: int, moduli: Sequence[int],
                       rng: np.random.Generator, *,
                       hamming_weight: int = None) -> "RnsPolynomial":
        """A ternary polynomial (secret keys); optionally sparse."""
        if hamming_weight is None:
            signed = rng.integers(-1, 2, ring_degree)
        else:
            hamming_weight = min(hamming_weight, ring_degree)
            signed = np.zeros(ring_degree, dtype=np.int64)
            positions = rng.choice(ring_degree, size=hamming_weight, replace=False)
            signed[positions] = rng.choice([-1, 1], size=hamming_weight)
        return cls.from_integers(signed, moduli, ring_degree)

    @classmethod
    def random_gaussian(cls, ring_degree: int, moduli: Sequence[int],
                        rng: np.random.Generator, *, stddev: float = 3.2) -> "RnsPolynomial":
        """A small Gaussian error polynomial (LWE noise)."""
        signed = np.round(rng.normal(0.0, stddev, ring_degree)).astype(np.int64)
        return cls.from_integers(signed, moduli, ring_degree)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def limb_count(self) -> int:
        """Number of RNS limbs (primes)."""
        return len(self.moduli)

    @property
    def level(self) -> int:
        """Convenience alias: limbs minus one."""
        return self.limb_count - 1

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.ring_degree, self.moduli, self.residues.copy(), self.domain)

    def limb(self, index: int) -> np.ndarray:
        """Residues of limb ``index``."""
        return self.residues[index]

    def to_integers(self, *, centered: bool = True) -> list:
        """CRT-recombine into big-integer coefficients (coefficient domain only)."""
        self._require_domain(PolyDomain.COEFFICIENT)
        crt = CrtContext(self.moduli)
        return crt.compose_array(self.residues, centered=centered)

    # ------------------------------------------------------------------
    # Arithmetic (domain- and basis-checked)
    # ------------------------------------------------------------------
    def add(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Element-wise modular addition (the Ele-Add kernel)."""
        self._check_compatible(other)
        rows = [vec_mod_add(self.residues[i], other.residues[i], q)
                for i, q in enumerate(self.moduli)]
        return RnsPolynomial(self.ring_degree, self.moduli, np.stack(rows), self.domain)

    def subtract(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Element-wise modular subtraction (the Ele-Sub kernel)."""
        self._check_compatible(other)
        rows = [vec_mod_sub(self.residues[i], other.residues[i], q)
                for i, q in enumerate(self.moduli)]
        return RnsPolynomial(self.ring_degree, self.moduli, np.stack(rows), self.domain)

    def negate(self) -> "RnsPolynomial":
        rows = [vec_mod_neg(self.residues[i], q) for i, q in enumerate(self.moduli)]
        return RnsPolynomial(self.ring_degree, self.moduli, np.stack(rows), self.domain)

    def hadamard(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Element-wise modular product (the Hada-Mult kernel).

        Meaningful as polynomial multiplication only in the evaluation
        domain; callers that need ring multiplication of coefficient-domain
        polynomials should go through the kernel layer or an NTT engine.
        """
        self._check_compatible(other)
        rows = [vec_mod_mul(self.residues[i], other.residues[i], q)
                for i, q in enumerate(self.moduli)]
        return RnsPolynomial(self.ring_degree, self.moduli, np.stack(rows), self.domain)

    def scalar_multiply(self, scalar: int) -> "RnsPolynomial":
        """Multiply every residue by an integer scalar."""
        rows = [vec_mod_mul(self.residues[i],
                            np.full(self.ring_degree, scalar % q, dtype=np.int64), q)
                for i, q in enumerate(self.moduli)]
        return RnsPolynomial(self.ring_degree, self.moduli, np.stack(rows), self.domain)

    def scalar_multiply_per_limb(self, scalars: Sequence[int]) -> "RnsPolynomial":
        """Multiply limb ``i`` by ``scalars[i]`` (used by key generation).

        Multiplying by a constant polynomial is the same in either domain,
        so no domain restriction applies.
        """
        if len(scalars) != self.limb_count:
            raise ValueError("need one scalar per limb")
        rows = [vec_mod_mul(self.residues[i],
                            np.full(self.ring_degree, int(scalars[i]) % q, dtype=np.int64), q)
                for i, q in enumerate(self.moduli)]
        return RnsPolynomial(self.ring_degree, self.moduli, np.stack(rows), self.domain)

    # ------------------------------------------------------------------
    # Domain conversion
    # ------------------------------------------------------------------
    def to_evaluation(self, planner: NttPlanner) -> "RnsPolynomial":
        """Forward-NTT every limb (no-op if already in the evaluation domain)."""
        if self.domain == PolyDomain.EVALUATION:
            return self.copy()
        rows = [planner.engine_for(self.ring_degree, q).forward(self.residues[i])
                for i, q in enumerate(self.moduli)]
        return RnsPolynomial(self.ring_degree, self.moduli, np.stack(rows),
                             PolyDomain.EVALUATION)

    def to_coefficient(self, planner: NttPlanner) -> "RnsPolynomial":
        """Inverse-NTT every limb (no-op if already in the coefficient domain)."""
        if self.domain == PolyDomain.COEFFICIENT:
            return self.copy()
        rows = [planner.engine_for(self.ring_degree, q).inverse(self.residues[i])
                for i, q in enumerate(self.moduli)]
        return RnsPolynomial(self.ring_degree, self.moduli, np.stack(rows),
                             PolyDomain.COEFFICIENT)

    # ------------------------------------------------------------------
    # Basis manipulation
    # ------------------------------------------------------------------
    def restrict_to(self, moduli: Sequence[int]) -> "RnsPolynomial":
        """Keep only the limbs whose primes appear in ``moduli`` (in that order)."""
        moduli = tuple(int(q) for q in moduli)
        index_of = {q: i for i, q in enumerate(self.moduli)}
        try:
            rows = [self.residues[index_of[q]] for q in moduli]
        except KeyError as missing:
            raise ValueError("prime %s is not a limb of this polynomial" % missing) from None
        return RnsPolynomial(self.ring_degree, moduli, np.stack(rows), self.domain)

    def drop_last_limb(self) -> "RnsPolynomial":
        """Remove the last limb (used by RESCALE)."""
        if self.limb_count <= 1:
            raise ValueError("cannot drop the only limb")
        return RnsPolynomial(self.ring_degree, self.moduli[:-1],
                             self.residues[:-1].copy(), self.domain)

    # ------------------------------------------------------------------
    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.ring_degree != other.ring_degree:
            raise ValueError("ring degrees differ")
        if self.moduli != other.moduli:
            raise ValueError("RNS bases differ; align levels first")
        if self.domain != other.domain:
            raise ValueError(
                "polynomial domains differ (%s vs %s)" % (self.domain, other.domain)
            )

    def _require_domain(self, domain: str) -> None:
        if self.domain != domain:
            raise ValueError("operation requires the %s domain" % domain)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPolynomial):
            return NotImplemented
        return (self.ring_degree == other.ring_degree
                and self.moduli == other.moduli
                and self.domain == other.domain
                and np.array_equal(self.residues, other.residues))
