"""RNS polynomials: the central data structure of the CKKS stack.

An :class:`RnsPolynomial` stores one element of ``R_Q = Z_Q[X]/(X^N + 1)``
as a ``(limbs, N)`` int64 matrix — row ``i`` holds the coefficients modulo
prime ``moduli[i]``.  Polynomials track whether they are in the coefficient
or the evaluation (NTT) domain; arithmetic helpers enforce matching domains
and moduli, mirroring the checks a GPU kernel launcher would perform.

Batched execution model
-----------------------
The ``(limbs, N)`` matrix is not just storage — it is the execution unit.
Every arithmetic helper (``add``, ``subtract``, ``negate``, ``hadamard``,
``scalar_multiply``, ...) is a *single* vectorised 2-D operation with the
moduli broadcast as a ``(limbs, 1)`` column, and the domain conversions
hand the whole matrix to the NTT planner's limb-batched transforms.  This
is the paper's operation-level batching argument applied to the limb axis:
one fused launch per polynomial instead of ``limb_count`` small kernels.

Residency
---------
The residue matrix lives behind a
:class:`~repro.backend.residency.DeviceBuffer` handle (:attr:`buffer`):
arithmetic and domain conversions thread the handle through the funnels,
so on a device backend a chain of kernels keeps the polynomial
device-resident and only :attr:`residues` (the host image, used at the
encode / decrypt / serialize boundaries) forces a counted copy back.  The
host image is authoritative — code that mutates ``poly.residues`` in
place must call :meth:`invalidate_resident` before the next kernel uses
the polynomial (the library itself never mutates residues in place).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..backend.residency import DeviceBuffer
from ..numtheory.crt import CrtContext
from ..numtheory.modular import (
    mat_mod_add,
    mat_mod_mul,
    mat_mod_neg,
    mat_mod_scalar_mul,
    mat_mod_sub,
)
from ..ntt.planner import NttPlanner

__all__ = ["PolyDomain", "RnsPolynomial"]


class PolyDomain:
    """Domain tags for RNS polynomials."""

    COEFFICIENT = "coefficient"
    EVALUATION = "evaluation"


class RnsPolynomial:
    """A polynomial in RNS representation.

    Parameters
    ----------
    ring_degree:
        The polynomial degree ``N``.
    moduli:
        The primes of this polynomial's basis (one row per prime).
    residues:
        Int64 array of shape ``(len(moduli), ring_degree)``, a
        :class:`~repro.backend.residency.DeviceBuffer` handle of that
        shape, or a float64 residue image
        (:class:`~repro.backend.blas_backend.FloatResidues`).  Handles and
        float images are kept resident — no host materialisation happens
        here, so a float-resident kernel chain can hand its output
        straight to a polynomial without casting to int64.
    domain:
        Either :data:`PolyDomain.COEFFICIENT` or :data:`PolyDomain.EVALUATION`.
    """

    def __init__(self, ring_degree: int, moduli: Sequence[int],
                 residues, domain: str = PolyDomain.COEFFICIENT) -> None:
        self.ring_degree = ring_degree
        self.moduli = tuple(int(q) for q in moduli)
        if (not isinstance(residues, DeviceBuffer)
                and hasattr(residues, "full")
                and hasattr(residues, "max_value")):
            # A raw float64 residue image (FloatResidues duck type): wrap
            # it float-resident so the int64 form stays lazy.
            self._buffer = DeviceBuffer.from_float(residues)
        else:
            self._buffer = DeviceBuffer.wrap(residues)
        self.domain = domain
        expected = (len(self.moduli), self.ring_degree)
        if self._buffer.shape != expected:
            raise ValueError(
                "residue matrix has shape %s, expected %s"
                % (self._buffer.shape, expected)
            )
        if self.domain not in (PolyDomain.COEFFICIENT, PolyDomain.EVALUATION):
            raise ValueError("unknown polynomial domain %r" % self.domain)
        # Broadcast column reused by every vectorised arithmetic helper.
        self._moduli_column = np.asarray(self.moduli, dtype=np.int64)[:, None]

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    @property
    def residues(self) -> np.ndarray:
        """The host ``(limbs, N)`` int64 image (materialised on demand)."""
        return self._buffer.ensure_host()

    @property
    def buffer(self) -> DeviceBuffer:
        """The residency handle backing this polynomial's residues."""
        return self._buffer

    @property
    def float_image(self):
        """The attached float64 residue image, or None (never builds one).

        A peek for residency-aware callers and tests: float-resident
        polynomials (outputs of a fused float kernel chain) expose their
        image here without forcing the int64 cast that :attr:`residues`
        would perform.
        """
        return self._buffer.float_cache()

    def invalidate_resident(self) -> None:
        """Drop derived resident images after an in-place host mutation.

        The invalidation contract: ``poly.residues`` returns the live host
        array, so in-place writes are visible immediately on host — but a
        device image (or float64 operand image) built *before* the write
        would be stale.  Callers that mutate in place must invalidate; all
        library kernels allocate fresh outputs and never need to.
        """
        self._buffer.invalidate_device()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("RnsPolynomial(ring_degree=%d, limbs=%d, domain=%r)"
                % (self.ring_degree, self.limb_count, self.domain))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, ring_degree: int, moduli: Sequence[int],
             domain: str = PolyDomain.COEFFICIENT) -> "RnsPolynomial":
        """The all-zero polynomial over ``moduli``."""
        residues = np.zeros((len(tuple(moduli)), ring_degree), dtype=np.int64)
        return cls(ring_degree, moduli, residues, domain)

    @classmethod
    def from_integers(cls, coefficients: Iterable[int], moduli: Sequence[int],
                      ring_degree: Optional[int] = None) -> "RnsPolynomial":
        """Build a coefficient-domain polynomial from (possibly signed) integers.

        The whole residue matrix is produced by one broadcast reduction of
        the coefficient vector against the ``(limbs, 1)`` moduli column.
        Arbitrary-precision coefficients (larger than int64) take an exact
        object-dtype path.
        """
        coefficients = [int(c) for c in coefficients]
        ring_degree = len(coefficients) if ring_degree is None else ring_degree
        if len(coefficients) != ring_degree:
            raise ValueError("coefficient count does not match ring degree")
        moduli = tuple(int(q) for q in moduli)
        column = np.asarray(moduli, dtype=np.int64)[:, None]
        int64_min, int64_max = -(1 << 63), (1 << 63) - 1
        if all(int64_min <= c <= int64_max for c in coefficients):
            residues = np.asarray(coefficients, dtype=np.int64)[None, :] % column
        else:
            wide = np.asarray(coefficients, dtype=object)[None, :] % column
            residues = np.asarray(wide, dtype=np.int64)
        return cls(ring_degree, moduli, residues)

    @classmethod
    def random_uniform(cls, ring_degree: int, moduli: Sequence[int],
                       rng: np.random.Generator,
                       domain: str = PolyDomain.COEFFICIENT) -> "RnsPolynomial":
        """A polynomial with independently uniform residues (used for the mask ``a``).

        Drawn limb-by-limb so the stream of variates for a given seed is
        stable across library versions (tests pin seeds).
        """
        moduli = tuple(int(q) for q in moduli)
        rows = [rng.integers(0, q, ring_degree, dtype=np.int64) for q in moduli]
        return cls(ring_degree, moduli, np.stack(rows), domain)

    @classmethod
    def random_ternary(cls, ring_degree: int, moduli: Sequence[int],
                       rng: np.random.Generator, *,
                       hamming_weight: Optional[int] = None) -> "RnsPolynomial":
        """A ternary polynomial (secret keys); optionally sparse."""
        if hamming_weight is None:
            signed = rng.integers(-1, 2, ring_degree)
        else:
            hamming_weight = min(hamming_weight, ring_degree)
            signed = np.zeros(ring_degree, dtype=np.int64)
            positions = rng.choice(ring_degree, size=hamming_weight, replace=False)
            signed[positions] = rng.choice([-1, 1], size=hamming_weight)
        return cls.from_integers(signed, moduli, ring_degree)

    @classmethod
    def random_gaussian(cls, ring_degree: int, moduli: Sequence[int],
                        rng: np.random.Generator, *, stddev: float = 3.2) -> "RnsPolynomial":
        """A small Gaussian error polynomial (LWE noise)."""
        signed = np.round(rng.normal(0.0, stddev, ring_degree)).astype(np.int64)
        return cls.from_integers(signed, moduli, ring_degree)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def limb_count(self) -> int:
        """Number of RNS limbs (primes)."""
        return len(self.moduli)

    @property
    def level(self) -> int:
        """Convenience alias: limbs minus one."""
        return self.limb_count - 1

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.ring_degree, self.moduli,
                             self._buffer.copy(), self.domain)

    def limb(self, index: int) -> np.ndarray:
        """Residues of limb ``index``."""
        return self.residues[index]

    def to_integers(self, *, centered: bool = True) -> list:
        """CRT-recombine into big-integer coefficients (coefficient domain only)."""
        self._require_domain(PolyDomain.COEFFICIENT)
        crt = CrtContext(self.moduli)
        return crt.compose_array(self.residues, centered=centered)

    # ------------------------------------------------------------------
    # Arithmetic (domain- and basis-checked, single 2-D launches)
    # ------------------------------------------------------------------
    def add(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Element-wise modular addition (the Ele-Add kernel)."""
        self._check_compatible(other)
        residues = mat_mod_add(self._buffer, other._buffer, self._moduli_column)
        return RnsPolynomial(self.ring_degree, self.moduli, residues, self.domain)

    def subtract(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Element-wise modular subtraction (the Ele-Sub kernel)."""
        self._check_compatible(other)
        residues = mat_mod_sub(self._buffer, other._buffer, self._moduli_column)
        return RnsPolynomial(self.ring_degree, self.moduli, residues, self.domain)

    def negate(self) -> "RnsPolynomial":
        residues = mat_mod_neg(self._buffer, self._moduli_column)
        return RnsPolynomial(self.ring_degree, self.moduli, residues, self.domain)

    def hadamard(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Element-wise modular product (the Hada-Mult kernel).

        Meaningful as polynomial multiplication only in the evaluation
        domain; callers that need ring multiplication of coefficient-domain
        polynomials should go through the kernel layer or an NTT engine.
        """
        self._check_compatible(other)
        residues = mat_mod_mul(self._buffer, other._buffer, self._moduli_column)
        return RnsPolynomial(self.ring_degree, self.moduli, residues, self.domain)

    def scalar_multiply(self, scalar: int) -> "RnsPolynomial":
        """Multiply every residue by an integer scalar."""
        residues = mat_mod_scalar_mul(self._buffer, int(scalar), self._moduli_column)
        return RnsPolynomial(self.ring_degree, self.moduli, residues, self.domain)

    def scalar_multiply_per_limb(self, scalars: Sequence[int]) -> "RnsPolynomial":
        """Multiply limb ``i`` by ``scalars[i]`` (used by key generation).

        Multiplying by a constant polynomial is the same in either domain,
        so no domain restriction applies.
        """
        if len(scalars) != self.limb_count:
            raise ValueError("need one scalar per limb")
        residues = mat_mod_scalar_mul(self._buffer, [int(s) for s in scalars],
                                      self._moduli_column)
        return RnsPolynomial(self.ring_degree, self.moduli, residues, self.domain)

    # ------------------------------------------------------------------
    # Domain conversion (one limb-batched engine call per polynomial)
    # ------------------------------------------------------------------
    def to_evaluation(self, planner: NttPlanner) -> "RnsPolynomial":
        """Forward-NTT all limbs in one batched engine call."""
        if self.domain == PolyDomain.EVALUATION:
            return self.copy()
        residues = planner.forward_limbs(self.ring_degree, self.moduli,
                                         self._buffer)
        return RnsPolynomial(self.ring_degree, self.moduli, residues,
                             PolyDomain.EVALUATION)

    def to_coefficient(self, planner: NttPlanner) -> "RnsPolynomial":
        """Inverse-NTT all limbs in one batched engine call."""
        if self.domain == PolyDomain.COEFFICIENT:
            return self.copy()
        residues = planner.inverse_limbs(self.ring_degree, self.moduli,
                                         self._buffer)
        return RnsPolynomial(self.ring_degree, self.moduli, residues,
                             PolyDomain.COEFFICIENT)

    # ------------------------------------------------------------------
    # Basis manipulation
    # ------------------------------------------------------------------
    def restrict_to(self, moduli: Sequence[int]) -> "RnsPolynomial":
        """Keep only the limbs whose primes appear in ``moduli`` (in that order)."""
        moduli = tuple(int(q) for q in moduli)
        index_of = {q: i for i, q in enumerate(self.moduli)}
        try:
            indices = [index_of[q] for q in moduli]
        except KeyError as missing:
            raise ValueError("prime %s is not a limb of this polynomial" % missing) from None
        # Fancy row gather: a fresh matrix on the resident image.
        return RnsPolynomial(self.ring_degree, moduli,
                             self._buffer[np.asarray(indices, dtype=np.int64)],
                             self.domain)

    def drop_last_limb(self) -> "RnsPolynomial":
        """Remove the last limb (used by RESCALE)."""
        if self.limb_count <= 1:
            raise ValueError("cannot drop the only limb")
        return RnsPolynomial(self.ring_degree, self.moduli[:-1],
                             self._buffer[:-1].copy(), self.domain)

    # ------------------------------------------------------------------
    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.ring_degree != other.ring_degree:
            raise ValueError("ring degrees differ")
        if self.moduli != other.moduli:
            raise ValueError("RNS bases differ; align levels first")
        if self.domain != other.domain:
            raise ValueError(
                "polynomial domains differ (%s vs %s)" % (self.domain, other.domain)
            )

    def _require_domain(self, domain: str) -> None:
        if self.domain != domain:
            raise ValueError("operation requires the %s domain" % domain)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPolynomial):
            return NotImplemented
        return (self.ring_degree == other.ring_degree
                and self.moduli == other.moduli
                and self.domain == other.domain
                and np.array_equal(self.residues, other.residues))
