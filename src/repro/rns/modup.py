"""ModUp: raise a decomposed polynomial into the extended basis ``C_l ∪ P``.

Part of the generalized key-switching of the paper (Algorithm 1).  Each
decomposition slice ``[d]_{Q_j}`` lives in the small group basis ``Q_j``;
ModUp extends its residues to the full evaluation basis (all active
ciphertext primes plus the special primes) via fast basis conversion for
the missing primes and plain copying for the primes already present.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .conv import BasisConverter
from .poly import PolyDomain, RnsPolynomial

__all__ = ["ModUp"]


class ModUp:
    """Extend a group-basis polynomial to a target basis (Conv + copy)."""

    def __init__(self, group_moduli: Sequence[int], target_moduli: Sequence[int]) -> None:
        self.group_moduli = tuple(int(q) for q in group_moduli)
        self.target_moduli = tuple(int(q) for q in target_moduli)
        missing = [q for q in self.target_moduli if q not in self.group_moduli]
        self._missing = tuple(missing)
        self._converter = (
            BasisConverter(self.group_moduli, self._missing) if missing else None
        )
        # Precomputed gather maps: target row j comes either from group row
        # _from_group[j] (copy) or from converted row _from_missing[j].
        group_index = {q: i for i, q in enumerate(self.group_moduli)}
        missing_index = {q: i for i, q in enumerate(self._missing)}
        self._copy_mask = np.asarray(
            [q in group_index for q in self.target_moduli], dtype=bool
        )
        self._from_group = np.asarray(
            [group_index.get(q, 0) for q in self.target_moduli], dtype=np.int64
        )
        self._from_missing = np.asarray(
            [missing_index.get(q, 0) for q in self.target_moduli], dtype=np.int64
        )

    def apply(self, polynomial: RnsPolynomial) -> RnsPolynomial:
        """Return ``polynomial`` represented in the target basis.

        A single Conv launch produces the missing limbs; the target matrix
        is then assembled with two vectorised gathers (copy rows from the
        group, converted rows from the Conv output).
        """
        if polynomial.domain != PolyDomain.COEFFICIENT:
            raise ValueError("ModUp requires the coefficient domain")
        if tuple(polynomial.moduli) != self.group_moduli:
            raise ValueError("polynomial basis does not match this ModUp instance")
        ring_degree = polynomial.ring_degree
        out = np.empty((len(self.target_moduli), ring_degree), dtype=np.int64)
        out[self._copy_mask] = polynomial.residues[self._from_group[self._copy_mask]]
        if self._converter is not None:
            converted = self._converter.convert_residues(polynomial.residues)
            out[~self._copy_mask] = converted[self._from_missing[~self._copy_mask]]
        return RnsPolynomial(ring_degree, self.target_moduli, out,
                             PolyDomain.COEFFICIENT)

    def apply_batch(self, stacks: np.ndarray) -> np.ndarray:
        """Raise a ``(B, group, N)`` residue stack to ``(B, target, N)``.

        The copy rows are one batched gather and the missing limbs come
        from a single batched Conv
        (:meth:`~repro.rns.conv.BasisConverter.convert_residues_batch`), so
        the whole stream batch mods up without a per-stream loop.  Stream
        ``b`` of the result is bit-identical to :meth:`apply` on slice
        ``b``.
        """
        stacks = np.asarray(stacks, dtype=np.int64)
        if stacks.ndim != 3 or stacks.shape[1] != len(self.group_moduli):
            raise ValueError(
                "expected a (B, %d, N) residue stack, got shape %s"
                % (len(self.group_moduli), stacks.shape)
            )
        batch, _, ring_degree = stacks.shape
        out = np.empty((batch, len(self.target_moduli), ring_degree),
                       dtype=np.int64)
        out[:, self._copy_mask] = stacks[:, self._from_group[self._copy_mask]]
        if self._converter is not None and batch:
            converted = self._converter.convert_residues_batch(stacks)
            out[:, ~self._copy_mask] = (
                converted[:, self._from_missing[~self._copy_mask]])
        return out
