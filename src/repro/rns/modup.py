"""ModUp: raise a decomposed polynomial into the extended basis ``C_l ∪ P``.

Part of the generalized key-switching of the paper (Algorithm 1).  Each
decomposition slice ``[d]_{Q_j}`` lives in the small group basis ``Q_j``;
ModUp extends its residues to the full evaluation basis (all active
ciphertext primes plus the special primes) via fast basis conversion for
the missing primes and plain copying for the primes already present.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .conv import BasisConverter
from .poly import PolyDomain, RnsPolynomial

__all__ = ["ModUp"]


class ModUp:
    """Extend a group-basis polynomial to a target basis (Conv + copy)."""

    def __init__(self, group_moduli: Sequence[int], target_moduli: Sequence[int]) -> None:
        self.group_moduli = tuple(int(q) for q in group_moduli)
        self.target_moduli = tuple(int(q) for q in target_moduli)
        missing = [q for q in self.target_moduli if q not in self.group_moduli]
        self._missing = tuple(missing)
        self._converter = (
            BasisConverter(self.group_moduli, self._missing) if missing else None
        )

    def apply(self, polynomial: RnsPolynomial) -> RnsPolynomial:
        """Return ``polynomial`` represented in the target basis."""
        if polynomial.domain != PolyDomain.COEFFICIENT:
            raise ValueError("ModUp requires the coefficient domain")
        if tuple(polynomial.moduli) != self.group_moduli:
            raise ValueError("polynomial basis does not match this ModUp instance")
        converted = (
            self._converter.convert_residues(polynomial.residues)
            if self._converter is not None
            else np.zeros((0, polynomial.ring_degree), dtype=np.int64)
        )
        missing_index = {q: i for i, q in enumerate(self._missing)}
        group_index = {q: i for i, q in enumerate(self.group_moduli)}
        rows = []
        for q in self.target_moduli:
            if q in group_index:
                rows.append(polynomial.residues[group_index[q]])
            else:
                rows.append(converted[missing_index[q]])
        return RnsPolynomial(polynomial.ring_degree, self.target_moduli,
                             np.stack(rows), PolyDomain.COEFFICIENT)
