"""ModUp: raise a decomposed polynomial into the extended basis ``C_l ∪ P``.

Part of the generalized key-switching of the paper (Algorithm 1).  Each
decomposition slice ``[d]_{Q_j}`` lives in the small group basis ``Q_j``;
ModUp extends its residues to the full evaluation basis (all active
ciphertext primes plus the special primes) via fast basis conversion for
the missing primes and plain copying for the primes already present.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backend.residency import concatenate_arrays, is_buffer
from .conv import BasisConverter
from .poly import PolyDomain, RnsPolynomial

__all__ = ["ModUp"]


class ModUp:
    """Extend a group-basis polynomial to a target basis (Conv + copy)."""

    def __init__(self, group_moduli: Sequence[int], target_moduli: Sequence[int]) -> None:
        self.group_moduli = tuple(int(q) for q in group_moduli)
        self.target_moduli = tuple(int(q) for q in target_moduli)
        missing = [q for q in self.target_moduli if q not in self.group_moduli]
        self._missing = tuple(missing)
        self._converter = (
            BasisConverter(self.group_moduli, self._missing) if missing else None
        )
        # Precomputed gather map: the target matrix is one row gather out
        # of the group rows concatenated with the Conv output rows (target
        # row j comes from group row ``_gather[j]`` when present there, and
        # from converted row ``_gather[j] - len(group)`` otherwise).  A
        # single gather keeps the assembly a resident-image operation — no
        # host-side scatter is needed for device-resident operands.
        group_index = {q: i for i, q in enumerate(self.group_moduli)}
        missing_index = {q: i for i, q in enumerate(self._missing)}
        self._gather = np.asarray(
            [group_index[q] if q in group_index
             else len(self.group_moduli) + missing_index[q]
             for q in self.target_moduli],
            dtype=np.int64,
        )

    def apply(self, polynomial: RnsPolynomial) -> RnsPolynomial:
        """Return ``polynomial`` represented in the target basis.

        A single Conv launch produces the missing limbs; the target matrix
        is then one vectorised row gather over ``[group; converted]`` —
        residency handles thread through Conv, concatenation and gather.
        """
        if polynomial.domain != PolyDomain.COEFFICIENT:
            raise ValueError("ModUp requires the coefficient domain")
        if tuple(polynomial.moduli) != self.group_moduli:
            raise ValueError("polynomial basis does not match this ModUp instance")
        combined = polynomial.buffer
        if self._converter is not None:
            converted = self._converter.convert_residues(combined)
            combined = concatenate_arrays([combined, converted])
        out = combined[self._gather]
        return RnsPolynomial(polynomial.ring_degree, self.target_moduli, out,
                             PolyDomain.COEFFICIENT)

    def apply_batch(self, stacks: np.ndarray) -> np.ndarray:
        """Raise a ``(B, group, N)`` residue stack to ``(B, target, N)``.

        The copy rows are one batched gather and the missing limbs come
        from a single batched Conv
        (:meth:`~repro.rns.conv.BasisConverter.convert_residues_batch`), so
        the whole stream batch mods up without a per-stream loop.  Stream
        ``b`` of the result is bit-identical to :meth:`apply` on slice
        ``b``.
        """
        if not is_buffer(stacks):
            stacks = np.asarray(stacks, dtype=np.int64)
        if len(stacks.shape) != 3 or stacks.shape[1] != len(self.group_moduli):
            raise ValueError(
                "expected a (B, %d, N) residue stack, got shape %s"
                % (len(self.group_moduli), stacks.shape)
            )
        batch = stacks.shape[0]
        if batch == 0:
            return np.zeros((0, len(self.target_moduli), stacks.shape[2]),
                            dtype=np.int64)
        combined = stacks
        if self._converter is not None:
            converted = self._converter.convert_residues_batch(stacks)
            combined = concatenate_arrays([stacks, converted], axis=1)
        return combined[:, self._gather]
