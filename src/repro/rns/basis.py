"""RNS bases: the ciphertext modulus chain and the special (key-switching) primes.

Full-RNS CKKS (paper Section II-B) represents the wide ciphertext modulus
``Q = prod q_l`` as a chain of word-sized NTT-friendly primes, plus ``K``
special primes ``p_k`` whose product ``P`` is used by the generalized
key-switching technique [Han & Ki].  :class:`RnsBasis` owns both lists and
the dnum decomposition of the chain into groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..numtheory.crt import CrtContext
from ..numtheory.primes import generate_ntt_primes

__all__ = ["RnsBasis", "build_default_basis"]


@dataclass
class RnsBasis:
    """The prime moduli underpinning one CKKS instance.

    Attributes
    ----------
    ring_degree:
        Polynomial degree ``N``.
    ciphertext_primes:
        The chain ``q_0 ... q_L`` (level ``l`` uses the first ``l+1``).
    special_primes:
        The ``K`` special primes whose product is ``P``.
    """

    ring_degree: int
    ciphertext_primes: Sequence[int]
    special_primes: Sequence[int] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.ciphertext_primes = tuple(int(q) for q in self.ciphertext_primes)
        self.special_primes = tuple(int(p) for p in self.special_primes)
        if not self.ciphertext_primes:
            raise ValueError("at least one ciphertext prime is required")
        all_primes = self.ciphertext_primes + self.special_primes
        if len(set(all_primes)) != len(all_primes):
            raise ValueError("RNS primes must be distinct")
        for prime in all_primes:
            if (prime - 1) % (2 * self.ring_degree) != 0:
                raise ValueError(
                    "prime %d is not NTT-friendly for N=%d" % (prime, self.ring_degree)
                )

    # ------------------------------------------------------------------
    @property
    def max_level(self) -> int:
        """The maximum multiplicative level ``L`` (levels are 0..L)."""
        return len(self.ciphertext_primes) - 1

    @property
    def special_count(self) -> int:
        """``K``, the number of special primes."""
        return len(self.special_primes)

    @property
    def special_product(self) -> int:
        """``P``, the product of the special primes."""
        product = 1
        for prime in self.special_primes:
            product *= prime
        return product

    def primes_at_level(self, level: int) -> Tuple[int, ...]:
        """Ciphertext primes active at ``level`` (``q_0 .. q_level``)."""
        self._check_level(level)
        return self.ciphertext_primes[: level + 1]

    def modulus_at_level(self, level: int) -> int:
        """``Q_level = prod_{i<=level} q_i``."""
        product = 1
        for prime in self.primes_at_level(level):
            product *= prime
        return product

    def extended_primes_at_level(self, level: int) -> Tuple[int, ...]:
        """Primes of the extended basis ``C_level ∪ P`` used in key switching."""
        return self.primes_at_level(level) + self.special_primes

    def crt_at_level(self, level: int) -> CrtContext:
        """CRT context over the level-``level`` ciphertext primes."""
        return CrtContext(self.primes_at_level(level))

    def log_total_modulus(self, level: Optional[int] = None) -> float:
        """``log2(P * Q_level)`` — the paper's ``logPQ`` column of Table V."""
        import math

        level = self.max_level if level is None else level
        total = 0.0
        for prime in self.extended_primes_at_level(level):
            total += math.log2(prime)
        return total

    # ------------------------------------------------------------------
    def decomposition_groups(self, level: int, dnum: int) -> List[Tuple[int, ...]]:
        """Split the level-``level`` chain into ``dnum`` groups of ``alpha`` primes.

        Implements the decomposition of the generalized key-switching
        technique: ``Q_j = prod_{i=j*alpha}^{(j+1)*alpha - 1} q_i``.  Groups
        beyond the active level are dropped, so the returned list may be
        shorter than ``dnum`` at low levels.
        """
        if dnum <= 0:
            raise ValueError("dnum must be positive")
        primes = self.primes_at_level(level)
        alpha = -(-len(self.ciphertext_primes) // dnum)
        groups: List[Tuple[int, ...]] = []
        for start in range(0, len(primes), alpha):
            groups.append(primes[start: start + alpha])
        return groups

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.max_level:
            raise ValueError(
                "level %d out of range [0, %d]" % (level, self.max_level)
            )


def build_default_basis(ring_degree: int, level_count: int, *,
                        prime_bits: int = 28, special_count: int = 1,
                        special_bits: int = 30) -> RnsBasis:
    """Generate an :class:`RnsBasis` with NTT-friendly primes.

    ``level_count`` is the number of ciphertext primes (``L + 1``).  Special
    primes are made slightly larger than the chain primes, as required for
    the key-switching noise to stay small.
    """
    ciphertext_primes = generate_ntt_primes(level_count, prime_bits, ring_degree)
    special_primes: List[int] = []
    if special_count:
        pool = generate_ntt_primes(special_count + level_count, special_bits, ring_degree)
        for prime in pool:
            if prime not in ciphertext_primes:
                special_primes.append(prime)
            if len(special_primes) == special_count:
                break
    return RnsBasis(ring_degree, ciphertext_primes, special_primes)
