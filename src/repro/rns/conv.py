"""Fast (approximate) RNS basis conversion — the paper's ``Conv`` kernel.

Given the residues of ``x`` with respect to a basis ``{q_i}``, the fast
basis conversion computes residues with respect to a different basis
``{p_j}`` as

    Conv(x)_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i)  mod p_j

which equals ``x + e*Q`` for a small integer ``e`` (|e| < #primes/2 when
``x`` is centred) — the standard approximate conversion used by ModUp.
It is the building block of ModUp, ModDown and the RNS decomposition
(``Dcomp``) in the paper's hierarchical reconstruction (Table II).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backend.blas_backend import FloatOperandCache
from ..backend.residency import DeviceBuffer, contiguous, is_buffer
from ..numtheory.modular import mat_mod_mul, mod_inverse, moduli_column
from ..ntt.gemm_utils import modular_matmul_rows
from .poly import PolyDomain, RnsPolynomial

__all__ = ["BasisConverter", "convert_basis"]


class BasisConverter:
    """Precomputed constants for converting from one prime basis to another."""

    def __init__(self, source_moduli: Sequence[int], target_moduli: Sequence[int]) -> None:
        self.source_moduli = tuple(int(q) for q in source_moduli)
        self.target_moduli = tuple(int(p) for p in target_moduli)
        if not self.source_moduli:
            raise ValueError("source basis must not be empty")
        overlap = set(self.source_moduli) & set(self.target_moduli)
        if overlap:
            raise ValueError("source and target bases overlap on %s" % sorted(overlap))
        source_product = 1
        for q in self.source_moduli:
            source_product *= q
        self.source_product = source_product
        # q_hat_i = Q / q_i ; q_hat_inv_i = (Q/q_i)^-1 mod q_i
        self.q_hat = [source_product // q for q in self.source_moduli]
        self.q_hat_inv = [mod_inverse(h % q, q) for h, q in zip(self.q_hat, self.source_moduli)]
        # q_hat_i mod p_j, precomputed per target prime.
        self.q_hat_mod_target = np.asarray(
            [[h % p for h in self.q_hat] for p in self.target_moduli], dtype=np.int64
        )
        # Vectorised-operand forms of the precomputed constants.
        self._source_column = moduli_column(self.source_moduli)
        self._target_column = moduli_column(self.target_moduli)
        self._q_hat_inv_column = np.asarray(self.q_hat_inv, dtype=np.int64)[:, None]
        # Conservative row-GEMM operand bound for resident inputs: the lhs
        # rows hold ``q_hat mod p_j`` (< max target prime) and the rhs holds
        # source residues (< max source prime).  A looser bound only shrinks
        # the exact accumulation chunks — values are unchanged — and it
        # spares the funnel a host materialisation just to scan a device
        # operand.
        self._resident_bound = ((max(self.target_moduli) - 1)
                                * (max(self.source_moduli) - 1))
        # Residency handle for the GEMM constants with the float64 operand
        # image pre-attached: float-resident inputs then hit the blas
        # backend's fully-float row GEMM (both caches present) instead of
        # rebuilding the lhs image per launch.
        self._q_hat_buffer = DeviceBuffer.wrap(
            self.q_hat_mod_target).attach_float_cache(
                FloatOperandCache(self.q_hat_mod_target))

    def convert_residues(self, residues: np.ndarray) -> np.ndarray:
        """Convert a ``(len(source), N)`` residue matrix to the target basis.

        The conversion is two fused launches: a row-wise scaled reduction
        ``y_i = [x_i * q_hat_inv_i]_{q_i}`` and a row-moduli GEMM
        ``out_j = (q_hat_mod_target[j] @ y) mod p_j`` — the shape the Conv
        kernel takes on the GPU.  Residency handles thread straight
        through both launches (handle in → handle out).
        """
        resident = is_buffer(residues)
        if not resident:
            residues = np.asarray(residues, dtype=np.int64)
        if residues.shape[0] != len(self.source_moduli):
            raise ValueError("residue matrix does not match the source basis")
        # y_i = [x_i * q_hat_inv_i]_{q_i}; the funnel keeps the product
        # exact even for moduli at or above 2**31.
        y = mat_mod_mul(residues, self._q_hat_inv_column, self._source_column)
        return modular_matmul_rows(
            self._q_hat_buffer if resident else self.q_hat_mod_target,
            y, self._target_column[:, 0],
            operand_bound=self._resident_bound if resident else None)

    def convert_residues_batch(self, stacks: np.ndarray) -> np.ndarray:
        """Convert a ``(B, len(source), N)`` residue stack in fused launches.

        The whole batch shares the precomputed constants: the scaled
        reduction runs once over the fused ``(B*S, N)`` matrix (per-row
        moduli tiled per stream) and the row-moduli GEMM folds the batch
        into its free dimension — ``(T, S) @ (S, B*N)`` — so the Conv of
        *every* stream is a single backend launch.  Each output stream is
        bit-identical to :meth:`convert_residues` on the matching slice
        (both paths reduce fully, and the funnel keeps >= 2**31 moduli
        exact).
        """
        resident = is_buffer(stacks)
        if not resident:
            stacks = np.asarray(stacks, dtype=np.int64)
        if len(stacks.shape) != 3 or stacks.shape[1] != len(self.source_moduli):
            raise ValueError(
                "expected a (B, %d, N) residue stack, got shape %s"
                % (len(self.source_moduli), stacks.shape)
            )
        batch, source_count, n = stacks.shape
        if batch == 0:
            return np.zeros((0, len(self.target_moduli), n), dtype=np.int64)
        if batch == 1:
            return self.convert_residues(stacks[0])[None]
        tiled_moduli = np.tile(self._source_column, (batch, 1))
        tiled_inverses = np.tile(self._q_hat_inv_column, (batch, 1))
        y = mat_mod_mul(stacks.reshape(batch * source_count, n),
                        tiled_inverses, tiled_moduli)
        # (T, S) @ (S, B*N): stream b occupies columns [b*N, (b+1)*N).
        y_columns = contiguous(
            y.reshape(batch, source_count, n).transpose(1, 0, 2)
        ).reshape(source_count, batch * n)
        converted = modular_matmul_rows(
            self._q_hat_buffer if resident else self.q_hat_mod_target,
            y_columns, self._target_column[:, 0],
            operand_bound=self._resident_bound if resident else None)
        return contiguous(
            converted.reshape(len(self.target_moduli), batch, n).transpose(1, 0, 2)
        )

    def convert(self, polynomial: RnsPolynomial) -> RnsPolynomial:
        """Convert an :class:`RnsPolynomial` to the target basis.

        The polynomial must be in the coefficient domain (basis conversion
        operates on integer residues, not NTT values).
        """
        if polynomial.domain != PolyDomain.COEFFICIENT:
            raise ValueError("basis conversion requires the coefficient domain")
        if tuple(polynomial.moduli) != self.source_moduli:
            raise ValueError("polynomial basis does not match the converter's source basis")
        converted = self.convert_residues(polynomial.buffer)
        return RnsPolynomial(polynomial.ring_degree, self.target_moduli, converted,
                             PolyDomain.COEFFICIENT)


def convert_basis(polynomial: RnsPolynomial, target_moduli: Sequence[int]) -> RnsPolynomial:
    """One-shot convenience wrapper around :class:`BasisConverter`."""
    converter = BasisConverter(polynomial.moduli, target_moduli)
    return converter.convert(polynomial)
