"""Float64 Barrett reduction: modular arithmetic on the FMA units.

The paper's tensor-core GEMMs avoid the GPU's (absent) integer modulo by
computing on floating-point units and reducing with precomputed per-modulus
constants.  This module is that reduction in float64: a *lazy Barrett* pass

    k = floor(x * inv_q);   r = x - k * q

costs one FMA-shaped multiply/subtract pair plus a ``floor`` and lands in
the half-open window ``(-q, 2q)``; a second pass canonicalises to
``[0, q)``.  Both passes are bit-exact whenever every intermediate integer
(``x``, ``k * q``) is representable in the 53-bit mantissa — the same
guard the float64 GEMM fast paths already use — so the float-resident
kernel chains built on top of this module agree bit-for-bit with int64
``%``.

Two precomputation details make the canonical pass *provably* exact:

* ``inv_q`` is the **round-up** reciprocal :func:`barrett_inverse`, the
  smallest float64 ``>= 1/q``.  With the round-nearest ``1.0 / q`` an input
  that is an exact multiple of ``q`` can see ``fl(x * inv_q)`` land just
  below the true integer quotient and come back as ``q`` instead of ``0``
  (observed on ~15% of NTT primes); rounding the reciprocal up keeps
  ``floor(x * inv_q)`` at the true quotient for every multiple while still
  overshooting by at most one elsewhere.
* the lazy window ``(-q, 2q)`` maps to quotients ``{-1, 0, 1}`` under the
  round-up reciprocal for every ``q < 2**51``, so the second pass needs no
  data-dependent branch (no ``where=`` masks — those cost a full extra
  memory pass on large operands).

:class:`BarrettChain` packages the constants for a whole RNS prime chain
(one row per limb, the layout every limb-batched kernel uses) and is cached
per moduli tuple via :func:`get_barrett_chain`, so funnels and engines
never recompute reciprocals per call.  The scalar integer
:class:`~repro.numtheory.modular.BarrettReducer` /
:class:`~repro.numtheory.modular.MontgomeryReducer` remain the reference
implementations the tests pin this module against.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "FLOAT_EXACT_LIMIT",
    "barrett_inverse",
    "BarrettChain",
    "get_barrett_chain",
]

#: Largest integer magnitude float64 represents exactly (2**53); every
#: intermediate of a float-resident kernel chain must stay below it.
FLOAT_EXACT_LIMIT = 1 << 53


def barrett_inverse(modulus: int) -> float:
    """The smallest float64 that is ``>= 1/modulus`` (round-up reciprocal).

    ``1.0 / q`` rounds to nearest and can fall *below* the real ``1/q``,
    which makes ``floor(k*q * inv)`` return ``k - 1`` for exact multiples
    of ``q`` — the one input class where a lazy Barrett pass would then
    leave a non-canonical ``q`` behind.  The exactness check is done in
    rational arithmetic, so the adjustment is never applied spuriously.
    """
    if modulus <= 1:
        raise ValueError("modulus must be > 1, got %d" % modulus)
    inverse = 1.0 / float(modulus)
    if Fraction(inverse) * modulus < 1:
        inverse = float(np.nextafter(inverse, np.inf))
    return inverse


class BarrettChain:
    """Precomputed float64 Barrett constants for one RNS prime chain.

    Holds, per modulus: the modulus itself as float64 (``qf``) and its
    round-up reciprocal (``inv``).  The reduce kernels broadcast them down
    a configurable limb axis, matching the ``(limbs, ...)`` and
    ``(batch, limbs, ...)`` layouts of the batched funnels.

    All kernels take an optional ``out`` buffer **distinct from**
    ``values`` so hot pipelines can ping-pong between two live arrays
    instead of allocating four temporaries per reduction pass.
    """

    def __init__(self, moduli) -> None:
        self.moduli: Tuple[int, ...] = tuple(int(q) for q in moduli)
        if not self.moduli:
            raise ValueError("a Barrett chain needs at least one modulus")
        self.moduli_array = np.asarray(self.moduli, dtype=np.int64)
        self.qmax = int(self.moduli_array.max())
        self.qf = self.moduli_array.astype(np.float64)
        self.inv = np.asarray([barrett_inverse(q) for q in self.moduli])
        self._columns: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._split_shift: Optional[int] = None

    @property
    def limb_count(self) -> int:
        return len(self.moduli)

    # ------------------------------------------------------------------
    def columns(self, ndim: int, axis: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """``(q, inv)`` reshaped to broadcast with the limb axis at ``axis``.

        Cached per ``(ndim, axis)``: reshaping is cheap but the hot reduce
        kernels call this per pass.
        """
        key = (ndim, axis)
        cols = self._columns.get(key)
        if cols is None:
            shape = [1] * ndim
            shape[axis] = self.limb_count
            cols = (self.qf.reshape(shape), self.inv.reshape(shape))
            self._columns[key] = cols
        return cols

    def fits(self, operand_bound: int) -> bool:
        """Whether a lazy reduce of magnitudes ``<= operand_bound`` is exact.

        Exactness needs ``x`` and the quotient product ``k * q`` (at most
        ``|x| + q``) representable in the mantissa, so the guard is
        ``operand_bound + qmax < 2**53``.  Callers that cannot satisfy it
        must stay on (or fall back to) the int64 path.
        """
        return int(operand_bound) + self.qmax < FLOAT_EXACT_LIMIT

    # ------------------------------------------------------------------
    def lazy_reduce(self, values: np.ndarray, *, axis: int = 0,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
        """One Barrett pass: integer-valued result in ``(-q, 2q)``.

        ``values`` must hold exact integers with ``|x| + q < 2**53`` (see
        :meth:`fits`).  ``out``, when given, must not alias ``values``;
        ``values`` itself is left untouched.
        """
        q_col, inv_col = self.columns(values.ndim, axis)
        if out is None:
            out = np.empty_like(values)
        np.multiply(values, inv_col, out=out)
        np.floor(out, out=out)
        out *= q_col
        np.subtract(values, out, out=out)
        return out

    # ------------------------------------------------------------------
    # Hi/lo split products: exact element-wise multiply past ~26 bits.
    #
    # A single-pass product of canonical residues needs (q-1)**2 + q in
    # the mantissa, which caps the chain at ~26-bit primes.  Splitting one
    # operand as ``a = a_hi * 2**s + a_lo`` (both parts exact in float64)
    # rewrites the product as
    #
    #     (a * b) mod q = (a_hi * [(2**s * b) mod q] + a_lo * b) mod q
    #
    # where every intermediate is bounded by roughly ``q**1.5`` — inside
    # 2**53 for every modulus the int64 funnels dispatch to backends
    # (they keep >= 2**31 on object paths) and well past it.  This is the
    # float-resident analogue of the torch backend's hi/lo split GEMM.
    # ------------------------------------------------------------------
    @property
    def split_shift(self) -> int:
        """The hi/lo split point ``s`` (roughly half the residue width)."""
        if self._split_shift is None:
            self._split_shift = max(1, ((self.qmax - 1).bit_length() + 1) // 2)
        return self._split_shift

    def fits_product(self) -> bool:
        """Whether ``(a * b) mod q`` on canonical residues is float-exact.

        True when the single-pass product fits the mantissa, or when the
        hi/lo split restores exactness (every intermediate of the split
        identity above passes :meth:`fits` — which holds for every
        production prime width; the guard only rejects around 36-bit
        moduli).  Moduli at or beyond 2**31 never reach a float kernel
        anyway: the dispatching funnels keep them on their exact
        object-dtype paths because a single int64 residue product would
        overflow there.
        """
        m = self.qmax - 1
        if self.fits(m * m):
            return True
        shift = self.split_shift
        hi_max = m >> shift
        lo_max = (1 << shift) - 1
        return self.fits(m << shift) and self.fits((hi_max + lo_max) * m)

    def product_reduce(self, a: np.ndarray, b: np.ndarray, *,
                       axis: int = 0) -> np.ndarray:
        """Canonical ``(a * b) mod q`` for canonical float residue images.

        Single float64 pass when ``(qmax-1)**2`` fits the mantissa; the
        hi/lo split otherwise.  Callers own the :meth:`fits_product`
        guard — operands must be canonical residues of this chain.
        """
        m = self.qmax - 1
        if self.fits(m * m):
            return self.canonical_reduce(a * b, axis=axis)
        shift = self.split_shift
        pow_f = float(1 << shift)
        # (2**s * b) mod q: bounded by (q-1) << s, exact under the guard.
        b_weighted = self.canonical_reduce(b * pow_f, axis=axis)
        # Exact float64 split of ``a``: scaling by a power of two only
        # touches the exponent, so floor/subtract reconstruct hi/lo bit
        # for bit.
        a_hi = np.floor(a * (1.0 / pow_f))
        a_lo = a - a_hi * pow_f
        return self.canonical_reduce(a_hi * b_weighted + a_lo * b, axis=axis)

    def canonical_reduce(self, values: np.ndarray, *, axis: int = 0,
                         out: Optional[np.ndarray] = None,
                         scratch: Optional[np.ndarray] = None) -> np.ndarray:
        """Two lazy passes: canonical result in ``[0, q)``.

        The first pass lands in ``(-q, 2q)`` where the second pass's
        quotient is confined to ``{-1, 0, 1}``; with the round-up
        reciprocal that second pass is exactly canonical (no masked
        correction passes needed).  ``scratch`` (first-pass buffer) must
        not alias ``values``; ``out`` must not alias ``scratch`` but *may*
        alias ``values``.
        """
        lazy = self.lazy_reduce(values, axis=axis, out=scratch)
        return self.lazy_reduce(lazy, axis=axis, out=out)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BarrettChain(limbs=%d, qmax=%d)" % (self.limb_count, self.qmax)


@lru_cache(maxsize=256)
def _cached_chain(moduli: Tuple[int, ...]) -> BarrettChain:
    return BarrettChain(moduli)


def get_barrett_chain(moduli) -> BarrettChain:
    """Process-wide shared :class:`BarrettChain` for a moduli sequence.

    Like the twiddle caches, Barrett constants depend only on the prime
    chain, so every funnel call and every engine launch share one set per
    chain instead of recomputing reciprocals per call.
    """
    return _cached_chain(tuple(int(q) for q in np.asarray(moduli).reshape(-1)))
