"""Modular arithmetic primitives used throughout the library.

All NTT and CKKS arithmetic in this reproduction works over prime moduli of
30 bits or fewer so that a product of two residues fits comfortably in a
signed 64-bit integer.  This module provides both scalar helpers (pure
Python integers, used for key generation and reference code) and vectorised
helpers operating on ``numpy.int64``/``numpy.uint64`` arrays (used by the
NTT engines and the RNS polynomial layer).

The module also contains software implementations of Barrett and Montgomery
reduction.  The GPU in the paper has no hardware modulo support, which is
why TensorFHE goes to great lengths to avoid ``%`` — these scalar classes
are the *reference* forms of those reductions, kept as the ground truth the
tests pin the vectorised paths against.  The production float64 variant —
lazy Barrett on the FMA units, used by the float-resident kernel chains —
lives in :mod:`repro.numtheory.floatmod`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.registry import resolve_backend
from ..backend.residency import as_buffer, is_buffer

__all__ = [
    "mod_add",
    "mod_sub",
    "mod_mul",
    "mod_pow",
    "mod_inverse",
    "mod_neg",
    "BarrettReducer",
    "MontgomeryReducer",
    "vec_mod_add",
    "vec_mod_sub",
    "vec_mod_mul",
    "vec_mod_neg",
    "moduli_column",
    "mat_mod_reduce",
    "mat_mod_add",
    "mat_mod_sub",
    "mat_mod_neg",
    "mat_mod_mul",
    "mat_mod_scalar_mul",
]


def mod_add(a: int, b: int, q: int) -> int:
    """Return ``(a + b) mod q`` for non-negative residues."""
    s = a + b
    if s >= q:
        s -= q
    return s


def mod_sub(a: int, b: int, q: int) -> int:
    """Return ``(a - b) mod q`` for non-negative residues."""
    d = a - b
    if d < 0:
        d += q
    return d


def mod_neg(a: int, q: int) -> int:
    """Return ``(-a) mod q``."""
    return 0 if a == 0 else q - a


def mod_mul(a: int, b: int, q: int) -> int:
    """Return ``(a * b) mod q`` using Python's arbitrary precision."""
    return (a * b) % q


def mod_pow(base: int, exponent: int, q: int) -> int:
    """Return ``base ** exponent mod q`` (square-and-multiply)."""
    if exponent < 0:
        return mod_pow(mod_inverse(base, q), -exponent, q)
    return pow(base, exponent, q)


def mod_inverse(a: int, q: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``q``.

    Raises
    ------
    ValueError
        If ``a`` is not invertible modulo ``q``.
    """
    a = a % q
    if a == 0:
        raise ValueError("0 has no inverse modulo %d" % q)
    g, x, _ = _extended_gcd(a, q)
    if g != 1:
        raise ValueError("%d is not invertible modulo %d" % (a, q))
    return x % q


def _extended_gcd(a: int, b: int):
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
        old_y, y = y, old_y - quotient * y
    return old_r, old_x, old_y


@dataclass
class BarrettReducer:
    """Barrett reduction for a fixed modulus.

    Precomputes ``mu = floor(2**k / q)`` so that a 2w-bit product can be
    reduced with two multiplications and a conditional subtraction, exactly
    as the CUDA kernels in the paper's baselines (e.g. 100x [33]) do.
    """

    modulus: int

    def __post_init__(self) -> None:
        if self.modulus <= 1:
            raise ValueError("modulus must be > 1")
        self.shift = 2 * self.modulus.bit_length()
        self.mu = (1 << self.shift) // self.modulus

    def reduce(self, value: int) -> int:
        """Reduce ``value`` (``0 <= value < q**2``) modulo ``q``."""
        q = self.modulus
        estimate = (value * self.mu) >> self.shift
        remainder = value - estimate * q
        while remainder >= q:
            remainder -= q
        return remainder

    def mul(self, a: int, b: int) -> int:
        """Return ``a * b mod q`` via Barrett reduction."""
        return self.reduce(a * b)


@dataclass
class MontgomeryReducer:
    """Montgomery reduction for a fixed odd modulus (reference form).

    Values are kept in the Montgomery domain ``a * R mod q`` with
    ``R = 2**r``.  This is the scalar reference for the modulus-avoiding
    arithmetic the fastest CPU/GPU NTT libraries use; the library's hot
    paths reduce with float64 Barrett instead
    (:mod:`repro.numtheory.floatmod`), whose per-prime constants are
    cheaper to apply on FMA units than a domain conversion round-trip.
    Domain mapping is a plain multiply — ``(a * r) % q`` in, then
    ``reduce`` (which divides by ``R``) back out — so no dedicated
    conversion helpers are kept here.
    """

    modulus: int

    def __post_init__(self) -> None:
        q = self.modulus
        if q <= 1:
            raise ValueError("modulus must be > 1")
        if q % 2 == 0:
            raise ValueError("Montgomery reduction requires an odd modulus")
        self.r_bits = q.bit_length()
        self.r = 1 << self.r_bits
        self.r_mask = self.r - 1
        # q_prime satisfies q * q_prime == -1 (mod R)
        self.q_prime = (-mod_inverse(q, self.r)) % self.r

    def reduce(self, t: int) -> int:
        """Montgomery-reduce ``t`` (``0 <= t < q * R``)."""
        q = self.modulus
        m = ((t & self.r_mask) * self.q_prime) & self.r_mask
        u = (t + m * q) >> self.r_bits
        if u >= q:
            u -= q
        return u

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-domain values, result in the domain."""
        return self.reduce(a_mont * b_mont)


def _as_int64(values: np.ndarray) -> np.ndarray:
    array = np.asarray(values, dtype=np.int64)
    return array


def vec_mod_add(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a + b) mod q`` on int64 arrays without overflow."""
    a = _as_int64(a)
    b = _as_int64(b)
    out = a + b
    np.subtract(out, q, out=out, where=out >= q)
    return out


def vec_mod_sub(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a - b) mod q`` on int64 arrays without overflow."""
    a = _as_int64(a)
    b = _as_int64(b)
    out = a - b
    np.add(out, q, out=out, where=out < 0)
    return out


def vec_mod_neg(a: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(-a) mod q``."""
    a = _as_int64(a)
    out = (q - a) % q
    return out.astype(np.int64)


def vec_mod_mul(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a * b) mod q``.

    Residues must be below 2**31 so that the product fits in int64; all
    moduli produced by :mod:`repro.numtheory.primes` satisfy this.
    """
    a = _as_int64(a)
    b = _as_int64(b)
    if q >= (1 << 31):
        # Fall back to object arithmetic for oversized moduli.
        product = a.astype(object) * b.astype(object)
        return np.asarray(product % q, dtype=np.int64)
    return (a * b) % q


# ----------------------------------------------------------------------
# Matrix-modular helpers: whole-polynomial (limbs, N) arithmetic.
#
# The RNS layer stores a polynomial as a ``(limbs, N)`` residue matrix with
# one prime per row.  Broadcasting the moduli as a ``(limbs, 1)`` column
# turns every element-wise kernel (Ele-Add, Ele-Sub, Hada-Mult, ...) into a
# single 2-D launch — the operation-level batching the paper's Figure 9/14
# argue for, with the limb dimension fused into the launch.  The launches
# themselves run on the active compute backend (see :mod:`repro.backend`);
# these wrappers own input coercion and the oversized-moduli exact path.
#
# Residency: like the GEMM funnels, every helper accepts host arrays *or*
# :class:`~repro.backend.residency.DeviceBuffer` handles.  Handle in →
# handle out: resident operands dispatch to the backend's ``*_native``
# kernel and never stage through host, which is what lets a chain of
# element-wise launches stay on the device between transforms.
# ----------------------------------------------------------------------

def _coerce(operand):
    """Pass handles through untouched, coerce everything else to int64."""
    if is_buffer(operand):
        return operand
    return _as_int64(operand)


def moduli_column(moduli) -> np.ndarray:
    """Return ``moduli`` as an int64 ``(limbs, 1)`` broadcast column."""
    column = np.asarray(moduli, dtype=np.int64)
    if column.ndim == 1:
        column = column[:, None]
    return column


def mat_mod_reduce(matrix: np.ndarray, moduli) -> np.ndarray:
    """Row-wise ``matrix[i] mod moduli[i]`` on a ``(limbs, N)`` matrix."""
    matrix = _coerce(matrix)
    if is_buffer(matrix):
        return resolve_backend(None).mat_reduce_native(matrix,
                                                       moduli_column(moduli))
    return resolve_backend(None).mat_reduce(matrix, moduli_column(moduli))


def mat_mod_add(a: np.ndarray, b: np.ndarray, moduli) -> np.ndarray:
    """Row-wise ``(a + b) mod moduli`` without overflow (reduced inputs)."""
    a, b = _coerce(a), _coerce(b)
    if is_buffer(a) or is_buffer(b):
        return resolve_backend(None).mat_add_native(
            as_buffer(a), as_buffer(b), moduli_column(moduli))
    return resolve_backend(None).mat_add(a, b, moduli_column(moduli))


def mat_mod_sub(a: np.ndarray, b: np.ndarray, moduli) -> np.ndarray:
    """Row-wise ``(a - b) mod moduli`` without overflow (reduced inputs)."""
    a, b = _coerce(a), _coerce(b)
    if is_buffer(a) or is_buffer(b):
        return resolve_backend(None).mat_sub_native(
            as_buffer(a), as_buffer(b), moduli_column(moduli))
    return resolve_backend(None).mat_sub(a, b, moduli_column(moduli))


def mat_mod_neg(a: np.ndarray, moduli) -> np.ndarray:
    """Row-wise ``(-a) mod moduli``."""
    a = _coerce(a)
    if is_buffer(a):
        return resolve_backend(None).mat_neg_native(a, moduli_column(moduli))
    return resolve_backend(None).mat_neg(a, moduli_column(moduli))


def mat_mod_mul(a: np.ndarray, b: np.ndarray, moduli) -> np.ndarray:
    """Row-wise ``(a * b) mod moduli``.

    Requires every modulus below 2**31 so products fit in int64 (all moduli
    from :mod:`repro.numtheory.primes` qualify); larger moduli fall back to
    exact object arithmetic.
    """
    a = _coerce(a)
    b = _coerce(b)
    column = moduli_column(moduli)
    resident = is_buffer(a) or is_buffer(b)
    if int(column.max()) >= (1 << 31):
        product = (np.asarray(a, dtype=np.int64).astype(object)
                   * np.asarray(b, dtype=np.int64).astype(object))
        out = np.asarray(product % column, dtype=np.int64)
        return as_buffer(out) if resident else out
    if resident:
        return resolve_backend(None).mat_mul_native(
            as_buffer(a), as_buffer(b), column)
    return resolve_backend(None).mat_mul(a, b, column)


def mat_mod_scalar_mul(a: np.ndarray, scalars, moduli) -> np.ndarray:
    """Multiply row ``i`` by integer ``scalars[i]`` modulo ``moduli[i]``.

    Accepts a single scalar (applied to every row, reduced per-modulus) or
    one scalar per limb; scalars may be arbitrary Python integers — they
    are reduced into the int64-safe range before the broadcast multiply.
    """
    a = _coerce(a)
    column = moduli_column(moduli)
    scalar_array = np.asarray(scalars, dtype=object)
    if scalar_array.ndim == 0:
        scalar_array = scalar_array.reshape(1, 1)
    elif scalar_array.ndim == 1:
        scalar_array = scalar_array[:, None]
    scalar_column = np.asarray(scalar_array % column, dtype=np.int64)
    return mat_mod_mul(a, scalar_column, moduli)
