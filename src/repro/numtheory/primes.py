"""Prime generation for NTT-friendly moduli.

The Full-RNS CKKS scheme in the paper decomposes the wide ciphertext
modulus ``Q = prod(q_l)`` into word-sized primes.  Negacyclic NTT of length
``N`` over ``Z_q`` requires a primitive ``2N``-th root of unity, which
exists iff ``q ≡ 1 (mod 2N)``.  This module generates such primes and
verifies primality with a deterministic Miller–Rabin test (valid for all
64-bit integers).
"""

from __future__ import annotations

from typing import List

__all__ = [
    "is_prime",
    "next_prime",
    "previous_prime",
    "generate_ntt_prime",
    "generate_ntt_primes",
]

# Witness set proven sufficient for deterministic Miller-Rabin below 3.3e24.
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin primality test for ``n < 3.3e24``."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MILLER_RABIN_WITNESSES:
        if witness >= n:
            continue
        x = pow(witness, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def previous_prime(n: int) -> int:
    """Return the largest prime strictly smaller than ``n``."""
    if n <= 2:
        raise ValueError("no prime below 2")
    candidate = n - 1
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate -= 1
    while candidate > 2 and not is_prime(candidate):
        candidate -= 2
    if candidate < 2:
        raise ValueError("no prime below %d" % n)
    return candidate


def generate_ntt_prime(bits: int, ring_degree: int, *, avoid: set = frozenset()) -> int:
    """Return a prime ``q ≡ 1 (mod 2*ring_degree)`` with roughly ``bits`` bits.

    Parameters
    ----------
    bits:
        Target bit length of the prime.
    ring_degree:
        The polynomial degree ``N``; the prime supports negacyclic NTT of
        this length.
    avoid:
        Primes already in use that must not be returned again.
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    modulus_step = 2 * ring_degree
    if modulus_step <= 0:
        raise ValueError("ring_degree must be positive")
    candidate = (1 << bits) + 1
    # Align to 1 (mod 2N).
    candidate -= (candidate - 1) % modulus_step
    while True:
        if candidate.bit_length() > bits + 1:
            raise ValueError(
                "could not find an NTT-friendly prime of %d bits for N=%d"
                % (bits, ring_degree)
            )
        if candidate not in avoid and is_prime(candidate):
            return candidate
        candidate += modulus_step


def generate_ntt_primes(count: int, bits: int, ring_degree: int) -> List[int]:
    """Generate ``count`` distinct NTT-friendly primes of ``bits`` bits."""
    primes: List[int] = []
    seen: set = set()
    modulus_step = 2 * ring_degree
    candidate = (1 << bits) + 1
    candidate -= (candidate - 1) % modulus_step
    while len(primes) < count:
        if candidate.bit_length() > bits + 2:
            raise ValueError(
                "exhausted candidates while generating %d NTT primes of %d bits"
                % (count, bits)
            )
        if candidate not in seen and is_prime(candidate):
            primes.append(candidate)
            seen.add(candidate)
        candidate += modulus_step
    return primes
