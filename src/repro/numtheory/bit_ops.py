"""Bit-level utilities: bit reversal permutations and limb segmentation.

``bit_reverse`` / ``bit_reverse_permutation`` support the in-place radix-2
butterfly NTT.  ``segment_u32`` / ``fuse_segments`` implement the 32-bit →
4 × 8-bit split of Figure 7 of the paper, which is what lets the NTT GEMMs
run on INT8 tensor cores without losing precision.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_power_of_two",
    "ilog2",
    "bit_reverse",
    "bit_reverse_permutation",
    "bit_reverse_vector",
    "segment_u32",
    "fuse_segments",
]

SEGMENT_COUNT = 4
SEGMENT_BITS = 8


def is_power_of_two(n: int) -> bool:
    """Return True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Return ``log2(n)`` for a power of two ``n``."""
    if not is_power_of_two(n):
        raise ValueError("%d is not a power of two" % n)
    return n.bit_length() - 1


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the lowest ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Return the length-``n`` bit-reversal permutation as an index array."""
    bits = ilog2(n)
    indices = np.arange(n, dtype=np.int64)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for i in range(n):
        reversed_indices[i] = bit_reverse(int(indices[i]), bits)
    return reversed_indices


def bit_reverse_vector(values: np.ndarray) -> np.ndarray:
    """Return ``values`` permuted into bit-reversed order."""
    values = np.asarray(values)
    perm = bit_reverse_permutation(values.shape[-1])
    return values[..., perm]


def segment_u32(matrix: np.ndarray) -> np.ndarray:
    """Split a matrix of 32-bit unsigned values into four u8 limb matrices.

    Returns an array of shape ``(4,) + matrix.shape`` where segment ``s``
    holds bits ``[8s, 8s+8)`` of each element, matching Figure 7 of the
    paper (M0 is the least-significant byte).
    """
    values = np.asarray(matrix, dtype=np.uint64)
    if np.any(values >= (1 << 32)):
        raise ValueError("segment_u32 expects values below 2**32")
    segments = np.empty((SEGMENT_COUNT,) + values.shape, dtype=np.uint8)
    for s in range(SEGMENT_COUNT):
        segments[s] = (values >> (SEGMENT_BITS * s)) & 0xFF
    return segments


def fuse_segments(segments: np.ndarray) -> np.ndarray:
    """Recombine limb matrices produced by :func:`segment_u32`.

    The inverse of the segmentation: ``sum_s segments[s] << (8 * s)``.
    Accepts any integer dtype for the segments (the GEMM path produces
    int64 partial sums) and returns ``uint64`` values.
    """
    segments = np.asarray(segments)
    if segments.shape[0] != SEGMENT_COUNT:
        raise ValueError("expected %d segments" % SEGMENT_COUNT)
    fused = np.zeros(segments.shape[1:], dtype=np.uint64)
    for s in range(SEGMENT_COUNT):
        fused += segments[s].astype(np.uint64) << np.uint64(SEGMENT_BITS * s)
    return fused
