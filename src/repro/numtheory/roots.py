"""Primitive roots and roots of unity for NTT twiddle factors.

Following Section II-A of the paper: for a prime ``q`` there exists a
generator ``g`` of the multiplicative group, and the primitive ``N``-th
root of unity is ``psi_N = g**((q-1)/N) mod q``.  Negacyclic convolution
(Eq. 3/4) additionally needs a primitive ``2N``-th root ``psi`` with
``psi**2 = omega`` where ``omega`` is the N-th root used by the plain NTT.
"""

from __future__ import annotations

from typing import Dict, List

from .modular import mod_inverse, mod_pow
from .primes import is_prime

__all__ = [
    "factorize",
    "find_primitive_root",
    "find_root_of_unity",
    "find_negacyclic_root",
    "root_powers",
    "inverse_root_powers",
]


def factorize(n: int) -> Dict[int, int]:
    """Return the prime factorisation of ``n`` as ``{prime: exponent}``."""
    if n <= 0:
        raise ValueError("factorize expects a positive integer")
    factors: Dict[int, int] = {}
    remaining = n
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors[divisor] = factors.get(divisor, 0) + 1
            remaining //= divisor
        divisor += 1 if divisor == 2 else 2
    if remaining > 1:
        factors[remaining] = factors.get(remaining, 0) + 1
    return factors


def find_primitive_root(q: int) -> int:
    """Return a generator of the multiplicative group of ``Z_q`` (q prime)."""
    if not is_prime(q):
        raise ValueError("%d is not prime" % q)
    if q == 2:
        return 1
    group_order = q - 1
    prime_factors = list(factorize(group_order))
    for candidate in range(2, q):
        if all(
            mod_pow(candidate, group_order // p, q) != 1 for p in prime_factors
        ):
            return candidate
    raise ArithmeticError("no primitive root found for %d" % q)


def find_root_of_unity(order: int, q: int) -> int:
    """Return a primitive ``order``-th root of unity modulo prime ``q``."""
    if order <= 0:
        raise ValueError("order must be positive")
    if (q - 1) % order != 0:
        raise ValueError(
            "no %d-th root of unity mod %d: order does not divide q-1" % (order, q)
        )
    generator = find_primitive_root(q)
    root = mod_pow(generator, (q - 1) // order, q)
    # Sanity checks: correct order.
    if mod_pow(root, order, q) != 1:
        raise ArithmeticError("candidate root has wrong order")
    if order > 1 and mod_pow(root, order // 2, q) == 1:
        raise ArithmeticError("candidate root is not primitive")
    return root


def find_negacyclic_root(ring_degree: int, q: int) -> int:
    """Return a primitive ``2N``-th root of unity ``psi`` for degree ``N``.

    ``psi`` satisfies ``psi**N ≡ -1 (mod q)``, which is what folds the
    negative-cyclic convolution into the NTT (Eq. 4 of the paper).
    """
    psi = find_root_of_unity(2 * ring_degree, q)
    if mod_pow(psi, ring_degree, q) != q - 1:
        raise ArithmeticError("psi**N != -1; root is not negacyclic")
    return psi


def root_powers(root: int, count: int, q: int) -> List[int]:
    """Return ``[root**0, root**1, ..., root**(count-1)] mod q``."""
    powers = [1] * count
    for i in range(1, count):
        powers[i] = (powers[i - 1] * root) % q
    return powers


def inverse_root_powers(root: int, count: int, q: int) -> List[int]:
    """Return powers of ``root**-1`` modulo ``q``."""
    return root_powers(mod_inverse(root, q), count, q)
