"""Chinese Remainder Theorem helpers for the Residue Number System.

Full-RNS CKKS (Section II-B of the paper) represents a polynomial with a
huge modulus ``Q = prod(q_i)`` as a list of residue polynomials, one per
word-sized prime.  These helpers convert between the integer and RNS
representations and expose the per-prime constants (``Q_hat_i`` and its
inverse) that the fast basis conversion kernel needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .modular import mod_inverse

__all__ = ["CrtContext", "compose", "decompose"]


@dataclass
class CrtContext:
    """Precomputed CRT constants for a fixed list of co-prime moduli."""

    moduli: Sequence[int]
    modulus_product: int = field(init=False)
    quotients: List[int] = field(init=False)
    quotient_inverses: List[int] = field(init=False)

    def __post_init__(self) -> None:
        moduli = list(self.moduli)
        if not moduli:
            raise ValueError("CrtContext requires at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("CRT moduli must be distinct")
        self.moduli = moduli
        self.modulus_product = 1
        for q in moduli:
            self.modulus_product *= q
        self.quotients = [self.modulus_product // q for q in moduli]
        self.quotient_inverses = [
            mod_inverse(quotient % q, q)
            for quotient, q in zip(self.quotients, moduli)
        ]

    def decompose(self, value: int) -> List[int]:
        """Map an integer to its residues ``value mod q_i``."""
        return [value % q for q in self.moduli]

    def compose(self, residues: Sequence[int]) -> int:
        """Map residues back to the unique integer in ``[0, Q)``."""
        if len(residues) != len(self.moduli):
            raise ValueError("residue count does not match modulus count")
        total = 0
        for residue, quotient, inverse, q in zip(
            residues, self.quotients, self.quotient_inverses, self.moduli
        ):
            total += (residue * inverse % q) * quotient
        return total % self.modulus_product

    def compose_centered(self, residues: Sequence[int]) -> int:
        """Compose and map to the centred representative in ``(-Q/2, Q/2]``."""
        value = self.compose(residues)
        if value > self.modulus_product // 2:
            value -= self.modulus_product
        return value

    def decompose_array(self, values: Sequence[int]) -> np.ndarray:
        """Decompose a vector of integers into an ``(L, len(values))`` array."""
        values = [int(v) for v in values]
        rows = [[value % q for value in values] for q in self.moduli]
        return np.asarray(rows, dtype=np.int64)

    def compose_array(self, residue_matrix: np.ndarray, *, centered: bool = True) -> List[int]:
        """Compose an ``(L, n)`` residue matrix back into ``n`` integers."""
        matrix = np.asarray(residue_matrix)
        if matrix.shape[0] != len(self.moduli):
            raise ValueError("residue matrix has wrong number of rows")
        composer = self.compose_centered if centered else self.compose
        return [composer([int(matrix[l, i]) for l in range(matrix.shape[0])])
                for i in range(matrix.shape[1])]


def decompose(value: int, moduli: Sequence[int]) -> List[int]:
    """Convenience wrapper around :meth:`CrtContext.decompose`."""
    return CrtContext(moduli).decompose(value)


def compose(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Convenience wrapper around :meth:`CrtContext.compose`."""
    return CrtContext(moduli).compose(residues)
