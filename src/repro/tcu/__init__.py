"""Functional Tensor Core Unit simulation: segmentation, INT8 GEMM, fusion."""

from .segmentation import SegmentedMatrix, active_limb_count, limb_weight, segment_matrix
from .gemm import TILE_K, TILE_M, TILE_N, TcuOverflowError, TcuStats, TensorCoreGemm
from .fusion import (
    fuse_partial_products,
    fuse_partial_products_exact,
    fuse_partial_products_limbs,
)
from .streams import ScheduleResult, StreamScheduler, StreamTask

__all__ = [
    "SegmentedMatrix",
    "segment_matrix",
    "limb_weight",
    "active_limb_count",
    "TensorCoreGemm",
    "TcuStats",
    "TcuOverflowError",
    "TILE_M",
    "TILE_N",
    "TILE_K",
    "fuse_partial_products",
    "fuse_partial_products_limbs",
    "fuse_partial_products_exact",
    "StreamScheduler",
    "StreamTask",
    "ScheduleResult",
]
