"""Booth-style fusion of limb-pair partial products (paper Stages 3 and 5).

After the limb GEMMs ``O_ij = W_i @ T_j`` have been computed on the tensor
cores, the true product matrix is ``sum_ij O_ij << 8*(i+j)``.  The paper
fuses the partial products with the modified Booth accumulation; here we
fuse modulo ``q`` so the result is exact for arbitrary 30-bit moduli (the
paper relies on its parameter choice to keep the fused value inside 32/64
bits — see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..numtheory.bit_ops import SEGMENT_BITS
from ..numtheory.modular import vec_mod_add, vec_mod_mul

__all__ = [
    "fuse_partial_products",
    "fuse_partial_products_limbs",
    "fuse_partial_products_exact",
]


def fuse_partial_products(partials: Dict[Tuple[int, int], np.ndarray],
                          modulus: int) -> np.ndarray:
    """Fuse limb-pair partial products modulo ``modulus``.

    Parameters
    ----------
    partials:
        Mapping ``(i, j) -> O_ij`` where ``i`` is the limb index of the
        left operand and ``j`` of the right operand.
    modulus:
        Prime modulus of the NTT.
    """
    if not partials:
        raise ValueError("no partial products to fuse")
    first = next(iter(partials.values()))
    fused = np.zeros(first.shape, dtype=np.int64)
    for (limb_left, limb_right), partial in partials.items():
        shift = SEGMENT_BITS * (limb_left + limb_right)
        weight = pow(2, shift, modulus)
        reduced = np.asarray(partial, dtype=np.int64) % modulus
        term = vec_mod_mul(reduced, np.full(reduced.shape, weight, dtype=np.int64), modulus)
        fused = vec_mod_add(fused, term, modulus)
    return fused


def fuse_partial_products_limbs(partials: Dict[Tuple[int, int], np.ndarray],
                                moduli: np.ndarray) -> np.ndarray:
    """Fuse limb-pair partial products with per-RNS-limb moduli.

    Each ``O_ij`` is a ``(limbs, M, P)`` stack (one slice per RNS prime);
    slice ``l`` is reduced modulo ``moduli[l]``.  The fusion itself is
    fully vectorised over the RNS limb axis — the only Python loop is over
    the (at most 16) segment pairs.
    """
    if not partials:
        raise ValueError("no partial products to fuse")
    moduli = np.asarray(moduli, dtype=np.int64)
    first = next(iter(partials.values()))
    column = moduli.reshape((moduli.shape[0],) + (1,) * (first.ndim - 1))
    fused = np.zeros(first.shape, dtype=np.int64)
    for (limb_left, limb_right), partial in partials.items():
        shift = SEGMENT_BITS * (limb_left + limb_right)
        # shift <= 48, so 2**shift fits in int64 and the per-modulus weight
        # reduces vectorised across the limb axis.
        weight = np.int64(1 << shift) % column
        reduced = np.asarray(partial, dtype=np.int64) % column
        term = (reduced * weight) % column
        fused = (fused + term) % column
    return fused


def fuse_partial_products_exact(partials: Dict[Tuple[int, int], np.ndarray]) -> np.ndarray:
    """Fuse partial products exactly (Python integers, no reduction).

    Used by the tests to show that the segmented GEMM reproduces the exact
    wide product before any modular reduction, i.e. the segmentation scheme
    itself loses no precision.
    """
    if not partials:
        raise ValueError("no partial products to fuse")
    first = next(iter(partials.values()))
    fused = np.zeros(first.shape, dtype=object)
    for (limb_left, limb_right), partial in partials.items():
        shift = SEGMENT_BITS * (limb_left + limb_right)
        fused = fused + np.asarray(partial, dtype=object) * (1 << shift)
    return fused
