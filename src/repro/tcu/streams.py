"""CUDA-stream concurrency model for the limb GEMMs (paper Stage 2/4).

The paper assigns each of the 16 limb-pair GEMMs to a separate CUDA stream
so they execute concurrently on the GPU's tensor cores.  This module models
that scheduling decision: given per-GEMM costs and a number of concurrent
streams, it computes the makespan under a simple greedy (longest-processing
-time) schedule, which is what the benchmarks use to quantify the benefit
of stream-level concurrency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["StreamTask", "StreamScheduler", "ScheduleResult"]


@dataclass(frozen=True)
class StreamTask:
    """One unit of work (a limb-pair GEMM) submitted to a stream."""

    name: str
    cost: float


@dataclass
class ScheduleResult:
    """Outcome of scheduling a set of tasks onto concurrent streams."""

    makespan: float
    total_work: float
    per_stream: List[float] = field(default_factory=list)
    assignments: List[List[str]] = field(default_factory=list)

    @property
    def parallel_efficiency(self) -> float:
        """Fraction of the ideal speedup achieved (1.0 = perfectly balanced)."""
        streams = len(self.per_stream)
        if streams == 0 or self.makespan == 0:
            return 1.0
        ideal = self.total_work / streams
        return ideal / self.makespan if self.makespan > 0 else 1.0


class StreamScheduler:
    """Greedy LPT scheduler modelling concurrent CUDA streams."""

    def __init__(self, stream_count: int) -> None:
        if stream_count <= 0:
            raise ValueError("stream_count must be positive")
        self.stream_count = stream_count

    def schedule(self, tasks: Sequence[StreamTask]) -> ScheduleResult:
        """Assign ``tasks`` to streams and return the resulting makespan."""
        if not tasks:
            return ScheduleResult(makespan=0.0, total_work=0.0,
                                  per_stream=[0.0] * self.stream_count,
                                  assignments=[[] for _ in range(self.stream_count)])
        ordered = sorted(tasks, key=lambda task: task.cost, reverse=True)
        heap = [(0.0, stream) for stream in range(self.stream_count)]
        heapq.heapify(heap)
        loads = [0.0] * self.stream_count
        assignments: List[List[str]] = [[] for _ in range(self.stream_count)]
        for task in ordered:
            load, stream = heapq.heappop(heap)
            load += task.cost
            loads[stream] = load
            assignments[stream].append(task.name)
            heapq.heappush(heap, (load, stream))
        total = sum(task.cost for task in tasks)
        return ScheduleResult(makespan=max(loads), total_work=total,
                              per_stream=loads, assignments=assignments)
