"""Segment-fusion of 32-bit matrices into 8-bit limbs (paper Figure 7).

Tensor Core Units only multiply low-precision operands (INT8 inputs with
INT32 accumulation), while the NTT operates on 32-bit residues.  TensorFHE
splits every 32-bit element into four 8-bit limbs, distributes them into
four limb matrices, runs all limb-pair GEMMs on the TCUs and fuses the
partial products back with the appropriate power-of-two weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..numtheory.bit_ops import SEGMENT_BITS, SEGMENT_COUNT, segment_u32

__all__ = ["SegmentedMatrix", "segment_matrix", "limb_weight", "active_limb_count"]


def limb_weight(limb_index: int) -> int:
    """Return the weight ``2**(8*limb_index)`` of a limb."""
    return 1 << (SEGMENT_BITS * limb_index)


def active_limb_count(max_value: int) -> int:
    """Number of limbs actually needed to represent values up to ``max_value``.

    TensorFHE always materialises four limb matrices; knowing how many are
    non-zero lets the performance model skip all-zero GEMMs, an optimisation
    the CUTLASS stream scheduler gets for free when a limb matrix is zero.
    """
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    count = 0
    while max_value > 0 and count < SEGMENT_COUNT:
        count += 1
        max_value >>= SEGMENT_BITS
    return max(count, 1)


@dataclass
class SegmentedMatrix:
    """A 32-bit matrix held as four u8 limb matrices (Figure 7)."""

    limbs: np.ndarray  # shape (4, rows, cols), dtype uint8
    shape: tuple

    @property
    def limb_count(self) -> int:
        return self.limbs.shape[0]

    def limb(self, index: int) -> np.ndarray:
        """Return limb ``index`` (0 = least significant byte)."""
        return self.limbs[index]

    def nonzero_limbs(self) -> List[int]:
        """Indices of limbs that contain at least one non-zero entry."""
        return [s for s in range(self.limb_count) if np.any(self.limbs[s])]

    def reconstruct(self) -> np.ndarray:
        """Recombine the limbs into the original uint64 matrix (for tests)."""
        total = np.zeros(self.shape, dtype=np.uint64)
        for s in range(self.limb_count):
            total += self.limbs[s].astype(np.uint64) << np.uint64(SEGMENT_BITS * s)
        return total


def segment_matrix(matrix: np.ndarray) -> SegmentedMatrix:
    """Split ``matrix`` (values < 2**32) into a :class:`SegmentedMatrix`."""
    matrix = np.asarray(matrix)
    limbs = segment_u32(matrix)
    return SegmentedMatrix(limbs=limbs, shape=matrix.shape)
