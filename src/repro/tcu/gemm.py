"""Functional simulation of the Tensor Core Unit INT8 GEMM.

A real TCU multiplies u8/s8 operand tiles and accumulates into s32
registers (Figure 3 of the paper).  :class:`TensorCoreGemm` reproduces that
contract bit-exactly: operands must fit in 8 bits, the accumulator is a
32-bit signed integer and overflow of the accumulator raises (or wraps, if
``wrap_on_overflow`` is set, matching real hardware behaviour).  The class
also counts MAC operations and emulated tile launches so the performance
model can translate functional runs into time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TcuStats", "TensorCoreGemm", "TcuOverflowError"]

_INT32_MAX = (1 << 31) - 1
_INT32_MIN = -(1 << 31)

#: Dimensions of the MMA tile a warp issues on Ampere for int8 operands.
TILE_M = 16
TILE_N = 8
TILE_K = 32


class TcuOverflowError(ArithmeticError):
    """Raised when a partial sum exceeds the s32 accumulator range."""


@dataclass
class TcuStats:
    """Counters describing the work issued to the simulated tensor cores."""

    gemm_calls: int = 0
    mac_operations: int = 0
    tile_launches: int = 0
    elements_produced: int = 0

    def merge(self, other: "TcuStats") -> None:
        self.gemm_calls += other.gemm_calls
        self.mac_operations += other.mac_operations
        self.tile_launches += other.tile_launches
        self.elements_produced += other.elements_produced

    def reset(self) -> None:
        self.gemm_calls = 0
        self.mac_operations = 0
        self.tile_launches = 0
        self.elements_produced = 0


@dataclass
class TensorCoreGemm:
    """Bit-faithful u8 x u8 -> s32 GEMM with statistics.

    Parameters
    ----------
    wrap_on_overflow:
        If True, accumulator overflow wraps modulo 2**32 (what silicon
        would do); otherwise :class:`TcuOverflowError` is raised so callers
        notice invalid parameter choices.
    """

    wrap_on_overflow: bool = False
    stats: TcuStats = field(default_factory=TcuStats)

    def multiply(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Return ``lhs @ rhs`` with u8 operands and an s32 accumulator."""
        lhs = self._check_operand(lhs, "lhs")
        rhs = self._check_operand(rhs, "rhs")
        if lhs.shape[1] != rhs.shape[0]:
            raise ValueError(
                "inner dimensions do not match: %s @ %s" % (lhs.shape, rhs.shape)
            )
        product = lhs.astype(np.int64) @ rhs.astype(np.int64)
        if np.any(product > _INT32_MAX) or np.any(product < _INT32_MIN):
            if not self.wrap_on_overflow:
                raise TcuOverflowError(
                    "s32 accumulator overflow in simulated TCU GEMM "
                    "(inner dimension %d is too large for 8-bit operands)"
                    % lhs.shape[1]
                )
            product = ((product - _INT32_MIN) % (1 << 32)) + _INT32_MIN
        self._record(lhs.shape[0], lhs.shape[1], rhs.shape[1])
        return product.astype(np.int64)

    def multiply_batch(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Batched u8 GEMM: ``(B, M, K) @ (B, K, P)`` with s32 accumulators.

        One call issues the whole stack (the CUTLASS batched-GEMM launch the
        paper schedules across streams); the statistics record the same work
        as ``B`` individual :meth:`multiply` calls.  With u8 operands every
        product and partial sum stays far below 2**53, so the batch runs on
        BLAS float64 bit-exactly whenever the inner dimension permits.
        """
        lhs = self._check_operand(lhs, "lhs", ndim=3)
        rhs = self._check_operand(rhs, "rhs", ndim=3)
        if lhs.shape[0] != rhs.shape[0]:
            raise ValueError(
                "batch sizes do not match: %s @ %s" % (lhs.shape, rhs.shape)
            )
        if lhs.shape[2] != rhs.shape[1]:
            raise ValueError(
                "inner dimensions do not match: %s @ %s" % (lhs.shape, rhs.shape)
            )
        if lhs.shape[2] * 0xFF * 0xFF < (1 << 53):
            product = np.matmul(lhs.astype(np.float64),
                                rhs.astype(np.float64)).astype(np.int64)
        else:  # pragma: no cover - u8 inner dims this large never occur here
            product = np.matmul(lhs.astype(np.int64), rhs.astype(np.int64))
        if np.any(product > _INT32_MAX) or np.any(product < _INT32_MIN):
            if not self.wrap_on_overflow:
                raise TcuOverflowError(
                    "s32 accumulator overflow in simulated TCU GEMM "
                    "(inner dimension %d is too large for 8-bit operands)"
                    % lhs.shape[2]
                )
            product = ((product - _INT32_MIN) % (1 << 32)) + _INT32_MIN
        self._record(lhs.shape[1], lhs.shape[2], rhs.shape[2], batch=lhs.shape[0])
        return product.astype(np.int64)

    def _check_operand(self, operand: np.ndarray, label: str, *,
                       ndim: int = 2) -> np.ndarray:
        array = np.asarray(operand)
        if array.ndim != ndim:
            raise ValueError("%s must be a %d-D array" % (label, ndim))
        if array.dtype != np.uint8:
            as_int = np.asarray(array, dtype=np.int64)
            if np.any(as_int < 0) or np.any(as_int > 0xFF):
                raise ValueError(
                    "%s contains values outside the u8 range; segment it first" % label
                )
            array = as_int.astype(np.uint8)
        return array

    def _record(self, m: int, k: int, n: int, *, batch: int = 1) -> None:
        self.stats.gemm_calls += batch
        self.stats.mac_operations += batch * m * k * n
        self.stats.elements_produced += batch * m * n
        tiles_m = -(-m // TILE_M)
        tiles_n = -(-n // TILE_N)
        tiles_k = -(-k // TILE_K)
        self.stats.tile_launches += batch * tiles_m * tiles_n * tiles_k
